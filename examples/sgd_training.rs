//! Distributed SGD training — the paper's Listing 1 / §6.2 workload.
//!
//! Trains sparse logistic regression with HOGWILD! across parallel
//! serverless functions sharing one weights vector through the two-tier
//! state architecture, then reports accuracy, network traffic and billable
//! memory.
//!
//! Run with: `cargo run --release --example sgd_training`

use faasm::core::Cluster;
use faasm::workloads::data::rcv1_like;
use faasm::workloads::sgd;

fn main() {
    let cluster = Cluster::new(4);
    sgd::register_faasm(&cluster, "ml");

    // A scaled-down RCV1-like dataset (paper: 800 K docs; here 2 K).
    let dataset = rcv1_like(2048, 512, 12, 42);
    sgd::upload_dataset(cluster.kv().as_ref(), &dataset).expect("upload dataset");

    let workers = 8;
    let tasks = sgd::partition(
        dataset.examples as u32,
        workers,
        dataset.features as u32,
        0.5,
        32,
    );
    let before = cluster.fabric().stats().snapshot();
    let t0 = std::time::Instant::now();
    for epoch in 0..3 {
        let ids: Vec<_> = tasks
            .iter()
            .map(|t| cluster.invoke_async("ml", "sgd_update", t.to_bytes()))
            .collect();
        for id in ids {
            let r = cluster.await_result(id);
            assert_eq!(r.return_code(), 0, "worker failed: {:?}", r.status);
        }
        let acc = sgd::accuracy(cluster.kv().as_ref(), &dataset).expect("accuracy");
        println!("epoch {epoch}: training accuracy {:.3}", acc);
    }
    let elapsed = t0.elapsed();
    let traffic = cluster.fabric().stats().snapshot().delta(&before);

    println!("workers:          {workers}");
    println!("training time:    {elapsed:.2?}");
    println!(
        "network transfer: {:.2} MB (the Fig. 6b metric)",
        traffic.total_bytes() as f64 / 1e6
    );
    println!(
        "billable memory:  {:.6} GB-s (the Fig. 6c metric)",
        cluster.billable_gb_seconds()
    );
}
