//! Failover smoke: a write storm keeps hammering a replication-factor-2
//! state tier while a primary shard is killed abruptly; the liveness
//! monitor promotes the backups and not one acknowledged write is lost.
//!
//! Run with `cargo run --release --example failover_storm`. Exits non-zero
//! (panics) if any acknowledged write is lost, the blackout exceeds a
//! second, or the monitor fails to tombstone the dead slot.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm::core::{Cluster, ClusterConfig};
use faasm::kvs::SharedKv;

const WRITERS: usize = 4;

fn main() {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 2,
        state_shards: 3,
        replication_factor: 2,
        ..ClusterConfig::default()
    }));
    println!(
        "cluster up: {} hosts, {} state shards at R=2 (epoch {})",
        cluster.instances().len(),
        cluster.state_shard_count(),
        cluster.state_routing().epoch(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..WRITERS as u64)
        .map(|w| {
            let kv: SharedKv = Arc::clone(cluster.kv());
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("storm:{w}:{n}");
                    kv.set(&key, n.to_le_bytes().to_vec()).expect("acked write");
                    // Probe an earlier acked key: a stale read off a
                    // not-yet-promoted backup would fail the smoke here.
                    let probe = n / 2;
                    let got = kv.get(&format!("storm:{w}:{probe}")).expect("probe");
                    assert_eq!(got, Some(probe.to_le_bytes().to_vec()), "storm:{w}:{probe}");
                    ops.fetch_add(2, Ordering::Relaxed);
                    n += 1;
                }
                n
            })
        })
        .collect();

    let window = |label: &str, dur: Duration| {
        let t0 = Instant::now();
        let before = ops.load(Ordering::Relaxed);
        std::thread::sleep(dur);
        let rate = (ops.load(Ordering::Relaxed) - before) as f64 / t0.elapsed().as_secs_f64();
        println!("{label}: {rate:.0} ops/s");
        rate
    };

    let before = window("before kill", Duration::from_millis(400));

    // Kill a slot abruptly: its fabric hosts vanish mid-storm. Nothing
    // updates the routing table here — the liveness monitor must notice.
    let victim = 1usize;
    let table = cluster.state_routing().load();
    let blackout_key = (0..10_000)
        .map(|i| format!("blackout:{i}"))
        .find(|k| table.primary_for(k) == victim)
        .expect("a key primaried on the victim");
    drop(table);
    cluster.kill_state_shard(victim);
    println!("slot {victim} killed (no routing update — monitor must detect)");

    // The blackout its keys observe: one write primaried on the dead slot,
    // parked until the promoted backup serves it.
    let t0 = Instant::now();
    cluster
        .kv()
        .set(&blackout_key, b"survived".to_vec())
        .expect("write lands on the promoted backup");
    let blackout = t0.elapsed();
    let table = cluster.state_routing().load();
    assert!(table.dead.contains(&victim), "monitor tombstoned the slot");
    println!(
        "failover blackout {:.1} ms: epoch {} with {} live slots",
        blackout.as_secs_f64() * 1e3,
        table.epoch,
        table.live_count(),
    );
    assert!(
        blackout < Duration::from_secs(1),
        "blackout must stay sub-second, took {blackout:?}"
    );
    drop(table);

    let after = window("after promotion", Duration::from_millis(400));

    stop.store(true, Ordering::Relaxed);
    let written: Vec<u64> = writers.into_iter().map(|w| w.join().unwrap()).collect();

    // Full scan: every acknowledged write of every writer, exact value.
    for (w, n) in written.iter().enumerate() {
        for i in 0..*n {
            let got = cluster.kv().get(&format!("storm:{w}:{i}")).expect("scan");
            assert_eq!(got, Some(i.to_le_bytes().to_vec()), "lost storm:{w}:{i}");
        }
    }
    let total: u64 = written.iter().sum();
    let promotions: u64 = cluster
        .state_shard_stats()
        .expect("stats")
        .iter()
        .map(|s| s.promotions)
        .sum();
    assert!(promotions >= 1, "survivors must report the promotion");
    println!(
        "OK: {total} acknowledged writes verified across the kill \
         (throughput {before:.0} → {after:.0} ops/s, {promotions} promotion installs)"
    );
}
