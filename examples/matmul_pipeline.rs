//! Chained divide-and-conquer matrix multiplication — the paper's §6.4
//! workload: one driver function fans out 64 block products and 16 merges
//! through `chain_call`/`await_call`.
//!
//! Run with: `cargo run --release --example matmul_pipeline`

use faasm::core::Cluster;
use faasm::workloads::matmul;

fn main() {
    let cluster = Cluster::new(3);
    matmul::register_faasm(&cluster, "la");

    let n = 32;
    matmul::upload_matrices(cluster.kv().as_ref(), n, 5).expect("upload");

    let before = cluster.fabric().stats().snapshot();
    let t0 = std::time::Instant::now();
    let r = cluster.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
    assert_eq!(r.return_code(), 0, "status {:?}", r.status);
    let elapsed = t0.elapsed();

    // Verify against a single-threaded reference.
    let distributed = matmul::read_result(cluster.kv().as_ref(), n).expect("result");
    let reference = matmul::reference_product(cluster.kv().as_ref(), n).expect("reference");
    let max_err = distributed
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    let traffic = cluster.fabric().stats().snapshot().delta(&before);
    println!("{n}x{n} matrix multiply across 64 products + 16 merges");
    println!("wall time:        {elapsed:.2?}");
    println!("max error vs ref: {max_err:e}");
    println!(
        "network transfer: {:.2} MB",
        traffic.total_bytes() as f64 / 1e6
    );
    println!("calls executed:   {}", cluster.total_calls());
}
