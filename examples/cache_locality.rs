//! Function-side state-cache smoke: a zipfian read-heavy storm over the
//! global tier through a `CachedKv`, with a live reshard in the middle.
//!
//! Run with `cargo run --release --example cache_locality`. Exits non-zero
//! (panics) if the hit rate falls below threshold, if any read serves a
//! value other than the caller's latest acknowledged write (a staleness
//! violation — every write here goes through the cache, so reads must be
//! exact), or if the epoch bump from the reshard leaks a stale snapshot.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use faasm::core::{Cluster, ClusterConfig};
use faasm::kvs::{CacheConfig, CachedKv, KvBackend, SharedKv};

/// Hot-set size for the zipfian storm.
const KEYS: usize = 64;
/// Storm length (driver operations).
const OPS: usize = 30_000;
/// Required cache hit rate over the storm.
const HIT_RATE_FLOOR: f64 = 0.90;

/// Deterministic xorshift for op mixing.
fn next_rand(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A zipf(~1.1) rank over `KEYS` keys from precomputed cumulative weights.
fn zipf_rank(cum: &[f64], u: f64) -> usize {
    let total = *cum.last().expect("non-empty");
    let x = u * total;
    cum.iter().position(|c| *c >= x).unwrap_or(KEYS - 1)
}

fn main() {
    let cluster = Cluster::with_config(ClusterConfig {
        hosts: 2,
        state_shards: 2,
        ..ClusterConfig::default()
    });
    let cache = CachedKv::new(Arc::clone(cluster.kv()) as SharedKv, CacheConfig::default());
    println!(
        "cluster up: {} hosts, {} state shards; cache budget {} bytes, lease {:?}",
        cluster.instances().len(),
        cluster.state_shard_count(),
        CacheConfig::default().max_bytes,
        CacheConfig::default().lease,
    );

    let mut cum = Vec::with_capacity(KEYS);
    let mut acc = 0.0;
    for rank in 0..KEYS {
        acc += 1.0 / ((rank + 1) as f64).powf(1.1);
        cum.push(acc);
    }

    // Seed every key so the storm starts warm-able, and mirror the tier:
    // all writes go through this cache, so every read must be exact.
    let mut model: HashMap<String, Vec<u8>> = HashMap::new();
    for i in 0..KEYS {
        let key = format!("zipf:{i}");
        let val = (i as u64).to_le_bytes().to_vec();
        cache.set(&key, val.clone()).expect("seed write");
        model.insert(key, val);
    }

    let mut rng = 0x5eed_cafe_f00d_u64;
    let mut violations = 0usize;
    let mut reads = 0usize;
    let mut writes = 0usize;
    let t0 = Instant::now();
    for op in 0..OPS {
        // A state shard joins mid-storm: the routing epoch bumps and every
        // leased snapshot must revalidate instead of serving the old epoch.
        if op == OPS / 2 {
            let shards = cluster.add_state_shard().expect("live reshard");
            println!(
                "live reshard at op {op}: {shards} shards, epoch {}",
                cluster.state_routing().epoch()
            );
        }
        let r = next_rand(&mut rng);
        let key = format!(
            "zipf:{}",
            zipf_rank(&cum, (r >> 11) as f64 / (1u64 << 53) as f64)
        );
        if r.is_multiple_of(10) {
            // 10% writes: write-through keeps the snapshot current.
            let val = r.to_le_bytes().to_vec();
            cache.set(&key, val.clone()).expect("write");
            model.insert(key, val);
            writes += 1;
        } else {
            let got = cache.get(&key).expect("read");
            if got.as_ref() != model.get(&key) {
                violations += 1;
            }
            reads += 1;
        }
    }
    let elapsed = t0.elapsed();

    let stats = cache.stats();
    let hit_rate = stats.hit_rate();
    println!(
        "storm: {reads} reads + {writes} writes in {:.1} ms ({:.0} ops/s)",
        elapsed.as_secs_f64() * 1e3,
        OPS as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "cache: {} hits / {} misses (hit rate {:.1}%), {} revalidations, \
         {} invalidations, {} bytes resident",
        stats.hits,
        stats.misses,
        hit_rate * 100.0,
        stats.revalidations,
        stats.invalidations,
        cache.cached_bytes(),
    );

    // The function-side working set, as the affinity board would see it.
    let hot = cache.take_hot_keys();
    let shard_count = cluster.state_shard_count();
    print!("hottest keys → owning shard:");
    for (key, n) in hot.iter().take(5) {
        print!(
            " {key}×{n}→s{}",
            faasm::kvs::shard_index_for(key, shard_count)
        );
    }
    println!();

    assert_eq!(
        violations, 0,
        "every read must serve the caller's own latest acked write"
    );
    assert!(
        hit_rate >= HIT_RATE_FLOOR,
        "zipfian hit rate {:.3} below floor {HIT_RATE_FLOOR}",
        hit_rate
    );

    // Post-reshard sweep at the tier itself (uncached): write-through left
    // the global tier exactly in sync with the model.
    for (key, val) in &model {
        let got = cluster.kv().get(key).expect("tier read");
        assert_eq!(got.as_ref(), Some(val), "tier diverged on {key}");
    }
    println!(
        "OK: zero staleness violations, hit rate {:.1}% ≥ {:.0}%, tier \
         in sync after live reshard",
        hit_rate * 100.0,
        HIT_RATE_FLOOR * 100.0
    );
}
