//! Quickstart: upload an FL function to a FAASM cluster and invoke it.
//!
//! Run with: `cargo run --example quickstart`

use faasm::core::{Cluster, UploadOptions};

fn main() {
    // A two-host cluster: runtime instances, a distributed KVS global tier,
    // an object store and an ingress, all on a simulated fabric.
    let cluster = Cluster::new(2);

    // Functions are written in FL (the stand-in for C compiled to
    // WebAssembly), compiled on the "user side", and re-validated by the
    // trusted upload service before code generation (paper §3.4).
    let source = r#"
        extern int input_size();
        extern int read_call_input(ptr int buf, int len);
        extern void write_call_output(ptr int buf, int len);

        int main() {
            int n = input_size();
            read_call_input((ptr int) 1024, n);
            ptr int words = (ptr int) 1024;
            // Sum the input words and append the total.
            int total = 0;
            for (int i = 0; i < n / 4; i = i + 1) {
                total = total + words[i];
            }
            words[n / 4] = total;
            write_call_output((ptr int) 1024, n + 4);
            return 0;
        }
    "#;
    cluster
        .upload_fl("demo", "sum", source, UploadOptions::default())
        .expect("upload");

    // Invoke with three little-endian i32s.
    let mut input = Vec::new();
    for v in [3i32, 4, 35] {
        input.extend_from_slice(&v.to_le_bytes());
    }
    let result = cluster.invoke("demo", "sum", input);
    assert_eq!(result.return_code(), 0);
    let total = i32::from_le_bytes(result.output[12..16].try_into().unwrap());
    println!("3 + 4 + 35 = {total}");

    // The first call cold-started a Faaslet and published its Proto-Faaslet;
    // later calls reuse warm Faaslets or restore in microseconds.
    let inst = &cluster.instances()[0];
    println!(
        "calls={} cold={} warm={} proto_restores={}",
        cluster.total_calls(),
        inst.metrics().cold_starts(),
        inst.metrics().warm_starts(),
        inst.metrics().proto_restores(),
    );
}
