//! Trace storm: follow one call from admission to state and back while the
//! cluster is under load and resharding live.
//!
//! A state-touching function is stormed through the gateway while a state
//! shard joins; then one traced exhibit call races a second live reshard so
//! its state round trip can park on `WrongEpoch` and retry. The run prints
//! that call's span tree (every tier, causally linked) and the
//! cluster-wide per-tier span histograms, then asserts the tree is
//! non-empty, complete and causally ordered — this doubles as the CI smoke
//! test for the telemetry tier.
//!
//! ```sh
//! cargo run --release --example trace_storm
//! ```

use std::sync::Arc;

use faasm::core::{NativeApi, NativeGuest};
use faasm::gateway::{Gateway, GatewayConfig, GatewayStatus};
use faasm::telemetry::SpanKind;
use faasm::{Cluster, ClusterConfig};
use faasm_bench::telemetry_export;

const STORM_CALLS: usize = 256;

/// Read-modify-write one slot of a shared accumulator, then push: every
/// call does a global-tier state round trip for the trace to capture.
fn bump_guest() -> Arc<dyn NativeGuest> {
    Arc::new(|api: &mut NativeApi<'_>| {
        let slot = api.input().first().copied().unwrap_or(0) as usize;
        let entry = api
            .state("storm:acc", 4096)
            .map_err(faasm::fvm::Trap::host)?;
        let mut buf = [0u8; 8];
        entry
            .read(slot * 8, &mut buf)
            .map_err(faasm::fvm::Trap::host)?;
        let v = u64::from_le_bytes(buf).wrapping_add(1);
        entry
            .write(slot * 8, &v.to_le_bytes())
            .map_err(faasm::fvm::Trap::host)?;
        entry.push().map_err(faasm::fvm::Trap::host)?;
        api.write_output(&v.to_le_bytes());
        Ok(0)
    })
}

fn main() {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 2,
        state_shards: 2,
        ..ClusterConfig::default()
    }));
    cluster.register_native("storm", "bump", bump_guest(), false);
    let gw = Gateway::start(Arc::clone(&cluster), GatewayConfig::default());

    // Background storm with a live shard join in the middle, so the
    // histograms have real queueing, batching and migration in them.
    println!("storm: {STORM_CALLS} state-touching calls with a live shard join halfway");
    let mut tickets = Vec::new();
    for i in 0..STORM_CALLS {
        tickets.push(gw.submit("storm", "bump", vec![(i % 64) as u8]));
        if i == STORM_CALLS / 2 {
            cluster.add_state_shard().expect("live shard join");
        }
    }
    let ok = tickets
        .into_iter()
        .filter(|&t| gw.wait(t).status == GatewayStatus::Ok)
        .count();
    println!("storm: {ok}/{STORM_CALLS} ok");

    // The exhibit: traced calls racing one more live reshard. Prefer a
    // trace that caught a `WrongEpoch` park + retry; fall back to the last
    // one if the race never lands.
    let resharder = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            cluster.add_state_shard().expect("live shard join");
        })
    };
    let trace_id = loop {
        let done = resharder.is_finished();
        let (resp, tid) = gw.call_traced("storm", "bump", vec![7]);
        assert_eq!(resp.status, GatewayStatus::Ok, "exhibit call failed");
        let kinds = telemetry_export::trace_kinds(tid);
        if kinds.contains(&SpanKind::WrongEpochRetry) || done {
            break tid;
        }
    };
    resharder.join().expect("resharder thread");

    println!("\n== one call, admission to state and back ==");
    print!("{}", telemetry_export::render_trace_tree(trace_id));

    println!("\n== cluster-wide span histograms ==");
    telemetry_export::print_metrics_table();

    // Smoke assertions: the tree is non-empty, covers every tier of the
    // pipeline, and is causally ordered.
    let spans = faasm::telemetry::trace_tree(trace_id);
    assert!(!spans.is_empty(), "exhibit trace recorded no spans");
    for (tier, s) in &spans {
        assert_eq!(s.trace_id, trace_id, "[{tier}] span from another trace");
        assert!(s.start_ns <= s.end_ns, "[{tier}] span runs backwards");
    }
    let kinds: Vec<SpanKind> = spans.iter().map(|(_, s)| s.kind).collect();
    for kind in [
        SpanKind::Admission,
        SpanKind::Dispatch,
        SpanKind::WorkerExec,
        SpanKind::StatePush,
        SpanKind::ShardApply,
    ] {
        assert!(kinds.contains(&kind), "trace is missing a {kind:?} span");
    }
    let start_of = |kind: SpanKind| {
        spans
            .iter()
            .filter(|(_, s)| s.kind == kind)
            .map(|(_, s)| s.start_ns)
            .min()
            .unwrap()
    };
    assert!(start_of(SpanKind::Admission) <= start_of(SpanKind::Dispatch));
    assert!(start_of(SpanKind::Dispatch) <= start_of(SpanKind::WorkerExec));
    assert!(start_of(SpanKind::WorkerExec) <= start_of(SpanKind::StatePush));
    println!("\ntrace storm OK");
}
