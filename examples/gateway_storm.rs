//! Gateway storm: thousands of concurrent requests from competing tenants.
//!
//! Three tenants with different fair-share weights and admission policies
//! hammer a 4-host cluster through the ingress tier at once — some through
//! the native API, some through the length-prefixed wire codec. The run
//! prints what the gateway observed: per-tenant outcomes, queueing-delay
//! percentiles, batch occupancy, shed counts and autoscaler actions.
//!
//! ```sh
//! cargo run --release --example gateway_storm
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm::gateway::codec::{self, GatewayRequest};
use faasm::gateway::{AutoscaleConfig, Gateway, GatewayConfig, GatewayStatus, TenantPolicy};
use faasm::{Cluster, ClusterConfig};

const WORK: &str = r#"
    extern int input_size();
    extern int read_call_input(ptr int buf, int len);
    extern void write_call_output(ptr int buf, int len);
    int main() {
        read_call_input((ptr int) 1024, 4);
        ptr int p = (ptr int) 1024;
        int acc = 0;
        for (int i = 0; i < 2000; i = i + 1) {
            acc = acc + i * p[0];
        }
        p[0] = acc;
        write_call_output((ptr int) 1024, 4);
        return 0;
    }
"#;

const TENANTS: [&str; 3] = ["anna", "ben", "carol"];
const REQUESTS_PER_TENANT: usize = 1500;
const CLIENT_THREADS_PER_TENANT: usize = 4;

fn main() {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 4,
        ..ClusterConfig::default()
    }));
    for tenant in TENANTS {
        cluster
            .upload_fl(tenant, "work", WORK, Default::default())
            .unwrap();
    }

    let gateway = Arc::new(Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 4,
            max_batch: 32,
            autoscale: Some(AutoscaleConfig {
                interval: Duration::from_millis(5),
                ..AutoscaleConfig::default()
            }),
            ..GatewayConfig::default()
        },
    ));
    // Anna pays for twice the share; Ben is default; Carol is rate-capped
    // hard enough that much of her storm bounces off admission control.
    gateway.set_tenant_policy("anna", TenantPolicy::with_weight(2));
    gateway.set_tenant_policy(
        "carol",
        TenantPolicy {
            rate_per_sec: Some(500),
            burst: 100,
            queue_cap: 64,
            ..TenantPolicy::default()
        },
    );

    println!(
        "storm: {} tenants x {} requests over {} client threads each",
        TENANTS.len(),
        REQUESTS_PER_TENANT,
        CLIENT_THREADS_PER_TENANT
    );
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for tenant in TENANTS {
        for c in 0..CLIENT_THREADS_PER_TENANT {
            let gw = Arc::clone(&gateway);
            handles.push(std::thread::spawn(move || {
                let n = REQUESTS_PER_TENANT / CLIENT_THREADS_PER_TENANT;
                let mut ok = 0u64;
                let mut failed = 0u64;
                let mut shed = 0u64;
                for i in 0..n {
                    let input = (i as i32 + 1).to_le_bytes().to_vec();
                    // Half the clients speak the wire protocol end to end.
                    let status = if c % 2 == 0 {
                        let req = GatewayRequest {
                            seq: i as u64,
                            tenant: tenant.into(),
                            function: "work".into(),
                            deadline_ms: 2000,
                            trace: faasm::telemetry::TraceCtx::NONE,
                            input,
                        };
                        let frame = codec::encode_frame(&codec::encode_request(&req));
                        let resp_frame = gw.handle_frame(&frame);
                        let (payload, _) = codec::decode_frame(&resp_frame).expect("frame");
                        codec::decode_response(payload).expect("response").status
                    } else {
                        gw.call(tenant, "work", input).status
                    };
                    match status {
                        GatewayStatus::Ok => ok += 1,
                        GatewayStatus::Failed(_) | GatewayStatus::Error(_) => failed += 1,
                        GatewayStatus::Overloaded | GatewayStatus::Expired => shed += 1,
                    }
                }
                (tenant, ok, failed, shed)
            }));
        }
    }

    let mut per_tenant: std::collections::BTreeMap<&str, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for h in handles {
        let (tenant, ok, failed, shed) = h.join().unwrap();
        let e = per_tenant.entry(tenant).or_default();
        e.0 += ok;
        e.1 += failed;
        e.2 += shed;
    }
    let elapsed = t0.elapsed();

    println!("\n== outcomes ==");
    for (tenant, (ok, failed, shed)) in &per_tenant {
        println!("{tenant:>8}: {ok:>5} ok  {failed:>3} failed  {shed:>5} shed");
    }

    let m = gateway.metrics();
    let total_ok: u64 = per_tenant.values().map(|v| v.0).sum();
    println!("\n== gateway ==");
    println!("wall time          {:.2?}", elapsed);
    println!(
        "sustained rate     {:.0} req/s completed",
        total_ok as f64 / elapsed.as_secs_f64()
    );
    println!(
        "queueing delay     p50 {:.2} ms   p99 {:.2} ms",
        m.queue_delay_p50_ns() as f64 / 1e6,
        m.queue_delay_p99_ns() as f64 / 1e6
    );
    println!(
        "batch occupancy    {:.2} requests/batch",
        m.batch_occupancy()
    );
    println!(
        "shed               {} queue-full, {} rate-limited, {} expired",
        m.shed_overloaded(),
        m.shed_ratelimited(),
        m.shed_expired()
    );
    println!(
        "autoscaler         {} pre-warmed, {} retired",
        m.prewarmed(),
        m.retired()
    );
    println!(
        "cluster            {} calls, {} forwarded, {:.4} GB-s billable",
        cluster.total_calls(),
        cluster
            .instances()
            .iter()
            .map(|i| i.metrics().forwarded())
            .sum::<u64>(),
        cluster.billable_gb_seconds()
    );
}
