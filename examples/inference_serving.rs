//! Machine-learning inference serving — the paper's §6.3 workload.
//!
//! Serves mobilenet-lite classifications, comparing warm-path latency with
//! cold starts the way Fig. 7 does, on both FAASM and the container
//! baseline.
//!
//! Run with: `cargo run --release --example inference_serving`

use std::time::Instant;

use faasm::baseline::BaselinePlatform;
use faasm::core::Cluster;
use faasm::workloads::data::synth_images;
use faasm::workloads::inference;

fn percentile(mut xs: Vec<u128>, p: f64) -> u128 {
    xs.sort_unstable();
    xs[((xs.len() - 1) as f64 * p) as usize]
}

fn main() {
    let requests = 60;
    let images = synth_images(requests, inference::SIDE, 7);

    // FAASM: every request hits a warm Faaslet or a microsecond
    // Proto-Faaslet restore.
    let cluster = Cluster::new(2);
    inference::setup_faasm(&cluster, "serve", 9);
    let mut faasm_lat = Vec::new();
    for img in &images {
        let t0 = Instant::now();
        let r = cluster.invoke("serve", "infer", img.clone());
        assert_eq!(r.return_code(), 0);
        faasm_lat.push(t0.elapsed().as_micros());
    }

    // Baseline: evict containers every few requests to model a 20 %
    // cold-start ratio (each cold start re-materialises the image).
    let platform = BaselinePlatform::new(2);
    inference::setup_baseline(&platform, "serve", 9);
    let mut container_lat = Vec::new();
    for (i, img) in images.iter().enumerate() {
        if i % 5 == 0 {
            platform.evict_all();
        }
        let t0 = Instant::now();
        let r = platform.invoke("serve", "infer", img.clone());
        assert_eq!(r.return_code(), 0);
        container_lat.push(t0.elapsed().as_micros());
    }

    println!("{requests} requests, latencies in µs (Fig. 7 shape):");
    println!(
        "  faasm:      p50 {:>7}  p99 {:>7}",
        percentile(faasm_lat.clone(), 0.5),
        percentile(faasm_lat, 0.99),
    );
    println!(
        "  containers: p50 {:>7}  p99 {:>7}   (20% cold starts)",
        percentile(container_lat.clone(), 0.5),
        percentile(container_lat, 0.99),
    );
}
