//! Live resharding smoke: a workload keeps writing while a state shard
//! joins (and another retires), and every acknowledged write survives.
//!
//! Run with `cargo run --release --example reshard_live`. Exits non-zero
//! (panics) if any acknowledged write is lost, any read sees a wrong
//! value, or the tier stops serving during the migration.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm::core::{Cluster, ClusterConfig};
use faasm::kvs::SharedKv;

const WRITERS: usize = 4;

fn main() {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 2,
        state_shards: 2,
        ..ClusterConfig::default()
    }));
    println!(
        "cluster up: {} hosts, {} state shards (epoch {})",
        cluster.instances().len(),
        cluster.state_shard_count(),
        cluster.state_routing().epoch(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..WRITERS as u64)
        .map(|w| {
            let kv: SharedKv = Arc::clone(cluster.kv());
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("live:{w}:{n}");
                    kv.set(&key, n.to_le_bytes().to_vec()).expect("acked write");
                    // Immediately read an earlier acked key back: a
                    // wrong-shard or lost read fails the smoke.
                    let probe = n / 2;
                    let got = kv.get(&format!("live:{w}:{probe}")).expect("probe");
                    assert_eq!(got, Some(probe.to_le_bytes().to_vec()), "live:{w}:{probe}");
                    ops.fetch_add(2, Ordering::Relaxed);
                    n += 1;
                }
                n
            })
        })
        .collect();

    let window = |label: &str, dur: Duration| {
        let t0 = Instant::now();
        let before = ops.load(Ordering::Relaxed);
        std::thread::sleep(dur);
        let rate = (ops.load(Ordering::Relaxed) - before) as f64 / t0.elapsed().as_secs_f64();
        println!("{label}: {rate:.0} ops/s");
        rate
    };

    let before = window("before reshard", Duration::from_millis(400));

    let t0 = Instant::now();
    let grow = {
        let cluster = Arc::clone(&cluster);
        std::thread::spawn(move || cluster.add_state_shard().expect("grow"))
    };
    let during = window("during shard join", Duration::from_millis(400));
    let count = grow.join().unwrap();
    println!(
        "shard joined in {:.1} ms: {} shards at epoch {}",
        t0.elapsed().as_secs_f64() * 1e3,
        count,
        cluster.state_routing().epoch(),
    );

    let after = window("after reshard", Duration::from_millis(400));

    let retired = cluster.remove_state_shard().expect("shrink");
    println!(
        "shard retired: {} shards at epoch {}",
        retired,
        cluster.state_routing().epoch(),
    );
    window("after retire", Duration::from_millis(300));

    stop.store(true, Ordering::Relaxed);
    let written: Vec<u64> = writers.into_iter().map(|w| w.join().unwrap()).collect();

    // Every acknowledged write of every writer is intact, at full scan.
    for (w, n) in written.iter().enumerate() {
        for i in 0..*n {
            let got = cluster.kv().get(&format!("live:{w}:{i}")).expect("scan");
            assert_eq!(got, Some(i.to_le_bytes().to_vec()), "lost live:{w}:{i}");
        }
    }
    let total: u64 = written.iter().sum();
    assert!(during > 0.0, "service must continue during migration");
    println!(
        "OK: {total} acknowledged writes verified across grow+shrink \
         (throughput {before:.0} → {during:.0} → {after:.0} ops/s)"
    );
}
