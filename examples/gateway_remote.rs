//! Remote ingress: clients reach the gateway over the fabric.
//!
//! A `GatewayServer` binds the ingress tier to its own fabric host; client
//! hosts connect with `GatewayClient` and multiplex async submit/wait
//! tickets over byte-stream connections (MTU-fragmented frames, reassembled
//! per connection). One hostile connection sends garbage mid-run and is
//! dropped without disturbing anyone else. The run prints per-client
//! outcomes, gateway metrics and the *measured* ingress bytes that crossed
//! the fabric.
//!
//! ```sh
//! cargo run --release --example gateway_remote
//! ```

use std::sync::Arc;
use std::time::Instant;

use faasm::gateway::codec;
use faasm::net::stream::StreamConn;
use faasm::{
    Cluster, ClusterConfig, Gateway, GatewayClient, GatewayConfig, GatewayServer, GatewayStatus,
};

const WORK: &str = r#"
    extern int input_size();
    extern int read_call_input(ptr int buf, int len);
    extern void write_call_output(ptr int buf, int len);
    int main() {
        read_call_input((ptr int) 1024, 4);
        ptr int p = (ptr int) 1024;
        int acc = 0;
        for (int i = 0; i < 1000; i = i + 1) {
            acc = acc + i * p[0];
        }
        p[0] = acc;
        write_call_output((ptr int) 1024, 4);
        return 0;
    }
"#;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 250;

fn main() {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 4,
        ..ClusterConfig::default()
    }));
    cluster
        .upload_fl("remote", "work", WORK, Default::default())
        .unwrap();

    let gateway = Arc::new(Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 4,
            max_batch: 32,
            ..GatewayConfig::default()
        },
    ));
    // The ingress tier joins the fabric as a host of its own.
    let server = GatewayServer::start(Arc::clone(&gateway), cluster.add_fabric_host());
    println!(
        "gateway server on {} — {} clients x {} requests over the fabric",
        server.host_id(),
        CLIENTS,
        REQUESTS_PER_CLIENT
    );

    let ingress_before = cluster.fabric().stats().snapshot();
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let client = GatewayClient::connect(cluster.add_fabric_host(), server.host_id())
            .expect("connect to ingress");
        handles.push(std::thread::spawn(move || {
            // Async pipeline: a window of submits in flight, waits trailing.
            let mut ok = 0u64;
            let mut other = 0u64;
            let mut window: Vec<u64> = Vec::new();
            for i in 0..REQUESTS_PER_CLIENT {
                let input = (i as i32 + 1).to_le_bytes().to_vec();
                window.push(client.submit("remote", "work", input).unwrap());
                if window.len() >= 16 {
                    for t in window.drain(..) {
                        match client.wait(t).status {
                            GatewayStatus::Ok => ok += 1,
                            _ => other += 1,
                        }
                    }
                }
            }
            for t in window.drain(..) {
                match client.wait(t).status {
                    GatewayStatus::Ok => ok += 1,
                    _ => other += 1,
                }
            }
            (c, ok, other)
        }));
    }

    // Meanwhile, a hostile connection pokes the server with garbage.
    let hostile_nic = cluster.add_fabric_host();
    let hostile = StreamConn::open(hostile_nic.clone(), server.host_id(), 16).unwrap();
    hostile
        .send(&codec::encode_frame(b"not a gateway request"))
        .unwrap();

    for h in handles {
        let (c, ok, other) = h.join().unwrap();
        println!("client {c}: {ok} ok, {other} other");
        assert_eq!(other, 0, "well-formed clients must be undisturbed");
    }
    let elapsed = t0.elapsed();
    let ingress = cluster.fabric().stats().snapshot().delta(&ingress_before);

    let m = gateway.metrics();
    println!("\n== over-fabric ingress ==");
    println!("wall time            {elapsed:.2?}");
    println!(
        "sustained rate       {:.0} req/s completed",
        (CLIENTS * REQUESTS_PER_CLIENT) as f64 / elapsed.as_secs_f64()
    );
    println!(
        "queueing delay       p50 {:.2} ms   p99 {:.2} ms",
        m.queue_delay_p50_ns() as f64 / 1e6,
        m.queue_delay_p99_ns() as f64 / 1e6
    );
    println!(
        "server               {} frames in, {} hostile connection(s) dropped",
        server.frames_received(),
        server.connections_dropped()
    );
    println!(
        "fabric traffic       {:.2} MB moved ({} msgs) — measured, not modelled",
        ingress.total_bytes() as f64 / 1e6,
        ingress.msgs_sent
    );
    assert!(
        server.connections_dropped() >= 1,
        "the hostile connection must have been dropped"
    );
    println!("\nremote ingress OK");
}
