//! Multi-tenant isolation: the guarantees of §3 and §5.2 in action.
//!
//! Three demonstrations:
//! 1. SFI: a guest that walks past its memory traps; others are unaffected.
//! 2. Filesystem capabilities: tenants cannot read each other's files.
//! 3. Reset-after-call: a Faaslet that stashes a secret in private memory
//!    leaks nothing to the next call, because it is restored from its
//!    Proto-Faaslet.
//!
//! Run with: `cargo run --example multi_tenant_isolation`

use faasm::core::{CallStatus, Cluster, UploadOptions};

fn main() {
    let cluster = Cluster::new(1);

    // 1. Out-of-bounds access traps cleanly.
    cluster
        .upload_fl(
            "tenant-a",
            "wild",
            r#"
            int main() {
                ptr int p = (ptr int) 0;
                int acc = 0;
                // Walk far past the memory limit.
                for (int i = 0; i < 100000000; i = i + 65536) {
                    acc = acc + p[i];
                }
                return acc;
            }
            "#,
            UploadOptions::default(),
        )
        .unwrap();
    let r = cluster.invoke("tenant-a", "wild", vec![]);
    match &r.status {
        CallStatus::Error(e) => println!("1. OOB access trapped: {e}"),
        other => panic!("expected a trap, got {other:?}"),
    }

    // 2. Per-tenant filesystems.
    cluster
        .object_store()
        .put("user:tenant-a/secret.txt", b"a's data".to_vec());
    let probe = r#"
        extern int open(ptr int path, int len, int flags);
        int main() {
            ptr int p = (ptr int) 64;
            p[0] = 0x72636573; // "secr"
            p[1] = 0x742e7465; // "et.t"
            p[2] = 0x7478;     // "xt"
            return open((ptr int) 64, 10, 1);
        }
    "#;
    cluster
        .upload_fl("tenant-a", "probe", probe, UploadOptions::default())
        .unwrap();
    cluster
        .upload_fl("tenant-b", "probe", probe, UploadOptions::default())
        .unwrap();
    let ra = cluster.invoke("tenant-a", "probe", vec![]);
    let rb = cluster.invoke("tenant-b", "probe", vec![]);
    println!(
        "2. open(\"secret.txt\"): tenant-a fd={} (own file), tenant-b fd={} (-1 = denied)",
        ra.return_code(),
        rb.return_code()
    );
    assert!(ra.return_code() >= 3 && rb.return_code() == -1);

    // 3. Reset-after-call wipes private memory between tenants' requests.
    cluster
        .upload_fl(
            "shared-fn",
            "stash",
            r#"
            extern int input_size();
            extern int read_call_input(ptr int buf, int len);
            extern void write_call_output(ptr int buf, int len);
            int main() {
                // Leak whatever a previous call left at the stash address,
                // then store this call's input there.
                write_call_output((ptr int) 4096, 8);
                read_call_input((ptr int) 4096, input_size());
                return 0;
            }
            "#,
            UploadOptions::default(),
        )
        .unwrap();
    let r1 = cluster.invoke("shared-fn", "stash", b"SECRET!!".to_vec());
    let r2 = cluster.invoke("shared-fn", "stash", b"curious?".to_vec());
    println!(
        "3. second call read stash = {:?} (all zero: the Proto-Faaslet reset wiped it)",
        r2.output
    );
    assert_eq!(r1.output, vec![0u8; 8]);
    assert_eq!(r2.output, vec![0u8; 8], "no cross-call leakage");
    println!("all isolation properties hold");
}
