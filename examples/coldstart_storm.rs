//! Cold-start storm: 0→N scale-up through snapshot distribution.
//!
//! One call on one host captures a Proto-Faaslet, chunks it into
//! content-addressed pieces and publishes them through the state tier.
//! The manifest is then pre-staged to every other host over the bus, so
//! when a barrier-released storm of concurrent calls hits the whole
//! cluster at once, every host after the first restores copy-on-write
//! from warm local bytes instead of cold-starting. The run asserts zero
//! failed calls, exactly one capture cluster-wide, and a warm-restore
//! rate of at least 90%.
//!
//! ```sh
//! cargo run --release --example coldstart_storm
//! ```

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use faasm::core::ChainRouter;
use faasm::{CallStatus, Cluster, ClusterConfig, UploadOptions};

/// Init dirties three 64 KiB pages, so the proto carries real content and
/// a cold start pays a real initialisation; `main` just echoes.
const WORK: &str = r#"
    extern int input_size();
    extern int read_call_input(ptr int buf, int len);
    extern void write_call_output(ptr int buf, int len);
    int init() {
        ptr int a = (ptr int) 1024;
        for (int i = 0; i < 8000; i = i + 1) { a[i] = 7 + i; }
        ptr int b = (ptr int) 65536;
        for (int i = 0; i < 8000; i = i + 1) { b[i] = i * 3; }
        ptr int c = (ptr int) 131072;
        for (int i = 0; i < 8000; i = i + 1) { c[i] = i * 5; }
        return 0;
    }
    int main() {
        int n = input_size();
        read_call_input((ptr int) 512, n);
        write_call_output((ptr int) 512, n);
        return 0;
    }
"#;

const HOSTS: usize = 6;
const THREADS_PER_HOST: usize = 3;
const CALLS_PER_THREAD: usize = 20;

fn main() {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: HOSTS,
        ..ClusterConfig::default()
    }));
    cluster
        .upload_fl(
            "demo",
            "work",
            WORK,
            UploadOptions {
                init: Some("init".into()),
                ..UploadOptions::default()
            },
        )
        .unwrap();

    // One publisher call: capture, chunk, publish through the tier.
    let t0 = Instant::now();
    let r = cluster.instances()[0].invoke_local("demo", "work", vec![0]);
    assert_eq!(r.status, CallStatus::Success);
    println!(
        "publisher cold start on host 0: {:?} (capture + chunk + publish)",
        t0.elapsed()
    );

    // Pre-stage the manifest to every other host and wait for the pushes
    // to land — each target pulls the chunks into its snapshot cache and
    // installs the proto before any call arrives.
    for inst in &cluster.instances()[1..] {
        cluster.instances()[0].push_prestage("demo", "work", inst.host_id());
    }
    for inst in &cluster.instances()[1..] {
        for _ in 0..2_000 {
            if inst.has_proto("demo", "work") {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(inst.has_proto("demo", "work"), "pre-stage never landed");
    }
    println!("pre-staged {} hosts over the bus", HOSTS - 1);

    // Barrier-release the storm across every host at once.
    let barrier = Arc::new(Barrier::new(HOSTS * THREADS_PER_HOST));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..HOSTS * THREADS_PER_HOST)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let inst = Arc::clone(&cluster.instances()[t % HOSTS]);
                barrier.wait();
                let mut failed = 0usize;
                for i in 0..CALLS_PER_THREAD {
                    let id = inst.submit_placed("demo", "work", vec![i as u8]);
                    if inst.await_call(id).status != CallStatus::Success {
                        failed += 1;
                    }
                }
                failed
            })
        })
        .collect();
    let failed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let storm = t0.elapsed();

    let (mut captures, mut restores, mut warm) = (0u64, 0u64, 0u64);
    println!("\nper-host starts after the storm:");
    for (i, inst) in cluster.instances().iter().enumerate() {
        let m = inst.metrics();
        println!(
            "  host {i}: {} cold, {} proto-restores, {} warm",
            m.cold_starts(),
            m.proto_restores(),
            m.warm_starts()
        );
        captures += m.cold_starts();
        restores += m.proto_restores();
        warm += m.warm_starts();
    }
    let starts = captures + restores + warm;
    let warm_rate = (starts - captures) as f64 / starts.max(1) as f64;
    let calls = HOSTS * THREADS_PER_HOST * CALLS_PER_THREAD;
    println!(
        "\nstorm: {calls} calls over {HOSTS} hosts in {storm:?} — {failed} failed, \
         {captures} capture(s), {restores} restores, {warm} warm ({:.1}% warm-restore rate)",
        warm_rate * 100.0
    );

    assert_eq!(failed, 0, "storm dropped calls");
    assert_eq!(captures, 1, "exactly one capture cluster-wide");
    assert!(
        warm_rate >= 0.9,
        "warm-restore rate {:.1}% below 90%",
        warm_rate * 100.0
    );
    println!("storm absorbed: one capture, everyone else restored warm");
}
