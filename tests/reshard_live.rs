//! Live resharding of the global state tier, end to end: shards join and
//! retire under a running chained-state workload with no lost keys, no
//! lost acknowledged writes and no wrong-shard reads; requests hitting a
//! non-owner mid-migration are redirected via `WrongEpoch` and retried.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use faasm::core::{Cluster, ClusterConfig, NativeApi, NativeGuest};
use faasm::kvs::{
    reshard, KvBackend, KvClient, KvServer, KvStore, RoutingCell, RoutingTable, ShardRouting,
    ShardedKvClient, SharedKv,
};
use faasm::mem::SharedRegion;
use faasm::net::Fabric;
use faasm::state::StateEntry;

/// Keys the chained counter workload increments.
const COUNTER_KEYS: usize = 8;

/// A guest incrementing a cross-host counter under the global write lock:
/// the canonical stateful function, sensitive to every reshard failure
/// mode (lost values, lost lock owners, wrong-shard reads, stale pulls).
fn bump_guest() -> Arc<dyn NativeGuest> {
    Arc::new(|api: &mut NativeApi<'_>| {
        let idx = u32::from_le_bytes(api.input()[..4].try_into().expect("4-byte input"));
        let key = format!("chain:{idx}");
        let entry = api.state(&key, 8).map_err(faasm_fvm::Trap::host)?;
        entry.lock_global_write().map_err(faasm_fvm::Trap::host)?;
        // Authoritative read under the lock: drop the local replica first.
        entry.invalidate();
        let mut buf = [0u8; 8];
        entry.read(0, &mut buf).map_err(faasm_fvm::Trap::host)?;
        let v = u64::from_le_bytes(buf) + 1;
        entry
            .write(0, &v.to_le_bytes())
            .map_err(faasm_fvm::Trap::host)?;
        entry.push_full().map_err(faasm_fvm::Trap::host)?;
        entry.unlock_global_write().map_err(faasm_fvm::Trap::host)?;
        api.write_output(&v.to_le_bytes());
        Ok(0)
    })
}

/// A guest that chains to `bump` and relays its output — the workload's
/// calls cross the fabric, the scheduler and the state tier at once.
fn relay_guest() -> Arc<dyn NativeGuest> {
    Arc::new(|api: &mut NativeApi<'_>| {
        let input = api.input().to_vec();
        let id = api.chain("bump", input);
        let rc = api.await_call(id);
        if rc != 0 {
            return Ok(rc);
        }
        let out = api.call_output(id).map(<[u8]>::to_vec).unwrap_or_default();
        api.write_output(&out);
        Ok(0)
    })
}

#[test]
fn adding_and_removing_shards_under_chained_state_workload_loses_nothing() {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 2,
        state_shards: 2,
        ..ClusterConfig::default()
    }));
    cluster.register_native("mig", "bump", bump_guest(), false);
    cluster.register_native("mig", "relay", relay_guest(), false);

    let stop = Arc::new(AtomicBool::new(false));

    // Driver-side writes: every `set` that returns Ok is an acknowledged
    // write the tier must never lose, whatever epoch it lands in.
    let acked = Arc::new(AtomicU64::new(0));
    let writer = {
        let kv: SharedKv = Arc::clone(cluster.kv());
        let stop = Arc::clone(&stop);
        let acked = Arc::clone(&acked);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                kv.set(&format!("live:{n}"), n.to_le_bytes().to_vec())
                    .expect("acknowledged write");
                acked.store(n + 1, Ordering::Relaxed);
                // Read-back of an older acked key mid-stream: a wrong-shard
                // read would surface here as a miss or a stale value.
                let probe = n / 2;
                let got = kv.get(&format!("live:{probe}")).expect("probe read");
                assert_eq!(
                    got,
                    Some(probe.to_le_bytes().to_vec()),
                    "acked key live:{probe} must stay readable during resharding"
                );
                n += 1;
            }
        })
    };

    // Chained counter workload across both hosts. Each caller owns a
    // disjoint key set: the global write lock is re-entrant per owner
    // token and both of a host's workers share the instance's token, so
    // two concurrent increments of one key on one host could legally
    // interleave — disjoint keys keep the expected counts exact while
    // still exercising cross-host movement and migration.
    let callers: Vec<_> = (0..2)
        .map(|worker: u32| {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut successes = vec![0u64; COUNTER_KEYS];
                let mut turn = worker;
                while !stop.load(Ordering::Relaxed) {
                    let idx = (turn * 2 + worker) % COUNTER_KEYS as u32;
                    turn += 1;
                    let r = cluster.invoke("mig", "relay", idx.to_le_bytes().to_vec());
                    assert_eq!(
                        r.return_code(),
                        0,
                        "chained call must survive resharding: {:?}",
                        r.status
                    );
                    successes[idx as usize] += 1;
                }
                successes
            })
        })
        .collect();

    // Let the workload warm up, then reshard live: grow twice, shrink once.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(cluster.add_state_shard().unwrap(), 3);
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(cluster.add_state_shard().unwrap(), 4);
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(cluster.remove_state_shard().unwrap(), 3);
    std::thread::sleep(Duration::from_millis(150));

    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    let mut successes = [0u64; COUNTER_KEYS];
    for caller in callers {
        for (idx, n) in caller.join().unwrap().into_iter().enumerate() {
            successes[idx] += n;
        }
    }

    assert_eq!(cluster.state_shard_count(), 3);

    // Every acknowledged driver write is still readable with its value.
    let total_acked = acked.load(Ordering::Relaxed);
    assert!(total_acked > 0, "the writer made progress");
    for n in 0..total_acked {
        assert_eq!(
            cluster.kv().get(&format!("live:{n}")).unwrap(),
            Some(n.to_le_bytes().to_vec()),
            "acked write live:{n} lost across resharding"
        );
    }

    // Every successful chained increment is in the global counters: the
    // locks serialised them across hosts and migrations, so the counts are
    // exact, not merely bounded.
    for (idx, expect) in successes.iter().enumerate() {
        assert!(*expect > 0, "workload exercised counter {idx}");
        let global = cluster
            .kv()
            .get(&format!("chain:{idx}"))
            .unwrap()
            .unwrap_or_else(|| panic!("counter chain:{idx} vanished"));
        let v = u64::from_le_bytes(global[..8].try_into().unwrap());
        assert_eq!(
            v, *expect,
            "counter chain:{idx}: {v} increments survived, {expect} acknowledged"
        );
    }

    // The keys really spread over the post-reshard tier (each shard holds
    // only what it owns — checked exhaustively at the kvs layer; here we
    // check the migration actually moved data onto the joined shard).
    let shards = cluster.state_shards();
    assert_eq!(shards.len(), 3);
    let occupied = shards.iter().filter(|s| s.store().key_count() > 0).count();
    assert!(
        occupied >= 2,
        "keys must spread over the reshaped tier, got {occupied} occupied shards"
    );
    drop(shards);

    // And the tier redirected rather than failed at least once: with
    // hundreds of keyed ops in flight across two grows and a shrink, some
    // op always lands on a frozen or stale shard.
    let wrong_epoch: u64 = cluster
        .state_shard_stats()
        .unwrap()
        .iter()
        .map(|s| s.wrong_epoch_redirects)
        .sum();
    assert!(
        wrong_epoch > 0,
        "expected at least one WrongEpoch redirect during live resharding"
    );
}

/// The state layer's batched pull/push retries per key without re-taking
/// the chunk-table lock across the wire: while a push is parked in the
/// `WrongEpoch` handshake (its key frozen mid-migration), operations on
/// other chunks of the same entry proceed at memory speed.
#[test]
fn state_entry_push_waits_out_migration_without_blocking_other_chunks() {
    let fabric = Fabric::new();
    let servers: Vec<KvServer> = (0..2)
        .map(|i| {
            KvServer::start_routed(
                fabric.add_host(),
                2,
                Arc::new(KvStore::new()),
                ShardRouting::new(1, 2, i),
            )
        })
        .collect();
    let cell = RoutingCell::new(RoutingTable::new(
        1,
        servers.iter().map(KvServer::host_id).collect(),
    ));
    let kv: SharedKv = Arc::new(ShardedKvClient::connect(
        fabric.add_host(),
        Arc::clone(&cell),
    ));

    // A key that moves onto the third shard when it joins.
    let key = (0..10_000)
        .map(|i| format!("frozen:{i}"))
        .find(|k| faasm::kvs::shard_index_for(k, 3) == 2)
        .expect("some key moves to the new shard");
    let entry =
        Arc::new(StateEntry::new(&key, 64, SharedRegion::new(64), Arc::clone(&kv), 16).unwrap());
    entry.write(0, &[1u8; 16]).unwrap();
    entry.push().unwrap();

    // Freeze the donors by hand (Migrate without commit): the key is now
    // mid-migration and every op on it answers WrongEpoch.
    let coord = fabric.add_host();
    let control = |host| KvClient::connect_at(coord.clone(), host, faasm::kvs::EPOCH_ANY, 0);
    let mut exported = Vec::new();
    for server in &servers {
        exported.extend(control(server.host_id()).migrate(2, 3).unwrap());
    }

    // A push of chunk 0 parks in the epoch handshake…
    entry.write(0, &[2u8; 16]).unwrap();
    let pusher = {
        let entry = Arc::clone(&entry);
        std::thread::spawn(move || entry.push())
    };
    std::thread::sleep(Duration::from_millis(30));
    assert!(!pusher.is_finished(), "push must wait out the freeze");

    // …while the chunk table stays free: writes and dirty queries on other
    // chunks of the same entry complete immediately.
    let t0 = std::time::Instant::now();
    entry.write(48, &[3u8; 16]).unwrap();
    assert!(entry.dirty_chunks() >= 1);
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "chunk-table ops stalled {:?} behind a parked push",
        t0.elapsed()
    );

    // Complete the migration; the parked push lands on the new owner.
    let newcomer = KvServer::start_routed(
        fabric.add_host(),
        2,
        Arc::new(KvStore::new()),
        ShardRouting::new(2, 3, 2),
    );
    control(newcomer.host_id()).handoff(exported).unwrap();
    let mut hosts: Vec<_> = servers.iter().map(KvServer::host_id).collect();
    hosts.push(newcomer.host_id());
    for &host in &hosts {
        control(host).epoch_commit(2, 3, &[], &[]).unwrap();
    }
    cell.store(RoutingTable::new(2, hosts));

    pusher.join().unwrap().unwrap();
    assert_eq!(
        newcomer.store().get_range(&key, 0, 16),
        Some(vec![2u8; 16]),
        "the parked push must land on the key's new owner"
    );
    // The later write flushes cleanly through the new table too.
    entry.push().unwrap();
    assert_eq!(
        newcomer.store().get_range(&key, 48, 16),
        Some(vec![3u8; 16])
    );
}

/// The autoscaler's tier half: sustained shard load (KVS ops per shard per
/// tick above `tier_ops_high`) makes the gateway grow the state tier live,
/// up to `tier_max_shards`.
#[test]
fn gateway_autoscaler_adds_state_shards_under_tier_load() {
    use faasm::gateway::{AutoscaleConfig, Gateway, GatewayConfig};

    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 1,
        state_shards: 1,
        ..ClusterConfig::default()
    }));
    let gateway = Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            autoscale: Some(AutoscaleConfig {
                interval: Duration::from_millis(20),
                tier_ops_high: Some(200),
                tier_max_shards: 3,
                ..AutoscaleConfig::default()
            }),
            ..GatewayConfig::default()
        },
    );
    assert_eq!(cluster.state_shard_count(), 1);

    // Hammer the tier from the driver side; the autoscaler sees the op
    // deltas through Request::Stats and grows the tier mid-storm.
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..2)
        .map(|worker: u64| {
            let kv: SharedKv = Arc::clone(cluster.kv());
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    kv.set(&format!("storm:{worker}:{n}"), vec![0u8; 64])
                        .unwrap();
                    n += 1;
                }
                n
            })
        })
        .collect();

    let grown = (0..250).find(|_| {
        std::thread::sleep(Duration::from_millis(20));
        cluster.state_shard_count() >= 2
    });
    stop.store(true, Ordering::Relaxed);
    let written: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        grown.is_some(),
        "sustained tier load must add a shard ({written} ops driven)"
    );
    assert!(gateway.metrics().tier_scaleups() >= 1);
    assert!(cluster.state_shard_count() <= 3, "hard cap respected");
    // The storm's acknowledged writes all survived the mid-storm reshard.
    for worker in 0..2u64 {
        for n in (0..written / 4).step_by(97) {
            let key = format!("storm:{worker}:{n}");
            if cluster.kv().exists(&key).unwrap() {
                assert_eq!(cluster.kv().get(&key).unwrap(), Some(vec![0u8; 64]));
            }
        }
    }
}

#[test]
fn coordinator_grow_shrink_roundtrip_preserves_a_cluster_scale_dataset() {
    // A heavier grow→shrink→grow sequence at the kvs layer: the tier ends
    // where it started (count-wise) with every key intact and placed.
    let fabric = Fabric::new();
    let servers: Vec<KvServer> = (0..2)
        .map(|i| {
            KvServer::start_routed(
                fabric.add_host(),
                2,
                Arc::new(KvStore::new()),
                ShardRouting::new(1, 2, i),
            )
        })
        .collect();
    let cell = RoutingCell::new(RoutingTable::new(
        1,
        servers.iter().map(KvServer::host_id).collect(),
    ));
    let client = ShardedKvClient::connect(fabric.add_host(), Arc::clone(&cell));
    for i in 0..256u32 {
        client
            .set(&format!("ds:{i}"), i.to_le_bytes().to_vec())
            .unwrap();
    }
    let coord = fabric.add_host();

    let joiner = KvServer::start_routed(
        fabric.add_host(),
        2,
        Arc::new(KvStore::new()),
        ShardRouting::new(2, 3, 2),
    );
    reshard::grow(&coord, &cell, joiner.host_id()).unwrap();
    let (_, retired) = reshard::shrink(&coord, &cell).unwrap();
    assert_eq!(retired, joiner.host_id());
    for i in 0..256u32 {
        assert_eq!(
            client.get(&format!("ds:{i}")).unwrap(),
            Some(i.to_le_bytes().to_vec()),
            "ds:{i} after grow→shrink"
        );
    }
    assert_eq!(cell.epoch(), 3, "two reshards, two epoch bumps");
}
