//! Failover of the replicated state tier, end to end: a primary shard is
//! killed mid-write-storm and the tier promotes its backups without losing
//! a single acknowledged write, without dropping a lock owner and with a
//! sub-second blackout for the dead slot's keys.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm::core::{Cluster, ClusterConfig, NativeApi, NativeGuest};
use faasm::kvs::{KvBackend, LockMode, ShardedKvClient, SharedKv};

/// Keys the chained counter workload increments.
const COUNTER_KEYS: usize = 8;

/// The canonical stateful guest: increment a cross-host counter under the
/// global write lock. Every failover failure mode surfaces here — a lost
/// value, a lost lock owner, a stale read off a promoted backup.
fn bump_guest() -> Arc<dyn NativeGuest> {
    Arc::new(|api: &mut NativeApi<'_>| {
        let idx = u32::from_le_bytes(api.input()[..4].try_into().expect("4-byte input"));
        let key = format!("chain:{idx}");
        let entry = api.state(&key, 8).map_err(faasm_fvm::Trap::host)?;
        entry.lock_global_write().map_err(faasm_fvm::Trap::host)?;
        entry.invalidate();
        let mut buf = [0u8; 8];
        entry.read(0, &mut buf).map_err(faasm_fvm::Trap::host)?;
        let v = u64::from_le_bytes(buf) + 1;
        entry
            .write(0, &v.to_le_bytes())
            .map_err(faasm_fvm::Trap::host)?;
        entry.push_full().map_err(faasm_fvm::Trap::host)?;
        entry.unlock_global_write().map_err(faasm_fvm::Trap::host)?;
        api.write_output(&v.to_le_bytes());
        Ok(0)
    })
}

/// Kill a primary shard while driver writes and chained lock-protected
/// increments are in flight at replication factor 2. The liveness monitor
/// must detect the dead slot and drive the failover epoch on its own; the
/// tier must lose nothing it acknowledged.
#[test]
fn killing_a_primary_mid_write_storm_loses_no_acked_writes() {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 2,
        state_shards: 3,
        replication_factor: 2,
        ..ClusterConfig::default()
    }));
    cluster.register_native("ha", "bump", bump_guest(), false);

    let stop = Arc::new(AtomicBool::new(false));

    // Driver-side write storm: every `set` that returns Ok is an
    // acknowledged write — quorum-replicated, so the kill must not lose it.
    let acked = Arc::new(AtomicU64::new(0));
    let writer = {
        let kv: SharedKv = Arc::clone(cluster.kv());
        let stop = Arc::clone(&stop);
        let acked = Arc::clone(&acked);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                kv.set(&format!("storm:{n}"), n.to_le_bytes().to_vec())
                    .expect("acknowledged write");
                acked.store(n + 1, Ordering::Relaxed);
                n += 1;
            }
        })
    };

    // Chained counter workload: each worker owns a disjoint key set so the
    // expected counts stay exact (the write lock is re-entrant per owner
    // token — see reshard_live.rs for the full rationale).
    let callers: Vec<_> = (0..2)
        .map(|worker: u32| {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut successes = vec![0u64; COUNTER_KEYS];
                let mut turn = worker;
                while !stop.load(Ordering::Relaxed) {
                    let idx = (turn * 2 + worker) % COUNTER_KEYS as u32;
                    turn += 1;
                    let r = cluster.invoke("ha", "bump", idx.to_le_bytes().to_vec());
                    assert_eq!(
                        r.return_code(),
                        0,
                        "chained call must survive failover: {:?}",
                        r.status
                    );
                    successes[idx as usize] += 1;
                }
                successes
            })
        })
        .collect();

    // Warm up, then kill a slot abruptly. Nothing updates the routing
    // table here — detection is the liveness monitor's job.
    std::thread::sleep(Duration::from_millis(200));
    let victim = 1usize;
    let table = cluster.state_routing().load();
    let blackout_key = (0..10_000)
        .map(|i| format!("blackout:{i}"))
        .find(|k| table.primary_for(k) == victim)
        .expect("some key is primaried on the victim slot");
    drop(table);
    cluster.kill_state_shard(victim);

    // A write primaried on the dead slot parks until the failover epoch
    // publishes; its wait is the blackout the tier's keys observe.
    let t0 = Instant::now();
    cluster
        .kv()
        .set(&blackout_key, b"survived".to_vec())
        .expect("write must succeed once the backup is promoted");
    let blackout = t0.elapsed();
    assert!(
        blackout < Duration::from_secs(1),
        "failover blackout {blackout:?} must stay sub-second"
    );

    // The monitor tombstoned the slot at a bumped epoch.
    let table = cluster.state_routing().load();
    assert!(table.dead.contains(&victim), "victim slot tombstoned");
    assert!(table.epoch >= 2, "failover bumps the epoch");
    assert_eq!(cluster.state_shard_count(), 2);
    drop(table);

    // Let the storm run on the promoted tier, then stop and audit.
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    let mut successes = [0u64; COUNTER_KEYS];
    for caller in callers {
        for (idx, n) in caller.join().unwrap().into_iter().enumerate() {
            successes[idx] += n;
        }
    }

    // Every acknowledged driver write survived the kill with its value.
    let total_acked = acked.load(Ordering::Relaxed);
    assert!(total_acked > 0, "the writer made progress");
    for n in 0..total_acked {
        assert_eq!(
            cluster.kv().get(&format!("storm:{n}")).unwrap(),
            Some(n.to_le_bytes().to_vec()),
            "acked write storm:{n} lost across failover"
        );
    }
    assert_eq!(
        cluster.kv().get(&blackout_key).unwrap(),
        Some(b"survived".to_vec())
    );

    // Every successful lock-protected increment is in the counters: the
    // promoted backups inherited both the values and the lock state, so
    // the counts are exact, not merely bounded.
    for (idx, expect) in successes.iter().enumerate() {
        assert!(*expect > 0, "workload exercised counter {idx}");
        let global = cluster
            .kv()
            .get(&format!("chain:{idx}"))
            .unwrap()
            .unwrap_or_else(|| panic!("counter chain:{idx} vanished"));
        let v = u64::from_le_bytes(global[..8].try_into().unwrap());
        assert_eq!(
            v, *expect,
            "counter chain:{idx}: {v} increments survived, {expect} acknowledged"
        );
    }

    // The survivors report the promotion in their stats.
    let stats = cluster.state_shard_stats().unwrap();
    assert!(
        stats.iter().map(|s| s.promotions).sum::<u64>() >= 1,
        "a survivor must have recorded the promotion"
    );
    assert!(
        stats.iter().all(|s| s.replication == 2),
        "the tier still reports replication factor 2"
    );
}

/// A global write lock taken before a planned failover is still its
/// owner's lock afterwards: the backup inherited the lock state from the
/// quorum-replicated forwards, so promotion changes the serving slot but
/// not the owner, and a counter on the same slot keeps its value.
#[test]
fn lock_owner_and_counter_survive_primary_failover() {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 1,
        state_shards: 3,
        replication_factor: 2,
        ..ClusterConfig::default()
    }));
    let cell = Arc::clone(cluster.state_routing());
    let alice = ShardedKvClient::connect(cluster.add_fabric_host(), Arc::clone(&cell));
    let bob = ShardedKvClient::connect(cluster.add_fabric_host(), Arc::clone(&cell));

    // A lock key and a counter key both primaried on the victim slot.
    let table = cell.load();
    let victim = 0usize;
    let lock_key = (0..10_000)
        .map(|i| format!("lock:{i}"))
        .find(|k| table.primary_for(k) == victim)
        .expect("some lock key on the victim");
    let ctr_key = (0..10_000)
        .map(|i| format!("ctr:{i}"))
        .find(|k| table.primary_for(k) == victim)
        .expect("some counter key on the victim");
    drop(table);

    alice.lock(&lock_key, LockMode::Write).unwrap();
    assert_eq!(alice.incr(&ctr_key, 5).unwrap(), 5);
    assert!(
        !bob.try_lock(&lock_key, LockMode::Write).unwrap(),
        "the lock is held before failover"
    );

    // Planned failover of the victim slot (the server stays up; routing
    // simply stops using it — the liveness monitor sees it alive and does
    // not interfere).
    let table = cluster.fail_over_state_shard(victim).unwrap();
    assert!(table.dead.contains(&victim));
    let promoted = table.primary_for(&lock_key);
    assert_ne!(promoted, victim, "the key moved off the dead slot");

    // The promoted backup serves the same lock owner and counter value.
    assert!(
        !bob.try_lock(&lock_key, LockMode::Write).unwrap(),
        "the promoted backup must still hold the lock for its owner"
    );
    assert_eq!(
        alice.incr(&ctr_key, 1).unwrap(),
        6,
        "counter value must survive promotion"
    );
    alice.unlock(&lock_key, LockMode::Write).unwrap();
    assert!(
        bob.try_lock(&lock_key, LockMode::Write).unwrap(),
        "the owner's unlock frees the lock on the promoted backup"
    );
    bob.unlock(&lock_key, LockMode::Write).unwrap();
}

/// Retiring a shard from a replicated tier is migration-free: the live
/// slots' backups already hold everything, so `remove_state_shard` shrinks
/// the tier with every key still readable.
#[test]
fn retiring_a_shard_under_replication_keeps_every_key() {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 1,
        state_shards: 3,
        replication_factor: 2,
        ..ClusterConfig::default()
    }));
    for i in 0..256u32 {
        cluster
            .kv()
            .set(&format!("ds:{i}"), i.to_le_bytes().to_vec())
            .unwrap();
    }
    assert_eq!(cluster.remove_state_shard().unwrap(), 2);
    for i in 0..256u32 {
        assert_eq!(
            cluster.kv().get(&format!("ds:{i}")).unwrap(),
            Some(i.to_le_bytes().to_vec()),
            "ds:{i} after replicated retire"
        );
    }
    // And the tier can still grow back under replication.
    assert_eq!(cluster.add_state_shard().unwrap(), 3);
    for i in 0..256u32 {
        assert_eq!(
            cluster.kv().get(&format!("ds:{i}")).unwrap(),
            Some(i.to_le_bytes().to_vec()),
            "ds:{i} after growing the replicated tier back"
        );
    }
}
