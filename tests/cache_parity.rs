//! Cached-vs-uncached parity: enabling the function-side state cache must
//! change data movement, never answers. Each workload runs on an uncached
//! cluster and on a cache-enabled cluster and must produce bitwise
//! identical results — including across a live reshard (routing-epoch
//! bump) and a replicated primary failover, the two events most likely to
//! let a stale snapshot leak.

use faasm::core::{Cluster, ClusterConfig};
use faasm::workloads::data::synth_images;
use faasm::workloads::{inference, matmul, sgd};

/// A cluster with the function-side cache on (generous budget, default
/// read-your-writes consistency).
fn cached_cluster(hosts: usize) -> Cluster {
    Cluster::with_config(ClusterConfig {
        hosts,
        cache_bytes: 16 * 1024 * 1024,
        ..ClusterConfig::default()
    })
}

/// Total cache traffic (hits + misses) across a cluster's instances. The
/// instance-local state tier absorbs repeated pulls of already-present
/// chunks, so a single workload pass mostly *fills* the cache; what these
/// tests must prove is that the cache sits in the read path (traffic > 0)
/// without changing a single bit of any answer. Hit-rate economics are the
/// `cache_locality` example's and the bench suite's job.
fn total_traffic(cluster: &Cluster) -> u64 {
    cluster
        .instances()
        .iter()
        .filter_map(|i| i.cache().map(|c| c.stats().hits + c.stats().misses))
        .sum()
}

#[test]
fn matmul_results_bitwise_identical_with_cache_enabled() {
    let n = 16;

    let uncached = Cluster::new(2);
    matmul::register_faasm(&uncached, "la");
    matmul::upload_matrices(uncached.kv().as_ref(), n, 3).unwrap();
    let r = uncached.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
    assert_eq!(r.return_code(), 0, "{:?}", r.status);
    let c_uncached = matmul::read_result(uncached.kv().as_ref(), n).unwrap();

    let cached = cached_cluster(2);
    assert!(
        cached.instances().iter().all(|i| i.cache().is_some()),
        "cache_bytes > 0 must wire a cache into every instance"
    );
    matmul::register_faasm(&cached, "la");
    matmul::upload_matrices(cached.kv().as_ref(), n, 3).unwrap();
    let r = cached.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
    assert_eq!(r.return_code(), 0, "{:?}", r.status);
    let c_cached = matmul::read_result(cached.kv().as_ref(), n).unwrap();

    assert_eq!(c_uncached, c_cached, "cache must be invisible in answers");
    assert!(
        total_traffic(&cached) > 0,
        "the distributed multiply must actually exercise the cache"
    );
}

#[test]
fn sgd_weights_bitwise_identical_with_cache_enabled() {
    // Sequential invokes: without HOGWILD! races the update order is
    // deterministic, so the final weights must match byte for byte.
    let dataset = faasm::workloads::data::rcv1_like(96, 32, 8, 11);
    let tasks = sgd::partition(96, 3, 32, 0.5, 16);

    let run = |cluster: &Cluster| -> Vec<u8> {
        sgd::register_faasm(cluster, "ml");
        sgd::upload_dataset(cluster.kv().as_ref(), &dataset).unwrap();
        for _ in 0..2 {
            for t in &tasks {
                let r = cluster.invoke("ml", "sgd_update", t.to_bytes());
                assert_eq!(r.return_code(), 0, "{:?}", r.status);
            }
        }
        cluster
            .kv()
            .get(sgd::keys::WEIGHTS)
            .unwrap()
            .expect("weights present after training")
    };

    let w_uncached = run(&Cluster::new(2));
    let cached = cached_cluster(2);
    let w_cached = run(&cached);

    assert_eq!(
        w_uncached, w_cached,
        "identical schedule, identical weights"
    );
    assert!(
        total_traffic(&cached) > 0,
        "training must exercise the cache"
    );
}

#[test]
fn inference_outputs_bitwise_identical_with_cache_enabled() {
    let imgs = synth_images(4, inference::SIDE, 21);

    let uncached = Cluster::new(1);
    inference::setup_faasm(&uncached, "serve", 5);
    let cached = cached_cluster(1);
    inference::setup_faasm(&cached, "serve", 5);

    for img in &imgs {
        let a = uncached.invoke("serve", "infer", img.clone());
        let b = cached.invoke("serve", "infer", img.clone());
        assert_eq!(a.return_code(), 0);
        assert_eq!(b.return_code(), 0);
        assert_eq!(a.output, b.output, "same model, same scores");
    }
    // Inference serves its model from the VFS, not the state tier, so no
    // cache traffic is expected — the test pins down that wiring a cache
    // into the instance leaves a state-free workload bit-identical too.
    assert_eq!(total_traffic(&cached), 0, "inference reads no state keys");
}

#[test]
fn matmul_parity_survives_live_reshard_and_failover() {
    let n = 16;

    // Reference answer from an uncached single-epoch cluster.
    let reference = {
        let cluster = Cluster::new(1);
        matmul::register_faasm(&cluster, "la");
        matmul::upload_matrices(cluster.kv().as_ref(), n, 7).unwrap();
        let r = cluster.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
        assert_eq!(r.return_code(), 0, "{:?}", r.status);
        matmul::read_result(cluster.kv().as_ref(), n).unwrap()
    };

    // Cached, replicated cluster: compute once to warm every instance
    // cache, then reshard and fail over underneath the warm caches.
    let cluster = Cluster::with_config(ClusterConfig {
        hosts: 2,
        state_shards: 3,
        replication_factor: 2,
        cache_bytes: 16 * 1024 * 1024,
        ..ClusterConfig::default()
    });
    matmul::register_faasm(&cluster, "la");
    matmul::upload_matrices(cluster.kv().as_ref(), n, 7).unwrap();
    let r = cluster.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
    assert_eq!(r.return_code(), 0, "{:?}", r.status);
    assert_eq!(
        matmul::read_result(cluster.kv().as_ref(), n).unwrap(),
        reference,
        "cached replicated run must match the uncached reference"
    );

    // Live reshard: keys migrate, the routing epoch bumps, and every
    // leased snapshot must revalidate rather than serve the old epoch.
    assert_eq!(cluster.add_state_shard().unwrap(), 4);
    let r = cluster.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
    assert_eq!(r.return_code(), 0, "{:?}", r.status);
    assert_eq!(
        matmul::read_result(cluster.kv().as_ref(), n).unwrap(),
        reference,
        "warm caches must stay coherent across a live reshard"
    );

    // Planned failover of a primary at replication 2: promoted backups
    // serve, the epoch bumps again, answers still match bitwise.
    cluster.fail_over_state_shard(1).unwrap();
    let r = cluster.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
    assert_eq!(r.return_code(), 0, "{:?}", r.status);
    assert_eq!(
        matmul::read_result(cluster.kv().as_ref(), n).unwrap(),
        reference,
        "warm caches must stay coherent across an R=2 failover"
    );
    assert!(
        total_traffic(&cluster) > 0,
        "the runs must exercise the cache"
    );
}
