//! End-to-end integration tests spanning the whole workspace: cluster
//! invocation, cross-host scheduling, chaining, two-tier state and failure
//! injection.

use faasm::core::{CallStatus, Cluster, ClusterConfig, EgressLimit, InstanceConfig, UploadOptions};
use faasm::workloads::data::{rcv1_like, synth_images};
use faasm::workloads::{inference, matmul, sgd};

const ECHO: &str = r#"
    extern int input_size();
    extern int read_call_input(ptr int buf, int len);
    extern void write_call_output(ptr int buf, int len);
    int main() {
        int n = input_size();
        read_call_input((ptr int) 1024, n);
        write_call_output((ptr int) 1024, n);
        return 0;
    }
"#;

#[test]
fn fl_pipeline_compiles_uploads_and_executes() {
    let cluster = Cluster::new(2);
    cluster
        .upload_fl("it", "echo", ECHO, UploadOptions::default())
        .unwrap();
    for i in 0..10u8 {
        let r = cluster.invoke("it", "echo", vec![i; 8]);
        assert_eq!(r.status, CallStatus::Success);
        assert_eq!(r.output, vec![i; 8]);
    }
    assert_eq!(cluster.total_calls(), 10);
}

#[test]
fn calls_spread_across_hosts_via_round_robin_and_warm_sets() {
    let cluster = Cluster::new(4);
    cluster
        .upload_fl("it", "echo", ECHO, UploadOptions::default())
        .unwrap();
    // Warm every host first: one call to generate the Proto-Faaslet, then
    // an explicit pre-warm per instance. With microsecond echo calls and
    // no warm-up, whichever host cold-starts first wins the warm set and
    // can absorb the entire burst before a second host ever cold-starts
    // (timing-dependent on a loaded machine); with all hosts warm, the
    // round-robin ingress plus warm-local placement spreads
    // deterministically.
    assert_eq!(cluster.invoke("it", "echo", vec![9]).return_code(), 0);
    for inst in cluster.instances() {
        inst.prewarm("it", "echo", 1).unwrap();
    }
    let ids: Vec<_> = (0..32u8)
        .map(|i| cluster.invoke_async("it", "echo", vec![i]))
        .collect();
    for id in ids {
        assert_eq!(cluster.await_result(id).return_code(), 0);
    }
    let per_host: Vec<u64> = cluster
        .instances()
        .iter()
        .map(|i| i.metrics().calls())
        .collect();
    assert_eq!(per_host.iter().sum::<u64>(), 33, "32 + the warm-up call");
    let active_hosts = per_host.iter().filter(|&&c| c > 0).count();
    assert!(
        active_hosts >= 2,
        "work must spread across hosts: {per_host:?}"
    );
}

#[test]
fn two_tier_state_is_consistent_across_hosts() {
    // One function pushes a value; another (likely on a different host)
    // pulls and verifies it.
    let cluster = Cluster::new(3);
    cluster
        .upload_fl(
            "it",
            "writer",
            r#"
            extern int get_state(ptr int key, int key_len, int size);
            extern void push_state(ptr int key, int key_len);
            int main() {
                ptr int k = (ptr int) 64;
                k[0] = 0x79656b; // "key"
                ptr int s = (ptr int) get_state((ptr int) 64, 3, 16);
                s[0] = 1234;
                s[1] = 5678;
                push_state((ptr int) 64, 3);
                return 0;
            }
            "#,
            UploadOptions::default(),
        )
        .unwrap();
    cluster
        .upload_fl(
            "it",
            "reader",
            r#"
            extern int get_state(ptr int key, int key_len, int size);
            extern void write_call_output(ptr int buf, int len);
            int main() {
                ptr int k = (ptr int) 64;
                k[0] = 0x79656b;
                ptr int s = (ptr int) get_state((ptr int) 64, 3, 16);
                write_call_output((ptr int) ((ptr int) s), 8);
                return 0;
            }
            "#,
            UploadOptions::default(),
        )
        .unwrap();
    assert_eq!(cluster.invoke("it", "writer", vec![]).return_code(), 0);
    // Run readers on all hosts by invoking repeatedly (round-robin ingress).
    for _ in 0..6 {
        let r = cluster.invoke("it", "reader", vec![]);
        assert_eq!(r.return_code(), 0, "{:?}", r.status);
        assert_eq!(i32::from_le_bytes(r.output[0..4].try_into().unwrap()), 1234);
        assert_eq!(i32::from_le_bytes(r.output[4..8].try_into().unwrap()), 5678);
    }
}

#[test]
fn deep_chains_do_not_deadlock_small_worker_pools() {
    // A chain of depth 6 on an instance with only 2 workers: await-helping
    // must prevent deadlock.
    let cluster = Cluster::with_config(ClusterConfig {
        hosts: 1,
        instance: InstanceConfig {
            workers: 2,
            ..InstanceConfig::default()
        },
        ..ClusterConfig::default()
    });
    cluster
        .upload_fl(
            "it",
            "countdown",
            r#"
            extern int input_size();
            extern int read_call_input(ptr int buf, int len);
            extern void write_call_output(ptr int buf, int len);
            extern long chain_call(ptr int name, int name_len, ptr int in, int in_len);
            extern int await_call(long id);
            extern int get_call_output(long id, ptr int buf, int len);
            int main() {
                read_call_input((ptr int) 1024, 4);
                ptr int v = (ptr int) 1024;
                if (v[0] <= 0) {
                    write_call_output((ptr int) 1024, 4);
                    return 0;
                }
                v[0] = v[0] - 1;
                ptr int nm = (ptr int) 2048;
                nm[0] = 0x6e756f63; // "coun"
                nm[1] = 0x776f6474; // "tdow"
                nm[2] = 0x6e;       // "n"
                long id = chain_call((ptr int) 2048, 9, (ptr int) 1024, 4);
                if (await_call(id) != 0) { return -1; }
                get_call_output(id, (ptr int) 3072, 4);
                ptr int out = (ptr int) 3072;
                out[0] = out[0] + 1;
                write_call_output((ptr int) 3072, 4);
                return 0;
            }
            "#,
            UploadOptions::default(),
        )
        .unwrap();
    let r = cluster.invoke("it", "countdown", 6i32.to_le_bytes().to_vec());
    assert_eq!(r.status, CallStatus::Success, "{:?}", r.status);
    assert_eq!(i32::from_le_bytes(r.output[..4].try_into().unwrap()), 6);
}

#[test]
fn guest_traps_surface_as_errors_and_do_not_poison_the_instance() {
    let cluster = Cluster::new(1);
    cluster
        .upload_fl(
            "it",
            "div0",
            "int main() { int z = 0; return 1 / z; }",
            UploadOptions::default(),
        )
        .unwrap();
    cluster
        .upload_fl("it", "echo", ECHO, UploadOptions::default())
        .unwrap();
    let r = cluster.invoke("it", "div0", vec![]);
    assert!(matches!(r.status, CallStatus::Error(_)));
    // The instance keeps serving other functions.
    let r = cluster.invoke("it", "echo", b"alive".to_vec());
    assert_eq!(r.output, b"alive");
}

#[test]
fn cross_host_proto_restore_via_state_tier() {
    // First call on host A generates + publishes the proto as
    // content-addressed chunks; a later call on host B must restore from
    // the tier rather than cold start.
    let cluster = Cluster::new(2);
    cluster
        .upload_fl("it", "echo", ECHO, UploadOptions::default())
        .unwrap();
    for i in 0..8u8 {
        assert_eq!(cluster.invoke("it", "echo", vec![i]).return_code(), 0);
    }
    let cold: u64 = cluster
        .instances()
        .iter()
        .map(|i| i.metrics().cold_starts())
        .sum();
    assert_eq!(cold, 1, "only the very first start is a full cold start");
    // The scheduler prefers warm Faaslets, so restores may be 0 or more,
    // but the manifest and every chunk it names must sit in the tier for
    // cross-host use.
    let manifest_bytes = cluster
        .kv()
        .get(&faasm::kvs::manifest_key("it", "echo"))
        .unwrap()
        .expect("manifest published to the state tier");
    let manifest = faasm::core::snapdist::ProtoManifest::from_bytes(&manifest_bytes)
        .expect("manifest decodes");
    for d in manifest.all_digests() {
        assert_eq!(
            cluster.kv().exists(&faasm::kvs::chunk_key(&d)),
            Ok(true),
            "chunk {d:?} missing from the tier"
        );
    }
}

#[test]
fn scale_up_storm_restores_warm_without_duplicate_captures() {
    // A 0→N scale-up storm (satellite of the snapshot-distribution plane):
    // one publisher call, pre-stage every other host, then barrier-release
    // concurrent calls against every host at once. The single-flight
    // resolver plus pre-staged snapshot caches must absorb the burst with
    // zero failed calls and exactly one capture cluster-wide.
    use faasm::core::ChainRouter;

    const HOSTS: usize = 4;
    const THREADS_PER_HOST: usize = 3;
    const CALLS_PER_THREAD: usize = 6;

    let cluster = std::sync::Arc::new(Cluster::new(HOSTS));
    cluster
        .upload_fl("it", "echo", ECHO, UploadOptions::default())
        .unwrap();
    let r = cluster.instances()[0].invoke_local("it", "echo", vec![0]);
    assert_eq!(r.status, CallStatus::Success);
    for inst in &cluster.instances()[1..] {
        assert!(cluster.instances()[0].push_prestage("it", "echo", inst.host_id()));
    }
    for inst in &cluster.instances()[1..] {
        for _ in 0..2_000 {
            if inst.has_proto("it", "echo") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(inst.has_proto("it", "echo"), "pre-stage never landed");
    }

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(HOSTS * THREADS_PER_HOST));
    let handles: Vec<_> = (0..HOSTS * THREADS_PER_HOST)
        .map(|t| {
            let cluster = std::sync::Arc::clone(&cluster);
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let inst = std::sync::Arc::clone(&cluster.instances()[t % HOSTS]);
                barrier.wait();
                let mut failed = 0usize;
                for i in 0..CALLS_PER_THREAD {
                    let id = inst.submit_placed("it", "echo", vec![i as u8]);
                    if inst.await_call(id).status != CallStatus::Success {
                        failed += 1;
                    }
                }
                failed
            })
        })
        .collect();
    let failed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(failed, 0, "storm dropped calls");

    let (mut captures, mut restores, mut warm) = (0u64, 0u64, 0u64);
    for inst in cluster.instances() {
        let m = inst.metrics();
        captures += m.cold_starts();
        restores += m.proto_restores();
        warm += m.warm_starts();
    }
    assert_eq!(captures, 1, "duplicate captures under the storm");
    let starts = captures + restores + warm;
    assert_eq!(
        starts as usize,
        HOSTS * THREADS_PER_HOST * CALLS_PER_THREAD + 1,
        "every call maps to exactly one start"
    );
    let warm_rate = (starts - captures) as f64 / starts as f64;
    assert!(
        warm_rate >= 0.9,
        "warm-restore rate {:.1}% below 90%",
        warm_rate * 100.0
    );
}

#[test]
fn kvs_flush_failure_injection_recovers() {
    // Flushing the global tier mid-run loses state values (as a KVS node
    // wipe would); functions re-create them and keep working.
    let cluster = Cluster::new(2);
    cluster
        .upload_fl(
            "it",
            "bump",
            r#"
            extern int get_state(ptr int key, int key_len, int size);
            extern void push_state(ptr int key, int key_len);
            extern void write_call_output(ptr int buf, int len);
            int main() {
                ptr int k = (ptr int) 64;
                k[0] = 0x6e; // "n"
                ptr int s = (ptr int) get_state((ptr int) 64, 1, 4);
                s[0] = s[0] + 1;
                push_state((ptr int) 64, 1);
                write_call_output((ptr int) ((ptr int) s), 4);
                return 0;
            }
            "#,
            UploadOptions::default(),
        )
        .unwrap();
    assert_eq!(cluster.invoke("it", "bump", vec![]).return_code(), 0);
    cluster.kv().flush().unwrap();
    // Still serves; state restarts from whatever the local tier holds.
    let r = cluster.invoke("it", "bump", vec![]);
    assert_eq!(r.return_code(), 0, "{:?}", r.status);
}

#[test]
fn metrics_align_with_traffic_accounting() {
    let cluster = Cluster::new(2);
    cluster
        .upload_fl("it", "echo", ECHO, UploadOptions::default())
        .unwrap();
    let before = cluster.fabric().stats().snapshot();
    for _ in 0..5 {
        cluster.invoke("it", "echo", vec![0u8; 256]);
    }
    let delta = cluster.fabric().stats().snapshot().delta(&before);
    // Each call moves the 256-byte payload at least twice (invoke + result).
    assert!(delta.total_bytes() >= 5 * 2 * 256);
    assert!(cluster.billable_gb_seconds() > 0.0);
    assert!(cluster.host_memory_bytes() > 0);
}

#[test]
fn host_failure_calls_are_redispatched() {
    let cluster = Cluster::new(3);
    cluster
        .upload_fl("it", "echo", ECHO, UploadOptions::default())
        .unwrap();
    // Warm every host.
    for i in 0..6u8 {
        assert_eq!(cluster.invoke("it", "echo", vec![i]).return_code(), 0);
    }
    // Kill one instance; the cluster must keep serving.
    cluster.kill_instance(1);
    let mut ok = 0;
    for i in 0..12u8 {
        if cluster.invoke("it", "echo", vec![i]).return_code() == 0 {
            ok += 1;
        }
    }
    // A few calls may fail while the warm set still names the dead host
    // (one-hop forwards fall back locally), but the cluster as a whole
    // must keep making progress.
    assert!(ok >= 10, "only {ok}/12 calls survived a host failure");
    // And eventually it serves cleanly again.
    assert_eq!(
        cluster.invoke("it", "echo", b"post".to_vec()).return_code(),
        0
    );
}

#[test]
fn all_hosts_dead_fails_cleanly() {
    let cluster = Cluster::new(2);
    cluster
        .upload_fl("it", "echo", ECHO, UploadOptions::default())
        .unwrap();
    cluster.kill_instance(0);
    cluster.kill_instance(1);
    let r = cluster.invoke("it", "echo", vec![1]);
    assert!(matches!(r.status, CallStatus::Error(_)));
}

fn sharded_cluster(hosts: usize, state_shards: usize) -> Cluster {
    Cluster::with_config(ClusterConfig {
        hosts,
        state_shards,
        ..ClusterConfig::default()
    })
}

/// Shards of the cluster's global tier that hold at least one value.
fn occupied_shards(cluster: &Cluster) -> usize {
    cluster
        .state_shards()
        .iter()
        .filter(|s| s.store().key_count() > 0)
        .count()
}

#[test]
fn sharded_tier_matches_single_shard_for_matmul() {
    let n = 16;
    let run = |shards: usize| {
        let cluster = sharded_cluster(2, shards);
        matmul::register_faasm(&cluster, "la");
        matmul::upload_matrices(cluster.kv().as_ref(), n, 3).unwrap();
        let r = cluster.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
        assert_eq!(r.return_code(), 0, "{:?}", r.status);
        let c = matmul::read_result(cluster.kv().as_ref(), n).unwrap();
        let spread = occupied_shards(&cluster);
        (c, spread)
    };
    let (single, _) = run(1);
    let (sharded, spread) = run(4);
    assert_eq!(single, sharded, "identical code, identical result");
    assert!(
        spread >= 2,
        "matmul's keys must spread over the shards, got {spread}"
    );
    let expected = {
        let cluster = sharded_cluster(1, 1);
        matmul::upload_matrices(cluster.kv().as_ref(), n, 3).unwrap();
        matmul::reference_product(cluster.kv().as_ref(), n).unwrap()
    };
    for (a, b) in sharded.iter().zip(&expected) {
        assert!((a - b).abs() < 1e-9, "sharded result must stay correct");
    }
}

#[test]
fn sharded_tier_matches_single_shard_for_sgd() {
    let dataset = rcv1_like(192, 64, 8, 11);
    let tasks = sgd::partition(192, 4, 64, 0.5, 16);
    let run = |shards: usize| {
        let cluster = sharded_cluster(2, shards);
        sgd::register_faasm(&cluster, "ml");
        sgd::upload_dataset(cluster.kv().as_ref(), &dataset).unwrap();
        for _epoch in 0..3 {
            let ids: Vec<_> = tasks
                .iter()
                .map(|t| cluster.invoke_async("ml", "sgd_update", t.to_bytes()))
                .collect();
            for id in ids {
                assert_eq!(cluster.await_result(id).return_code(), 0);
            }
        }
        let acc = sgd::accuracy(cluster.kv().as_ref(), &dataset).unwrap();
        (acc, occupied_shards(&cluster))
    };
    let (acc_single, _) = run(1);
    let (acc_sharded, spread) = run(4);
    // HOGWILD interleaving is nondeterministic; both runs must train, not
    // match bitwise.
    assert!(
        acc_single > 0.7,
        "single-shard training works: {acc_single}"
    );
    assert!(acc_sharded > 0.7, "sharded training works: {acc_sharded}");
    assert!(spread >= 2, "sgd's keys must spread over the shards");
}

#[test]
fn sharded_tier_matches_single_shard_for_inference() {
    let imgs = synth_images(3, inference::SIDE, 21);
    let run = |shards: usize| {
        let cluster = sharded_cluster(1, shards);
        inference::setup_faasm(&cluster, "serve", 5);
        imgs.iter()
            .map(|img| {
                let r = cluster.invoke("serve", "infer", img.clone());
                assert_eq!(r.return_code(), 0, "{:?}", r.status);
                r.output
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(4), "same model, same scores on both tiers");
}

#[test]
fn sharded_tier_serves_chained_state_and_survives_flush() {
    // The generic cluster paths — warm sets, chained calls, two-tier state,
    // failure injection — on a 4-shard tier.
    let cluster = sharded_cluster(3, 4);
    cluster
        .upload_fl("it", "echo", ECHO, UploadOptions::default())
        .unwrap();
    for i in 0..12u8 {
        let r = cluster.invoke("it", "echo", vec![i; 4]);
        assert_eq!(r.status, CallStatus::Success);
        assert_eq!(r.output, vec![i; 4]);
    }
    cluster.kv().flush().unwrap();
    let r = cluster.invoke("it", "echo", b"post-flush".to_vec());
    assert_eq!(r.status, CallStatus::Success);
}

#[test]
fn faaslet_egress_is_traffic_shaped() {
    // A Faaslet with a 64 KiB/s egress limit sending ~4 KiB of socket
    // traffic must be rate-limited; an unshaped one must not (the network
    // namespace + tc mechanism of §3.1).
    fn run_with(egress: Option<EgressLimit>) -> std::time::Duration {
        let cluster = Cluster::with_config(ClusterConfig {
            hosts: 1,
            instance: InstanceConfig {
                workers: 1,
                egress,
                ..InstanceConfig::default()
            },
            ..ClusterConfig::default()
        });
        // An echo service on its own fabric host.
        let server = cluster.fabric().add_host();
        let server_id = server.id();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        let service = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                if let Ok(env) = server.recv_timeout(std::time::Duration::from_millis(20)) {
                    let _ = server.respond(&env, env.payload.clone());
                }
            }
        });

        let src = format!(
            r#"
            extern int socket();
            extern int connect(int sock, int host);
            extern int send(int sock, ptr int buf, int len);
            int main() {{
                int s = socket();
                if (connect(s, {server_id}) != 0) {{ return -1; }}
                for (int i = 0; i < 8; i = i + 1) {{
                    if (send(s, (ptr int) 1024, 512) != 512) {{ return -2; }}
                }}
                return 0;
            }}
            "#,
            server_id = server_id.0
        );
        cluster
            .upload_fl("net", "blast", &src, UploadOptions::default())
            .unwrap();
        // Warm up so the timed run has no cold-start component.
        assert_eq!(cluster.invoke("net", "blast", vec![]).return_code(), 0);
        let t0 = std::time::Instant::now();
        let r = cluster.invoke("net", "blast", vec![]);
        let elapsed = t0.elapsed();
        assert_eq!(r.return_code(), 0, "{:?}", r.status);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        service.join().unwrap();
        elapsed
    }

    let unshaped = run_with(None);
    // 8 × (512 + 64) bytes ≈ 4.6 KiB at 64 KiB/s with a 1 KiB burst →
    // ≳ 50 ms of enforced pacing.
    let shaped = run_with(Some(EgressLimit {
        rate: 64 * 1024,
        burst: 1024,
    }));
    assert!(
        shaped > unshaped * 3 && shaped > std::time::Duration::from_millis(30),
        "shaping must slow the sender: unshaped {unshaped:?}, shaped {shaped:?}"
    );
}
