//! Remote ingress: clients on other fabric hosts reaching the gateway
//! through `GatewayServer`, with per-connection isolation of protocol
//! violations.

use std::sync::Arc;
use std::time::Duration;

use faasm::core::{Cluster, NativeApi, NativeGuest};
use faasm::gateway::codec::{self, FrameBuf, MAX_FRAME};
use faasm::gateway::{
    ClientError, Gateway, GatewayClient, GatewayClientConfig, GatewayConfig, GatewayServer,
    GatewayServerConfig, GatewayStatus,
};
use faasm::net::stream::{decode_stream_msg, StreamConn, StreamKind};
use faasm::net::Nic;

const ECHO: &str = r#"
    extern int input_size();
    extern int read_call_input(ptr int buf, int len);
    extern void write_call_output(ptr int buf, int len);
    int main() {
        int n = input_size();
        read_call_input((ptr int) 1024, n);
        write_call_output((ptr int) 1024, n);
        return 0;
    }
"#;

fn slow_guest() -> Arc<dyn NativeGuest> {
    Arc::new(|api: &mut NativeApi<'_>| {
        std::thread::sleep(Duration::from_millis(2));
        let input = api.input().to_vec();
        api.write_output(&input);
        Ok(0)
    })
}

/// Cluster + in-process gateway + a `GatewayServer` on its own fabric host.
fn remote_rig(hosts: usize) -> (Arc<Cluster>, Arc<Gateway>, GatewayServer) {
    let cluster = Arc::new(Cluster::new(hosts));
    cluster
        .upload_fl("alice", "echo", ECHO, Default::default())
        .unwrap();
    cluster.register_native("alice", "slow", slow_guest(), false);
    cluster
        .upload_fl(
            "bob",
            "fail",
            "int main() { return 7; }",
            Default::default(),
        )
        .unwrap();
    let gateway = Arc::new(Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig::default(),
    ));
    let server = GatewayServer::start(Arc::clone(&gateway), cluster.add_fabric_host());
    (cluster, gateway, server)
}

fn connect(cluster: &Cluster, server: &GatewayServer, mtu: usize) -> GatewayClient {
    GatewayClient::with_config(
        cluster.add_fabric_host(),
        server.host_id(),
        GatewayClientConfig {
            mtu,
            ..GatewayClientConfig::default()
        },
    )
    .expect("connect to gateway server")
}

/// Drain one hostile NIC until the server closes the connection, returning
/// the response payloads that arrived first.
fn collect_until_close(nic: &Nic, conn: u64) -> Vec<Vec<u8>> {
    let mut fb = FrameBuf::new();
    let mut frames = Vec::new();
    loop {
        let env = nic
            .recv_timeout(Duration::from_secs(5))
            .expect("server reaction before timeout");
        let Some(msg) = decode_stream_msg(&env.payload) else {
            continue;
        };
        if msg.conn != conn {
            continue;
        }
        match msg.kind {
            StreamKind::Close => return frames,
            StreamKind::Data => {
                fb.feed(&msg.bytes);
                while let Ok(Some(frame)) = fb.next_frame() {
                    frames.push(frame);
                }
            }
            StreamKind::Open => {}
        }
    }
}

#[test]
fn remote_client_matches_in_process_gateway() {
    let (cluster, gateway, server) = remote_rig(2);
    // A deliberately tiny MTU: every frame crosses fragmented.
    let client = connect(&cluster, &server, 7);
    for i in 0..10u8 {
        let input = vec![i, i + 1, i + 2];
        let remote = client.call("alice", "echo", input.clone()).unwrap();
        let local = gateway.call("alice", "echo", input.clone());
        assert_eq!(remote.status, GatewayStatus::Ok, "request {i}");
        assert_eq!(
            remote.output, local.output,
            "remote and in-process ingress must agree"
        );
        assert_eq!(remote.output, input);
    }
    // Guest return codes survive the fabric too.
    let remote = client.call("bob", "fail", vec![]).unwrap();
    assert_eq!(remote.status, GatewayStatus::Failed(7));
    assert_eq!(
        gateway.call("bob", "fail", vec![]).status,
        GatewayStatus::Failed(7)
    );
    assert!(server.frames_received() >= 11);
    assert_eq!(server.connections_dropped(), 0);
}

#[test]
fn async_submit_then_wait_correlates_tickets() {
    let (cluster, _gateway, server) = remote_rig(2);
    let client = connect(&cluster, &server, 64);
    // Fire a burst without waiting: tickets return immediately.
    let tickets: Vec<(u64, Vec<u8>)> = (0..32u8)
        .map(|i| {
            let input = vec![i, 0xAB];
            let t = client.submit("alice", "echo", input.clone()).unwrap();
            (t, input)
        })
        .collect();
    // Claim them in reverse: correlation must hold regardless of order.
    for (ticket, input) in tickets.into_iter().rev() {
        let resp = client.wait(ticket);
        assert_eq!(resp.status, GatewayStatus::Ok);
        assert_eq!(resp.output, input, "ticket {ticket} got the wrong result");
    }
}

#[test]
fn two_clients_multiplex_independently() {
    let (cluster, _gateway, server) = remote_rig(2);
    let a = connect(&cluster, &server, 31);
    let b = connect(&cluster, &server, 1400);
    let ta: Vec<u64> = (0..8u8)
        .map(|i| a.submit("alice", "slow", vec![i]).unwrap())
        .collect();
    let tb: Vec<u64> = (0..8u8)
        .map(|i| b.submit("alice", "echo", vec![100 + i]).unwrap())
        .collect();
    for (i, t) in tb.into_iter().enumerate() {
        let r = b.wait(t);
        assert_eq!(r.status, GatewayStatus::Ok);
        assert_eq!(r.output, vec![100 + i as u8]);
    }
    for (i, t) in ta.into_iter().enumerate() {
        let r = a.wait(t);
        assert_eq!(r.status, GatewayStatus::Ok);
        assert_eq!(r.output, vec![i as u8]);
    }
}

#[test]
fn fragmented_responses_from_concurrent_dispatchers_do_not_interleave() {
    let cluster = Arc::new(Cluster::new(2));
    cluster
        .upload_fl("alice", "echo", ECHO, Default::default())
        .unwrap();
    let gateway = Arc::new(Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 4,
            ..GatewayConfig::default()
        },
    ));
    // A tiny server MTU: every response is many chunks, so concurrent
    // completions would interleave on the wire without serialisation.
    let server = GatewayServer::with_config(
        Arc::clone(&gateway),
        cluster.add_fabric_host(),
        GatewayServerConfig {
            mtu: 8,
            ..GatewayServerConfig::default()
        },
    );
    let client = connect(&cluster, &server, 1400);
    let tickets: Vec<(u64, Vec<u8>)> = (0..48u8)
        .map(|i| {
            let input: Vec<u8> = (0..64).map(|b| b ^ i).collect();
            let t = client.submit("alice", "echo", input.clone()).unwrap();
            (t, input)
        })
        .collect();
    for (ticket, input) in tickets {
        let r = client.wait(ticket);
        assert_eq!(r.status, GatewayStatus::Ok, "ticket {ticket}");
        assert_eq!(r.output, input, "ticket {ticket} got a corrupted response");
    }
    assert!(!client.is_closed(), "stream stayed coherent");
}

#[test]
fn abandoned_tickets_are_swept() {
    let (cluster, gateway, server) = remote_rig(2);
    let client = GatewayClient::with_config(
        cluster.add_fabric_host(),
        server.host_id(),
        GatewayClientConfig {
            mtu: 1400,
            wait_timeout: Duration::from_millis(300),
        },
    )
    .unwrap();
    // Fire-and-forget: 300 submits nobody ever waits on (above the sweep
    // threshold of 256).
    for i in 0..300u32 {
        client
            .submit("alice", "echo", i.to_le_bytes().to_vec())
            .unwrap();
    }
    // Let every response arrive, then age past the TTL.
    let t0 = std::time::Instant::now();
    while gateway.metrics().completed() < 300 && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(client.outstanding(), 300, "all tickets tracked pre-sweep");
    std::thread::sleep(Duration::from_millis(350));
    // The next fulfilment triggers the sweep.
    let r = client.call("alice", "echo", vec![1]).unwrap();
    assert_eq!(r.status, GatewayStatus::Ok);
    assert!(
        client.outstanding() < 10,
        "abandoned tickets must be swept, still tracking {}",
        client.outstanding()
    );
}

#[test]
fn malformed_frame_drops_only_the_offending_connection() {
    let (cluster, _gateway, server) = remote_rig(2);
    let good = connect(&cluster, &server, 1400);
    // Put real work in flight on the good connection...
    let tickets: Vec<u64> = (0..8u8)
        .map(|i| good.submit("alice", "slow", vec![i]).unwrap())
        .collect();
    // ...then poison a second connection with a well-framed non-request.
    let hostile_nic = cluster.add_fabric_host();
    let hostile = StreamConn::open(hostile_nic.clone(), server.host_id(), 16).unwrap();
    hostile
        .send(&codec::encode_frame(b"definitely not a request"))
        .unwrap();
    let frames = collect_until_close(&hostile_nic, hostile.conn_id());
    // The offender got an explicit seq-0 error before the cut.
    assert_eq!(frames.len(), 1);
    let resp = codec::decode_response(&frames[0]).expect("framed error response");
    assert_eq!(resp.seq, 0);
    assert!(matches!(resp.status, GatewayStatus::Error(_)));
    assert_eq!(server.connections_dropped(), 1);
    // The good connection's in-flight calls are untouched.
    for (i, t) in tickets.into_iter().enumerate() {
        let r = good.wait(t);
        assert_eq!(r.status, GatewayStatus::Ok, "in-flight call {i} disturbed");
        assert_eq!(r.output, vec![i as u8]);
    }
    assert!(!good.is_closed());
    // And the good connection keeps working after the incident.
    let r = good.call("alice", "echo", vec![9]).unwrap();
    assert_eq!(r.status, GatewayStatus::Ok);
}

#[test]
fn oversized_frame_drops_only_the_offending_connection() {
    let (cluster, _gateway, server) = remote_rig(1);
    let good = connect(&cluster, &server, 1400);
    let tickets: Vec<u64> = (0..4u8)
        .map(|i| good.submit("alice", "slow", vec![i]).unwrap())
        .collect();
    // A hostile length prefix: claims u32::MAX bytes follow.
    let hostile_nic = cluster.add_fabric_host();
    let hostile = StreamConn::open(hostile_nic.clone(), server.host_id(), 64).unwrap();
    let mut poison = u32::MAX.to_le_bytes().to_vec();
    poison.extend_from_slice(&[0; 32]);
    hostile.send(&poison).unwrap();
    let frames = collect_until_close(&hostile_nic, hostile.conn_id());
    assert!(
        frames.is_empty(),
        "an oversized prefix is cut without a response"
    );
    assert_eq!(server.connections_dropped(), 1);
    for t in tickets {
        assert_eq!(good.wait(t).status, GatewayStatus::Ok);
    }
}

#[test]
fn pending_bytes_cap_drops_slow_drip_connections() {
    let cluster = Arc::new(Cluster::new(1));
    cluster
        .upload_fl("alice", "echo", ECHO, Default::default())
        .unwrap();
    let gateway = Arc::new(Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig::default(),
    ));
    let server = GatewayServer::with_config(
        Arc::clone(&gateway),
        cluster.add_fabric_host(),
        GatewayServerConfig {
            max_pending_bytes: 64,
            ..GatewayServerConfig::default()
        },
    );
    // A legal-size frame header (1000 bytes) but the bytes dribble in and
    // never complete: the reassembly buffer may not grow past the cap.
    let hostile_nic = cluster.add_fabric_host();
    let hostile = StreamConn::open(hostile_nic.clone(), server.host_id(), 16).unwrap();
    let mut dribble = 1000u32.to_le_bytes().to_vec();
    dribble.extend_from_slice(&[0; 200]);
    hostile.send(&dribble).unwrap();
    let frames = collect_until_close(&hostile_nic, hostile.conn_id());
    assert!(frames.is_empty());
    assert_eq!(server.connections_dropped(), 1);
    // Within-cap traffic still flows on a fresh connection.
    let client = GatewayClient::with_config(
        cluster.add_fabric_host(),
        server.host_id(),
        GatewayClientConfig {
            mtu: 16,
            ..GatewayClientConfig::default()
        },
    )
    .unwrap();
    let r = client.call("alice", "echo", vec![1, 2, 3]).unwrap();
    assert_eq!(r.status, GatewayStatus::Ok);
    assert_eq!(r.output, vec![1, 2, 3]);
}

#[test]
fn oversized_request_fails_fast_at_the_client() {
    let (cluster, _gateway, server) = remote_rig(1);
    let client = connect(&cluster, &server, 1400);
    let sent_before = client.nic().stats().bytes_sent();
    let err = client
        .submit("alice", "echo", vec![0u8; MAX_FRAME])
        .unwrap_err();
    assert!(matches!(err, ClientError::Oversized(_)));
    // Nothing was put on the wire: the corrupt frame died at the sender.
    assert_eq!(client.nic().stats().bytes_sent(), sent_before);
    // The client connection is still healthy.
    let r = client.call("alice", "echo", vec![5]).unwrap();
    assert_eq!(r.status, GatewayStatus::Ok);
}

#[test]
fn client_shutdown_resolves_outstanding_waits() {
    let (cluster, _gateway, server) = remote_rig(1);
    let client = connect(&cluster, &server, 1400);
    let t = client.submit("alice", "slow", vec![1]).unwrap();
    client.shutdown();
    let r = client.wait(t);
    // Either the response raced in before shutdown or the wait resolves
    // with an explicit error — never a hang.
    assert!(
        r.status == GatewayStatus::Ok || matches!(r.status, GatewayStatus::Error(_)),
        "unexpected status {:?}",
        r.status
    );
    assert!(matches!(
        client.submit("alice", "echo", vec![2]).unwrap_err(),
        ClientError::Closed(_)
    ));
}
