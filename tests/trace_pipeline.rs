//! End-to-end tracing: one traced gateway call with state I/O must leave a
//! causally-linked span tree covering every tier — admission through
//! dispatch and worker execution down to the sharded state tier and back.

use std::collections::HashMap;
use std::sync::Arc;

use faasm::core::{Cluster, ClusterConfig, NativeApi, NativeGuest};
use faasm::gateway::{Gateway, GatewayConfig, GatewayStatus};
use faasm::telemetry::{SpanKind, SpanRecord};

/// Read-modify-write a shared accumulator and push it: one global-tier
/// round trip per call, so the trace has state spans to link.
fn state_guest() -> Arc<dyn NativeGuest> {
    Arc::new(|api: &mut NativeApi<'_>| {
        let entry = api.state("trace:acc", 64).map_err(faasm::fvm::Trap::host)?;
        let mut buf = [0u8; 8];
        entry.read(0, &mut buf).map_err(faasm::fvm::Trap::host)?;
        let v = u64::from_le_bytes(buf).wrapping_add(1);
        entry
            .write(0, &v.to_le_bytes())
            .map_err(faasm::fvm::Trap::host)?;
        entry.push().map_err(faasm::fvm::Trap::host)?;
        api.write_output(&v.to_le_bytes());
        Ok(0)
    })
}

#[test]
fn traced_call_leaves_linked_span_tree_across_tiers() {
    let cluster = Arc::new(Cluster::with_config(ClusterConfig {
        hosts: 2,
        state_shards: 2,
        ..ClusterConfig::default()
    }));
    cluster.register_native("tracer", "bump", state_guest(), false);
    let gw = Gateway::start(Arc::clone(&cluster), GatewayConfig::default());

    let (resp, trace_id) = gw.call_traced("tracer", "bump", vec![1]);
    assert_eq!(resp.status, GatewayStatus::Ok, "traced call failed");
    assert_ne!(trace_id, 0, "traced call minted no trace id");

    let spans = faasm::telemetry::trace_tree(trace_id);
    assert!(!spans.is_empty(), "traced call recorded no spans");

    // Every span belongs to this trace, has an id, and its clock is
    // monotone (start never after end).
    for (tier, s) in &spans {
        assert_eq!(s.trace_id, trace_id, "[{tier}] span from another trace");
        assert_ne!(s.span_id, 0, "[{tier}] span without an id");
        assert!(
            s.start_ns <= s.end_ns,
            "[{tier}] {:?} span runs backwards: {} > {}",
            s.kind,
            s.start_ns,
            s.end_ns
        );
    }

    // The whole pipeline is covered: ingress, queueing, dispatch, bus,
    // execution, and the state round trip down to the shard server.
    let kinds: Vec<SpanKind> = spans.iter().map(|(_, s)| s.kind).collect();
    for kind in [
        SpanKind::Admission,
        SpanKind::QueueSojourn,
        SpanKind::Dispatch,
        SpanKind::BusTransit,
        SpanKind::WorkerExec,
        SpanKind::StatePush,
        SpanKind::ShardApply,
    ] {
        assert!(kinds.contains(&kind), "trace is missing a {kind:?} span");
    }

    // Parentage is consistent: spans whose parent was recorded start no
    // earlier than that parent, and spans whose parent was NOT recorded
    // all hang off the single ingress root context.
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|(_, s)| (s.span_id, s)).collect();
    let mut root_parents: Vec<u64> = Vec::new();
    for (tier, s) in &spans {
        match by_id.get(&s.parent_id) {
            Some(parent) => assert!(
                parent.start_ns <= s.start_ns,
                "[{tier}] {:?} starts before its parent {:?}",
                s.kind,
                parent.kind
            ),
            None => root_parents.push(s.parent_id),
        }
    }
    root_parents.sort_unstable();
    root_parents.dedup();
    assert_eq!(
        root_parents.len(),
        1,
        "top-level spans disagree on the root context: {root_parents:?}"
    );

    // Causal stage ordering: admission precedes dispatch, dispatch
    // precedes execution, and the state round trip happens inside the
    // worker's span.
    let first = |kind: SpanKind| -> &SpanRecord {
        spans
            .iter()
            .map(|(_, s)| s)
            .filter(|s| s.kind == kind)
            .min_by_key(|s| s.start_ns)
            .unwrap()
    };
    let admission = first(SpanKind::Admission);
    let dispatch = first(SpanKind::Dispatch);
    let worker = first(SpanKind::WorkerExec);
    let push = first(SpanKind::StatePush);
    assert!(
        admission.start_ns <= dispatch.start_ns,
        "dispatch before admission"
    );
    assert!(
        dispatch.start_ns <= worker.start_ns,
        "execution before dispatch"
    );
    assert!(
        worker.start_ns <= push.start_ns && push.end_ns <= worker.end_ns,
        "state push escapes the worker span: worker {}..{}, push {}..{}",
        worker.start_ns,
        worker.end_ns,
        push.start_ns,
        push.end_ns
    );
    // The state push is the parent of the shard-side apply.
    let apply = first(SpanKind::ShardApply);
    let apply_parent = by_id
        .get(&apply.parent_id)
        .expect("shard apply has a recorded parent");
    assert!(
        matches!(apply_parent.kind, SpanKind::StatePush | SpanKind::StatePull),
        "shard apply hangs off {:?}, not a state span",
        apply_parent.kind
    );
}
