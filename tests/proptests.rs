//! Property-based tests on the workspace's core invariants.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use faasm::core::msg::{decode_msg, encode_msg, InstanceMsg};
use faasm::core::{CallId, CallSpec, PendingMap};
use faasm::fvm::{decode_module, encode_module, ObjectModule};
use faasm::gateway::codec::{self, FrameBuf, GatewayRequest, MAX_FRAME};
use faasm::gateway::{GatewayResponse, GatewayStatus};
use faasm::kvs::{self, KvClient, KvStore, ShardedKvClient};
use faasm::lang;
use faasm::mem::{LinearMemory, MemorySnapshot, SharedRegion, PAGE_SIZE};
use faasm::net::HostId;
use faasm::telemetry::TraceCtx;
use proptest::prelude::*;

/// Arbitrary printable-ASCII strings (the vendored proptest shim has no
/// regex strategies).
fn ascii_string(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0x20u8..0x7f, 0..max_len.max(1))
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

/// A representative sample of KVS request shapes (point ops, range ops and
/// variable-length payloads) for codec roundtrips.
fn kvs_request_strategy() -> impl Strategy<Value = kvs::codec::Request> {
    use kvs::codec::Request;
    prop_oneof![
        ascii_string(24).prop_map(|key| Request::Get { key }),
        (ascii_string(24), prop::collection::vec(any::<u8>(), 0..100))
            .prop_map(|(key, value)| Request::Set { key, value }),
        (ascii_string(24), any::<u64>(), any::<u64>())
            .prop_map(|(key, offset, len)| Request::GetRange { key, offset, len }),
        (
            ascii_string(24),
            any::<u64>(),
            prop::collection::vec(any::<u8>(), 0..100)
        )
            .prop_map(|(key, offset, data)| Request::SetRange { key, offset, data }),
        (ascii_string(24), prop::collection::vec(any::<u8>(), 0..100))
            .prop_map(|(key, data)| Request::Append { key, data }),
        ascii_string(24).prop_map(|key| Request::Del { key }),
    ]
}

/// A mutating store operation over a small colliding key set, for the
/// version-monotonicity property.
#[derive(Debug, Clone)]
enum StoreOp {
    Set(usize, Vec<u8>),
    SetRange(usize, u8, Vec<u8>),
    Append(usize, Vec<u8>),
    Del(usize),
    Incr(usize, i8),
    Sadd(usize, Vec<u8>),
}

fn store_op_strategy() -> impl Strategy<Value = StoreOp> {
    let key = 0..6usize;
    let bytes = || prop::collection::vec(any::<u8>(), 0..16);
    prop_oneof![
        (key.clone(), bytes()).prop_map(|(k, v)| StoreOp::Set(k, v)),
        (key.clone(), any::<u8>(), bytes()).prop_map(|(k, off, v)| StoreOp::SetRange(
            k,
            off % 24,
            v
        )),
        (key.clone(), bytes()).prop_map(|(k, v)| StoreOp::Append(k, v)),
        key.clone().prop_map(StoreOp::Del),
        (key.clone(), any::<i8>()).prop_map(|(k, d)| StoreOp::Incr(k, d)),
        (key, bytes()).prop_map(|(k, m)| StoreOp::Sadd(k, m)),
    ]
}

fn store_op_key(op: &StoreOp) -> String {
    let k = match op {
        StoreOp::Set(k, _)
        | StoreOp::SetRange(k, _, _)
        | StoreOp::Append(k, _)
        | StoreOp::Del(k)
        | StoreOp::Incr(k, _)
        | StoreOp::Sadd(k, _) => k,
    };
    format!("ver:{k}")
}

fn apply_store_op(store: &KvStore, op: &StoreOp) {
    let key = store_op_key(op);
    match op {
        StoreOp::Set(_, v) => {
            store.set(&key, v.clone());
        }
        StoreOp::SetRange(_, off, v) => {
            store.set_range(&key, usize::from(*off), v);
        }
        StoreOp::Append(_, v) => {
            store.append(&key, v);
        }
        StoreOp::Del(_) => {
            store.del(&key);
        }
        StoreOp::Incr(_, d) => {
            store.incr(&key, i64::from(*d));
        }
        StoreOp::Sadd(_, m) => {
            store.sadd(&key, m);
        }
    }
}

fn gateway_status_strategy() -> impl Strategy<Value = GatewayStatus> {
    prop_oneof![
        Just(GatewayStatus::Ok),
        any::<i32>().prop_map(GatewayStatus::Failed),
        ascii_string(40).prop_map(GatewayStatus::Error),
        Just(GatewayStatus::Overloaded),
        Just(GatewayStatus::Expired),
    ]
}

/// A random arithmetic expression over two i32 variables, rendered to FL
/// and mirrored in Rust with wrapping semantics.
#[derive(Debug, Clone)]
enum ExprTree {
    X,
    Y,
    Const(i16),
    Add(Box<ExprTree>, Box<ExprTree>),
    Sub(Box<ExprTree>, Box<ExprTree>),
    Mul(Box<ExprTree>, Box<ExprTree>),
    And(Box<ExprTree>, Box<ExprTree>),
    Xor(Box<ExprTree>, Box<ExprTree>),
}

impl ExprTree {
    fn render(&self) -> String {
        match self {
            ExprTree::X => "x".into(),
            ExprTree::Y => "y".into(),
            ExprTree::Const(c) => format!("({c})"),
            ExprTree::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            ExprTree::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            ExprTree::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            ExprTree::And(a, b) => format!("({} & {})", a.render(), b.render()),
            ExprTree::Xor(a, b) => format!("({} ^ {})", a.render(), b.render()),
        }
    }

    fn eval(&self, x: i32, y: i32) -> i32 {
        match self {
            ExprTree::X => x,
            ExprTree::Y => y,
            ExprTree::Const(c) => *c as i32,
            ExprTree::Add(a, b) => a.eval(x, y).wrapping_add(b.eval(x, y)),
            ExprTree::Sub(a, b) => a.eval(x, y).wrapping_sub(b.eval(x, y)),
            ExprTree::Mul(a, b) => a.eval(x, y).wrapping_mul(b.eval(x, y)),
            ExprTree::And(a, b) => a.eval(x, y) & b.eval(x, y),
            ExprTree::Xor(a, b) => a.eval(x, y) ^ b.eval(x, y),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = ExprTree> {
    let leaf = prop_oneof![
        Just(ExprTree::X),
        Just(ExprTree::Y),
        any::<i16>().prop_map(ExprTree::Const),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprTree::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprTree::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprTree::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprTree::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprTree::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

/// One step against a [`PendingMap`] in the model-based property test.
#[derive(Debug, Clone)]
enum PendingOp {
    /// Reserve a waiter slot.
    Register(u8),
    /// Install a callback waiter (the value is a unique token assigned at
    /// execution time, so every fire can be attributed to its callback).
    RegisterCb(u8),
    /// Deliver a value.
    Fulfill(u8, u32),
    /// Non-blocking take.
    TryTake(u8),
    /// Force the TTL sweep (with a zero TTL every unclaimed fulfilled slot
    /// is stale, so the sweep's effect is deterministic).
    Sweep,
}

fn pending_op_strategy() -> impl Strategy<Value = PendingOp> {
    prop_oneof![
        (0u8..6).prop_map(PendingOp::Register),
        (0u8..6).prop_map(PendingOp::RegisterCb),
        (0u8..6, any::<u32>()).prop_map(|(id, v)| PendingOp::Fulfill(id, v)),
        (0u8..6).prop_map(PendingOp::TryTake),
        Just(PendingOp::Sweep),
    ]
}

/// Reference model of one slot's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelSlot {
    Waiting,
    Ready(u32),
    /// Callback identified by its registration token.
    Callback(u32),
}

/// Drive a [`PendingMap`] and an in-model twin through the same op
/// sequence; every observable (try_take results, callback firings with
/// their values and order, final slot count) must agree.
fn check_pending_map_model(ops: &[PendingOp], store_unregistered: bool, ttl: bool) {
    let map: PendingMap<u32> = PendingMap::new(store_unregistered, ttl.then_some(Duration::ZERO));
    let fired: Arc<Mutex<Vec<(u32, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut model: HashMap<u8, ModelSlot> = HashMap::new();
    let mut expected_fired: Vec<(u32, u32)> = Vec::new();
    let mut next_token = 0u32;

    for op in ops {
        match *op {
            PendingOp::Register(id) => {
                map.register(u64::from(id));
                model.entry(id).or_insert(ModelSlot::Waiting);
            }
            PendingOp::RegisterCb(id) => {
                let token = next_token;
                next_token += 1;
                let fired = Arc::clone(&fired);
                map.register_callback(
                    u64::from(id),
                    Box::new(move |v| fired.lock().unwrap().push((token, v))),
                );
                match model.get(&id) {
                    // A parked value fires the new callback immediately.
                    Some(ModelSlot::Ready(v)) => {
                        expected_fired.push((token, *v));
                        model.remove(&id);
                    }
                    // Overwrites any waiter (a replaced callback is
                    // dropped, never fired — caller misuse, but defined).
                    _ => {
                        model.insert(id, ModelSlot::Callback(token));
                    }
                }
            }
            PendingOp::Fulfill(id, v) => {
                map.fulfill(u64::from(id), v);
                match model.get(&id) {
                    Some(ModelSlot::Callback(token)) => {
                        expected_fired.push((*token, v));
                        model.remove(&id);
                    }
                    Some(_) => {
                        model.insert(id, ModelSlot::Ready(v));
                    }
                    None if store_unregistered => {
                        model.insert(id, ModelSlot::Ready(v));
                    }
                    None => {} // non-storing maps drop unknown ids
                }
            }
            PendingOp::TryTake(id) => {
                let got = map.try_take(u64::from(id));
                let want = match model.get(&id) {
                    Some(ModelSlot::Ready(v)) => {
                        let v = *v;
                        model.remove(&id);
                        Some(v)
                    }
                    _ => None,
                };
                assert_eq!(got, want, "try_take({id}) diverged from the model");
            }
            PendingOp::Sweep => {
                map.sweep();
                if ttl {
                    // Zero TTL: every unclaimed Ready slot is stale.
                    model.retain(|_, s| !matches!(s, ModelSlot::Ready(_)));
                }
            }
        }
    }
    assert_eq!(
        *fired.lock().unwrap(),
        expected_fired,
        "callback firings (values and order) diverged from the model"
    );
    assert_eq!(map.len(), model.len(), "slot counts diverged");
}

proptest! {
    /// Linear memory is a faithful byte store: any sequence of in-bounds
    /// writes reads back exactly.
    #[test]
    fn memory_read_after_write(
        writes in prop::collection::vec(
            (0usize..3 * PAGE_SIZE - 64, prop::collection::vec(any::<u8>(), 1..64)),
            1..24,
        )
    ) {
        let mut mem = LinearMemory::new(3, 3).unwrap();
        let mut model = vec![0u8; 3 * PAGE_SIZE];
        for (addr, data) in &writes {
            mem.write(*addr, data).unwrap();
            model[*addr..*addr + data.len()].copy_from_slice(data);
        }
        prop_assert_eq!(mem.to_vec(), model);
    }

    /// Snapshots are immutable: no write to the source or any restored copy
    /// can change what later restores observe.
    #[test]
    fn snapshot_immutability(
        pre in prop::collection::vec((0usize..PAGE_SIZE - 8, any::<u64>()), 1..12),
        post in prop::collection::vec((0usize..PAGE_SIZE - 8, any::<u64>()), 1..12),
    ) {
        let mut mem = LinearMemory::new(1, 2).unwrap();
        for (addr, v) in &pre {
            mem.write_u64(*addr, *v).unwrap();
        }
        let expected = mem.to_vec();
        let snap = mem.snapshot();
        // Mutate the original and one restored copy.
        for (addr, v) in &post {
            mem.write_u64(*addr, *v).unwrap();
        }
        let mut restored1 = LinearMemory::restore(&snap);
        for (addr, v) in &post {
            restored1.write_u64(*addr, v.wrapping_add(1)).unwrap();
        }
        // A fresh restore still sees the snapshot-time contents.
        let restored2 = LinearMemory::restore(&snap);
        prop_assert_eq!(restored2.to_vec(), expected);
    }

    /// Memory snapshots survive serialisation (the cross-host path).
    #[test]
    fn snapshot_serialisation_roundtrip(
        writes in prop::collection::vec((0usize..2 * PAGE_SIZE - 8, any::<u64>()), 0..8)
    ) {
        let mut mem = LinearMemory::new(2, 4).unwrap();
        for (addr, v) in &writes {
            mem.write_u64(*addr, *v).unwrap();
        }
        let expected = mem.to_vec();
        let snap = mem.snapshot();
        let back = MemorySnapshot::from_bytes(&snap.to_bytes()).unwrap();
        prop_assert_eq!(LinearMemory::restore(&back).to_vec(), expected);
    }

    /// Shared-region writes through one mapping are exactly what every other
    /// mapping reads (zero-copy aliasing, Fig. 2).
    #[test]
    fn shared_region_aliasing(
        writes in prop::collection::vec(
            (0usize..PAGE_SIZE - 16, prop::collection::vec(any::<u8>(), 1..16)),
            1..10,
        )
    ) {
        let region = SharedRegion::new(PAGE_SIZE);
        let mut a = LinearMemory::new(1, 4).unwrap();
        let mut b = LinearMemory::new(2, 4).unwrap();
        let base_a = a.map_shared(&region).unwrap();
        let base_b = b.map_shared(&region).unwrap();
        for (off, data) in &writes {
            a.write(base_a + off, data).unwrap();
        }
        for (off, data) in &writes {
            let mut buf = vec![0u8; data.len()];
            b.read(base_b + off, &mut buf).unwrap();
            // Later writes may overlap earlier ones; re-read via region for
            // the authoritative value.
            let mut expect = vec![0u8; data.len()];
            region.read(*off, &mut expect).unwrap();
            prop_assert_eq!(buf, expect);
        }
    }

    /// The trusted decoder never panics on arbitrary bytes and never accepts
    /// then mis-executes garbage: decode either errors or yields a module
    /// that re-encodes canonically.
    #[test]
    fn module_decoder_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(module) = decode_module(&bytes) {
            // Anything accepted must round-trip through our own encoder.
            let re = encode_module(&module);
            prop_assert_eq!(decode_module(&re).unwrap(), module);
        }
    }

    /// Bit-flipping a valid module binary must never panic the
    /// decode/validate pipeline (SFI's upload gate is total).
    #[test]
    fn upload_gate_survives_bitflips(flips in prop::collection::vec((any::<u16>(), any::<u8>()), 1..8)) {
        let module = lang::compile(
            "int main() { int acc = 0; for (int i = 0; i < 10; i = i + 1) { acc = acc + i; } return acc; }",
        )
        .unwrap();
        let mut bytes = encode_module(&module);
        for (pos, val) in &flips {
            let idx = *pos as usize % bytes.len();
            bytes[idx] ^= *val;
        }
        // Must not panic; may succeed (benign flip) or fail.
        let _ = ObjectModule::compile(&bytes);
    }

    /// FL programs that compile always pass the FVM validator — the
    /// toolchain can never produce modules the trusted gate rejects.
    #[test]
    fn fl_codegen_always_validates(
        a in -1000i32..1000,
        b in 1i32..1000,
        loops in 1u8..5,
    ) {
        let src = format!(
            r#"
            int main() {{
                int acc = {a};
                for (int i = 0; i < {loops}; i = i + 1) {{
                    if (acc > 0 && i % 2 == 0) {{
                        acc = acc - {b};
                    }} else {{
                        acc = acc + i * {b};
                    }}
                }}
                return acc;
            }}
            "#
        );
        let module = lang::compile(&src).unwrap();
        prop_assert!(faasm::fvm::validate(&module).is_ok());
    }

    /// FL arithmetic agrees with a Rust reference across random inputs (the
    /// guest ISA computes correctly, not just safely).
    #[test]
    fn fl_arithmetic_matches_reference(x in -10_000i32..10_000, y in -10_000i32..10_000) {
        let src = r#"
            int f(int x, int y) {
                int s = x + y;
                int d = x - y;
                int p = (x % 97) * (y % 89);
                int m = 0;
                if (x > y) { m = x; } else { m = y; }
                return s * 3 + d - p + m;
            }
        "#;
        let module = lang::compile(src).unwrap();
        let object = ObjectModule::prepare(module).unwrap();
        let mut inst = faasm::fvm::Instance::new(
            object,
            &faasm::fvm::Linker::new(),
            Box::new(()),
        )
        .unwrap();
        let got = inst
            .invoke("f", &[faasm::fvm::Val::I32(x), faasm::fvm::Val::I32(y)])
            .unwrap()
            .unwrap();
        let s = x.wrapping_add(y);
        let d = x.wrapping_sub(y);
        let p = (x % 97).wrapping_mul(y % 89);
        let m = x.max(y);
        let expect = s.wrapping_mul(3).wrapping_add(d).wrapping_sub(p).wrapping_add(m);
        prop_assert_eq!(got, faasm::fvm::Val::I32(expect));
    }

    /// Random expression trees: the FL compiler + FVM interpreter agree with
    /// a Rust reference evaluator on every tree and input (the compiler
    /// differential test promised by DESIGN.md §6).
    #[test]
    fn fl_random_expression_trees_match_reference(
        tree in expr_strategy(),
        x in any::<i32>(),
        y in any::<i32>(),
    ) {
        let src = format!("int f(int x, int y) {{ return {}; }}", tree.render());
        let module = lang::compile(&src).unwrap();
        let object = ObjectModule::prepare(module).unwrap();
        let mut inst =
            faasm::fvm::Instance::new(object, &faasm::fvm::Linker::new(), Box::new(())).unwrap();
        let got = inst
            .invoke("f", &[faasm::fvm::Val::I32(x), faasm::fvm::Val::I32(y)])
            .unwrap()
            .unwrap();
        prop_assert_eq!(got, faasm::fvm::Val::I32(tree.eval(x, y)));
    }

    /// KVS range semantics: setrange/getrange behave like a byte array with
    /// zero extension, matching a Vec<u8> model.
    #[test]
    fn kvs_range_model(
        ops in prop::collection::vec(
            (0u16..2048, prop::collection::vec(any::<u8>(), 1..32)),
            1..16,
        )
    ) {
        let store = faasm::kvs::KvStore::new();
        let mut model: Vec<u8> = Vec::new();
        for (off, data) in &ops {
            let off = *off as usize;
            store.set_range("k", off, data);
            if model.len() < off + data.len() {
                model.resize(off + data.len(), 0);
            }
            model[off..off + data.len()].copy_from_slice(data);
        }
        prop_assert_eq!(store.get("k"), Some(model.clone()));
        // Random window reads match.
        let win = model.len().min(100);
        prop_assert_eq!(
            store.get_range("k", 0, win),
            Some(model[..win].to_vec())
        );
    }

    /// Gateway requests survive the wire codec for arbitrary field values,
    /// bare and framed — including the ingress trace context.
    #[test]
    fn gateway_request_codec_roundtrip(
        // The vendored proptest tops out at 5-tuples, so the u64 fields
        // share one strategy slot.
        nums in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        tenant in ascii_string(24),
        function in ascii_string(24),
        input in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let (seq, deadline_ms, trace_id, span_id) = nums;
        let trace = TraceCtx { trace_id, span_id };
        let req = GatewayRequest { seq, tenant, function, deadline_ms, trace, input };
        let payload = codec::encode_request(&req);
        prop_assert_eq!(codec::decode_request(&payload).as_ref(), Some(&req));
        // And through the checked frame path.
        let frame = codec::try_encode_frame(&payload).unwrap();
        let (framed, consumed) = codec::decode_frame(&frame).expect("frame decodes");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(codec::decode_request(framed), Some(req));
    }

    /// Batched dispatch messages survive the bus codec: every call keeps
    /// its id, payload and trace context, and the batch send timestamp
    /// rides along for bus-transit spans.
    #[test]
    fn invoke_batch_codec_roundtrip(
        reply_to in any::<u32>(),
        sent_at_ns in any::<u64>(),
        raw_calls in prop::collection::vec(
            (
                (any::<u64>(), ascii_string(16), ascii_string(16)),
                (prop::collection::vec(any::<u8>(), 0..64), any::<u64>(), any::<u64>()),
            ),
            0..6,
        ),
    ) {
        let calls: Vec<CallSpec> = raw_calls
            .into_iter()
            .map(|((id, user, function), (input, trace_id, span_id))| CallSpec {
                id: CallId(id),
                user,
                function,
                input,
                trace: TraceCtx { trace_id, span_id },
            })
            .collect();
        let msg = InstanceMsg::InvokeBatch {
            calls,
            reply_to: HostId(reply_to),
            sent_at_ns,
        };
        prop_assert_eq!(decode_msg(&encode_msg(&msg)), Some(msg));
    }

    /// KVS requests carry the routing epoch and trace context through the
    /// wire codec unchanged, for every request shape.
    #[test]
    fn kvs_request_codec_stamps_epoch_and_trace(
        req in kvs_request_strategy(),
        epoch in any::<u64>(),
        trace_id in any::<u64>(),
        span_id in any::<u64>(),
    ) {
        let trace = TraceCtx { trace_id, span_id };
        let bytes = kvs::codec::encode_request_traced(&req, epoch, trace);
        let (got, got_epoch, got_trace) =
            kvs::codec::decode_request_traced(&bytes).expect("traced request decodes");
        prop_assert_eq!(got, req);
        prop_assert_eq!(got_epoch, epoch);
        prop_assert_eq!(got_trace, trace);
    }

    /// Gateway responses survive the wire codec for every status shape.
    #[test]
    fn gateway_response_codec_roundtrip(
        seq in any::<u64>(),
        status in gateway_status_strategy(),
        output in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let resp = GatewayResponse { seq, status, output };
        let payload = codec::encode_response(&resp);
        prop_assert_eq!(codec::decode_response(&payload), Some(resp));
    }

    /// FrameBuf reassembles any frame sequence from any fragmentation of
    /// the byte stream: chunk boundaries never change what comes out.
    #[test]
    fn framebuf_reassembles_under_arbitrary_splits(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..8),
        chunk_sizes in prop::collection::vec(1usize..64, 1..64),
    ) {
        let stream: Vec<u8> = payloads
            .iter()
            .flat_map(|p| codec::try_encode_frame(p).unwrap())
            .collect();
        let mut fb = FrameBuf::new();
        let mut out: Vec<Vec<u8>> = Vec::new();
        let mut off = 0;
        let mut i = 0;
        while off < stream.len() {
            // Cycle through the generated chunk sizes so every prefix
            // length gets exercised, draining completed frames as we go
            // (the interleaving a service loop performs).
            let n = chunk_sizes[i % chunk_sizes.len()].min(stream.len() - off);
            i += 1;
            fb.feed(&stream[off..off + n]);
            off += n;
            while let Some(frame) = fb.next_frame().unwrap() {
                out.push(frame);
            }
        }
        prop_assert_eq!(out, payloads);
        prop_assert_eq!(fb.pending_bytes(), 0);
    }

    /// PendingMap agrees with a reference model across arbitrary
    /// register/fulfill/take/TTL-sweep interleavings, in all four policy
    /// combinations (store-unregistered × TTL) — the invariant behind the
    /// Pending/Completions unification.
    #[test]
    fn pending_map_matches_model(
        ops in prop::collection::vec(pending_op_strategy(), 0..64),
        store_unregistered in any::<bool>(),
        ttl in any::<bool>(),
    ) {
        check_pending_map_model(&ops, store_unregistered, ttl);
    }

    /// FrameBuf is total on garbage: arbitrary bytes in arbitrary chunks
    /// either frame, stay pending, or error — never panic, and an error
    /// always clears the buffer.
    #[test]
    fn framebuf_total_on_garbage(
        garbage in prop::collection::vec(any::<u8>(), 0..600),
        chunk in 1usize..48,
    ) {
        let mut fb = FrameBuf::new();
        for piece in garbage.chunks(chunk) {
            fb.feed(piece);
            loop {
                match fb.next_frame() {
                    Ok(Some(frame)) => prop_assert!(frame.len() <= MAX_FRAME),
                    Ok(None) => break,
                    Err(_) => {
                        prop_assert_eq!(fb.pending_bytes(), 0);
                        break;
                    }
                }
            }
        }
    }

    /// The batched chunk messages roundtrip through the KVS codec for
    /// arbitrary keys, span lists and write payloads.
    #[test]
    fn kvs_batched_requests_roundtrip(
        key in ascii_string(24),
        spans in prop::collection::vec((any::<u32>(), any::<u32>()), 0..12),
        writes in prop::collection::vec(
            (any::<u32>(), prop::collection::vec(any::<u8>(), 0..40)),
            0..8,
        ),
    ) {
        let req = kvs::Request::MultiGetRange {
            key: key.clone(),
            spans: spans.iter().map(|&(o, l)| (o as u64, l as u64)).collect(),
        };
        let decoded = kvs::codec::decode_request(&kvs::codec::encode_request(&req)).unwrap();
        prop_assert_eq!(decoded, req);
        let req = kvs::Request::MultiSetRange {
            key,
            writes: writes
                .iter()
                .map(|(o, d)| (*o as u64, d.clone()))
                .collect(),
        };
        let decoded = kvs::codec::decode_request(&kvs::codec::encode_request(&req)).unwrap();
        prop_assert_eq!(decoded, req);
    }

    /// The span-list response roundtrips, present or missing.
    #[test]
    fn kvs_spans_response_roundtrips(
        runs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 0..10),
        present in any::<bool>(),
    ) {
        let resp = kvs::Response::Spans(present.then_some(runs));
        let decoded = kvs::codec::decode_response(&kvs::codec::encode_response(&resp)).unwrap();
        prop_assert_eq!(decoded, resp);
    }

    /// The KVS codec is total on garbage: arbitrary bytes decode to a
    /// value or an error, never a panic or an oversized preallocation.
    #[test]
    fn kvs_codec_total_on_garbage(garbage in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = kvs::codec::decode_request(&garbage);
        let _ = kvs::codec::decode_response(&garbage);
    }

    /// Rendezvous routing is deterministic and stable: two independently
    /// built clients over the same shard count agree on every key, and
    /// growing the shard set only ever moves keys to the *new* shard.
    #[test]
    fn rendezvous_routing_is_stable(
        shards in 1usize..6,
        keys in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let build = |n: usize| {
            ShardedKvClient::new(
                (0..n)
                    .map(|_| KvClient::local(std::sync::Arc::new(KvStore::new())))
                    .collect(),
            )
        };
        let a = build(shards);
        let b = build(shards);
        let grown = build(shards + 1);
        for k in &keys {
            let key = format!("state:{k}");
            let owner = a.shard_index(&key);
            prop_assert!(owner < shards);
            prop_assert_eq!(b.shard_index(&key), owner, "routing is a pure function");
            let new_owner = grown.shard_index(&key);
            prop_assert!(
                new_owner == owner || new_owner == shards,
                "adding a shard may move a key only onto the new shard \
                 (was {}, now {})",
                owner,
                new_owner
            );
        }
    }

    /// The epoch N→N+1 rendezvous delta is exactly the keys whose owner
    /// changed — no gratuitous movement — and every moved key lands on the
    /// newly added shard. Shrinking back moves exactly the retiring
    /// shard's keys. (The migration coordinator and the donors' export
    /// predicate both stand on this.)
    #[test]
    fn rendezvous_epoch_delta_is_exact(
        shards in 1usize..6,
        raw in prop::collection::vec(any::<u64>(), 1..128),
    ) {
        let keys: Vec<String> = raw.iter().map(|k| format!("state:{k}")).collect();

        // Identity epoch change: nothing moves.
        prop_assert!(kvs::rendezvous_delta(&keys, shards, shards).is_empty());

        // Grow by one: the delta is exactly the owner-changed set.
        let grow: HashMap<String, usize> =
            kvs::rendezvous_delta(&keys, shards, shards + 1).into_iter().collect();
        for key in &keys {
            let old = kvs::shard_index_for(key, shards);
            let new = kvs::shard_index_for(key, shards + 1);
            if old == new {
                prop_assert!(
                    !grow.contains_key(key.as_str()),
                    "{key} did not change owner but is in the delta"
                );
            } else {
                prop_assert_eq!(
                    grow.get(key.as_str()),
                    Some(&new),
                    "owner-changed key missing from the delta or mistargeted"
                );
                prop_assert_eq!(
                    new, shards,
                    "growth may move keys only onto the new shard"
                );
            }
        }

        // Shrink back: exactly the retiring shard's keys move, each to its
        // owner under the shrunk table.
        let shrink: HashMap<String, usize> =
            kvs::rendezvous_delta(&keys, shards + 1, shards).into_iter().collect();
        for key in &keys {
            let was = kvs::shard_index_for(key, shards + 1);
            if was == shards {
                prop_assert_eq!(
                    shrink.get(key.as_str()),
                    Some(&kvs::shard_index_for(key, shards))
                );
            } else {
                prop_assert!(!shrink.contains_key(key.as_str()));
            }
        }
    }

    /// Ordered replica sets keep the rendezvous invariants the replicated
    /// tier stands on: rank 0 is the single-owner routing, growing the tier
    /// can only insert the newcomer into a set (minimal movement), the
    /// primary-change set is exactly the rendezvous delta, and tombstoning
    /// a slot promotes within the extended ranking — sets not containing
    /// the dead slot are untouched.
    #[test]
    fn replica_sets_are_stable_and_minimal(
        shards in 1usize..6,
        replication in 1usize..4,
        raw in prop::collection::vec(any::<u64>(), 1..96),
    ) {
        let keys: Vec<String> = raw.iter().map(|k| format!("state:{k}")).collect();
        let delta: HashMap<String, usize> =
            kvs::rendezvous_delta(&keys, shards, shards + 1).into_iter().collect();
        for key in &keys {
            let set = kvs::replica_set_for(key, shards, replication);
            prop_assert_eq!(set.len(), replication.min(shards));
            let distinct: std::collections::HashSet<&usize> = set.iter().collect();
            prop_assert_eq!(distinct.len(), set.len(), "ranks must be distinct");
            prop_assert_eq!(set[0], kvs::shard_index_for(key, shards));

            // Growth: the grown set draws only from the old set plus the
            // newcomer, and the primary changes exactly on the delta keys.
            let grown = kvs::replica_set_for(key, shards + 1, replication);
            for slot in &grown {
                prop_assert!(
                    set.contains(slot) || *slot == shards,
                    "growth may only insert the new shard into a replica set"
                );
            }
            prop_assert_eq!(
                grown[0] != set[0],
                delta.contains_key(key.as_str()),
                "primary changes exactly on the rendezvous delta"
            );

            // Tombstones: the live set is the extended ranking with the
            // dead slot struck out, so failover is a promotion — and sets
            // that never contained the victim do not move at all.
            if shards > 1 {
                for victim in [set[0], shards - 1] {
                    let live = kvs::replica_set_live(key, shards, &[victim], replication);
                    let mut expect: Vec<usize> =
                        kvs::replica_set_for(key, shards, replication + 1)
                            .into_iter()
                            .filter(|s| *s != victim)
                            .collect();
                    expect.truncate(replication);
                    prop_assert_eq!(&live, &expect, "tombstone must promote in rank order");
                    if !set.contains(&victim) {
                        prop_assert_eq!(&live, &set, "unaffected sets must not move");
                    }
                    prop_assert_eq!(
                        live[0],
                        kvs::primary_index_live(key, shards, &[victim]),
                        "the allocation-free primary must match rank 0"
                    );
                }
            }
        }
    }

    /// The migration-entry codec roundtrips arbitrary key state — values,
    /// set members and lock owners survive the wire bit-exact.
    #[test]
    fn kvs_handoff_roundtrips(
        entries in prop::collection::vec(
            (
                ascii_string(16),
                (any::<bool>(), prop::collection::vec(any::<u8>(), 0..40)),
                prop::collection::vec(prop::collection::vec(any::<u8>(), 0..12), 0..4),
                (any::<bool>(), any::<u64>(), any::<u32>(), any::<u64>()),
            ),
            0..6,
        ),
        epoch in any::<u64>(),
    ) {
        let entries: Vec<kvs::KeyMigration> = entries
            .into_iter()
            .map(|(key, (has_value, value), set, (locked, owner, ms, version))| {
                kvs::KeyMigration {
                    key,
                    value: has_value.then_some(value),
                    set,
                    lock: locked.then_some(kvs::LockMigration::Writer {
                        owner,
                        remaining_ms: u64::from(ms),
                    }),
                    version,
                }
            })
            .collect();
        let req = kvs::Request::Handoff { entries: entries.clone() };
        let bytes = kvs::codec::encode_request_at(&req, epoch);
        prop_assert_eq!(
            kvs::codec::decode_request_epoch(&bytes).unwrap(),
            (req, epoch)
        );
        let resp = kvs::Response::Handoff(entries);
        let bytes = kvs::codec::encode_response(&resp);
        prop_assert_eq!(kvs::codec::decode_response(&bytes).unwrap(), resp);
    }

    /// Per-key mutation versions are monotone for the life of the tier:
    /// every mutating op bumps (never rewinds) the counter, a migration
    /// export/import carries it to the receiving store, and replaying an
    /// old handoff — the replica-rebuild path — max-merges instead of
    /// regressing. The cache's read-your-writes floor rides entirely on
    /// this invariant.
    #[test]
    fn kvs_versions_never_regress_across_migrate_and_rebuild(
        ops in prop::collection::vec(store_op_strategy(), 1..80),
    ) {
        let a = KvStore::new();
        let mut high: HashMap<String, u64> = HashMap::new();
        for op in &ops {
            let key = store_op_key(op);
            apply_store_op(&a, op);
            let v = a.version_of(&key);
            let prev = high.entry(key.clone()).or_insert(0);
            prop_assert!(v > *prev, "op {op:?} must bump {key}: {v} vs {prev}");
            *prev = v;
        }

        // Migrate every key to a fresh store (the donor half of a
        // reshard): versions travel with the data.
        let entries = a.export_keys(|_| true);
        let b = KvStore::new();
        b.import_keys(&entries);
        for (key, v) in &high {
            prop_assert!(
                b.version_of(key) >= *v,
                "{key} regressed across migration: {} < {v}",
                b.version_of(key)
            );
        }

        // Keep mutating the receiving store, then replay the stale export
        // (a rebuild pulling from a lagging replica): import max-merges,
        // so no key ever rewinds.
        for op in &ops {
            apply_store_op(&b, op);
        }
        let before: HashMap<String, u64> = high
            .keys()
            .map(|k| (k.clone(), b.version_of(k)))
            .collect();
        b.import_keys(&entries);
        for (key, v) in &before {
            prop_assert!(
                b.version_of(key) >= *v,
                "{key} rewound by stale handoff replay: {} < {v}",
                b.version_of(key)
            );
        }
    }

    /// Rendezvous routing is balanced: 1000 distinct keys over 4 shards
    /// leave no shard above twice the mean (and none empty).
    #[test]
    fn rendezvous_routing_is_balanced(salt in any::<u32>()) {
        let client = ShardedKvClient::new(
            (0..4)
                .map(|_| KvClient::local(std::sync::Arc::new(KvStore::new())))
                .collect(),
        );
        let keys = 1000usize;
        let mut per = [0usize; 4];
        for i in 0..keys {
            per[client.shard_index(&format!("key:{salt}:{i}"))] += 1;
        }
        let mean = keys as f64 / 4.0;
        for (shard, n) in per.iter().enumerate() {
            prop_assert!(
                (*n as f64) <= 2.0 * mean && *n > 0,
                "shard {} holds {} of {} keys",
                shard,
                n,
                keys
            );
        }
    }
}
