//! Platform parity: the paper's methodological requirement that "all
//! experiments are implemented using the same code for both FAASM and
//! Knative" (§6.1). These tests run identical workload code on both
//! platforms and require identical *answers* with the documented
//! *cost* differences (sharing vs. shipping).

use faasm::baseline::{BaselineConfig, BaselinePlatform, ImageConfig};
use faasm::core::Cluster;
use faasm::workloads::data::{rcv1_like, synth_images};
use faasm::workloads::{inference, matmul, sgd};

fn small_platform(hosts: usize) -> BaselinePlatform {
    BaselinePlatform::with_config(BaselineConfig {
        hosts,
        image: ImageConfig {
            image_bytes: 256 * 1024,
            layers: 3,
            boot_passes: 2,
        },
        ..BaselineConfig::default()
    })
}

#[test]
fn sgd_converges_identically_enough_on_both_platforms() {
    let dataset = rcv1_like(192, 64, 8, 11);
    let tasks = sgd::partition(192, 4, 64, 0.5, 16);

    let cluster = Cluster::new(2);
    sgd::register_faasm(&cluster, "ml");
    sgd::upload_dataset(cluster.kv().as_ref(), &dataset).unwrap();
    for _ in 0..2 {
        let ids: Vec<_> = tasks
            .iter()
            .map(|t| cluster.invoke_async("ml", "sgd_update", t.to_bytes()))
            .collect();
        for id in ids {
            assert_eq!(cluster.await_result(id).return_code(), 0);
        }
    }
    let acc_faasm = sgd::accuracy(cluster.kv().as_ref(), &dataset).unwrap();

    let platform = small_platform(2);
    sgd::register_baseline(&platform, "ml");
    sgd::upload_dataset(platform.kv().as_ref(), &dataset).unwrap();
    for _ in 0..2 {
        let ids: Vec<_> = tasks
            .iter()
            .map(|t| platform.invoke_async("ml", "sgd_update", t.to_bytes()))
            .collect();
        for id in ids {
            assert_eq!(platform.await_result(id).return_code(), 0);
        }
    }
    let acc_baseline = sgd::accuracy(platform.kv().as_ref(), &dataset).unwrap();

    // HOGWILD! interleavings differ, but both must genuinely learn.
    assert!(acc_faasm > 0.7, "faasm accuracy {acc_faasm}");
    assert!(acc_baseline > 0.7, "baseline accuracy {acc_baseline}");
}

#[test]
fn matmul_results_are_bitwise_identical_across_platforms() {
    let n = 16;

    let cluster = Cluster::new(2);
    matmul::register_faasm(&cluster, "la");
    matmul::upload_matrices(cluster.kv().as_ref(), n, 3).unwrap();
    let r = cluster.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
    assert_eq!(r.return_code(), 0, "{:?}", r.status);
    let c_faasm = matmul::read_result(cluster.kv().as_ref(), n).unwrap();

    let platform = small_platform(2);
    matmul::register_baseline(&platform, "la");
    matmul::upload_matrices(platform.kv().as_ref(), n, 3).unwrap();
    let r = platform.invoke("la", "mm_main", (n as u32).to_le_bytes().to_vec());
    assert_eq!(r.return_code(), 0, "{:?}", r.status);
    let c_baseline = matmul::read_result(platform.kv().as_ref(), n).unwrap();

    assert_eq!(c_faasm, c_baseline, "identical code, identical result");
}

#[test]
fn inference_classifications_match_across_platforms() {
    let imgs = synth_images(3, inference::SIDE, 21);

    let cluster = Cluster::new(1);
    inference::setup_faasm(&cluster, "serve", 5);
    let platform = small_platform(1);
    inference::setup_baseline(&platform, "serve", 5);

    for img in &imgs {
        let a = cluster.invoke("serve", "infer", img.clone());
        let b = platform.invoke("serve", "infer", img.clone());
        assert_eq!(a.return_code(), 0);
        assert_eq!(b.return_code(), 0);
        assert_eq!(a.output, b.output, "same model, same scores");
    }
}

#[test]
fn baseline_ships_more_bytes_and_bills_more_memory() {
    // The central quantitative contrast of §6.2 at miniature scale.
    let dataset = rcv1_like(128, 64, 8, 5);
    let tasks = sgd::partition(128, 4, 64, 0.5, 16);

    let cluster = Cluster::new(2);
    sgd::register_faasm(&cluster, "ml");
    sgd::upload_dataset(cluster.kv().as_ref(), &dataset).unwrap();
    let ids: Vec<_> = tasks
        .iter()
        .map(|t| cluster.invoke_async("ml", "sgd_update", t.to_bytes()))
        .collect();
    for id in ids {
        assert_eq!(cluster.await_result(id).return_code(), 0);
    }
    let faasm_bytes = cluster.fabric().stats().total_bytes();
    let faasm_billable = cluster.billable_gb_seconds();

    let platform = small_platform(2);
    sgd::register_baseline(&platform, "ml");
    sgd::upload_dataset(platform.kv().as_ref(), &dataset).unwrap();
    let ids: Vec<_> = tasks
        .iter()
        .map(|t| platform.invoke_async("ml", "sgd_update", t.to_bytes()))
        .collect();
    for id in ids {
        assert_eq!(platform.await_result(id).return_code(), 0);
    }
    let baseline_bytes = platform.fabric().stats().total_bytes();
    let baseline_billable = platform.billable_gb_seconds();

    assert!(
        baseline_bytes > faasm_bytes,
        "containers ship whole values: {baseline_bytes} vs {faasm_bytes}"
    );
    assert!(
        baseline_billable > faasm_billable,
        "containers bill full private RSS: {baseline_billable} vs {faasm_billable}"
    );
}

#[test]
fn cold_start_latency_ordering_holds() {
    // Tab. 3's ordering at test scale: container cold start ≫ Faaslet cold
    // start; warm ≈ free on both.
    let platform = small_platform(1);
    inference::setup_baseline(&platform, "serve", 5);
    let img = synth_images(1, inference::SIDE, 1).remove(0);
    platform.invoke("serve", "infer", img.clone());
    let container_cold_ns = platform.hosts()[0].metrics().mean_init_ns();

    let cluster = Cluster::new(1);
    inference::setup_faasm(&cluster, "serve", 5);
    cluster.invoke("serve", "infer", img);
    let faaslet_cold_ns = cluster.instances()[0].metrics().mean_init_ns();

    assert!(
        container_cold_ns > faaslet_cold_ns,
        "container init {container_cold_ns} ns must exceed faaslet init {faaslet_cold_ns} ns"
    );
}
