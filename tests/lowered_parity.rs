//! Lowered-vs-interpreter parity through the full cluster path: the FVM
//! execution tier must change speed, never answers. Each FL workload
//! (matmul, SGD, inference) is uploaded to two clusters that differ only in
//! `ClusterConfig::exec_tier` and must produce bitwise identical outputs —
//! including the inference run, whose model is built by an `init` export so
//! every start after the first restores a Proto-Faaslet snapshot taken
//! mid-workload (model materialised, forward passes still to come).

use faasm::core::{Cluster, ClusterConfig, UploadOptions};
use faasm::fvm::ExecTier;

fn cluster(tier: ExecTier, hosts: usize) -> Cluster {
    Cluster::with_config(ClusterConfig {
        hosts,
        exec_tier: tier,
        ..ClusterConfig::default()
    })
}

/// Dense f64 matmul with deterministic in-guest operands; outputs the full
/// product matrix, so a single flipped bit anywhere fails the test.
const MATMUL_FL: &str = r#"
    extern void write_call_output(ptr int buf, int len);
    int main() {
        int n = 12;
        int cbase = 8192 + 16 * n * n;
        ptr double A = (ptr double) 8192;
        ptr double B = A + n * n;
        ptr double C = (ptr double) cbase;
        for (int i = 0; i < n; i = i + 1) {
            for (int j = 0; j < n; j = j + 1) {
                A[i * n + j] = (double) ((i * 7 + j * 3) % 11) * 0.25;
                B[i * n + j] = (double) ((i * 5 + j) % 13) * 0.125;
            }
        }
        for (int i = 0; i < n; i = i + 1) {
            for (int j = 0; j < n; j = j + 1) {
                double acc = 0.0;
                for (int k = 0; k < n; k = k + 1) {
                    acc = acc + A[i * n + k] * B[k * n + j];
                }
                C[i * n + j] = acc;
            }
        }
        write_call_output((ptr int) cbase, n * n * 8);
        return 0;
    }
"#;

/// Three epochs of sequential least-squares SGD over a deterministic
/// synthetic dataset; outputs the final weight vector.
const SGD_FL: &str = r#"
    extern void write_call_output(ptr int buf, int len);
    int main() {
        int d = 16;
        int m = 24;
        ptr double w = (ptr double) 8192;
        ptr double x = (ptr double) 12288;
        for (int j = 0; j < d; j = j + 1) { w[j] = 0.0; }
        for (int e = 0; e < 3; e = e + 1) {
            for (int s = 0; s < m; s = s + 1) {
                for (int j = 0; j < d; j = j + 1) {
                    x[j] = (double) ((s * 13 + j * 7) % 19) * 0.1 - 0.9;
                }
                double y = (double) ((s * 3) % 7) * 0.5;
                double err = 0.0 - y;
                for (int j = 0; j < d; j = j + 1) { err = err + w[j] * x[j]; }
                for (int j = 0; j < d; j = j + 1) {
                    w[j] = w[j] - 0.01 * err * x[j];
                }
            }
        }
        write_call_output((ptr int) 8192, d * 8);
        return 0;
    }
"#;

/// Two-layer MLP. `init` materialises the weights (the first half of the
/// workload); the Proto-Faaslet snapshot is captured after it runs, so
/// restored starts resume mid-workload with the model already in memory.
const INFER_FL: &str = r#"
    extern int input_size();
    extern int read_call_input(ptr int buf, int len);
    extern void write_call_output(ptr int buf, int len);
    void init() {
        ptr double w1 = (ptr double) 8192;
        ptr double w2 = (ptr double) 12288;
        for (int j = 0; j < 8; j = j + 1) {
            for (int i = 0; i < 16; i = i + 1) {
                w1[j * 16 + i] = (double) ((j * 31 + i * 17) % 23) * 0.05 - 0.5;
            }
        }
        for (int k = 0; k < 4; k = k + 1) {
            for (int j = 0; j < 8; j = j + 1) {
                w2[k * 8 + j] = (double) ((k * 11 + j * 5) % 17) * 0.1 - 0.8;
            }
        }
    }
    int main() {
        int n = input_size();
        read_call_input((ptr int) 4096, n);
        ptr int px = (ptr int) 4096;
        ptr double w1 = (ptr double) 8192;
        ptr double w2 = (ptr double) 12288;
        ptr double f = (ptr double) 16384;
        ptr double h = (ptr double) 20480;
        ptr double s = (ptr double) 24576;
        for (int i = 0; i < 16; i = i + 1) {
            f[i] = (double) (px[i] % 256) * 0.01;
        }
        for (int j = 0; j < 8; j = j + 1) {
            double acc = 0.0;
            for (int i = 0; i < 16; i = i + 1) {
                acc = acc + w1[j * 16 + i] * f[i];
            }
            if (acc < 0.0) { acc = 0.0; }
            h[j] = acc;
        }
        for (int k = 0; k < 4; k = k + 1) {
            double acc = 0.0;
            for (int j = 0; j < 8; j = j + 1) {
                acc = acc + w2[k * 8 + j] * h[j];
            }
            s[k] = acc;
        }
        write_call_output((ptr int) 24576, 32);
        return 0;
    }
"#;

/// Output transcript of one tier's run.
type Transcript = Vec<Vec<u8>>;

/// Run `calls` invocations of one uploaded function on both tiers and
/// return the two output transcripts plus each cluster's summed guest-CPU
/// counters (fuel, ops retired).
fn run_on_both(
    name: &str,
    src: &str,
    options: &UploadOptions,
    inputs: &[Vec<u8>],
    hosts: usize,
) -> (Transcript, Transcript, [(u64, u64); 2]) {
    let mut outs = Vec::new();
    let mut cpu = [(0, 0); 2];
    for (slot, tier) in [ExecTier::Interpreter, ExecTier::Lowered]
        .iter()
        .enumerate()
    {
        let c = cluster(*tier, hosts);
        c.upload_fl("par", name, src, options.clone()).unwrap();
        let mut transcript = Vec::new();
        for input in inputs {
            let r = c.invoke("par", name, input.clone());
            assert_eq!(r.return_code(), 0, "{tier:?} {name}: {:?}", r.status);
            transcript.push(r.output);
        }
        let mut fuel = 0;
        let mut instrs = 0;
        for inst in c.instances() {
            let s = inst.metrics().snapshot();
            fuel += s.fuel;
            instrs += s.guest_instrs;
        }
        cpu[slot] = (fuel, instrs);
        outs.push(transcript);
    }
    let lowered = outs.pop().unwrap();
    let interp = outs.pop().unwrap();
    (interp, lowered, cpu)
}

#[test]
fn matmul_bitwise_identical_across_tiers() {
    let (interp, lowered, cpu) = run_on_both(
        "mm",
        MATMUL_FL,
        &UploadOptions::default(),
        &vec![Vec::new(); 3],
        2,
    );
    assert_eq!(interp, lowered, "tier must be invisible in answers");
    assert_eq!(interp[0].len(), 12 * 12 * 8);
    let [(i_fuel, i_instrs), (l_fuel, l_instrs)] = cpu;
    // Fuel is the tier-independent source-instruction count; retired ops
    // are engine dispatches, which fusion and structural elision shrink.
    assert_eq!(i_fuel, l_fuel, "identical work, identical fuel");
    assert!(
        l_instrs < i_instrs,
        "lowering must retire fewer ops ({l_instrs} vs {i_instrs})"
    );
}

#[test]
fn sgd_weights_bitwise_identical_across_tiers() {
    let (interp, lowered, _) = run_on_both(
        "sgd",
        SGD_FL,
        &UploadOptions::default(),
        &vec![Vec::new(); 2],
        2,
    );
    assert_eq!(interp, lowered, "identical schedule, identical weights");
    assert_eq!(interp[0].len(), 16 * 8);
}

#[test]
fn inference_through_proto_restore_bitwise_identical_across_tiers() {
    // 8 calls across 2 hosts: the first start is cold (runs `init`, captures
    // the mid-workload proto), every later start on the other host restores
    // the snapshot — on both tiers.
    let options = UploadOptions {
        init: Some("init".into()),
        ..UploadOptions::default()
    };
    let inputs: Vec<Vec<u8>> = (0..8u8)
        .map(|i| {
            (0..64u8)
                .map(|b| b.wrapping_mul(7).wrapping_add(i))
                .collect()
        })
        .collect();
    let (interp, lowered, _) = run_on_both("infer", INFER_FL, &options, &inputs, 2);
    assert_eq!(interp, lowered, "snapshot/restore must preserve parity");
    assert_eq!(interp[0].len(), 32);
    // Distinct inputs must actually produce distinct scores (the model is
    // live, not a constant function).
    assert_ne!(interp[0], interp[7]);
}
