//! End-to-end tests for the ingress tier: multi-tenant floods through the
//! gateway must be fair, shed explicitly, and agree with direct
//! `Cluster::invoke` results.

use std::sync::Arc;
use std::time::Duration;

use faasm::core::{Cluster, NativeApi, NativeGuest};
use faasm::gateway::codec::{self, GatewayRequest};
use faasm::gateway::{AutoscaleConfig, Gateway, GatewayConfig, GatewayStatus, TenantPolicy};

const ECHO: &str = r#"
    extern int input_size();
    extern int read_call_input(ptr int buf, int len);
    extern void write_call_output(ptr int buf, int len);
    int main() {
        int n = input_size();
        read_call_input((ptr int) 1024, n);
        write_call_output((ptr int) 1024, n);
        return 0;
    }
"#;

/// A deterministic-latency guest: sleeps ~2 ms, then echoes.
fn slow_guest() -> Arc<dyn NativeGuest> {
    Arc::new(|api: &mut NativeApi<'_>| {
        std::thread::sleep(Duration::from_millis(2));
        let input = api.input().to_vec();
        api.write_output(&input);
        Ok(0)
    })
}

fn cluster_with_tenants(hosts: usize) -> Arc<Cluster> {
    let cluster = Arc::new(Cluster::new(hosts));
    for tenant in ["alice", "bob"] {
        cluster
            .upload_fl(tenant, "echo", ECHO, Default::default())
            .unwrap();
        cluster.register_native(tenant, "slow", slow_guest(), false);
    }
    cluster
}

#[test]
fn gateway_results_match_direct_invoke() {
    let cluster = cluster_with_tenants(2);
    let gateway = Gateway::start(Arc::clone(&cluster), GatewayConfig::default());
    for i in 0..10u8 {
        let input = vec![i, i + 1, i + 2];
        let via_gateway = gateway.call("alice", "echo", input.clone());
        let direct = cluster.invoke("alice", "echo", input.clone());
        assert_eq!(via_gateway.status, GatewayStatus::Ok, "request {i}");
        assert_eq!(
            via_gateway.output, direct.output,
            "gateway and direct results must be identical"
        );
        assert_eq!(via_gateway.output, input);
    }
    // Guest return codes survive the trip too.
    cluster
        .upload_fl(
            "bob",
            "fail",
            "int main() { return 7; }",
            Default::default(),
        )
        .unwrap();
    let resp = gateway.call("bob", "fail", vec![]);
    assert_eq!(resp.status, GatewayStatus::Failed(7));
    let direct = cluster.invoke("bob", "fail", vec![]);
    assert_eq!(direct.return_code(), 7);
}

#[test]
fn wire_frames_roundtrip_through_the_gateway() {
    let cluster = cluster_with_tenants(1);
    let gateway = Gateway::start(Arc::clone(&cluster), GatewayConfig::default());
    let req = GatewayRequest {
        seq: 777,
        tenant: "alice".into(),
        function: "echo".into(),
        deadline_ms: 0,
        trace: faasm::telemetry::TraceCtx::NONE,
        input: b"over the wire".to_vec(),
    };
    let frame = codec::encode_frame(&codec::encode_request(&req));
    let resp_frame = gateway.handle_frame(&frame);
    let (payload, _) = codec::decode_frame(&resp_frame).expect("framed response");
    let resp = codec::decode_response(payload).expect("decodable response");
    assert_eq!(resp.seq, 777, "response echoes the client seq");
    assert_eq!(resp.status, GatewayStatus::Ok);
    assert_eq!(resp.output, b"over the wire");

    // Malformed bytes get an explicit error, not a hang or a panic.
    let bad = gateway.handle_frame(&codec::encode_frame(b"not a request"));
    let (payload, _) = codec::decode_frame(&bad).unwrap();
    let resp = codec::decode_response(payload).unwrap();
    assert!(matches!(resp.status, GatewayStatus::Error(_)));
}

#[test]
fn overload_is_shed_with_explicit_status_not_a_hang() {
    let cluster = cluster_with_tenants(1);
    let gateway = Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 1,
            max_batch: 1,
            autoscale: None,
            ..GatewayConfig::default()
        },
    );
    // Tiny bounded queue: the flood must overflow it.
    gateway.set_tenant_policy(
        "alice",
        TenantPolicy {
            queue_cap: 4,
            ..TenantPolicy::default()
        },
    );
    let tickets: Vec<u64> = (0..64)
        .map(|i| gateway.submit("alice", "slow", vec![i]))
        .collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| gateway.wait(t)).collect();
    let shed = responses
        .iter()
        .filter(|r| r.status == GatewayStatus::Overloaded)
        .count();
    let ok = responses
        .iter()
        .filter(|r| r.status == GatewayStatus::Ok)
        .count();
    assert!(shed > 0, "a 64-deep burst into a 4-deep queue must shed");
    assert!(ok > 0, "admitted requests still complete");
    assert_eq!(shed + ok, 64, "every request gets a terminal answer");
    assert_eq!(gateway.metrics().shed_overloaded(), shed as u64);
}

#[test]
fn rate_limited_tenants_shed_with_overloaded() {
    let cluster = cluster_with_tenants(1);
    let gateway = Gateway::start(Arc::clone(&cluster), GatewayConfig::default());
    // 1 request/second with a burst of 2: the third immediate request in
    // the burst must bounce off the token bucket.
    gateway.set_tenant_policy("alice", TenantPolicy::rate_limited(1, 2));
    let mut statuses = Vec::new();
    for i in 0..6u8 {
        statuses.push(gateway.call("alice", "echo", vec![i]).status);
    }
    let shed = statuses
        .iter()
        .filter(|s| **s == GatewayStatus::Overloaded)
        .count();
    assert!(
        shed >= 3,
        "rate 1/s burst 2 over 6 requests: got {statuses:?}"
    );
    assert!(gateway.metrics().shed_ratelimited() >= 3);
    // Bob is untouched by Alice's limit.
    assert_eq!(
        gateway.call("bob", "echo", vec![9]).status,
        GatewayStatus::Ok
    );
}

#[test]
fn queued_past_deadline_is_shed_with_expired() {
    let cluster = cluster_with_tenants(1);
    let gateway = Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 1,
            max_batch: 1,
            autoscale: None,
            ..GatewayConfig::default()
        },
    );
    // Occupy the single dispatcher with slow work, then enqueue requests
    // whose deadline will pass while they sit behind it.
    let busy: Vec<u64> = (0..8)
        .map(|i| gateway.submit("alice", "slow", vec![i]))
        .collect();
    let doomed: Vec<u64> = (0..4)
        .map(|i| gateway.submit_with_deadline("bob", "echo", vec![i], Duration::from_millis(1)))
        .collect();
    let expired = doomed
        .into_iter()
        .map(|t| gateway.wait(t))
        .filter(|r| r.status == GatewayStatus::Expired)
        .count();
    assert!(
        expired > 0,
        "1 ms deadlines behind ~16 ms of queued work must expire"
    );
    assert_eq!(gateway.metrics().shed_expired(), expired as u64);
    for t in busy {
        assert_eq!(gateway.wait(t).status, GatewayStatus::Ok);
    }
}

/// A guest slow enough to pin a submit slot for a long time.
fn very_slow_guest(ms: u64) -> Arc<dyn NativeGuest> {
    Arc::new(move |api: &mut NativeApi<'_>| {
        std::thread::sleep(Duration::from_millis(ms));
        let input = api.input().to_vec();
        api.write_output(&input);
        Ok(0)
    })
}

/// The head-of-line regression the batch-aware dispatcher fixes: with every
/// in-flight slot pinned by slow work, short-deadline requests must still be
/// shed `Expired` on a `batch_wait` cadence — not after the slow batch
/// completes (the old dispatcher parked in `await_call`), and certainly not
/// at `wait_timeout`.
#[test]
fn expired_shed_is_prompt_while_dispatchers_are_saturated() {
    let cluster = Arc::new(Cluster::new(1));
    cluster.register_native("alice", "versylow", very_slow_guest(400), false);
    for tenant in ["alice", "bob"] {
        cluster
            .upload_fl(tenant, "echo", ECHO, Default::default())
            .unwrap();
    }
    let gateway = Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 1,
            max_batch: 4, // max_inflight defaults to 1×4
            batch_wait: Duration::from_millis(5),
            autoscale: None,
            ..GatewayConfig::default()
        },
    );
    // Pin all four in-flight slots (and more) with 400 ms calls.
    let busy: Vec<u64> = (0..8)
        .map(|i| gateway.submit("alice", "versylow", vec![i]))
        .collect();
    // Give the dispatcher a beat to take the slow batch in flight.
    std::thread::sleep(Duration::from_millis(30));
    // Short-deadline requests behind the wall of slow work.
    let doomed: Vec<u64> = (0..4)
        .map(|i| gateway.submit_with_deadline("bob", "echo", vec![i], Duration::from_millis(10)))
        .collect();
    let t0 = std::time::Instant::now();
    for t in doomed {
        let r = gateway.wait(t);
        assert_eq!(
            r.status,
            GatewayStatus::Expired,
            "deadline passed while all submit slots were pinned"
        );
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(150),
        "expired sheds must be bounded by batch_wait cadence, not by the \
         400 ms in-flight work (took {elapsed:?})"
    );
    assert_eq!(gateway.metrics().shed_expired(), 4);
    // The slow work still completes correctly behind the sheds.
    for t in busy {
        assert_eq!(gateway.wait(t).status, GatewayStatus::Ok);
    }
}

/// The dispatch-latency back-pressure loop: under saturation the measured
/// EWMA stands above target, the effective per-tenant queue caps shrink
/// (AIMD multiplicative decrease) and load is shed `Overloaded` **at
/// admission** instead of queueing work the cluster cannot serve; once the
/// gateway drains, the caps grow back.
#[test]
fn standing_dispatch_delay_shrinks_admission_caps_then_recovers() {
    let cluster = Arc::new(Cluster::new(1));
    cluster.register_native("alice", "crawl", very_slow_guest(25), false);
    let gateway = Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 1,
            max_batch: 4,
            batch_wait: Duration::from_millis(2),
            // Arrivals outpace the 25 ms service rate, so jobs stand in
            // the queue far beyond the 2 ms sojourn target by design.
            target_dispatch_latency: Duration::from_millis(2),
            // Deadlines long enough that nothing sheds as Expired — every
            // shed in this test is the admission loop's doing.
            default_deadline: Duration::from_secs(60),
            autoscale: None,
            ..GatewayConfig::default()
        },
    );
    assert_eq!(gateway.admission_cap_scale(), 1.0, "caps start unscaled");

    // A paced flood: slow enough that the configured cap of 256 would
    // never fill on its own, fast enough to keep the dispatcher saturated.
    let mut tickets = Vec::new();
    let t0 = std::time::Instant::now();
    while t0.elapsed() < Duration::from_millis(1200) {
        tickets.push(gateway.submit("alice", "crawl", Vec::new()));
        std::thread::sleep(Duration::from_millis(2));
    }
    let scale_under_load = gateway.admission_cap_scale();
    let queued_under_load = gateway.queue_len();
    let sheds = gateway.metrics().shed_overloaded();
    assert!(
        scale_under_load < 1.0,
        "standing delay must shrink the cap scale, still at {scale_under_load}"
    );
    assert!(
        gateway.dispatch_latency_ewma() > Duration::from_millis(2),
        "the EWMA has seen the standing queue"
    );
    assert!(
        sheds > 0,
        "saturation must shed Overloaded at admission (scale {scale_under_load})"
    );
    assert!(
        queued_under_load < 64,
        "load is shed at admission, not queued: {queued_under_load} queued \
         against a configured cap of 256"
    );

    // Drain, then the loop grows the caps back (the drained gateway decays
    // the EWMA below target/2 even with no fresh completions).
    for t in tickets {
        let r = gateway.wait(t);
        assert!(
            matches!(r.status, GatewayStatus::Ok | GatewayStatus::Overloaded),
            "unexpected terminal status {:?}",
            r.status
        );
    }
    let trough = gateway.admission_cap_scale();
    let recovered = (0..200).find_map(|_| {
        std::thread::sleep(Duration::from_millis(10));
        let s = gateway.admission_cap_scale();
        (s > trough).then_some(s)
    });
    assert!(
        recovered.is_some(),
        "caps must grow back on drain (stuck at {trough})"
    );
}

/// A submit that passes the token bucket but is shed `Overloaded` at the
/// queue cap must refund its token: being at the queue cap must not also
/// drain the rate budget.
#[test]
fn queue_full_shed_refunds_the_rate_limit_token() {
    let cluster = cluster_with_tenants(1);
    let gateway = Gateway::start(Arc::clone(&cluster), GatewayConfig::default());
    // Rate 1/s with burst 2, and a queue that admits nothing: every submit
    // passes the bucket (thanks to refunds) and sheds at the queue.
    gateway.set_tenant_policy(
        "alice",
        TenantPolicy {
            queue_cap: 0,
            ..TenantPolicy::rate_limited(1, 2)
        },
    );
    for i in 0..6u8 {
        let r = gateway.call("alice", "echo", vec![i]);
        assert_eq!(r.status, GatewayStatus::Overloaded);
    }
    let m = gateway.metrics();
    assert_eq!(
        m.shed_overloaded(),
        6,
        "all six sheds come from the queue cap"
    );
    assert_eq!(
        m.shed_ratelimited(),
        0,
        "refunded tokens mean the bucket never empties: without the refund \
         a burst of 2 would have rate-limited the third submit"
    );
}

#[test]
fn no_tenant_starves_under_weighted_fair_share() {
    let cluster = cluster_with_tenants(2);
    let gateway = Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 1,
            max_batch: 4,
            autoscale: None,
            ..GatewayConfig::default()
        },
    );
    gateway.set_tenant_policy(
        "alice",
        TenantPolicy {
            queue_cap: 1024,
            ..TenantPolicy::default()
        },
    );
    // Alice floods ~160 ms of serialised work through the single
    // dispatcher...
    let flood: Vec<u64> = (0..80)
        .map(|i| gateway.submit("alice", "slow", vec![i]))
        .collect();
    // ...then Bob shows up with a handful of requests.
    let modest: Vec<u64> = (0..4)
        .map(|i| gateway.submit("bob", "slow", vec![i]))
        .collect();
    for t in modest {
        let r = gateway.wait(t);
        assert_eq!(
            r.status,
            GatewayStatus::Ok,
            "bob must be served despite alice's flood"
        );
    }
    // Fair share means Bob finished while Alice's backlog was still
    // pending: he did not wait behind her entire flood.
    assert!(
        gateway.queue_len() > 0,
        "alice's backlog should still be draining when bob completes"
    );
    for t in flood {
        assert_eq!(gateway.wait(t).status, GatewayStatus::Ok);
    }
    let m = gateway.metrics();
    assert_eq!(m.completed(), 84);
    assert!(m.batch_occupancy() >= 1.0);
    assert!(m.queue_delay_p99_ns() >= m.queue_delay_p50_ns());
}

#[test]
fn autoscaler_prewarms_under_backlog_and_retires_when_idle() {
    let cluster = cluster_with_tenants(2);
    let gateway = Gateway::start(
        Arc::clone(&cluster),
        GatewayConfig {
            dispatchers: 1,
            max_batch: 2,
            autoscale: Some(AutoscaleConfig {
                interval: Duration::from_millis(2),
                backlog_high: 2,
                scale_step: 2,
                idle_target: 1,
                max_warm: 16,
                ..AutoscaleConfig::default()
            }),
            ..GatewayConfig::default()
        },
    );
    gateway.set_tenant_policy(
        "alice",
        TenantPolicy {
            queue_cap: 1024,
            ..TenantPolicy::default()
        },
    );
    // Prime one proto so prewarm can restore, then flood.
    assert!(gateway.call("alice", "echo", vec![0]).is_ok());
    let tickets: Vec<u64> = (0..120)
        .map(|i| gateway.submit("alice", "slow", vec![i]))
        .collect();
    for t in tickets {
        assert_eq!(gateway.wait(t).status, GatewayStatus::Ok);
    }
    let m = gateway.metrics();
    assert!(
        m.prewarmed() > 0,
        "sustained backlog must trigger pre-warming"
    );
    // Give the autoscaler a few idle intervals to scale back down.
    std::thread::sleep(Duration::from_millis(50));
    let idle_slow: usize = cluster
        .instances()
        .iter()
        .map(|i| i.warm_count("alice", "slow"))
        .sum();
    assert!(
        idle_slow <= 1 || m.retired() > 0,
        "idle pools should shrink toward the target (idle {idle_slow}, retired {})",
        m.retired()
    );
}
