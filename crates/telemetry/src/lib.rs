//! End-to-end tracing and telemetry for the FAASM reproduction.
//!
//! One ingress call yields a causally-linked span tree across every tier it
//! touches: the gateway stamps a root [`TraceCtx`] on the wire, the runtime
//! derives child contexts per stage, and the state tier reads the context
//! straight off the KVS request header. Spans land in two sinks:
//!
//! * **Histograms** — per-[`SpanKind`] lock-free log2-bucket [`Hist`]s with
//!   fixed memory (64 atomic buckets), cheap enough to stay on in benches.
//! * **Flight recorder** — a bounded per-tier ring of recent [`SpanRecord`]s
//!   ([`Recorder`]), dumpable on anomaly triggers and merged cluster-wide by
//!   trace id ([`trace_tree`]).
//!
//! The crate sits at the bottom of the workspace dependency graph (below
//! `faasm-kvs`) so every tier can record without new plumbing: tiers obtain
//! their recorder from the process-global registry ([`tier`]) and worker
//! threads publish the active context through a thread-local
//! ([`set_current`] / [`current`]) so deep layers (state chunks, the KVS
//! client) can stamp requests without signature churn.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

/// A compact trace context carried on every wire format: which ingress call
/// this work belongs to (`trace_id`) and the span it is causally nested
/// under (`span_id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The ingress call's trace, 0 = untraced.
    pub trace_id: u64,
    /// The enclosing span (the parent for spans recorded under this ctx).
    pub span_id: u64,
}

impl TraceCtx {
    /// The untraced sentinel (what untouched wire paths carry).
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        span_id: 0,
    };

    /// Whether this context traces anything.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }

    /// A fresh root context: new trace id, new root span id.
    pub fn new_root() -> TraceCtx {
        TraceCtx {
            trace_id: next_id(),
            span_id: next_id(),
        }
    }

    /// A child context under `self`: same trace, fresh span id. Returns
    /// `NONE` for `NONE` so untraced calls never fabricate spans.
    pub fn child(&self) -> TraceCtx {
        if self.is_none() {
            return TraceCtx::NONE;
        }
        TraceCtx {
            trace_id: self.trace_id,
            span_id: next_id(),
        }
    }
}

/// Globally-unique non-zero id: a process-wide counter passed through
/// splitmix64 so ids from concurrent traces don't cluster.
fn next_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let raw = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut z = raw.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // 0 is the untraced sentinel; remap the (1-in-2^64) collision.
    if z == 0 {
        1
    } else {
        z
    }
}

// ---------------------------------------------------------------------------
// Thread-local current context
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: std::cell::Cell<TraceCtx> = const { std::cell::Cell::new(TraceCtx::NONE) };
}

/// The calling thread's active trace context ([`TraceCtx::NONE`] outside a
/// traced call). Deep layers use this to stamp outgoing KVS requests and to
/// parent their spans without any signature changes.
pub fn current() -> TraceCtx {
    CURRENT.with(std::cell::Cell::get)
}

/// Install `ctx` as the thread's active context for the guard's lifetime;
/// the previous context is restored on drop (so chained calls nest).
pub fn set_current(ctx: TraceCtx) -> CtxGuard {
    let prev = CURRENT.with(|c| c.replace(ctx));
    CtxGuard { prev }
}

/// Restores the previous thread-local context on drop.
#[must_use = "dropping the guard immediately restores the previous context"]
pub struct CtxGuard {
    prev: TraceCtx,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

// ---------------------------------------------------------------------------
// Clock and enablement
// ---------------------------------------------------------------------------

/// Nanoseconds since the process-wide telemetry epoch. Monotone across all
/// tiers (everything shares one process), so span timestamps from different
/// hosts order correctly in a merged tree.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether span recording is on. Wire formats always carry the context —
/// only the recording sinks are gated, so toggling cannot skew codecs.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Toggle span recording (benches measure the on/off throughput delta).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Span taxonomy
// ---------------------------------------------------------------------------

/// The per-stage span taxonomy: each variant is one histogram and one kind
/// of flight-recorder entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Gateway admission: policy + token bucket + enqueue.
    Admission = 0,
    /// Time a job sat in its tenant queue before a dispatcher drained it.
    QueueSojourn = 1,
    /// Dispatch grouping: drain → per-host batches handed to the bus.
    Dispatch = 2,
    /// Message-bus transit: batch encode/send → instance bus loop decode.
    BusTransit = 3,
    /// Worker execution (the Faaslet run itself).
    WorkerExec = 4,
    /// State pull round-trip (global tier → local tier).
    StatePull = 5,
    /// State push round-trip (local tier → global tier).
    StatePush = 6,
    /// Global lock wait (acquire latency, not hold time).
    LockWait = 7,
    /// `WrongEpoch` park + retry at the sharded KVS client.
    WrongEpochRetry = 8,
    /// Server-side apply of one routed keyed op at a state shard.
    ShardApply = 9,
    /// Primary → backup replication forward (one backup round-trip).
    ReplForward = 10,
    /// Total time a primary write waited for its replica quorum.
    QuorumWait = 11,
    /// Function-side cache hit: a read served from the instance's cache
    /// without touching the wire.
    CacheHit = 12,
    /// Function-side cache miss: the read went to the global tier (and the
    /// snapshot was cached on the way back).
    CacheMiss = 13,
    /// Function-side cache invalidation: a write or epoch change evicted or
    /// superseded a cached snapshot.
    CacheInvalidate = 14,
    /// Lease-expiry / epoch-bump revalidation probe (`VersionOf`
    /// round-trip; the value bytes stay local when the version matches).
    Revalidate = 15,
    /// Proto-Faaslet restore: snapshot bytes on-host → runnable Faaslet
    /// (copy-on-write page mapping + globals + table install).
    ProtoRestore = 16,
    /// Snapshot chunk fetch: manifest + missing chunks pulled from the
    /// state tier into the host-local snapshot cache.
    SnapshotFetch = 17,
    /// Digest verification of fetched snapshot chunks (the
    /// content-address check standing between the wire and a restore).
    SnapshotVerify = 18,
}

/// Number of span kinds (histogram array size).
pub const SPAN_KINDS: usize = 19;

impl SpanKind {
    /// All kinds, in wire order.
    pub const ALL: [SpanKind; SPAN_KINDS] = [
        SpanKind::Admission,
        SpanKind::QueueSojourn,
        SpanKind::Dispatch,
        SpanKind::BusTransit,
        SpanKind::WorkerExec,
        SpanKind::StatePull,
        SpanKind::StatePush,
        SpanKind::LockWait,
        SpanKind::WrongEpochRetry,
        SpanKind::ShardApply,
        SpanKind::ReplForward,
        SpanKind::QuorumWait,
        SpanKind::CacheHit,
        SpanKind::CacheMiss,
        SpanKind::CacheInvalidate,
        SpanKind::Revalidate,
        SpanKind::ProtoRestore,
        SpanKind::SnapshotFetch,
        SpanKind::SnapshotVerify,
    ];

    /// Stable display name (also the JSON key).
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Admission => "admission",
            SpanKind::QueueSojourn => "queue_sojourn",
            SpanKind::Dispatch => "dispatch",
            SpanKind::BusTransit => "bus_transit",
            SpanKind::WorkerExec => "worker_exec",
            SpanKind::StatePull => "state_pull",
            SpanKind::StatePush => "state_push",
            SpanKind::LockWait => "lock_wait",
            SpanKind::WrongEpochRetry => "wrong_epoch_retry",
            SpanKind::ShardApply => "shard_apply",
            SpanKind::ReplForward => "repl_forward",
            SpanKind::QuorumWait => "quorum_wait",
            SpanKind::CacheHit => "cache_hit",
            SpanKind::CacheMiss => "cache_miss",
            SpanKind::CacheInvalidate => "cache_invalidate",
            SpanKind::Revalidate => "revalidate",
            SpanKind::ProtoRestore => "proto_restore",
            SpanKind::SnapshotFetch => "snapshot_fetch",
            SpanKind::SnapshotVerify => "snapshot_verify",
        }
    }
}

/// One completed span in the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 = root-parented / no parent in this process).
    pub parent_id: u64,
    /// Stage.
    pub kind: SpanKind,
    /// Start, ns since the telemetry epoch.
    pub start_ns: u64,
    /// End, ns since the telemetry epoch.
    pub end_ns: u64,
    /// Kind-specific payload (e.g. retry attempts, bytes moved); 0 if unused.
    pub extra: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds (saturating; clocks are monotone but
    /// cross-thread stamps may tie).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

// ---------------------------------------------------------------------------
// Log2-bucket histogram
// ---------------------------------------------------------------------------

const BUCKETS: usize = 64;

/// A lock-free, fixed-memory log2-bucket histogram. Bucket `i` counts values
/// `v` with `bit_len(v) == i` (bucket 0 holds zeros), so the full `u64`
/// range fits in 64 atomic counters — recording is two relaxed atomic adds
/// and percentile reads never allocate.
#[derive(Debug)]
pub struct Hist {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist::new()
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)` clamped
/// into range — i.e. values in `[2^(i-1), 2^i)` share bucket `i`.
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Representative value reported for a bucket (its midpoint), so percentile
/// estimates sit inside the bucket rather than at its edge.
fn bucket_mid(i: usize) -> u64 {
    if i == 0 {
        return 0;
    }
    let lo = 1u64 << (i - 1);
    let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
    lo + (hi - lo) / 2
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free: two relaxed adds plus min/max updates.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate percentile (`p` in 0..=100): the midpoint of the bucket
    /// holding the p-th sample, clamped to the observed min/max so p0/p100
    /// are exact. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// A point-in-time copy (buckets first, then count — a racing `record`
    /// can make the copy conservative but never inconsistent beyond one
    /// in-flight sample).
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned histogram snapshot: mergeable and readable without atomics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples (mean = sum / count).
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Log2 bucket counts.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Merge another snapshot into this one (cluster-wide aggregation).
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate percentile — see [`Hist::percentile`].
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Spans kept in a tier's flight-recorder ring.
const RING_CAP: usize = 65_536;
/// Spans captured per anomaly dump (the tail of the ring at trigger time).
const ANOMALY_TAIL: usize = 256;
/// Anomaly dumps retained per tier.
const ANOMALY_CAP: usize = 16;

/// One anomaly-triggered flight-recorder dump.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// When the trigger fired, ns since the telemetry epoch.
    pub at_ns: u64,
    /// What fired it (e.g. `"admission cap shrink"`, `"reshard begin"`).
    pub reason: String,
    /// The tail of the span ring at trigger time.
    pub spans: Vec<SpanRecord>,
}

/// A per-tier telemetry sink: per-kind histograms (always cheap) plus a
/// bounded ring of recent spans (the flight recorder).
#[derive(Debug)]
pub struct Recorder {
    tier: &'static str,
    hists: [Hist; SPAN_KINDS],
    ring: Mutex<VecDeque<SpanRecord>>,
    anomalies: Mutex<VecDeque<Anomaly>>,
    dropped: AtomicU64,
}

impl Recorder {
    fn new(tier: &'static str) -> Recorder {
        Recorder {
            tier,
            hists: std::array::from_fn(|_| Hist::new()),
            ring: Mutex::new(VecDeque::with_capacity(1024)),
            anomalies: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The tier name this recorder was registered under.
    pub fn tier(&self) -> &'static str {
        self.tier
    }

    /// Record a completed span: duration into the kind's histogram, the
    /// record into the flight-recorder ring (evicting the oldest when
    /// full — memory stays fixed). No-op while recording is disabled.
    pub fn record(&self, span: SpanRecord) {
        if !enabled() {
            return;
        }
        self.hists[span.kind as usize].record(span.duration_ns());
        if span.trace_id == 0 {
            return; // untraced work feeds histograms only
        }
        let mut ring = self.ring.lock();
        if ring.len() >= RING_CAP {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// Convenience: record a span that started at `start_ns` and ends now,
    /// parented under `ctx` with a fresh span id. Returns the span id (the
    /// caller may have published it to children beforehand via
    /// [`TraceCtx::child`] — then use [`record`](Self::record) directly).
    pub fn span(&self, kind: SpanKind, ctx: TraceCtx, start_ns: u64, extra: u64) -> u64 {
        let child = ctx.child();
        self.record(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: child.span_id,
            parent_id: ctx.span_id,
            kind,
            start_ns,
            end_ns: now_ns(),
            extra,
        });
        child.span_id
    }

    /// The kind's histogram (live; snapshot for coherent reads).
    pub fn hist(&self, kind: SpanKind) -> &Hist {
        &self.hists[kind as usize]
    }

    /// Copy of the current span ring, oldest first.
    pub fn dump(&self) -> Vec<SpanRecord> {
        self.ring.lock().iter().copied().collect()
    }

    /// Spans evicted from the ring since startup.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Anomaly trigger: capture the ring tail under `reason`. Bounded
    /// (oldest dump evicted past [`ANOMALY_CAP`]).
    pub fn note_anomaly(&self, reason: &str) {
        if !enabled() {
            return;
        }
        let ring = self.ring.lock();
        let tail: Vec<SpanRecord> = ring
            .iter()
            .rev()
            .take(ANOMALY_TAIL)
            .rev()
            .copied()
            .collect();
        drop(ring);
        let mut anomalies = self.anomalies.lock();
        if anomalies.len() >= ANOMALY_CAP {
            anomalies.pop_front();
        }
        anomalies.push_back(Anomaly {
            at_ns: now_ns(),
            reason: reason.to_string(),
            spans: tail,
        });
    }

    /// Anomaly dumps captured so far, oldest first.
    pub fn anomalies(&self) -> Vec<Anomaly> {
        self.anomalies.lock().iter().cloned().collect()
    }
}

// ---------------------------------------------------------------------------
// Process-global tier registry
// ---------------------------------------------------------------------------

fn registry() -> &'static RwLock<Vec<Arc<Recorder>>> {
    static REGISTRY: OnceLock<RwLock<Vec<Arc<Recorder>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

/// The named tier's recorder, created and registered on first use. Tier
/// names are static so tiers can call this from hot paths without
/// allocating; repeated calls return the same recorder.
pub fn tier(name: &'static str) -> Arc<Recorder> {
    {
        let reg = registry().read();
        if let Some(r) = reg.iter().find(|r| r.tier == name) {
            return Arc::clone(r);
        }
    }
    let mut reg = registry().write();
    if let Some(r) = reg.iter().find(|r| r.tier == name) {
        return Arc::clone(r);
    }
    let r = Arc::new(Recorder::new(name));
    reg.push(Arc::clone(&r));
    r
}

/// All registered tier recorders.
pub fn tiers() -> Vec<Arc<Recorder>> {
    registry().read().iter().map(Arc::clone).collect()
}

/// Merge every tier's flight recorder and return the spans belonging to
/// `trace_id`, tagged with their tier and sorted by start time — one call's
/// causally-linked span tree.
pub fn trace_tree(trace_id: u64) -> Vec<(&'static str, SpanRecord)> {
    let mut spans: Vec<(&'static str, SpanRecord)> = Vec::new();
    for rec in tiers() {
        for span in rec.dump() {
            if span.trace_id == trace_id {
                spans.push((rec.tier(), span));
            }
        }
    }
    spans.sort_by_key(|(_, s)| (s.start_ns, s.span_id));
    spans
}

/// A coherent cluster-wide metrics view: per-tier, per-kind histogram
/// snapshots taken in one pass.
pub fn metrics_snapshot() -> Vec<(&'static str, Vec<(SpanKind, HistSnapshot)>)> {
    tiers()
        .iter()
        .map(|rec| {
            let kinds = SpanKind::ALL
                .iter()
                .map(|&k| (k, rec.hist(k).snapshot()))
                .filter(|(_, s)| s.count > 0)
                .collect();
            (rec.tier(), kinds)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn child_keeps_trace_id() {
        let root = TraceCtx::new_root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
        assert_eq!(TraceCtx::NONE.child(), TraceCtx::NONE);
    }

    #[test]
    fn thread_local_ctx_nests_and_restores() {
        assert!(current().is_none());
        let a = TraceCtx::new_root();
        let g1 = set_current(a);
        assert_eq!(current(), a);
        {
            let b = a.child();
            let _g2 = set_current(b);
            assert_eq!(current(), b);
        }
        assert_eq!(current(), a);
        drop(g1);
        assert!(current().is_none());
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn hist_percentiles_bracket_samples() {
        let h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        // Log2 buckets: estimates land within a factor of two of the truth.
        assert!((250..=1000).contains(&p50), "p50 {p50}");
        assert!((500..=1000).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
        let snap = h.snapshot();
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.mean(), (1..=1000u64).sum::<u64>() / 1000);
    }

    #[test]
    fn hist_extremes_are_exact() {
        let h = Hist::new();
        h.record(7);
        assert_eq!(h.percentile(0.0), 7);
        assert_eq!(h.percentile(100.0), 7);
        assert_eq!(h.percentile(50.0), 7);
    }

    #[test]
    fn snapshot_merge_adds() {
        let a = Hist::new();
        let b = Hist::new();
        a.record(10);
        b.record(1000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 2);
        assert_eq!(m.min, 10);
        assert_eq!(m.max, 1000);
    }

    #[test]
    fn recorder_ring_is_bounded() {
        let rec = Recorder::new("test-bounded");
        let ctx = TraceCtx::new_root();
        for i in 0..(RING_CAP + 100) {
            rec.record(SpanRecord {
                trace_id: ctx.trace_id,
                span_id: i as u64 + 1,
                parent_id: ctx.span_id,
                kind: SpanKind::WorkerExec,
                start_ns: i as u64,
                end_ns: i as u64 + 1,
                extra: 0,
            });
        }
        assert_eq!(rec.dump().len(), RING_CAP);
        assert_eq!(rec.dropped(), 100);
        assert_eq!(
            rec.hist(SpanKind::WorkerExec).count(),
            (RING_CAP + 100) as u64
        );
    }

    #[test]
    fn trace_tree_merges_across_tiers() {
        let a = tier("test-tier-a");
        let b = tier("test-tier-b");
        let root = TraceCtx::new_root();
        let id_a = a.span(SpanKind::Admission, root, now_ns(), 0);
        let child = TraceCtx {
            trace_id: root.trace_id,
            span_id: id_a,
        };
        b.span(SpanKind::StatePull, child, now_ns(), 0);
        let tree = trace_tree(root.trace_id);
        assert_eq!(tree.len(), 2);
        assert!(tree.iter().all(|(_, s)| s.trace_id == root.trace_id));
        assert!(tree.iter().any(|(t, _)| *t == "test-tier-a"));
        assert!(tree.iter().any(|(t, _)| *t == "test-tier-b"));
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let rec = tier("test-tier-disabled");
        set_enabled(false);
        rec.span(SpanKind::Dispatch, TraceCtx::new_root(), now_ns(), 0);
        set_enabled(true);
        assert_eq!(rec.hist(SpanKind::Dispatch).count(), 0);
        assert!(rec.dump().is_empty());
    }

    #[test]
    fn anomalies_capture_ring_tail() {
        let rec = tier("test-tier-anomaly");
        let ctx = TraceCtx::new_root();
        rec.span(SpanKind::QueueSojourn, ctx, now_ns(), 0);
        rec.note_anomaly("unit trigger");
        let an = rec.anomalies();
        assert_eq!(an.len(), 1);
        assert_eq!(an[0].reason, "unit trigger");
        assert!(!an[0].spans.is_empty());
    }
}
