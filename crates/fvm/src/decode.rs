//! Binary decoding of modules — the first trusted step of code generation
//! (§3.4): untrusted bytes in, structured module out, with every malformation
//! reported as an error rather than a panic.

use crate::encode::{MAGIC, VERSION};
use crate::instr::{BrTableData, Instr, MemArg};
use crate::leb128::{LebError, Reader};
use crate::module::{
    DataSegment, ElemSegment, Export, ExportKind, FuncDef, GlobalDef, Import, MemorySpec, Module,
};
use crate::types::{BlockType, FuncType, Val, ValType};

/// Errors produced while decoding a module binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic bytes or version did not match.
    BadHeader,
    /// A varint was malformed or the input was truncated.
    Leb(LebError),
    /// An unknown section id was encountered.
    BadSection(u8),
    /// An unknown opcode was encountered.
    BadOpcode(u8),
    /// An unknown type code was encountered.
    BadType(u8),
    /// A string was not valid UTF-8.
    BadName,
    /// A section's declared size did not match its contents.
    SectionSize,
    /// A constant expression (global init / segment offset) was malformed.
    BadConstExpr,
    /// A function body did not end with `end`.
    UnterminatedBody,
    /// The code section count did not match the function section.
    FuncCountMismatch,
    /// An import had an unsupported kind (only functions can be imported).
    BadImportKind(u8),
    /// An export had an unknown kind byte.
    BadExportKind(u8),
}

impl From<LebError> for DecodeError {
    fn from(e: LebError) -> DecodeError {
        DecodeError::Leb(e)
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadHeader => write!(f, "bad magic or version"),
            DecodeError::Leb(e) => write!(f, "varint error: {e}"),
            DecodeError::BadSection(id) => write!(f, "unknown section id {id}"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadType(t) => write!(f, "unknown type code {t:#04x}"),
            DecodeError::BadName => write!(f, "name is not valid UTF-8"),
            DecodeError::SectionSize => write!(f, "section size mismatch"),
            DecodeError::BadConstExpr => write!(f, "malformed constant expression"),
            DecodeError::UnterminatedBody => write!(f, "function body not terminated by end"),
            DecodeError::FuncCountMismatch => {
                write!(f, "code section count does not match function section")
            }
            DecodeError::BadImportKind(k) => write!(f, "unsupported import kind {k}"),
            DecodeError::BadExportKind(k) => write!(f, "unknown export kind {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode a module binary produced by [`crate::encode::encode_module`] (or by
/// any untrusted toolchain claiming to).
///
/// # Errors
///
/// Returns a [`DecodeError`] describing the first malformation found.
pub fn decode_module(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.bytes(4).map_err(DecodeError::from)? != MAGIC {
        return Err(DecodeError::BadHeader);
    }
    let version = u32::from_le_bytes(r.bytes(4)?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(DecodeError::BadHeader);
    }

    let mut module = Module::default();
    let mut declared_types: Vec<u32> = Vec::new();

    while !r.is_empty() {
        let id = r.byte()?;
        let size = r.u32()? as usize;
        let body = r.bytes(size)?;
        let mut s = Reader::new(body);
        match id {
            1 => {
                let n = s.u32()?;
                for _ in 0..n {
                    if s.byte()? != 0x60 {
                        return Err(DecodeError::BadConstExpr);
                    }
                    let np = s.u32()?;
                    let mut params = Vec::with_capacity(np as usize);
                    for _ in 0..np {
                        params.push(val_type(&mut s)?);
                    }
                    let nr = s.u32()?;
                    let mut results = Vec::with_capacity(nr as usize);
                    for _ in 0..nr {
                        results.push(val_type(&mut s)?);
                    }
                    module.types.push(FuncType::new(params, results));
                }
            }
            2 => {
                let n = s.u32()?;
                for _ in 0..n {
                    let mod_name = string(&mut s)?;
                    let field = string(&mut s)?;
                    let kind = s.byte()?;
                    if kind != 0x00 {
                        return Err(DecodeError::BadImportKind(kind));
                    }
                    let type_idx = s.u32()?;
                    module.imports.push(Import {
                        module: mod_name,
                        name: field,
                        type_idx,
                    });
                }
            }
            3 => {
                let n = s.u32()?;
                for _ in 0..n {
                    declared_types.push(s.u32()?);
                }
            }
            4 => {
                let n = s.u32()?;
                for _ in 0..n {
                    if s.byte()? != 0x70 {
                        return Err(DecodeError::BadType(0x70));
                    }
                    let flags = s.byte()?;
                    let min = s.u32()?;
                    if flags == 0x01 {
                        let _max = s.u32()?;
                    }
                    module.table_size = min;
                }
            }
            5 => {
                let n = s.u32()?;
                for _ in 0..n {
                    let flags = s.byte()?;
                    let initial_pages = s.u32()?;
                    let max_pages = if flags == 0x01 { s.u32()? } else { u32::MAX };
                    module.memory = Some(MemorySpec {
                        initial_pages,
                        max_pages,
                    });
                }
            }
            6 => {
                let n = s.u32()?;
                for _ in 0..n {
                    let ty = val_type(&mut s)?;
                    let mutable = match s.byte()? {
                        0x00 => false,
                        0x01 => true,
                        b => return Err(DecodeError::BadType(b)),
                    };
                    let init = const_expr(&mut s)?;
                    module.globals.push(GlobalDef { ty, mutable, init });
                }
            }
            7 => {
                let n = s.u32()?;
                for _ in 0..n {
                    let ename = string(&mut s)?;
                    let kind = match s.byte()? {
                        0x00 => ExportKind::Func,
                        0x02 => ExportKind::Memory,
                        0x03 => ExportKind::Global,
                        b => return Err(DecodeError::BadExportKind(b)),
                    };
                    let index = s.u32()?;
                    module.exports.push(Export {
                        name: ename,
                        kind,
                        index,
                    });
                }
            }
            8 => {
                module.start = Some(s.u32()?);
            }
            9 => {
                let n = s.u32()?;
                for _ in 0..n {
                    let _table = s.u32()?;
                    let offset = match const_expr(&mut s)? {
                        Val::I32(v) => v as u32,
                        _ => return Err(DecodeError::BadConstExpr),
                    };
                    let count = s.u32()?;
                    let mut funcs = Vec::with_capacity(count as usize);
                    for _ in 0..count {
                        funcs.push(s.u32()?);
                    }
                    module.elems.push(ElemSegment { offset, funcs });
                }
            }
            10 => {
                let n = s.u32()?;
                if n as usize != declared_types.len() {
                    return Err(DecodeError::FuncCountMismatch);
                }
                for type_idx in &declared_types {
                    let body_size = s.u32()? as usize;
                    let body_bytes = s.bytes(body_size)?;
                    let mut b = Reader::new(body_bytes);
                    let mut locals = Vec::new();
                    let runs = b.u32()?;
                    for _ in 0..runs {
                        let count = b.u32()?;
                        let ty = val_type(&mut b)?;
                        for _ in 0..count {
                            locals.push(ty);
                        }
                    }
                    let body = decode_body(&mut b)?;
                    module.funcs.push(FuncDef {
                        type_idx: *type_idx,
                        locals,
                        body,
                    });
                }
            }
            11 => {
                let n = s.u32()?;
                for _ in 0..n {
                    let _mem = s.u32()?;
                    let offset = match const_expr(&mut s)? {
                        Val::I32(v) => v as u32,
                        _ => return Err(DecodeError::BadConstExpr),
                    };
                    let len = s.u32()? as usize;
                    let bytes = s.bytes(len)?.to_vec();
                    module.data.push(DataSegment { offset, bytes });
                }
            }
            other => return Err(DecodeError::BadSection(other)),
        }
        if !s.is_empty() {
            return Err(DecodeError::SectionSize);
        }
    }

    if module.funcs.is_empty() && !declared_types.is_empty() {
        return Err(DecodeError::FuncCountMismatch);
    }
    Ok(module)
}

fn val_type(r: &mut Reader<'_>) -> Result<ValType, DecodeError> {
    let code = r.byte()?;
    ValType::from_code(code).ok_or(DecodeError::BadType(code))
}

fn string(r: &mut Reader<'_>) -> Result<String, DecodeError> {
    let len = r.u32()? as usize;
    let bytes = r.bytes(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadName)
}

fn const_expr(r: &mut Reader<'_>) -> Result<Val, DecodeError> {
    let op = r.byte()?;
    let val = match op {
        0x41 => Val::I32(r.i32()?),
        0x42 => Val::I64(r.i64()?),
        0x43 => Val::F32(r.f32()?),
        0x44 => Val::F64(r.f64()?),
        _ => return Err(DecodeError::BadConstExpr),
    };
    if r.byte()? != 0x0b {
        return Err(DecodeError::BadConstExpr);
    }
    Ok(val)
}

fn block_type(r: &mut Reader<'_>) -> Result<BlockType, DecodeError> {
    let code = r.byte()?;
    if code == 0x40 {
        return Ok(BlockType::Empty);
    }
    ValType::from_code(code)
        .map(BlockType::Value)
        .ok_or(DecodeError::BadType(code))
}

fn memarg(r: &mut Reader<'_>) -> Result<MemArg, DecodeError> {
    let align = r.u32()?;
    let offset = r.u32()?;
    Ok(MemArg { offset, align })
}

/// Decode an instruction sequence until the reader is exhausted; the last
/// instruction must be the body-terminating `end` at nesting depth zero.
fn decode_body(r: &mut Reader<'_>) -> Result<Vec<Instr>, DecodeError> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut terminated = false;
    while !r.is_empty() {
        let i = decode_instr(r)?;
        match &i {
            Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => depth += 1,
            Instr::End => {
                if depth == 0 {
                    out.push(i);
                    terminated = true;
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
        out.push(i);
    }
    if !terminated || !r.is_empty() {
        return Err(DecodeError::UnterminatedBody);
    }
    Ok(out)
}

/// Decode a single instruction.
pub fn decode_instr(r: &mut Reader<'_>) -> Result<Instr, DecodeError> {
    use Instr::*;
    let op = r.byte()?;
    if let Some(i) = crate::opcodes::simple_instr(op) {
        // `return` shares the table; everything else with immediates is
        // handled below.
        return Ok(i);
    }
    Ok(match op {
        0x02 => Block(block_type(r)?),
        0x03 => Loop(block_type(r)?),
        0x04 => If(block_type(r)?),
        0x05 => Else,
        0x0b => End,
        0x0c => Br(r.u32()?),
        0x0d => BrIf(r.u32()?),
        0x0e => {
            let n = r.u32()?;
            let mut targets = Vec::with_capacity(n as usize);
            for _ in 0..n {
                targets.push(r.u32()?);
            }
            let default = r.u32()?;
            BrTable(Box::new(BrTableData { targets, default }))
        }
        0x10 => Call(r.u32()?),
        0x11 => {
            let t = r.u32()?;
            let _table = r.byte()?;
            CallIndirect(t)
        }
        0x20 => LocalGet(r.u32()?),
        0x21 => LocalSet(r.u32()?),
        0x22 => LocalTee(r.u32()?),
        0x23 => GlobalGet(r.u32()?),
        0x24 => GlobalSet(r.u32()?),
        0x28 => I32Load(memarg(r)?),
        0x29 => I64Load(memarg(r)?),
        0x2a => F32Load(memarg(r)?),
        0x2b => F64Load(memarg(r)?),
        0x2c => I32Load8S(memarg(r)?),
        0x2d => I32Load8U(memarg(r)?),
        0x2e => I32Load16S(memarg(r)?),
        0x2f => I32Load16U(memarg(r)?),
        0x30 => I64Load8S(memarg(r)?),
        0x31 => I64Load8U(memarg(r)?),
        0x32 => I64Load16S(memarg(r)?),
        0x33 => I64Load16U(memarg(r)?),
        0x34 => I64Load32S(memarg(r)?),
        0x35 => I64Load32U(memarg(r)?),
        0x36 => I32Store(memarg(r)?),
        0x37 => I64Store(memarg(r)?),
        0x38 => F32Store(memarg(r)?),
        0x39 => F64Store(memarg(r)?),
        0x3a => I32Store8(memarg(r)?),
        0x3b => I32Store16(memarg(r)?),
        0x3c => I64Store8(memarg(r)?),
        0x3d => I64Store16(memarg(r)?),
        0x3e => I64Store32(memarg(r)?),
        0x3f => {
            let _mem = r.byte()?;
            MemorySize
        }
        0x40 => {
            let _mem = r.byte()?;
            MemoryGrow
        }
        0x41 => I32Const(r.i32()?),
        0x42 => I64Const(r.i64()?),
        0x43 => F32Const(r.f32()?),
        0x44 => F64Const(r.f64()?),
        0xfc => {
            let sub = r.u32()?;
            match sub {
                0x0a => {
                    let _dst = r.byte()?;
                    let _src = r.byte()?;
                    MemoryCopy
                }
                0x0b => {
                    let _mem = r.byte()?;
                    MemoryFill
                }
                _ => return Err(DecodeError::BadOpcode(0xfc)),
            }
        }
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_module;
    use crate::module::ModuleBuilder;
    use crate::types::FuncType;

    fn rich_module() -> Module {
        let mut b = ModuleBuilder::new();
        let sig_ii_i = b.sig(FuncType::new(
            vec![ValType::I32, ValType::I32],
            vec![ValType::I32],
        ));
        let sig_v = b.sig(FuncType::default());
        b.import_func("faasm", "read_call_input", sig_ii_i);
        b.memory(2, 8);
        b.global(ValType::I64, true, Val::I64(-7));
        b.global(ValType::F64, false, Val::F64(2.5));
        b.table(4);
        let add = b.func(
            sig_ii_i,
            vec![ValType::I64, ValType::I64, ValType::F32],
            vec![
                Instr::Block(BlockType::Value(ValType::I32)),
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I32Add,
                Instr::Br(0),
                Instr::End,
                Instr::End,
            ],
        );
        let noop = b.func(sig_v, vec![], vec![Instr::Nop, Instr::End]);
        b.elem(1, vec![add, noop]);
        b.export_func("add", add);
        b.export_memory("memory");
        b.data(16, b"hello world".to_vec());
        b.start(noop);
        b.build()
    }

    #[test]
    fn roundtrip_rich_module() {
        let m = rich_module();
        let bytes = encode_module(&m);
        let decoded = decode_module(&bytes).unwrap();
        assert_eq!(m, decoded);
    }

    #[test]
    fn roundtrip_empty_module() {
        let m = Module::default();
        let decoded = decode_module(&encode_module(&m)).unwrap();
        assert_eq!(m, decoded);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_module(b"\0wat1234"), Err(DecodeError::BadHeader));
        assert_eq!(
            decode_module(b"\0fv"),
            Err(DecodeError::Leb(LebError::UnexpectedEof))
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_module(&Module::default());
        bytes[4] = 99;
        assert_eq!(decode_module(&bytes), Err(DecodeError::BadHeader));
    }

    #[test]
    fn unknown_section_rejected() {
        let mut bytes = encode_module(&Module::default());
        bytes.push(42); // section id
        bytes.push(0); // size
        assert_eq!(decode_module(&bytes), Err(DecodeError::BadSection(42)));
    }

    #[test]
    fn truncated_section_rejected() {
        let mut bytes = encode_module(&rich_module());
        bytes.truncate(bytes.len() - 3);
        assert!(decode_module(&bytes).is_err());
    }

    #[test]
    fn unterminated_body_rejected() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::default());
        b.func(sig, vec![], vec![Instr::Nop, Instr::End]);
        let m = b.build();
        let mut bytes = encode_module(&m);
        // Replace the final `end` (0x0b) with `nop` (0x01): body no longer
        // terminates.
        let last_end = bytes.iter().rposition(|&b| b == 0x0b).unwrap();
        bytes[last_end] = 0x01;
        assert!(matches!(
            decode_module(&bytes),
            Err(DecodeError::UnterminatedBody) | Err(DecodeError::SectionSize)
        ));
    }

    #[test]
    fn every_encoded_instr_decodes_back() {
        use crate::instr::MemArg;
        let instrs = vec![
            Instr::Unreachable,
            Instr::Nop,
            Instr::Block(BlockType::Empty),
            Instr::Loop(BlockType::Value(ValType::I64)),
            Instr::If(BlockType::Value(ValType::F32)),
            Instr::Else,
            Instr::End,
            Instr::Br(2),
            Instr::BrIf(0),
            Instr::BrTable(Box::new(BrTableData {
                targets: vec![0, 1],
                default: 2,
            })),
            Instr::Return,
            Instr::Call(3),
            Instr::CallIndirect(1),
            Instr::Drop,
            Instr::Select,
            Instr::LocalGet(0),
            Instr::LocalSet(1),
            Instr::LocalTee(2),
            Instr::GlobalGet(3),
            Instr::GlobalSet(4),
            Instr::I32Load(MemArg::at(4)),
            Instr::I64Load(MemArg::zero()),
            Instr::F32Load(MemArg::at(8)),
            Instr::F64Load(MemArg::at(16)),
            Instr::I32Load8S(MemArg::zero()),
            Instr::I32Load8U(MemArg::zero()),
            Instr::I32Load16S(MemArg::zero()),
            Instr::I32Load16U(MemArg::zero()),
            Instr::I64Load8S(MemArg::zero()),
            Instr::I64Load8U(MemArg::zero()),
            Instr::I64Load16S(MemArg::zero()),
            Instr::I64Load16U(MemArg::zero()),
            Instr::I64Load32S(MemArg::zero()),
            Instr::I64Load32U(MemArg::zero()),
            Instr::I32Store(MemArg::zero()),
            Instr::I64Store(MemArg::zero()),
            Instr::F32Store(MemArg::zero()),
            Instr::F64Store(MemArg::zero()),
            Instr::I32Store8(MemArg::zero()),
            Instr::I32Store16(MemArg::zero()),
            Instr::I64Store8(MemArg::zero()),
            Instr::I64Store16(MemArg::zero()),
            Instr::I64Store32(MemArg::zero()),
            Instr::MemorySize,
            Instr::MemoryGrow,
            Instr::MemoryCopy,
            Instr::MemoryFill,
            Instr::I32Const(i32::MIN),
            Instr::I64Const(i64::MAX),
            Instr::F32Const(f32::NAN),
            Instr::F64Const(0.0),
            Instr::I32Add,
            Instr::I64Rotr,
            Instr::F32Copysign,
            Instr::F64Sqrt,
            Instr::I32TruncF64U,
            Instr::F64ReinterpretI64,
        ];
        let mut buf = Vec::new();
        for i in &instrs {
            crate::encode::encode_instr(&mut buf, i);
        }
        let mut r = Reader::new(&buf);
        for expected in &instrs {
            let got = decode_instr(&mut r).unwrap();
            match (expected, &got) {
                // NaN != NaN under PartialEq; compare bits.
                (Instr::F32Const(a), Instr::F32Const(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                _ => assert_eq!(expected, &got),
            }
        }
        assert!(r.is_empty());
    }
}
