//! The Faasm Virtual Machine: a from-scratch, WebAssembly-style
//! software-fault-isolation engine.
//!
//! This crate is the reproduction's substitute for WebAssembly + WAVM in the
//! paper (§2.2, §3.4 — see DESIGN.md substitution S1). It provides:
//!
//! * a binary **module format** with LEB128 encoding ([`encode`]/[`decode`]),
//! * a specification-style **validator** ([`validate()`]) performing full stack
//!   type-checking of untrusted code,
//! * an **object module** form with precomputed branch targets ([`object`]) —
//!   the "code generation" phase of Fig. 3,
//! * a bounds-checked, fuel-metered **interpreter** over linear memories
//!   provided by `faasm-mem` ([`instance`]),
//! * **host-function linking** via trusted thunks ([`host`]), and
//! * O(pages) **snapshot/restore** of full execution state
//!   ([`instance::InstanceSnapshot`]) — the mechanism behind Proto-Faaslets.
//!
//! # Examples
//!
//! ```
//! use faasm_fvm::prelude::*;
//!
//! // Untrusted phase: build a module (a toolchain would emit bytes).
//! let mut b = ModuleBuilder::new();
//! let sig = b.sig(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
//! let f = b.func(
//!     sig,
//!     vec![],
//!     vec![Instr::LocalGet(0), Instr::I32Const(1), Instr::I32Add, Instr::End],
//! );
//! b.export_func("inc", f);
//! let bytes = encode_module(&b.build());
//!
//! // Trusted phase: validate + prepare, then link and run.
//! let object = ObjectModule::compile(&bytes).unwrap();
//! let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
//! assert_eq!(inst.invoke("inc", &[Val::I32(41)]).unwrap(), Some(Val::I32(42)));
//! ```

#![warn(missing_docs)]

pub mod decode;
pub mod encode;
pub mod fuel;
pub mod host;
pub mod instance;
pub mod instr;
pub mod leb128;
mod lower;
pub mod module;
pub mod object;
mod opcodes;
pub mod trap;
pub mod types;
pub mod validate;

pub use decode::{decode_module, DecodeError};
pub use encode::encode_module;
pub use fuel::{CpuController, FuelMeter};
pub use host::{HostCtx, HostFunc, LinkError, Linker};
pub use instance::{Instance, InstanceSnapshot, InstantiateError};
pub use instr::{Instr, MemArg};
pub use module::{ExportKind, Module, ModuleBuilder};
pub use object::{CompileError, ExecTier, ObjectModule};
pub use trap::Trap;
pub use types::{BlockType, FuncType, Val, ValType};
pub use validate::{validate, ValidateError};

/// Convenient glob-import surface for embedders and toolchains.
pub mod prelude {
    pub use crate::decode::decode_module;
    pub use crate::encode::encode_module;
    pub use crate::fuel::FuelMeter;
    pub use crate::host::{HostCtx, Linker};
    pub use crate::instance::{Instance, InstanceSnapshot};
    pub use crate::instr::{Instr, MemArg};
    pub use crate::module::{Module, ModuleBuilder};
    pub use crate::object::{ExecTier, ObjectModule};
    pub use crate::trap::Trap;
    pub use crate::types::{BlockType, FuncType, Val, ValType};
}
