//! Module structure and the builder API used by toolchains.
//!
//! A [`Module`] is the output of the *untrusted compilation* phase of the
//! paper's pipeline (Fig. 3): guest toolchains (hand-written tests or the
//! `faasm-lang` compiler) produce modules, serialise them with
//! [`crate::encode::encode_module`], and upload the bytes. The trusted side
//! decodes, validates and prepares them into [`crate::object::ObjectModule`]s.

use crate::instr::Instr;
use crate::types::{FuncType, Val, ValType};

/// Declares the linear memory of a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySpec {
    /// Pages mapped at instantiation.
    pub initial_pages: u32,
    /// Hard page limit — the per-function memory cap enforced by the host
    /// interface's `mmap`/`brk` (§3.2).
    pub max_pages: u32,
}

/// An imported host function: the guest-visible half of the host interface.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Import namespace (`"faasm"` for the host interface of Tab. 2).
    pub module: String,
    /// Function name within the namespace.
    pub name: String,
    /// Index into the module's type table.
    pub type_idx: u32,
}

/// A function defined inside the module.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Index into the module's type table.
    pub type_idx: u32,
    /// Types of the function's declared locals (parameters excluded).
    pub locals: Vec<ValType>,
    /// The body; must be terminated by an explicit [`Instr::End`].
    pub body: Vec<Instr>,
}

/// A global variable definition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalDef {
    /// The value type of the global.
    pub ty: ValType,
    /// Whether guest code may write it.
    pub mutable: bool,
    /// Initial value (must match `ty`; checked by the validator).
    pub init: Val,
}

/// What an export refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportKind {
    /// An exported function (index includes imports).
    Func,
    /// The module memory.
    Memory,
    /// An exported global.
    Global,
}

/// A named export.
#[derive(Debug, Clone, PartialEq)]
pub struct Export {
    /// Exported name.
    pub name: String,
    /// What is exported.
    pub kind: ExportKind,
    /// Index in the corresponding space.
    pub index: u32,
}

/// A data segment copied into memory at instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Destination byte offset in linear memory.
    pub offset: u32,
    /// Bytes to copy.
    pub bytes: Vec<u8>,
}

/// An element segment seeding the indirect-call table.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemSegment {
    /// First table slot to fill.
    pub offset: u32,
    /// Function indices to place.
    pub funcs: Vec<u32>,
}

/// A complete, not-yet-validated FVM module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Function signatures referenced by functions and imports.
    pub types: Vec<FuncType>,
    /// Host-function imports; these occupy function indices `0..imports.len()`.
    pub imports: Vec<Import>,
    /// Functions defined in the module, at indices after the imports.
    pub funcs: Vec<FuncDef>,
    /// Optional linear memory.
    pub memory: Option<MemorySpec>,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Indirect-call table size in slots (0 = no table).
    pub table_size: u32,
    /// Element segments seeding the table.
    pub elems: Vec<ElemSegment>,
    /// Named exports.
    pub exports: Vec<Export>,
    /// Data segments.
    pub data: Vec<DataSegment>,
    /// Optional start function run at instantiation.
    pub start: Option<u32>,
}

impl Module {
    /// Total number of callable functions (imports + definitions).
    pub fn func_count(&self) -> usize {
        self.imports.len() + self.funcs.len()
    }

    /// The signature of function `idx` (imports first), if it exists.
    pub fn func_type(&self, idx: u32) -> Option<&FuncType> {
        let idx = idx as usize;
        let type_idx = if idx < self.imports.len() {
            self.imports[idx].type_idx
        } else {
            self.funcs.get(idx - self.imports.len())?.type_idx
        };
        self.types.get(type_idx as usize)
    }

    /// Find an export by name and kind.
    pub fn find_export(&self, name: &str, kind: ExportKind) -> Option<u32> {
        self.exports
            .iter()
            .find(|e| e.name == name && e.kind == kind)
            .map(|e| e.index)
    }
}

/// Fluent builder for assembling modules programmatically.
///
/// # Examples
///
/// ```
/// use faasm_fvm::module::ModuleBuilder;
/// use faasm_fvm::types::{FuncType, ValType};
/// use faasm_fvm::instr::Instr;
///
/// let mut b = ModuleBuilder::new();
/// b.memory(1, 4);
/// let sig = b.sig(FuncType::new(vec![ValType::I32, ValType::I32], vec![ValType::I32]));
/// let add = b.func(
///     sig,
///     vec![],
///     vec![Instr::LocalGet(0), Instr::LocalGet(1), Instr::I32Add, Instr::End],
/// );
/// b.export_func("add", add);
/// let module = b.build();
/// assert_eq!(module.func_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
    imports_sealed: bool,
}

impl ModuleBuilder {
    /// Start an empty module.
    pub fn new() -> ModuleBuilder {
        ModuleBuilder::default()
    }

    /// Intern a function signature, returning its type index. Identical
    /// signatures share an index.
    pub fn sig(&mut self, ty: FuncType) -> u32 {
        if let Some(i) = self.module.types.iter().position(|t| *t == ty) {
            return i as u32;
        }
        self.module.types.push(ty);
        (self.module.types.len() - 1) as u32
    }

    /// Declare the module memory.
    pub fn memory(&mut self, initial_pages: u32, max_pages: u32) -> &mut Self {
        self.module.memory = Some(MemorySpec {
            initial_pages,
            max_pages,
        });
        self
    }

    /// Import a host function. All imports must be declared before the first
    /// [`ModuleBuilder::func`] so function indices stay stable.
    ///
    /// # Panics
    ///
    /// Panics if called after a function definition (a toolchain bug, not a
    /// runtime input).
    pub fn import_func(&mut self, module: &str, name: &str, type_idx: u32) -> u32 {
        assert!(
            !self.imports_sealed,
            "imports must be declared before functions"
        );
        self.module.imports.push(Import {
            module: module.to_string(),
            name: name.to_string(),
            type_idx,
        });
        (self.module.imports.len() - 1) as u32
    }

    /// Define a function; returns its function index (imports included).
    pub fn func(&mut self, type_idx: u32, locals: Vec<ValType>, body: Vec<Instr>) -> u32 {
        self.imports_sealed = true;
        self.module.funcs.push(FuncDef {
            type_idx,
            locals,
            body,
        });
        (self.module.imports.len() + self.module.funcs.len() - 1) as u32
    }

    /// Define a global; returns its global index.
    pub fn global(&mut self, ty: ValType, mutable: bool, init: Val) -> u32 {
        self.module.globals.push(GlobalDef { ty, mutable, init });
        (self.module.globals.len() - 1) as u32
    }

    /// Declare the indirect-call table with `size` slots.
    pub fn table(&mut self, size: u32) -> &mut Self {
        self.module.table_size = size;
        self
    }

    /// Seed table slots starting at `offset` with function indices.
    pub fn elem(&mut self, offset: u32, funcs: Vec<u32>) -> &mut Self {
        self.module.elems.push(ElemSegment { offset, funcs });
        self
    }

    /// Export a function under `name`.
    pub fn export_func(&mut self, name: &str, func_idx: u32) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Func,
            index: func_idx,
        });
        self
    }

    /// Export the memory under `name`.
    pub fn export_memory(&mut self, name: &str) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Memory,
            index: 0,
        });
        self
    }

    /// Add a data segment.
    pub fn data(&mut self, offset: u32, bytes: Vec<u8>) -> &mut Self {
        self.module.data.push(DataSegment { offset, bytes });
        self
    }

    /// Set the start function.
    pub fn start(&mut self, func_idx: u32) -> &mut Self {
        self.module.start = Some(func_idx);
        self
    }

    /// Finish and return the module.
    pub fn build(self) -> Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    #[test]
    fn sig_interning_dedupes() {
        let mut b = ModuleBuilder::new();
        let a = b.sig(FuncType::new(vec![ValType::I32], vec![]));
        let c = b.sig(FuncType::new(vec![ValType::I32], vec![]));
        let d = b.sig(FuncType::new(vec![ValType::I64], vec![]));
        assert_eq!(a, c);
        assert_ne!(a, d);
        assert_eq!(b.build().types.len(), 2);
    }

    #[test]
    fn import_and_func_indices_are_contiguous() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::default());
        let i0 = b.import_func("faasm", "noop", sig);
        let i1 = b.import_func("faasm", "noop2", sig);
        let f2 = b.func(sig, vec![], vec![Instr::End]);
        assert_eq!((i0, i1, f2), (0, 1, 2));
        let m = b.build();
        assert_eq!(m.func_count(), 3);
        assert!(m.func_type(2).is_some());
        assert!(m.func_type(3).is_none());
    }

    #[test]
    #[should_panic(expected = "imports must be declared before functions")]
    fn import_after_func_panics() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::default());
        b.func(sig, vec![], vec![Instr::End]);
        b.import_func("faasm", "late", sig);
    }

    #[test]
    fn find_export_filters_by_kind() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::default());
        let f = b.func(sig, vec![], vec![Instr::End]);
        b.memory(1, 1);
        b.export_func("thing", f);
        b.export_memory("thing");
        let m = b.build();
        assert_eq!(m.find_export("thing", ExportKind::Func), Some(0));
        assert_eq!(m.find_export("thing", ExportKind::Memory), Some(0));
        assert_eq!(m.find_export("other", ExportKind::Func), None);
    }

    #[test]
    fn globals_and_table() {
        let mut b = ModuleBuilder::new();
        let g = b.global(ValType::I64, true, Val::I64(9));
        assert_eq!(g, 0);
        b.table(4);
        b.elem(1, vec![0]);
        let m = b.build();
        assert_eq!(m.globals.len(), 1);
        assert_eq!(m.table_size, 4);
        assert_eq!(m.elems[0].funcs, vec![0]);
    }
}
