//! Host-function linking: the trusted-thunk mechanism of §3.4.
//!
//! "The host interface functions are defined as thunks, which allows
//! injecting the trusted host interface implementation into the function
//! binary." A [`Linker`] maps `(module, name)` import pairs to host closures;
//! instantiation resolves every import or fails. Host functions receive a
//! [`HostCtx`] granting access to the guest's linear memory and to an opaque
//! per-instance data pointer (the Faaslet's context in `faasm-core`).

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use faasm_mem::LinearMemory;

use crate::trap::Trap;
use crate::types::Val;

/// The view of an instance a host function receives.
pub struct HostCtx<'a> {
    /// The guest's linear memory, if the module declares one.
    pub mem: Option<&'a mut LinearMemory>,
    /// Opaque per-instance data; `faasm-core` stores the Faaslet context
    /// here and downcasts.
    pub data: &'a mut (dyn Any + Send),
}

impl<'a> HostCtx<'a> {
    /// Borrow the linear memory or trap (for host calls that require one).
    ///
    /// # Errors
    ///
    /// Returns [`Trap::Host`] if the module has no memory.
    pub fn memory(&mut self) -> Result<&mut LinearMemory, Trap> {
        self.mem
            .as_deref_mut()
            .ok_or_else(|| Trap::host("host call requires a linear memory"))
    }

    /// Downcast the per-instance data to a concrete type or trap.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::Host`] if the data has a different type.
    pub fn data_as<T: 'static>(&mut self) -> Result<&mut T, Trap> {
        self.data
            .downcast_mut::<T>()
            .ok_or_else(|| Trap::host("host data has unexpected type"))
    }

    /// Read a guest byte range (pointer + length) out of linear memory.
    ///
    /// # Errors
    ///
    /// Traps if the module has no memory or the range is out of bounds.
    pub fn read_guest_bytes(&mut self, ptr: u32, len: u32) -> Result<Vec<u8>, Trap> {
        let mem = self.memory()?;
        let mut buf = vec![0u8; len as usize];
        mem.read(ptr as usize, &mut buf)
            .map_err(|_| Trap::OutOfBoundsMemory {
                addr: ptr as u64,
                len,
            })?;
        Ok(buf)
    }

    /// Write bytes into guest memory at `ptr`.
    ///
    /// # Errors
    ///
    /// Traps if the module has no memory or the range is out of bounds.
    pub fn write_guest_bytes(&mut self, ptr: u32, data: &[u8]) -> Result<(), Trap> {
        let mem = self.memory()?;
        mem.write(ptr as usize, data)
            .map_err(|_| Trap::OutOfBoundsMemory {
                addr: ptr as u64,
                len: data.len() as u32,
            })
    }
}

/// A host function callable from guest code.
pub trait HostFunc: Send + Sync {
    /// Invoke the host function with typed arguments; returns typed results.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] to terminate guest execution.
    fn call(&self, ctx: &mut HostCtx<'_>, args: &[Val]) -> Result<Vec<Val>, Trap>;
}

impl<F> HostFunc for F
where
    F: Fn(&mut HostCtx<'_>, &[Val]) -> Result<Vec<Val>, Trap> + Send + Sync,
{
    fn call(&self, ctx: &mut HostCtx<'_>, args: &[Val]) -> Result<Vec<Val>, Trap> {
        self(ctx, args)
    }
}

/// An import that could not be resolved at link time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkError {
    /// Import namespace.
    pub module: String,
    /// Import name.
    pub name: String,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unresolved import {}::{}", self.module, self.name)
    }
}

impl std::error::Error for LinkError {}

/// Resolves import names to host functions.
#[derive(Default, Clone)]
pub struct Linker {
    funcs: HashMap<(String, String), Arc<dyn HostFunc>>,
}

impl std::fmt::Debug for Linker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<String> = self
            .funcs
            .keys()
            .map(|(m, n)| format!("{m}::{n}"))
            .collect();
        names.sort();
        f.debug_struct("Linker").field("funcs", &names).finish()
    }
}

impl Linker {
    /// An empty linker.
    pub fn new() -> Linker {
        Linker::default()
    }

    /// Define (or replace) a host function under `module::name`.
    pub fn define(&mut self, module: &str, name: &str, f: Arc<dyn HostFunc>) -> &mut Self {
        self.funcs.insert((module.to_string(), name.to_string()), f);
        self
    }

    /// Define a host function from a closure.
    pub fn define_fn<F>(&mut self, module: &str, name: &str, f: F) -> &mut Self
    where
        F: Fn(&mut HostCtx<'_>, &[Val]) -> Result<Vec<Val>, Trap> + Send + Sync + 'static,
    {
        self.define(module, name, Arc::new(f))
    }

    /// Resolve an import.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError`] naming the missing import.
    pub fn resolve(&self, module: &str, name: &str) -> Result<Arc<dyn HostFunc>, LinkError> {
        self.funcs
            .get(&(module.to_string(), name.to_string()))
            .cloned()
            .ok_or_else(|| LinkError {
                module: module.to_string(),
                name: name.to_string(),
            })
    }

    /// Number of defined host functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True if no host functions are defined.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_resolve() {
        let mut l = Linker::new();
        l.define_fn("faasm", "noop", |_ctx, _args| Ok(vec![]));
        assert!(l.resolve("faasm", "noop").is_ok());
        assert_eq!(
            l.resolve("faasm", "missing").err(),
            Some(LinkError {
                module: "faasm".into(),
                name: "missing".into()
            })
        );
        assert_eq!(l.len(), 1);
        assert!(!l.is_empty());
    }

    #[test]
    fn host_ctx_data_downcast() {
        let mut data: Box<dyn Any + Send> = Box::new(42i64);
        let mut ctx = HostCtx {
            mem: None,
            data: &mut *data,
        };
        assert_eq!(*ctx.data_as::<i64>().unwrap(), 42);
        assert!(ctx.data_as::<String>().is_err());
        assert!(ctx.memory().is_err());
    }

    #[test]
    fn guest_byte_helpers_bounds_checked() {
        let mut mem = LinearMemory::new(1, 1).unwrap();
        mem.write(10, b"abc").unwrap();
        let mut data: Box<dyn Any + Send> = Box::new(());
        let mut ctx = HostCtx {
            mem: Some(&mut mem),
            data: &mut *data,
        };
        assert_eq!(ctx.read_guest_bytes(10, 3).unwrap(), b"abc");
        ctx.write_guest_bytes(20, b"xyz").unwrap();
        assert_eq!(ctx.read_guest_bytes(20, 3).unwrap(), b"xyz");
        assert!(matches!(
            ctx.read_guest_bytes(u32::MAX, 2),
            Err(Trap::OutOfBoundsMemory { .. })
        ));
        assert!(ctx.write_guest_bytes(u32::MAX, b"x").is_err());
    }

    #[test]
    fn linker_debug_lists_names() {
        let mut l = Linker::new();
        l.define_fn("faasm", "b", |_c, _a| Ok(vec![]));
        l.define_fn("faasm", "a", |_c, _a| Ok(vec![]));
        let dbg = format!("{l:?}");
        assert!(dbg.contains("faasm::a"));
        assert!(dbg.contains("faasm::b"));
    }
}
