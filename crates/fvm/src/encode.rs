//! Binary encoding of modules (the "WebAssembly binary" artefact of Fig. 3).

use crate::instr::Instr;
use crate::leb128 as leb;
use crate::module::{ExportKind, Module};
use crate::opcodes::simple_opcode;
use crate::types::{BlockType, Val};

/// Magic bytes at the start of every encoded module.
pub const MAGIC: [u8; 4] = *b"\0fvm";
/// Current binary format version.
pub const VERSION: u32 = 1;

const SEC_TYPE: u8 = 1;
const SEC_IMPORT: u8 = 2;
const SEC_FUNC: u8 = 3;
const SEC_TABLE: u8 = 4;
const SEC_MEMORY: u8 = 5;
const SEC_GLOBAL: u8 = 6;
const SEC_EXPORT: u8 = 7;
const SEC_START: u8 = 8;
const SEC_ELEM: u8 = 9;
const SEC_CODE: u8 = 10;
const SEC_DATA: u8 = 11;

/// Serialise a module to its binary representation.
///
/// The output is what an untrusted toolchain uploads to the platform; the
/// trusted side re-validates it with [`crate::decode::decode_module`] +
/// [`crate::validate::validate`] before any code generation (§3.4).
pub fn encode_module(m: &Module) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());

    if !m.types.is_empty() {
        section(&mut out, SEC_TYPE, |buf| {
            leb::write_u32(buf, m.types.len() as u32);
            for t in &m.types {
                buf.push(0x60);
                leb::write_u32(buf, t.params.len() as u32);
                for p in &t.params {
                    buf.push(p.code());
                }
                leb::write_u32(buf, t.results.len() as u32);
                for r in &t.results {
                    buf.push(r.code());
                }
            }
        });
    }

    if !m.imports.is_empty() {
        section(&mut out, SEC_IMPORT, |buf| {
            leb::write_u32(buf, m.imports.len() as u32);
            for i in &m.imports {
                name(buf, &i.module);
                name(buf, &i.name);
                buf.push(0x00);
                leb::write_u32(buf, i.type_idx);
            }
        });
    }

    if !m.funcs.is_empty() {
        section(&mut out, SEC_FUNC, |buf| {
            leb::write_u32(buf, m.funcs.len() as u32);
            for f in &m.funcs {
                leb::write_u32(buf, f.type_idx);
            }
        });
    }

    if m.table_size > 0 {
        section(&mut out, SEC_TABLE, |buf| {
            leb::write_u32(buf, 1);
            buf.push(0x70); // funcref
            buf.push(0x00); // no max
            leb::write_u32(buf, m.table_size);
        });
    }

    if let Some(mem) = &m.memory {
        section(&mut out, SEC_MEMORY, |buf| {
            leb::write_u32(buf, 1);
            buf.push(0x01); // has max
            leb::write_u32(buf, mem.initial_pages);
            leb::write_u32(buf, mem.max_pages);
        });
    }

    if !m.globals.is_empty() {
        section(&mut out, SEC_GLOBAL, |buf| {
            leb::write_u32(buf, m.globals.len() as u32);
            for g in &m.globals {
                buf.push(g.ty.code());
                buf.push(if g.mutable { 0x01 } else { 0x00 });
                let init = match g.init {
                    Val::I32(v) => Instr::I32Const(v),
                    Val::I64(v) => Instr::I64Const(v),
                    Val::F32(v) => Instr::F32Const(v),
                    Val::F64(v) => Instr::F64Const(v),
                };
                encode_instr(buf, &init);
                encode_instr(buf, &Instr::End);
            }
        });
    }

    if !m.exports.is_empty() {
        section(&mut out, SEC_EXPORT, |buf| {
            leb::write_u32(buf, m.exports.len() as u32);
            for e in &m.exports {
                name(buf, &e.name);
                buf.push(match e.kind {
                    ExportKind::Func => 0x00,
                    ExportKind::Memory => 0x02,
                    ExportKind::Global => 0x03,
                });
                leb::write_u32(buf, e.index);
            }
        });
    }

    if let Some(start) = m.start {
        section(&mut out, SEC_START, |buf| {
            leb::write_u32(buf, start);
        });
    }

    if !m.elems.is_empty() {
        section(&mut out, SEC_ELEM, |buf| {
            leb::write_u32(buf, m.elems.len() as u32);
            for e in &m.elems {
                leb::write_u32(buf, 0); // table index
                encode_instr(buf, &Instr::I32Const(e.offset as i32));
                encode_instr(buf, &Instr::End);
                leb::write_u32(buf, e.funcs.len() as u32);
                for f in &e.funcs {
                    leb::write_u32(buf, *f);
                }
            }
        });
    }

    if !m.funcs.is_empty() {
        section(&mut out, SEC_CODE, |buf| {
            leb::write_u32(buf, m.funcs.len() as u32);
            for f in &m.funcs {
                let mut body = Vec::new();
                // Locals as (count, type) runs.
                let mut runs: Vec<(u32, u8)> = Vec::new();
                for l in &f.locals {
                    match runs.last_mut() {
                        Some((n, code)) if *code == l.code() => *n += 1,
                        _ => runs.push((1, l.code())),
                    }
                }
                leb::write_u32(&mut body, runs.len() as u32);
                for (n, code) in runs {
                    leb::write_u32(&mut body, n);
                    body.push(code);
                }
                for instr in &f.body {
                    encode_instr(&mut body, instr);
                }
                leb::write_u32(buf, body.len() as u32);
                buf.extend_from_slice(&body);
            }
        });
    }

    if !m.data.is_empty() {
        section(&mut out, SEC_DATA, |buf| {
            leb::write_u32(buf, m.data.len() as u32);
            for d in &m.data {
                leb::write_u32(buf, 0); // memory index
                encode_instr(buf, &Instr::I32Const(d.offset as i32));
                encode_instr(buf, &Instr::End);
                leb::write_u32(buf, d.bytes.len() as u32);
                buf.extend_from_slice(&d.bytes);
            }
        });
    }

    out
}

fn section(out: &mut Vec<u8>, id: u8, f: impl FnOnce(&mut Vec<u8>)) {
    let mut buf = Vec::new();
    f(&mut buf);
    out.push(id);
    leb::write_u32(out, buf.len() as u32);
    out.extend_from_slice(&buf);
}

fn name(out: &mut Vec<u8>, s: &str) {
    leb::write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn block_type(out: &mut Vec<u8>, bt: BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(t) => out.push(t.code()),
    }
}

fn memarg(out: &mut Vec<u8>, m: &crate::instr::MemArg) {
    leb::write_u32(out, m.align);
    leb::write_u32(out, m.offset);
}

/// Encode one instruction.
pub fn encode_instr(out: &mut Vec<u8>, i: &Instr) {
    use Instr::*;
    if let Some(code) = simple_opcode(i) {
        out.push(code);
        return;
    }
    match i {
        Block(bt) => {
            out.push(0x02);
            block_type(out, *bt);
        }
        Loop(bt) => {
            out.push(0x03);
            block_type(out, *bt);
        }
        If(bt) => {
            out.push(0x04);
            block_type(out, *bt);
        }
        Else => out.push(0x05),
        End => out.push(0x0b),
        Br(d) => {
            out.push(0x0c);
            leb::write_u32(out, *d);
        }
        BrIf(d) => {
            out.push(0x0d);
            leb::write_u32(out, *d);
        }
        BrTable(t) => {
            out.push(0x0e);
            leb::write_u32(out, t.targets.len() as u32);
            for d in &t.targets {
                leb::write_u32(out, *d);
            }
            leb::write_u32(out, t.default);
        }
        Call(f) => {
            out.push(0x10);
            leb::write_u32(out, *f);
        }
        CallIndirect(t) => {
            out.push(0x11);
            leb::write_u32(out, *t);
            out.push(0x00); // table index
        }
        LocalGet(n) => {
            out.push(0x20);
            leb::write_u32(out, *n);
        }
        LocalSet(n) => {
            out.push(0x21);
            leb::write_u32(out, *n);
        }
        LocalTee(n) => {
            out.push(0x22);
            leb::write_u32(out, *n);
        }
        GlobalGet(n) => {
            out.push(0x23);
            leb::write_u32(out, *n);
        }
        GlobalSet(n) => {
            out.push(0x24);
            leb::write_u32(out, *n);
        }
        I32Load(m) => {
            out.push(0x28);
            memarg(out, m);
        }
        I64Load(m) => {
            out.push(0x29);
            memarg(out, m);
        }
        F32Load(m) => {
            out.push(0x2a);
            memarg(out, m);
        }
        F64Load(m) => {
            out.push(0x2b);
            memarg(out, m);
        }
        I32Load8S(m) => {
            out.push(0x2c);
            memarg(out, m);
        }
        I32Load8U(m) => {
            out.push(0x2d);
            memarg(out, m);
        }
        I32Load16S(m) => {
            out.push(0x2e);
            memarg(out, m);
        }
        I32Load16U(m) => {
            out.push(0x2f);
            memarg(out, m);
        }
        I64Load8S(m) => {
            out.push(0x30);
            memarg(out, m);
        }
        I64Load8U(m) => {
            out.push(0x31);
            memarg(out, m);
        }
        I64Load16S(m) => {
            out.push(0x32);
            memarg(out, m);
        }
        I64Load16U(m) => {
            out.push(0x33);
            memarg(out, m);
        }
        I64Load32S(m) => {
            out.push(0x34);
            memarg(out, m);
        }
        I64Load32U(m) => {
            out.push(0x35);
            memarg(out, m);
        }
        I32Store(m) => {
            out.push(0x36);
            memarg(out, m);
        }
        I64Store(m) => {
            out.push(0x37);
            memarg(out, m);
        }
        F32Store(m) => {
            out.push(0x38);
            memarg(out, m);
        }
        F64Store(m) => {
            out.push(0x39);
            memarg(out, m);
        }
        I32Store8(m) => {
            out.push(0x3a);
            memarg(out, m);
        }
        I32Store16(m) => {
            out.push(0x3b);
            memarg(out, m);
        }
        I64Store8(m) => {
            out.push(0x3c);
            memarg(out, m);
        }
        I64Store16(m) => {
            out.push(0x3d);
            memarg(out, m);
        }
        I64Store32(m) => {
            out.push(0x3e);
            memarg(out, m);
        }
        MemorySize => {
            out.push(0x3f);
            out.push(0x00);
        }
        MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        MemoryCopy => {
            out.push(0xfc);
            leb::write_u32(out, 0x0a);
            out.push(0x00);
            out.push(0x00);
        }
        MemoryFill => {
            out.push(0xfc);
            leb::write_u32(out, 0x0b);
            out.push(0x00);
        }
        I32Const(v) => {
            out.push(0x41);
            leb::write_i32(out, *v);
        }
        I64Const(v) => {
            out.push(0x42);
            leb::write_i64(out, *v);
        }
        F32Const(v) => {
            out.push(0x43);
            out.extend_from_slice(&v.to_le_bytes());
        }
        F64Const(v) => {
            out.push(0x44);
            out.extend_from_slice(&v.to_le_bytes());
        }
        other => unreachable!("instruction not covered by encoder: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BrTableData, MemArg};
    use crate::module::ModuleBuilder;
    use crate::types::{FuncType, ValType};

    #[test]
    fn header_is_stable() {
        let m = Module::default();
        let bytes = encode_module(&m);
        assert_eq!(&bytes[0..4], b"\0fvm");
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 1);
        assert_eq!(bytes.len(), 8, "empty module is just the header");
    }

    #[test]
    fn every_instruction_encodes() {
        // A sweep over representative immediate-carrying instructions; simple
        // ones are covered by the opcode-table tests.
        let instrs = vec![
            Instr::Block(BlockType::Empty),
            Instr::Loop(BlockType::Value(ValType::F64)),
            Instr::If(BlockType::Empty),
            Instr::Else,
            Instr::End,
            Instr::Br(0),
            Instr::BrIf(300),
            Instr::BrTable(Box::new(BrTableData {
                targets: vec![0, 1, 2],
                default: 3,
            })),
            Instr::Call(7),
            Instr::CallIndirect(2),
            Instr::LocalGet(1),
            Instr::LocalSet(200),
            Instr::LocalTee(3),
            Instr::GlobalGet(0),
            Instr::GlobalSet(1),
            Instr::I32Load(MemArg::at(4)),
            Instr::I64Store32(MemArg::zero()),
            Instr::MemorySize,
            Instr::MemoryGrow,
            Instr::MemoryCopy,
            Instr::MemoryFill,
            Instr::I32Const(-1),
            Instr::I64Const(i64::MIN),
            Instr::F32Const(1.5),
            Instr::F64Const(-2.5),
        ];
        let mut buf = Vec::new();
        for i in &instrs {
            encode_instr(&mut buf, i);
        }
        assert!(!buf.is_empty());
    }

    #[test]
    fn full_module_has_all_sections() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        b.import_func("faasm", "host", sig);
        b.memory(1, 2);
        b.global(ValType::I32, true, Val::I32(5));
        b.table(2);
        let f = b.func(
            sig,
            vec![ValType::I64],
            vec![Instr::LocalGet(0), Instr::End],
        );
        b.elem(0, vec![f]);
        b.export_func("f", f);
        b.data(0, vec![1, 2, 3]);
        b.start(f);
        let bytes = encode_module(&b.build());
        // All section ids present.
        for id in [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11] {
            assert!(bytes.contains(&id), "missing section {id}");
        }
    }
}
