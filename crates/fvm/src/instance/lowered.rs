//! The lowered-tier execution loop: direct-threaded dispatch over the flat
//! op arrays produced by [`crate::lower`].
//!
//! The loop runs in one of two fuel modes, selected by a const generic so
//! the hot path monomorphises without per-op branching:
//!
//! * **Bulk** (`METERED = false`, the normal mode): fuel is charged once per
//!   basic block via [`crate::fuel::FuelMeter::charge_block`]. A non-fuel
//!   trap mid-block refunds the un-executed remainder (`LOp::rest`), so
//!   observed consumption equals the interpreter's. When a block charge
//!   would cross the hard fuel limit, the charge is refused and the loop
//!   switches permanently to metered mode at the same pc.
//! * **Metered** (`METERED = true`): each op charges its own cost (plus the
//!   fall-through edge fuel when it was reached linearly) with
//!   [`crate::fuel::FuelMeter::charge_steps`], reproducing the
//!   interpreter's exact out-of-fuel point, `consumed == limit + 1`.
//!
//! Branch edges charge their pre-walked `extra` (the structural
//! instructions the interpreter executes along that edge) in both modes.

use std::sync::Arc;

use crate::instr::Instr;
use crate::lower::{BranchArgs, LoweredFunc, LsWidth, Op, RETURN_TARGET};
use crate::object::ObjectModule;
use crate::trap::Trap;

use super::{pop_u32, take_result, Instance};

impl Instance {
    /// Execute one lowered function body. The caller (`exec_body`) has
    /// already checked call depth.
    pub(super) fn exec_lowered(
        &mut self,
        object: &Arc<ObjectModule>,
        local_idx: usize,
        mut locals: Vec<u64>,
        depth: usize,
    ) -> Result<Option<u64>, Trap> {
        let lowered = object.lowered.as_ref().expect("lowered tier prepared");
        let lf = &lowered[local_idx];
        let func = &object.module.funcs[local_idx];
        let func_arity = object.module.types[func.type_idx as usize].results.len();
        let mut stack: Vec<u64> = Vec::with_capacity(32);
        // Fuel for structural instructions preceding the first real op.
        self.fuel.charge_steps(lf.entry_pre as u64)?;
        self.run::<false>(
            object,
            lf,
            func_arity,
            &mut locals,
            &mut stack,
            0,
            depth,
            false,
        )
    }

    /// The dispatch loop; see the module docs for the fuel modes.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn run<const METERED: bool>(
        &mut self,
        object: &Arc<ObjectModule>,
        lf: &LoweredFunc,
        func_arity: usize,
        locals: &mut Vec<u64>,
        stack: &mut Vec<u64>,
        mut pc: usize,
        depth: usize,
        mut fell: bool,
    ) -> Result<Option<u64>, Trap> {
        loop {
            let lop = &lf.ops[pc];
            self.instrs += 1;
            if METERED {
                let edge = if fell { lop.pre } else { 0 };
                self.fuel.charge_steps((lop.cost + edge) as u64)?;
                fell = true;
            } else if lop.charge != 0 && !self.fuel.charge_block(lop.charge as u64)? {
                // The block would cross the fuel limit: re-run it op-by-op
                // so the trap lands exactly where the interpreter traps.
                // The edge into this leader was already paid.
                return self.run::<true>(object, lf, func_arity, locals, stack, pc, depth, false);
            }
            let rest = lop.rest;

            // A non-fuel trap exits mid-block: in bulk mode, hand back the
            // fuel for the ops that never ran.
            macro_rules! trap {
                ($e:expr) => {{
                    if !METERED {
                        self.fuel.refund(rest as u64);
                    }
                    return Err($e);
                }};
            }
            // Taken branch edge: pay the walked structural fuel, fix the
            // stack exactly like the interpreter's label machinery, jump.
            macro_rules! take_branch {
                ($args:expr) => {{
                    let args: BranchArgs = $args;
                    self.fuel.charge_steps(args.extra as u64)?;
                    if args.target == RETURN_TARGET {
                        return Ok(take_result(stack, func_arity));
                    }
                    if args.carry {
                        let v = stack.pop().expect("validated branch carry");
                        stack.truncate(args.height as usize);
                        stack.push(v);
                    } else {
                        stack.truncate(args.height as usize);
                    }
                    pc = args.target as usize;
                    if METERED {
                        // The edge fuel was just charged; don't re-charge
                        // the target's `pre`.
                        fell = false;
                    }
                    continue;
                }};
            }

            match &lop.op {
                Op::Unreachable => trap!(Trap::Unreachable),
                Op::Jump(a) => take_branch!(*a),
                Op::BrNz(c) => {
                    if pop_u32(stack) != 0 {
                        take_branch!(c.args);
                    } else if !METERED {
                        self.fuel.charge_steps(c.fall_extra as u64)?;
                    }
                }
                Op::BrZ(c) => {
                    if pop_u32(stack) == 0 {
                        take_branch!(c.args);
                    } else if !METERED {
                        self.fuel.charge_steps(c.fall_extra as u64)?;
                    }
                }
                Op::BrTable(t) => {
                    let i = pop_u32(stack) as usize;
                    let args = t.entries.get(i).copied().unwrap_or(t.default);
                    take_branch!(args);
                }
                Op::Ret => return Ok(take_result(stack, func_arity)),
                Op::Call { idx, extra } => {
                    if let Err(e) = self.dispatch_call(*idx, stack, depth + 1) {
                        trap!(e);
                    }
                    if !METERED {
                        self.fuel.charge_steps(*extra as u64)?;
                    }
                }
                Op::CallIndirect { type_idx, extra } => {
                    let i = pop_u32(stack);
                    let slot = match self.table.get(i as usize) {
                        Some(s) => *s,
                        None => trap!(Trap::OutOfBoundsTable { index: i }),
                    };
                    let func_idx = match slot {
                        Some(f) => f,
                        None => trap!(Trap::UninitializedElement { index: i }),
                    };
                    let expected = &object.module.types[*type_idx as usize];
                    match object.module.func_type(func_idx) {
                        Some(actual) if actual == expected => {}
                        _ => trap!(Trap::IndirectCallTypeMismatch),
                    }
                    if let Err(e) = self.dispatch_call(func_idx, stack, depth + 1) {
                        trap!(e);
                    }
                    if !METERED {
                        self.fuel.charge_steps(*extra as u64)?;
                    }
                }
                Op::MemoryGrow { extra } => {
                    if let Err(e) = self.step_plain(&Instr::MemoryGrow, locals, stack) {
                        trap!(e);
                    }
                    if !METERED {
                        self.fuel.charge_steps(*extra as u64)?;
                    }
                }
                Op::MemoryCopy { extra } => {
                    if let Err(e) = self.step_plain(&Instr::MemoryCopy, locals, stack) {
                        trap!(e);
                    }
                    if !METERED {
                        self.fuel.charge_steps(*extra as u64)?;
                    }
                }
                Op::MemoryFill { extra } => {
                    if let Err(e) = self.step_plain(&Instr::MemoryFill, locals, stack) {
                        trap!(e);
                    }
                    if !METERED {
                        self.fuel.charge_steps(*extra as u64)?;
                    }
                }
                Op::LocalGet(i) => stack.push(locals[*i as usize]),
                Op::LocalSet(i) => {
                    locals[*i as usize] = stack.pop().expect("validated stack");
                }
                Op::LocalTee(i) => {
                    locals[*i as usize] = *stack.last().expect("validated stack");
                }
                Op::I32Const(v) => stack.push(*v as u32 as u64),
                Op::I64Const(v) => stack.push(*v as u64),
                Op::FBinLL { a, b, op } => {
                    let r = op.eval(locals[*a as usize], locals[*b as usize]);
                    stack.push(r);
                }
                Op::FBinLLS { a, b, dst, op } => {
                    locals[*dst as usize] = op.eval(locals[*a as usize], locals[*b as usize]);
                }
                Op::FImm { imm, op } => {
                    let a = stack.pop().expect("validated stack");
                    stack.push(op.eval(a, *imm));
                }
                Op::FImmL { src, imm, op } => {
                    stack.push(op.eval(locals[*src as usize], *imm));
                }
                Op::FImmLS { src, imm, dst, op } => {
                    locals[*dst as usize] = op.eval(locals[*src as usize], *imm);
                }
                Op::FBrCmpLL {
                    a,
                    b,
                    cmp,
                    when,
                    br,
                } => {
                    if cmp.eval(locals[*a as usize], locals[*b as usize]) == *when {
                        take_branch!(br.args);
                    } else if !METERED {
                        self.fuel.charge_steps(br.fall_extra as u64)?;
                    }
                }
                Op::FBrCmpLI {
                    a,
                    imm,
                    cmp,
                    when,
                    br,
                } => {
                    if cmp.eval(locals[*a as usize], *imm as u32 as u64) == *when {
                        take_branch!(br.args);
                    } else if !METERED {
                        self.fuel.charge_steps(br.fall_extra as u64)?;
                    }
                }
                Op::FLocalLoad {
                    local,
                    offset,
                    width,
                } => {
                    let base = locals[*local as usize] as u32;
                    let addr = base as u64 + *offset as u64;
                    let len = width.bytes();
                    let mem = self.mem.as_ref().expect("validated memory presence");
                    if addr + len as u64 > mem.size_bytes() as u64 {
                        trap!(Trap::OutOfBoundsMemory { addr, len });
                    }
                    let v = match width {
                        LsWidth::W4 => u32::from_le_bytes(mem.read_raw::<4>(addr as usize)) as u64,
                        LsWidth::W8 => u64::from_le_bytes(mem.read_raw::<8>(addr as usize)),
                    };
                    stack.push(v);
                }
                Op::FStoreL {
                    local,
                    offset,
                    width,
                } => {
                    // Source order: the address was pushed first, then the
                    // fused LocalGet supplied the value.
                    let v = locals[*local as usize];
                    let base = pop_u32(stack);
                    let addr = base as u64 + *offset as u64;
                    let len = width.bytes();
                    let mem = self.mem.as_mut().expect("validated memory presence");
                    if addr + len as u64 > mem.size_bytes() as u64 {
                        trap!(Trap::OutOfBoundsMemory { addr, len });
                    }
                    match width {
                        LsWidth::W4 => {
                            mem.write_raw::<4>(addr as usize, (v as u32).to_le_bytes());
                        }
                        LsWidth::W8 => mem.write_raw::<8>(addr as usize, v.to_le_bytes()),
                    }
                }
                Op::FAddLoad { offset, width } => {
                    let b = stack.pop().expect("validated stack") as u32 as i32;
                    let a = stack.pop().expect("validated stack") as u32 as i32;
                    let base = a.wrapping_add(b) as u32;
                    let addr = base as u64 + *offset as u64;
                    let len = width.bytes();
                    let mem = self.mem.as_ref().expect("validated memory presence");
                    if addr + len as u64 > mem.size_bytes() as u64 {
                        trap!(Trap::OutOfBoundsMemory { addr, len });
                    }
                    let v = match width {
                        LsWidth::W4 => u32::from_le_bytes(mem.read_raw::<4>(addr as usize)) as u64,
                        LsWidth::W8 => u64::from_le_bytes(mem.read_raw::<8>(addr as usize)),
                    };
                    stack.push(v);
                }
                Op::Plain(i) => {
                    if let Err(e) = self.step_plain(i, locals, stack) {
                        trap!(e);
                    }
                }
            }
            pc += 1;
        }
    }
}
