//! Interpreter behaviour tests: arithmetic, control flow, traps, host calls,
//! memory, fuel and snapshots.

use super::*;
use crate::instr::{BrTableData, Instr::*, MemArg};
use crate::module::ModuleBuilder;
use crate::types::{BlockType, FuncType, ValType::*};

/// Build, validate and instantiate a single-function module exporting `f`.
fn run1(
    params: Vec<crate::types::ValType>,
    results: Vec<crate::types::ValType>,
    locals: Vec<crate::types::ValType>,
    body: Vec<Instr>,
    args: &[Val],
) -> Result<Option<Val>, Trap> {
    let mut b = ModuleBuilder::new();
    b.memory(1, 4);
    let sig = b.sig(FuncType::new(params, results));
    let f = b.func(sig, locals, body);
    b.export_func("f", f);
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
    inst.invoke("f", args)
}

fn eval_i32(body: Vec<Instr>) -> Result<i32, Trap> {
    run1(vec![], vec![I32], vec![], body, &[]).map(|v| v.unwrap().as_i32().unwrap())
}

fn eval_i64(body: Vec<Instr>) -> Result<i64, Trap> {
    run1(vec![], vec![I64], vec![], body, &[]).map(|v| v.unwrap().as_i64().unwrap())
}

fn eval_f64(body: Vec<Instr>) -> Result<f64, Trap> {
    run1(vec![], vec![F64], vec![], body, &[]).map(|v| v.unwrap().as_f64().unwrap())
}

#[test]
fn constants_and_arithmetic() {
    assert_eq!(
        eval_i32(vec![I32Const(2), I32Const(3), I32Add, End]).unwrap(),
        5
    );
    assert_eq!(
        eval_i32(vec![I32Const(2), I32Const(3), I32Sub, End]).unwrap(),
        -1
    );
    assert_eq!(
        eval_i32(vec![I32Const(7), I32Const(6), I32Mul, End]).unwrap(),
        42
    );
    assert_eq!(
        eval_i32(vec![I32Const(i32::MAX), I32Const(1), I32Add, End]).unwrap(),
        i32::MIN,
        "wrapping add"
    );
    assert_eq!(
        eval_i64(vec![I64Const(1), I64Const(2), I64Add, End]).unwrap(),
        3
    );
    assert_eq!(
        eval_f64(vec![F64Const(1.5), F64Const(2.0), F64Mul, End]).unwrap(),
        3.0
    );
}

#[test]
fn division_semantics() {
    assert_eq!(
        eval_i32(vec![I32Const(7), I32Const(2), I32DivS, End]).unwrap(),
        3
    );
    assert_eq!(
        eval_i32(vec![I32Const(-7), I32Const(2), I32DivS, End]).unwrap(),
        -3
    );
    assert_eq!(
        eval_i32(vec![I32Const(-1), I32Const(2), I32DivU, End]).unwrap(),
        0x7fff_ffff
    );
    assert_eq!(
        eval_i32(vec![I32Const(-7), I32Const(2), I32RemS, End]).unwrap(),
        -1
    );
    assert_eq!(
        eval_i32(vec![I32Const(1), I32Const(0), I32DivS, End]),
        Err(Trap::IntegerDivideByZero)
    );
    assert_eq!(
        eval_i32(vec![I32Const(i32::MIN), I32Const(-1), I32DivS, End]),
        Err(Trap::IntegerOverflow)
    );
    // i32::MIN % -1 == 0, no trap (WebAssembly semantics).
    assert_eq!(
        eval_i32(vec![I32Const(i32::MIN), I32Const(-1), I32RemS, End]).unwrap(),
        0
    );
    assert_eq!(
        eval_i64(vec![I64Const(i64::MIN), I64Const(-1), I64DivS, End]),
        Err(Trap::IntegerOverflow)
    );
}

#[test]
fn shifts_mask_their_count() {
    assert_eq!(
        eval_i32(vec![I32Const(1), I32Const(33), I32Shl, End]).unwrap(),
        2
    );
    assert_eq!(
        eval_i32(vec![I32Const(-8), I32Const(1), I32ShrS, End]).unwrap(),
        -4
    );
    assert_eq!(
        eval_i32(vec![I32Const(-8), I32Const(1), I32ShrU, End]).unwrap(),
        0x7fff_fffc
    );
    assert_eq!(
        eval_i64(vec![I64Const(1), I64Const(65), I64Shl, End]).unwrap(),
        2
    );
}

#[test]
fn bit_counting() {
    assert_eq!(eval_i32(vec![I32Const(0), I32Clz, End]).unwrap(), 32);
    assert_eq!(eval_i32(vec![I32Const(1), I32Clz, End]).unwrap(), 31);
    assert_eq!(eval_i32(vec![I32Const(8), I32Ctz, End]).unwrap(), 3);
    assert_eq!(eval_i32(vec![I32Const(0xff), I32Popcnt, End]).unwrap(), 8);
    assert_eq!(eval_i64(vec![I64Const(0), I64Clz, End]).unwrap(), 64);
}

#[test]
fn comparisons() {
    assert_eq!(
        eval_i32(vec![I32Const(1), I32Const(2), I32LtS, End]).unwrap(),
        1
    );
    assert_eq!(
        eval_i32(vec![I32Const(-1), I32Const(2), I32LtU, End]).unwrap(),
        0
    );
    assert_eq!(eval_i32(vec![I32Const(5), I32Eqz, End]).unwrap(), 0);
    assert_eq!(eval_i32(vec![I32Const(0), I32Eqz, End]).unwrap(), 1);
    assert_eq!(
        eval_i32(vec![F64Const(f64::NAN), F64Const(1.0), F64Lt, End]).unwrap(),
        0,
        "NaN comparisons are false"
    );
    assert_eq!(
        eval_i32(vec![F64Const(f64::NAN), F64Const(1.0), F64Ne, End]).unwrap(),
        1
    );
}

#[test]
fn float_min_max_nan_and_zero() {
    assert!(
        eval_f64(vec![F64Const(f64::NAN), F64Const(1.0), F64Min, End])
            .unwrap()
            .is_nan()
    );
    assert_eq!(
        eval_f64(vec![F64Const(-0.0), F64Const(0.0), F64Min, End])
            .unwrap()
            .to_bits(),
        (-0.0f64).to_bits()
    );
    assert_eq!(
        eval_f64(vec![F64Const(-0.0), F64Const(0.0), F64Max, End])
            .unwrap()
            .to_bits(),
        (0.0f64).to_bits()
    );
    assert_eq!(
        eval_f64(vec![F64Const(3.0), F64Const(2.0), F64Min, End]).unwrap(),
        2.0
    );
    // Equal non-zero operands must return the value itself (regression:
    // an early implementation returned 0 for any equal pair).
    assert_eq!(
        eval_f64(vec![F64Const(1.0), F64Const(1.0), F64Max, End]).unwrap(),
        1.0
    );
    assert_eq!(
        eval_f64(vec![F64Const(-2.5), F64Const(-2.5), F64Min, End]).unwrap(),
        -2.5
    );
    assert_eq!(
        eval_f64(vec![F64Const(7.0), F64Const(7.0), F64Min, End]).unwrap(),
        7.0
    );
    assert_eq!(
        eval_f64(vec![F64Const(-3.0), F64Const(-3.0), F64Max, End]).unwrap(),
        -3.0
    );
}

#[test]
fn float_rounding() {
    assert_eq!(eval_f64(vec![F64Const(2.5), F64Nearest, End]).unwrap(), 2.0);
    assert_eq!(eval_f64(vec![F64Const(3.5), F64Nearest, End]).unwrap(), 4.0);
    assert_eq!(eval_f64(vec![F64Const(-1.5), F64Ceil, End]).unwrap(), -1.0);
    assert_eq!(eval_f64(vec![F64Const(-1.5), F64Floor, End]).unwrap(), -2.0);
    assert_eq!(eval_f64(vec![F64Const(-1.7), F64Trunc, End]).unwrap(), -1.0);
    assert_eq!(eval_f64(vec![F64Const(9.0), F64Sqrt, End]).unwrap(), 3.0);
}

#[test]
fn conversions() {
    assert_eq!(
        eval_i32(vec![I64Const(0x1_0000_0002), I32WrapI64, End]).unwrap(),
        2
    );
    assert_eq!(
        eval_i64(vec![I32Const(-1), I64ExtendI32S, End]).unwrap(),
        -1
    );
    assert_eq!(
        eval_i64(vec![I32Const(-1), I64ExtendI32U, End]).unwrap(),
        0xffff_ffff
    );
    assert_eq!(
        eval_i32(vec![F64Const(3.99), I32TruncF64S, End]).unwrap(),
        3
    );
    assert_eq!(
        eval_i32(vec![F64Const(-3.99), I32TruncF64S, End]).unwrap(),
        -3
    );
    assert_eq!(
        eval_i32(vec![F64Const(f64::NAN), I32TruncF64S, End]),
        Err(Trap::InvalidConversionToInteger)
    );
    assert_eq!(
        eval_i32(vec![F64Const(3e10), I32TruncF64S, End]),
        Err(Trap::IntegerOverflow)
    );
    assert_eq!(
        eval_i32(vec![F64Const(-1.0), I32TruncF64U, End]),
        Err(Trap::IntegerOverflow)
    );
    assert_eq!(
        eval_f64(vec![I32Const(-1), F64ConvertI32U, End]).unwrap(),
        4294967295.0
    );
    assert_eq!(
        eval_f64(vec![I64Const(1), F64ConvertI64S, End]).unwrap(),
        1.0
    );
    // Reinterpret preserves bits.
    assert_eq!(
        eval_i64(vec![F64Const(1.0), I64ReinterpretF64, End]).unwrap(),
        1.0f64.to_bits() as i64
    );
    assert_eq!(
        eval_f64(vec![I64Const(0), F64ReinterpretI64, End]).unwrap(),
        0.0
    );
}

#[test]
fn locals_and_select() {
    let r = run1(
        vec![I32, I32, I32],
        vec![I32],
        vec![],
        vec![LocalGet(1), LocalGet(2), LocalGet(0), Select, End],
        &[Val::I32(1), Val::I32(10), Val::I32(20)],
    )
    .unwrap();
    assert_eq!(r, Some(Val::I32(10)));
    let r = run1(
        vec![I32, I32, I32],
        vec![I32],
        vec![],
        vec![LocalGet(1), LocalGet(2), LocalGet(0), Select, End],
        &[Val::I32(0), Val::I32(10), Val::I32(20)],
    )
    .unwrap();
    assert_eq!(r, Some(Val::I32(20)));
}

#[test]
fn local_tee_keeps_value() {
    let r = run1(
        vec![I32],
        vec![I32],
        vec![I32],
        vec![LocalGet(0), LocalTee(1), LocalGet(1), I32Add, End],
        &[Val::I32(21)],
    )
    .unwrap();
    assert_eq!(r, Some(Val::I32(42)));
}

#[test]
fn globals_read_write() {
    let mut b = ModuleBuilder::new();
    let sig = b.sig(FuncType::new(vec![], vec![I32]));
    b.global(I32, true, Val::I32(10));
    let f = b.func(
        sig,
        vec![],
        vec![
            GlobalGet(0),
            I32Const(1),
            I32Add,
            GlobalSet(0),
            GlobalGet(0),
            End,
        ],
    );
    b.export_func("bump", f);
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
    assert_eq!(inst.invoke("bump", &[]).unwrap(), Some(Val::I32(11)));
    assert_eq!(inst.invoke("bump", &[]).unwrap(), Some(Val::I32(12)));
    assert_eq!(inst.global(0), Some(Val::I32(12)));
}

#[test]
fn if_else_branches() {
    let body = |cond: i32| {
        vec![
            I32Const(cond),
            If(BlockType::Value(I32)),
            I32Const(100),
            Else,
            I32Const(200),
            End,
            End,
        ]
    };
    assert_eq!(eval_i32(body(1)).unwrap(), 100);
    assert_eq!(eval_i32(body(0)).unwrap(), 200);
}

#[test]
fn if_without_else() {
    let r = run1(
        vec![I32],
        vec![I32],
        vec![I32],
        vec![
            LocalGet(0),
            If(BlockType::Empty),
            I32Const(99),
            LocalSet(1),
            End,
            LocalGet(1),
            End,
        ],
        &[Val::I32(1)],
    )
    .unwrap();
    assert_eq!(r, Some(Val::I32(99)));
    let r = run1(
        vec![I32],
        vec![I32],
        vec![I32],
        vec![
            LocalGet(0),
            If(BlockType::Empty),
            I32Const(99),
            LocalSet(1),
            End,
            LocalGet(1),
            End,
        ],
        &[Val::I32(0)],
    )
    .unwrap();
    assert_eq!(r, Some(Val::I32(0)));
}

#[test]
fn loop_sums_one_to_n() {
    // local1 = acc, local0 = n (counts down).
    let body = vec![
        Block(BlockType::Empty),
        Loop(BlockType::Empty),
        LocalGet(0),
        I32Eqz,
        BrIf(1),
        LocalGet(1),
        LocalGet(0),
        I32Add,
        LocalSet(1),
        LocalGet(0),
        I32Const(1),
        I32Sub,
        LocalSet(0),
        Br(0),
        End,
        End,
        LocalGet(1),
        End,
    ];
    let r = run1(vec![I32], vec![I32], vec![I32], body, &[Val::I32(100)]).unwrap();
    assert_eq!(r, Some(Val::I32(5050)));
}

#[test]
fn br_out_of_nested_blocks() {
    let body = vec![
        Block(BlockType::Value(I32)),
        Block(BlockType::Empty),
        Block(BlockType::Empty),
        I32Const(7),
        Br(2),
        End,
        End,
        I32Const(8),
        End,
        End,
    ];
    assert_eq!(eval_i32(body).unwrap(), 7);
}

#[test]
fn br_to_function_level_returns() {
    let body = vec![
        Block(BlockType::Empty),
        I32Const(11),
        Return,
        End,
        I32Const(22),
        End,
    ];
    assert_eq!(eval_i32(body).unwrap(), 11);
    // br to depth == labels.len() is also a return.
    let body = vec![
        Block(BlockType::Empty),
        I32Const(33),
        Br(1),
        End,
        I32Const(44),
        End,
    ];
    assert_eq!(eval_i32(body).unwrap(), 33);
}

#[test]
fn br_table_dispatch() {
    let case = |sel: i32| {
        run1(
            vec![I32],
            vec![I32],
            vec![],
            vec![
                Block(BlockType::Empty),
                Block(BlockType::Empty),
                Block(BlockType::Empty),
                LocalGet(0),
                BrTable(Box::new(BrTableData {
                    targets: vec![0, 1],
                    default: 2,
                })),
                End,
                I32Const(100),
                Return,
                End,
                I32Const(200),
                Return,
                End,
                I32Const(300),
                End,
            ],
            &[Val::I32(sel)],
        )
        .unwrap()
        .unwrap()
        .as_i32()
        .unwrap()
    };
    assert_eq!(case(0), 100);
    assert_eq!(case(1), 200);
    assert_eq!(case(2), 300, "default");
    assert_eq!(case(99), 300, "out-of-range uses default");
}

#[test]
fn function_calls_and_recursion() {
    // fib(n) computed recursively.
    let mut b = ModuleBuilder::new();
    let sig = b.sig(FuncType::new(vec![I32], vec![I32]));
    let fib = b.module_func_placeholder();
    let _ = fib;
    let fib = b.func(
        sig,
        vec![],
        vec![
            LocalGet(0),
            I32Const(2),
            I32LtS,
            If(BlockType::Value(I32)),
            LocalGet(0),
            Else,
            LocalGet(0),
            I32Const(1),
            I32Sub,
            Call(0),
            LocalGet(0),
            I32Const(2),
            I32Sub,
            Call(0),
            I32Add,
            End,
            End,
        ],
    );
    b.export_func("fib", fib);
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
    assert_eq!(
        inst.invoke("fib", &[Val::I32(10)]).unwrap(),
        Some(Val::I32(55))
    );
}

#[test]
fn deep_recursion_traps_cleanly() {
    // Guest recursion consumes host stack; run on a thread with a stack
    // sized like a real Faaslet thread.
    std::thread::Builder::new()
        .stack_size(32 * 1024 * 1024)
        .spawn(|| {
            let mut b = ModuleBuilder::new();
            let sig = b.sig(FuncType::new(vec![I32], vec![I32]));
            let f = b.func(
                sig,
                vec![],
                vec![LocalGet(0), I32Const(1), I32Add, Call(0), End],
            );
            b.export_func("spin", f);
            let object = ObjectModule::prepare(b.build()).unwrap();
            let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
            assert_eq!(
                inst.invoke("spin", &[Val::I32(0)]),
                Err(Trap::CallStackExhausted)
            );
        })
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn memory_load_store_roundtrip() {
    let body = vec![
        I32Const(16),
        I32Const(-123456),
        I32Store(MemArg::zero()),
        I32Const(16),
        I32Load(MemArg::zero()),
        End,
    ];
    assert_eq!(eval_i32(body).unwrap(), -123456);
}

#[test]
fn memory_subword_accesses() {
    let body = vec![
        I32Const(0),
        I32Const(-1),
        I32Store8(MemArg::zero()),
        I32Const(0),
        I32Load8S(MemArg::zero()),
        End,
    ];
    assert_eq!(eval_i32(body).unwrap(), -1);
    let body = vec![
        I32Const(0),
        I32Const(-1),
        I32Store8(MemArg::zero()),
        I32Const(0),
        I32Load8U(MemArg::zero()),
        End,
    ];
    assert_eq!(eval_i32(body).unwrap(), 255);
    let body = vec![
        I32Const(4),
        I32Const(0xabcd),
        I32Store16(MemArg::zero()),
        I32Const(4),
        I32Load16U(MemArg::zero()),
        End,
    ];
    assert_eq!(eval_i32(body).unwrap(), 0xabcd);
}

#[test]
fn memory_offset_in_memarg() {
    let body = vec![
        I32Const(8),
        I64Const(99),
        I64Store(MemArg::at(8)),
        I32Const(0),
        I64Load(MemArg::at(16)),
        End,
    ];
    assert_eq!(eval_i64(body).unwrap(), 99);
}

#[test]
fn out_of_bounds_load_traps() {
    let body = vec![
        I32Const(faasm_mem::PAGE_SIZE as i32 - 2),
        I32Load(MemArg::zero()),
        End,
    ];
    assert!(matches!(
        eval_i32(body),
        Err(Trap::OutOfBoundsMemory { .. })
    ));
    // Offset overflow beyond 32 bits is also caught.
    let body = vec![I32Const(-1), I32Load(MemArg::at(u32::MAX)), End];
    assert!(matches!(
        eval_i32(body),
        Err(Trap::OutOfBoundsMemory { .. })
    ));
}

#[test]
fn memory_size_and_grow() {
    let body = vec![
        MemorySize,
        Drop,
        I32Const(1),
        MemoryGrow,
        Drop,
        MemorySize,
        End,
    ];
    assert_eq!(eval_i32(body).unwrap(), 2);
    // Growing past the limit yields -1, not a trap.
    let body = vec![I32Const(100), MemoryGrow, End];
    assert_eq!(eval_i32(body).unwrap(), -1);
}

#[test]
fn memory_copy_and_fill() {
    let body = vec![
        // fill [0,8) with 0x11
        I32Const(0),
        I32Const(0x11),
        I32Const(8),
        MemoryFill,
        // copy [0,8) to [8,16)
        I32Const(8),
        I32Const(0),
        I32Const(8),
        MemoryCopy,
        I32Const(8),
        I64Load(MemArg::zero()),
        End,
    ];
    assert_eq!(eval_i64(body).unwrap(), 0x1111_1111_1111_1111);
}

#[test]
fn unreachable_traps() {
    assert_eq!(eval_i32(vec![Unreachable, End]), Err(Trap::Unreachable));
}

#[test]
fn host_function_call_and_marshalling() {
    let mut b = ModuleBuilder::new();
    b.memory(1, 1);
    let sig_host = b.sig(FuncType::new(vec![I32, I64], vec![I64]));
    let sig_main = b.sig(FuncType::new(vec![], vec![I64]));
    let host = b.import_func("faasm", "mix", sig_host);
    let _ = host;
    let f = b.func(
        sig_main,
        vec![],
        vec![I32Const(2), I64Const(40), Call(0), End],
    );
    b.export_func("main", f);
    let mut linker = Linker::new();
    linker.define_fn("faasm", "mix", |_ctx, args| {
        let a = args[0].as_i32().unwrap() as i64;
        let b = args[1].as_i64().unwrap();
        Ok(vec![Val::I64(a + b)])
    });
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object, &linker, Box::new(())).unwrap();
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I64(42)));
}

#[test]
fn host_function_memory_access() {
    let mut b = ModuleBuilder::new();
    b.memory(1, 1);
    let sig_host = b.sig(FuncType::new(vec![I32], vec![]));
    let sig_main = b.sig(FuncType::new(vec![], vec![I32]));
    b.import_func("faasm", "write_magic", sig_host);
    let f = b.func(
        sig_main,
        vec![],
        vec![
            I32Const(64),
            Call(0),
            I32Const(64),
            I32Load(MemArg::zero()),
            End,
        ],
    );
    b.export_func("main", f);
    let mut linker = Linker::new();
    linker.define_fn("faasm", "write_magic", |ctx, args| {
        let ptr = args[0].as_i32().unwrap() as u32;
        ctx.write_guest_bytes(ptr, &0xcafe_i32.to_le_bytes())?;
        Ok(vec![])
    });
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object, &linker, Box::new(())).unwrap();
    assert_eq!(inst.invoke("main", &[]).unwrap(), Some(Val::I32(0xcafe)));
}

#[test]
fn host_function_bad_return_type_traps() {
    let mut b = ModuleBuilder::new();
    let sig_host = b.sig(FuncType::new(vec![], vec![I32]));
    let sig_main = b.sig(FuncType::new(vec![], vec![I32]));
    b.import_func("faasm", "lie", sig_host);
    let f = b.func(sig_main, vec![], vec![Call(0), End]);
    b.export_func("main", f);
    let mut linker = Linker::new();
    linker.define_fn("faasm", "lie", |_ctx, _args| Ok(vec![Val::I64(1)]));
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object, &linker, Box::new(())).unwrap();
    assert!(matches!(inst.invoke("main", &[]), Err(Trap::Host(_))));
}

#[test]
fn unresolved_import_fails_link() {
    let mut b = ModuleBuilder::new();
    let sig = b.sig(FuncType::default());
    b.import_func("faasm", "missing", sig);
    let object = ObjectModule::prepare(b.build()).unwrap();
    assert!(matches!(
        Instance::new(object, &Linker::new(), Box::new(())),
        Err(InstantiateError::Link(_))
    ));
}

#[test]
fn call_indirect_dispatches_and_checks_types() {
    let mut b = ModuleBuilder::new();
    let sig_i = b.sig(FuncType::new(vec![], vec![I32]));
    let sig_l = b.sig(FuncType::new(vec![], vec![I64]));
    let f1 = b.func(sig_i, vec![], vec![I32Const(111), End]);
    let f2 = b.func(sig_i, vec![], vec![I32Const(222), End]);
    let f3 = b.func(sig_l, vec![], vec![I64Const(3), End]);
    b.table(4);
    b.elem(0, vec![f1, f2, f3]);
    let sig_sel = b.sig(FuncType::new(vec![I32], vec![I32]));
    let sel = b.func(sig_sel, vec![], vec![LocalGet(0), CallIndirect(sig_i), End]);
    b.export_func("sel", sel);
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
    assert_eq!(
        inst.invoke("sel", &[Val::I32(0)]).unwrap(),
        Some(Val::I32(111))
    );
    assert_eq!(
        inst.invoke("sel", &[Val::I32(1)]).unwrap(),
        Some(Val::I32(222))
    );
    // Wrong type.
    assert_eq!(
        inst.invoke("sel", &[Val::I32(2)]),
        Err(Trap::IndirectCallTypeMismatch)
    );
    // Uninitialised slot.
    assert_eq!(
        inst.invoke("sel", &[Val::I32(3)]),
        Err(Trap::UninitializedElement { index: 3 })
    );
    // Out of range.
    assert_eq!(
        inst.invoke("sel", &[Val::I32(9)]),
        Err(Trap::OutOfBoundsTable { index: 9 })
    );
}

#[test]
fn data_segments_applied_on_new_but_not_restore() {
    let mut b = ModuleBuilder::new();
    b.memory(1, 1);
    b.data(0, b"init".to_vec());
    let sig = b.sig(FuncType::new(vec![], vec![I32]));
    let f = b.func(sig, vec![], vec![I32Const(0), I32Load(MemArg::zero()), End]);
    b.export_func("read", f);
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object.clone(), &Linker::new(), Box::new(())).unwrap();
    let init_val = i32::from_le_bytes(*b"init");
    assert_eq!(inst.invoke("read", &[]).unwrap(), Some(Val::I32(init_val)));

    // Mutate memory, snapshot, restore: restored instance sees the mutated
    // value (not the data segment).
    inst.memory_mut().unwrap().write(0, b"live").unwrap();
    let snap = inst.snapshot();
    let mut restored = Instance::restore(
        object,
        &snap,
        &Linker::new(),
        Box::new(()),
        FuelMeter::unlimited(),
    )
    .unwrap();
    let live_val = i32::from_le_bytes(*b"live");
    assert_eq!(
        restored.invoke("read", &[]).unwrap(),
        Some(Val::I32(live_val))
    );
}

#[test]
fn snapshot_captures_globals_and_table() {
    let mut b = ModuleBuilder::new();
    let sig = b.sig(FuncType::new(vec![], vec![I32]));
    b.global(I32, true, Val::I32(1));
    let f = b.func(
        sig,
        vec![],
        vec![
            GlobalGet(0),
            I32Const(1),
            I32Add,
            GlobalSet(0),
            GlobalGet(0),
            End,
        ],
    );
    b.export_func("bump", f);
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object.clone(), &Linker::new(), Box::new(())).unwrap();
    inst.invoke("bump", &[]).unwrap(); // global now 2
    let snap = inst.snapshot();
    inst.invoke("bump", &[]).unwrap(); // original now 3
    let mut restored = Instance::restore(
        object,
        &snap,
        &Linker::new(),
        Box::new(()),
        FuelMeter::unlimited(),
    )
    .unwrap();
    assert_eq!(restored.invoke("bump", &[]).unwrap(), Some(Val::I32(3)));
    assert_eq!(inst.global(0), Some(Val::I32(3)));
}

#[test]
fn restore_shape_mismatch_rejected() {
    let mut b1 = ModuleBuilder::new();
    b1.global(I32, true, Val::I32(0));
    let object1 = ObjectModule::prepare(b1.build()).unwrap();
    let mut inst1 = Instance::new(object1, &Linker::new(), Box::new(())).unwrap();
    let snap = inst1.snapshot();

    let b2 = ModuleBuilder::new();
    let object2 = ObjectModule::prepare(b2.build()).unwrap();
    assert!(matches!(
        Instance::restore(
            object2,
            &snap,
            &Linker::new(),
            Box::new(()),
            FuelMeter::unlimited()
        ),
        Err(InstantiateError::BadSnapshot)
    ));
}

#[test]
fn start_function_runs_at_instantiation() {
    let mut b = ModuleBuilder::new();
    let sig_v = b.sig(FuncType::default());
    let sig_r = b.sig(FuncType::new(vec![], vec![I32]));
    b.global(I32, true, Val::I32(0));
    let init = b.func(sig_v, vec![], vec![I32Const(77), GlobalSet(0), End]);
    let read = b.func(sig_r, vec![], vec![GlobalGet(0), End]);
    b.start(init);
    b.export_func("read", read);
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
    assert_eq!(inst.invoke("read", &[]).unwrap(), Some(Val::I32(77)));
}

#[test]
fn trapping_start_function_fails_instantiation() {
    let mut b = ModuleBuilder::new();
    let sig_v = b.sig(FuncType::default());
    let f = b.func(sig_v, vec![], vec![Unreachable, End]);
    b.start(f);
    let object = ObjectModule::prepare(b.build()).unwrap();
    assert!(matches!(
        Instance::new(object, &Linker::new(), Box::new(())),
        Err(InstantiateError::StartTrap(Trap::Unreachable))
    ));
}

#[test]
fn invoke_signature_checks() {
    let mut b = ModuleBuilder::new();
    let sig = b.sig(FuncType::new(vec![I32], vec![I32]));
    let f = b.func(sig, vec![], vec![LocalGet(0), End]);
    b.export_func("id", f);
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
    assert!(matches!(
        inst.invoke("nope", &[]),
        Err(Trap::NoSuchExport { .. })
    ));
    assert!(matches!(
        inst.invoke("id", &[]),
        Err(Trap::BadSignature { .. })
    ));
    assert!(matches!(
        inst.invoke("id", &[Val::I64(1)]),
        Err(Trap::BadSignature { .. })
    ));
    assert_eq!(
        inst.invoke("id", &[Val::I32(5)]).unwrap(),
        Some(Val::I32(5))
    );
}

#[test]
fn fuel_limit_stops_infinite_loop() {
    let mut b = ModuleBuilder::new();
    let sig = b.sig(FuncType::default());
    let f = b.func(sig, vec![], vec![Loop(BlockType::Empty), Br(0), End, End]);
    b.export_func("spin", f);
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::with_fuel(
        object,
        &Linker::new(),
        Box::new(()),
        FuelMeter::with_limit(10_000),
    )
    .unwrap();
    assert_eq!(inst.invoke("spin", &[]), Err(Trap::OutOfFuel));
    assert!(inst.fuel.consumed() >= 10_000);
}

#[test]
fn fuel_counts_instructions() {
    let mut b = ModuleBuilder::new();
    let sig = b.sig(FuncType::new(vec![], vec![I32]));
    let f = b.func(sig, vec![], vec![I32Const(1), I32Const(2), I32Add, End]);
    b.export_func("f", f);
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object, &Linker::new(), Box::new(())).unwrap();
    inst.invoke("f", &[]).unwrap();
    // 4 instructions (const, const, add, end).
    assert_eq!(inst.fuel.consumed(), 4);
}

#[test]
fn instance_data_roundtrip() {
    let b = ModuleBuilder::new();
    let object = ObjectModule::prepare(b.build()).unwrap();
    let mut inst = Instance::new(object, &Linker::new(), Box::new(7u32)).unwrap();
    assert_eq!(*inst.data_as::<u32>().unwrap(), 7);
    assert!(inst.data_as::<String>().is_none());
    let old = inst.replace_data(Box::new(String::from("ctx")));
    assert_eq!(*old.downcast::<u32>().unwrap(), 7);
    assert_eq!(inst.data_as::<String>().unwrap(), "ctx");
}

impl ModuleBuilder {
    /// Test helper: reserve nothing, used to document call-index assumptions.
    fn module_func_placeholder(&mut self) -> u32 {
        0
    }
}
