//! Object modules: the output of the trusted code-generation phase (§3.4).
//!
//! After validation, the module's structured control flow is scanned once to
//! produce branch side-tables (matching `end`/`else` positions for every
//! `block`/`loop`/`if`). This is the FVM's analogue of machine-code
//! generation: it turns the verified binary into a directly executable form
//! that the interpreter can run without re-analysing control flow. Object
//! modules are cached in the platform's object store and shared by every
//! instance of a function.

use std::sync::Arc;

use crate::decode::{decode_module, DecodeError};
use crate::encode::encode_module;
use crate::instr::Instr;
use crate::lower::{lower_module, LoweredFunc};
use crate::module::Module;
use crate::validate::{validate, ValidateError};

/// Which execution engine an [`ObjectModule`] is prepared for.
///
/// The interpreter is the reference implementation: it walks the structured
/// body directly. The lowered tier compiles each body into a flat array of
/// direct-threaded, fused ops at preparation time (see [`crate::lower`]) and
/// is observably identical — same results, traps and fuel accounting — while
/// dispatching a fraction of the ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTier {
    /// Tree-walking reference interpreter.
    Interpreter,
    /// Flat, fused, block-metered ops (the default production tier).
    #[default]
    Lowered,
}

/// Pre-resolved control-flow targets for one instruction position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlMeta {
    /// Position of the matching `end` (valid for `block`/`loop`/`if`).
    pub end_pc: u32,
    /// Position of the matching `else`, or `u32::MAX` if there is none.
    pub else_pc: u32,
}

impl Default for CtrlMeta {
    fn default() -> CtrlMeta {
        CtrlMeta {
            end_pc: 0,
            else_pc: u32::MAX,
        }
    }
}

/// Errors turning untrusted bytes into an object module.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The binary could not be decoded.
    Decode(DecodeError),
    /// The module failed validation.
    Validate(ValidateError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Decode(e) => write!(f, "decode error: {e}"),
            CompileError::Validate(e) => write!(f, "validation error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<DecodeError> for CompileError {
    fn from(e: DecodeError) -> CompileError {
        CompileError::Decode(e)
    }
}

impl From<ValidateError> for CompileError {
    fn from(e: ValidateError) -> CompileError {
        CompileError::Validate(e)
    }
}

/// A validated module plus its executable side-tables.
#[derive(Debug)]
pub struct ObjectModule {
    /// The validated module.
    pub module: Module,
    /// Per defined function, a side-table parallel to the body.
    pub(crate) ctrl: Vec<Vec<CtrlMeta>>,
    /// Lowered bodies, present when prepared for [`ExecTier::Lowered`].
    pub(crate) lowered: Option<Vec<LoweredFunc>>,
}

impl ObjectModule {
    /// Validate a structured module and build its side-tables, for the
    /// reference interpreter.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if the module is malformed.
    pub fn prepare(module: Module) -> Result<Arc<ObjectModule>, ValidateError> {
        ObjectModule::prepare_tier(module, ExecTier::Interpreter)
    }

    /// Validate, build side-tables and lower every body for the fast tier.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if the module is malformed.
    pub fn prepare_lowered(module: Module) -> Result<Arc<ObjectModule>, ValidateError> {
        ObjectModule::prepare_tier(module, ExecTier::Lowered)
    }

    /// Validate and prepare for the requested execution tier.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateError`] if the module is malformed.
    pub fn prepare_tier(
        module: Module,
        tier: ExecTier,
    ) -> Result<Arc<ObjectModule>, ValidateError> {
        validate(&module)?;
        let ctrl: Vec<Vec<CtrlMeta>> = module.funcs.iter().map(|f| side_table(&f.body)).collect();
        let lowered = match tier {
            ExecTier::Interpreter => None,
            ExecTier::Lowered => Some(lower_module(&module, &ctrl)),
        };
        Ok(Arc::new(ObjectModule {
            module,
            ctrl,
            lowered,
        }))
    }

    /// Decode, validate and prepare untrusted bytes — the full trusted half
    /// of the Fig. 3 pipeline — for the reference interpreter.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if the bytes fail decoding or validation.
    pub fn compile(bytes: &[u8]) -> Result<Arc<ObjectModule>, CompileError> {
        ObjectModule::compile_tier(bytes, ExecTier::Interpreter)
    }

    /// Decode, validate and prepare untrusted bytes for a specific tier.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if the bytes fail decoding or validation.
    pub fn compile_tier(bytes: &[u8], tier: ExecTier) -> Result<Arc<ObjectModule>, CompileError> {
        let module = decode_module(bytes)?;
        Ok(ObjectModule::prepare_tier(module, tier)?)
    }

    /// Whether this module carries lowered bodies (the fast tier).
    pub fn is_lowered(&self) -> bool {
        self.lowered.is_some()
    }

    /// Serialise the module for the shared object store.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_module(&self.module)
    }

    /// The side-table entry for function `local_idx` at instruction `pc`.
    pub(crate) fn meta(&self, local_idx: usize, pc: usize) -> CtrlMeta {
        self.ctrl[local_idx][pc]
    }
}

/// Compute the `end`/`else` positions for every structured instruction.
///
/// Validation guarantees well-nested bodies, so the scan cannot fail.
fn side_table(body: &[Instr]) -> Vec<CtrlMeta> {
    let mut meta = vec![CtrlMeta::default(); body.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (pc, instr) in body.iter().enumerate() {
        match instr {
            Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => stack.push(pc),
            Instr::Else => {
                let open = *stack.last().expect("validated nesting");
                meta[open].else_pc = pc as u32;
                // The `else` itself needs the end position too, so the
                // then-arm can skip over the else-arm; store the opener so we
                // can back-patch when the `end` is found.
                meta[pc].end_pc = open as u32;
            }
            Instr::End => {
                if let Some(open) = stack.pop() {
                    meta[open].end_pc = pc as u32;
                    // Back-patch the matching `else`, if any.
                    let else_pc = meta[open].else_pc;
                    if else_pc != u32::MAX {
                        meta[else_pc as usize].end_pc = pc as u32;
                    }
                }
            }
            _ => {}
        }
    }
    meta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleBuilder;
    use crate::types::{BlockType, FuncType, ValType};
    use Instr::*;

    #[test]
    fn side_table_matches_nesting() {
        // 0: block        end at 6
        // 1:   if         else at 3, end at 5
        // 2:     nop
        // 3:   else
        // 4:     nop
        // 5:   end
        // 6: end
        // 7: end (function)
        let body = vec![
            Block(BlockType::Empty),
            If(BlockType::Empty),
            Nop,
            Else,
            Nop,
            End,
            End,
            End,
        ];
        // The `if` needs a condition for validation; test the raw scan.
        let meta = side_table(&body);
        assert_eq!(meta[0].end_pc, 6);
        assert_eq!(meta[1].else_pc, 3);
        assert_eq!(meta[1].end_pc, 5);
        assert_eq!(meta[3].end_pc, 5, "else knows its end");
    }

    #[test]
    fn prepare_rejects_invalid() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::new(vec![], vec![ValType::I32]));
        b.func(sig, vec![], vec![End]); // missing result
        assert!(ObjectModule::prepare(b.build()).is_err());
    }

    #[test]
    fn compile_roundtrips_through_bytes() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
        let f = b.func(sig, vec![], vec![LocalGet(0), I32Const(1), I32Add, End]);
        b.export_func("inc", f);
        let m = b.build();
        let obj = ObjectModule::prepare(m.clone()).unwrap();
        let bytes = obj.to_bytes();
        let obj2 = ObjectModule::compile(&bytes).unwrap();
        assert_eq!(obj2.module, m);
    }

    #[test]
    fn compile_rejects_garbage() {
        assert!(matches!(
            ObjectModule::compile(b"not a module"),
            Err(CompileError::Decode(_))
        ));
    }
}
