//! Lowering: from structured `Instr` bodies to flat, direct-threaded ops.
//!
//! The plain interpreter walks the tree-form body, paying for structure on
//! every instruction: a label stack, `fuel.charge(1)` per instruction, and a
//! bounds check per memory access. Validation already proved the structure,
//! so this pass compiles each body into a flat array of [`Op`]s once, at
//! `ObjectModule` preparation time:
//!
//! * **Direct threading** — `Block`/`Loop`/`If`/`Else`/`End`/`Nop` (and the
//!   bit-cast reinterpret ops) disappear as runtime ops. Branches carry an
//!   absolute target index, the stack height to truncate to, and whether a
//!   result value is carried, all pre-resolved from the `CtrlMeta` tables.
//! * **Superinstruction fusion** — the hot sequences real codegen emits
//!   (`LocalGet,LocalGet,op[,LocalSet]`, `LocalGet,I32Const,op[,LocalSet]`,
//!   compare+`BrIf`, `LocalGet`+load/store, `I32Add`+load) collapse into
//!   single fused ops with one dispatch and, for memory ops, one bounds
//!   check.
//! * **Fuel hoisting** — fuel is charged once per basic block instead of per
//!   instruction. See the fuel-equivalence contract below.
//!
//! # The fuel-equivalence contract
//!
//! The interpreter charges one fuel unit per executed instruction, *before*
//! executing it, including the structural ops that lowering erases. The only
//! observables are: guest state (memory, globals, table) at every trap or
//! return, the trap kind and value, and `FuelMeter::consumed()` at those
//! points. The lowered tier reproduces those observables exactly:
//!
//! * Every erased structural instruction is accounted to the *edge* that
//!   executes it: the linear fall-through edge into an op pays its [`LOp::pre`]
//!   count, each branch edge pays its [`BranchArgs::extra`] count (walked out
//!   of the side tables at lowering time, so back-edges to a loop do not
//!   re-pay the `Loop` opener, exactly like the interpreter).
//! * A basic block's member costs (plus the fall-through `pre` of its
//!   successor) are charged in one [`FuelMeter::charge_block`] at the block
//!   leader. If the block would cross the fuel limit, the charge is refused
//!   and execution switches permanently to a per-op metered mode that charges
//!   with [`FuelMeter::charge_steps`], so the out-of-fuel trap lands at the
//!   same consumed value (`limit + 1`) the interpreter observes.
//! * A non-fuel trap mid-block refunds the not-yet-executed remainder
//!   ([`LOp::rest`]), so consumed fuel equals exactly what the interpreter
//!   charged up to and through the trapping instruction.
//! * Variable charges (host-call flat 16, `memory.grow` 64/page,
//!   `memory.copy`/`fill` len/8) terminate basic blocks and use the same
//!   plain [`FuelMeter::charge`] the interpreter uses.
//!
//! Dead code (instructions the validator types with a polymorphic stack
//! because they can never execute) is not lowered at all: it can never
//! contribute fuel or effects on any tier.

use crate::instr::{Instr, MemArg};
use crate::module::Module;
use crate::object::CtrlMeta;

/// Branch target meaning "return from the function".
pub(crate) const RETURN_TARGET: u32 = u32::MAX;

/// Pre-resolved branch: absolute target plus the stack fix-up the
/// interpreter's label machinery would have performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BranchArgs {
    /// Absolute index of the op to jump to, or [`RETURN_TARGET`].
    pub target: u32,
    /// Value-stack height to truncate to.
    pub height: u32,
    /// Whether the branch carries the top-of-stack value past truncation.
    pub carry: bool,
    /// Fuel for structural instructions the interpreter executes along this
    /// edge (`End`s walked over, an `Else` skip, ...).
    pub extra: u32,
}

/// A conditional branch: taken args plus the fall-through edge's fuel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CondBr {
    /// Where the taken edge goes.
    pub args: BranchArgs,
    /// Fuel for elided instructions on the not-taken edge (charged in bulk
    /// mode only; metered mode pays it via the successor's `pre`).
    pub fall_extra: u32,
}

/// Lowered `br_table`: every entry fully resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LBrTable {
    pub entries: Vec<BranchArgs>,
    pub default: BranchArgs,
}

/// Binary ops eligible for `LocalGet,LocalGet,op[,LocalSet]` fusion.
/// All are non-trapping, so a fused op never traps mid-sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FusedBin {
    I32Add,
    I32Sub,
    I32Mul,
    I32And,
    I32Or,
    I32Xor,
    I64Add,
    I64Sub,
    I64Mul,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
}

impl FusedBin {
    pub(crate) fn from_instr(i: &Instr) -> Option<FusedBin> {
        Some(match i {
            Instr::I32Add => FusedBin::I32Add,
            Instr::I32Sub => FusedBin::I32Sub,
            Instr::I32Mul => FusedBin::I32Mul,
            Instr::I32And => FusedBin::I32And,
            Instr::I32Or => FusedBin::I32Or,
            Instr::I32Xor => FusedBin::I32Xor,
            Instr::I64Add => FusedBin::I64Add,
            Instr::I64Sub => FusedBin::I64Sub,
            Instr::I64Mul => FusedBin::I64Mul,
            Instr::F32Add => FusedBin::F32Add,
            Instr::F32Sub => FusedBin::F32Sub,
            Instr::F32Mul => FusedBin::F32Mul,
            Instr::F32Div => FusedBin::F32Div,
            Instr::F64Add => FusedBin::F64Add,
            Instr::F64Sub => FusedBin::F64Sub,
            Instr::F64Mul => FusedBin::F64Mul,
            Instr::F64Div => FusedBin::F64Div,
            _ => return None,
        })
    }

    /// Evaluate on raw slots with exactly the interpreter's pop/push
    /// conversions (i32 results are zero-extended low bits, floats travel as
    /// bits).
    #[inline]
    pub(crate) fn eval(self, a: u64, b: u64) -> u64 {
        let i32s = |x: u64| x as u32 as i32;
        let f32s = |x: u64| f32::from_bits(x as u32);
        match self {
            FusedBin::I32Add => i32s(a).wrapping_add(i32s(b)) as u32 as u64,
            FusedBin::I32Sub => i32s(a).wrapping_sub(i32s(b)) as u32 as u64,
            FusedBin::I32Mul => i32s(a).wrapping_mul(i32s(b)) as u32 as u64,
            FusedBin::I32And => (a as u32 & b as u32) as u64,
            FusedBin::I32Or => (a as u32 | b as u32) as u64,
            FusedBin::I32Xor => (a as u32 ^ b as u32) as u64,
            FusedBin::I64Add => (a as i64).wrapping_add(b as i64) as u64,
            FusedBin::I64Sub => (a as i64).wrapping_sub(b as i64) as u64,
            FusedBin::I64Mul => (a as i64).wrapping_mul(b as i64) as u64,
            FusedBin::F32Add => (f32s(a) + f32s(b)).to_bits() as u64,
            FusedBin::F32Sub => (f32s(a) - f32s(b)).to_bits() as u64,
            FusedBin::F32Mul => (f32s(a) * f32s(b)).to_bits() as u64,
            FusedBin::F32Div => (f32s(a) / f32s(b)).to_bits() as u64,
            FusedBin::F64Add => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
            FusedBin::F64Sub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
            FusedBin::F64Mul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
            FusedBin::F64Div => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        }
    }
}

/// i32 ops eligible for `I32Const`-immediate fusion (the constant is the
/// right operand). All non-trapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FusedImm {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
}

impl FusedImm {
    pub(crate) fn from_instr(i: &Instr) -> Option<FusedImm> {
        Some(match i {
            Instr::I32Add => FusedImm::Add,
            Instr::I32Sub => FusedImm::Sub,
            Instr::I32Mul => FusedImm::Mul,
            Instr::I32And => FusedImm::And,
            Instr::I32Or => FusedImm::Or,
            Instr::I32Xor => FusedImm::Xor,
            Instr::I32Shl => FusedImm::Shl,
            Instr::I32ShrS => FusedImm::ShrS,
            Instr::I32ShrU => FusedImm::ShrU,
            _ => return None,
        })
    }

    #[inline]
    pub(crate) fn eval(self, a: u64, k: i32) -> u64 {
        let ai = a as u32 as i32;
        let au = a as u32;
        match self {
            FusedImm::Add => ai.wrapping_add(k) as u32 as u64,
            FusedImm::Sub => ai.wrapping_sub(k) as u32 as u64,
            FusedImm::Mul => ai.wrapping_mul(k) as u32 as u64,
            FusedImm::And => (au & k as u32) as u64,
            FusedImm::Or => (au | k as u32) as u64,
            FusedImm::Xor => (au ^ k as u32) as u64,
            FusedImm::Shl => (au << (k as u32 & 31)) as u64,
            FusedImm::ShrS => (ai >> (k & 31)) as u32 as u64,
            FusedImm::ShrU => (au >> (k as u32 & 31)) as u64,
        }
    }
}

/// i32 comparisons eligible for compare+branch fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FusedCmp {
    Eq,
    Ne,
    LtS,
    LtU,
    GtS,
    GtU,
    LeS,
    LeU,
    GeS,
    GeU,
}

impl FusedCmp {
    pub(crate) fn from_instr(i: &Instr) -> Option<FusedCmp> {
        Some(match i {
            Instr::I32Eq => FusedCmp::Eq,
            Instr::I32Ne => FusedCmp::Ne,
            Instr::I32LtS => FusedCmp::LtS,
            Instr::I32LtU => FusedCmp::LtU,
            Instr::I32GtS => FusedCmp::GtS,
            Instr::I32GtU => FusedCmp::GtU,
            Instr::I32LeS => FusedCmp::LeS,
            Instr::I32LeU => FusedCmp::LeU,
            Instr::I32GeS => FusedCmp::GeS,
            Instr::I32GeU => FusedCmp::GeU,
            _ => return None,
        })
    }

    #[inline]
    pub(crate) fn eval(self, a: u64, b: u64) -> bool {
        let (ai, bi) = (a as u32 as i32, b as u32 as i32);
        let (au, bu) = (a as u32, b as u32);
        match self {
            FusedCmp::Eq => au == bu,
            FusedCmp::Ne => au != bu,
            FusedCmp::LtS => ai < bi,
            FusedCmp::LtU => au < bu,
            FusedCmp::GtS => ai > bi,
            FusedCmp::GtU => au > bu,
            FusedCmp::LeS => ai <= bi,
            FusedCmp::LeU => au <= bu,
            FusedCmp::GeS => ai >= bi,
            FusedCmp::GeU => au >= bu,
        }
    }
}

/// Access width of a fused full-width load/store. i32/f32 and i64/f64 are
/// indistinguishable at this level — slots carry raw bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LsWidth {
    W4,
    W8,
}

impl LsWidth {
    pub(crate) fn bytes(self) -> u32 {
        match self {
            LsWidth::W4 => 4,
            LsWidth::W8 => 8,
        }
    }

    fn of_load(i: &Instr) -> Option<(LsWidth, u32)> {
        match i {
            Instr::I32Load(m) | Instr::F32Load(m) => Some((LsWidth::W4, m.offset)),
            Instr::I64Load(m) | Instr::F64Load(m) => Some((LsWidth::W8, m.offset)),
            _ => None,
        }
    }

    fn of_store(i: &Instr) -> Option<(LsWidth, u32)> {
        match i {
            Instr::I32Store(m) | Instr::F32Store(m) => Some((LsWidth::W4, m.offset)),
            Instr::I64Store(m) | Instr::F64Store(m) => Some((LsWidth::W8, m.offset)),
            _ => None,
        }
    }
}

/// One lowered op. Control flow and the fusion targets get dedicated
/// variants; everything else executes through the shared single-instruction
/// evaluator (`Instance::step_plain`), which keeps the two tiers semantically
/// identical by construction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    Unreachable,
    Jump(BranchArgs),
    /// Branch when the popped condition is non-zero (`br_if`).
    BrNz(CondBr),
    /// Branch when the popped condition is zero (`if` false-edge, or fused
    /// `I32Eqz`+`br_if`).
    BrZ(CondBr),
    BrTable(Box<LBrTable>),
    Ret,
    Call {
        idx: u32,
        extra: u32,
    },
    CallIndirect {
        type_idx: u32,
        extra: u32,
    },
    /// Variable-fuel memory ops terminate basic blocks; `extra` is the
    /// fall-through edge's elided-instruction fuel.
    MemoryGrow {
        extra: u32,
    },
    MemoryCopy {
        extra: u32,
    },
    MemoryFill {
        extra: u32,
    },
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    I32Const(i32),
    I64Const(i64),
    /// `LocalGet a; LocalGet b; op`
    FBinLL {
        a: u32,
        b: u32,
        op: FusedBin,
    },
    /// `LocalGet a; LocalGet b; op; LocalSet dst`
    FBinLLS {
        a: u32,
        b: u32,
        dst: u32,
        op: FusedBin,
    },
    /// `I32Const k; op` (stack operand on the left)
    FImm {
        imm: i32,
        op: FusedImm,
    },
    /// `LocalGet src; I32Const k; op`
    FImmL {
        src: u32,
        imm: i32,
        op: FusedImm,
    },
    /// `LocalGet src; I32Const k; op; LocalSet dst`
    FImmLS {
        src: u32,
        imm: i32,
        dst: u32,
        op: FusedImm,
    },
    /// `LocalGet a; LocalGet b; cmp; [I32Eqz;] br_if` — taken when the
    /// comparison result equals `when`.
    FBrCmpLL {
        a: u32,
        b: u32,
        cmp: FusedCmp,
        when: bool,
        br: CondBr,
    },
    /// `LocalGet a; I32Const k; cmp; [I32Eqz;] br_if`
    FBrCmpLI {
        a: u32,
        imm: i32,
        cmp: FusedCmp,
        when: bool,
        br: CondBr,
    },
    /// `LocalGet local; load` — one bounds check, raw read.
    FLocalLoad {
        local: u32,
        offset: u32,
        width: LsWidth,
    },
    /// `LocalGet local; store` — address from the stack, value from a local.
    FStoreL {
        local: u32,
        offset: u32,
        width: LsWidth,
    },
    /// `I32Add; load` — address computed from two stack operands.
    FAddLoad {
        offset: u32,
        width: LsWidth,
    },
    /// Any other instruction, executed by the shared evaluator.
    Plain(Instr),
}

/// One lowered op plus its fuel metadata.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LOp {
    pub op: Op,
    /// Interpreter fuel units this op stands for (fused ops: the sum of their
    /// constituents; non-leaders also fold their `pre`).
    pub cost: u32,
    /// Elided structural instructions on the linear fall-through edge into
    /// this op. Non-zero only on block leaders (folded into `cost`
    /// otherwise).
    pub pre: u32,
    /// Basic-block bulk charge (non-zero only on block leaders): member
    /// costs plus the fall-through successor's `pre`.
    pub charge: u32,
    /// Portion of the block charge not yet executed once this op traps —
    /// refunded on a non-fuel trap so consumed fuel matches the interpreter.
    pub rest: u32,
}

/// A lowered function body. `ops` is never empty: the smallest body lowers
/// to a single `Ret`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LoweredFunc {
    pub ops: Vec<LOp>,
    /// Elided instructions before the first op on the function-entry edge.
    pub entry_pre: u32,
}

/// Lower every function body of a validated module.
pub(crate) fn lower_module(module: &Module, ctrl: &[Vec<CtrlMeta>]) -> Vec<LoweredFunc> {
    module
        .funcs
        .iter()
        .zip(ctrl)
        .map(|(f, meta)| lower_func(module, &f.body, meta))
        .collect()
}

/// True for instructions that are erased by lowering (but still cost one
/// fuel unit each in the interpreter, accounted via `pre`/`extra` counts).
fn is_elided(i: &Instr) -> bool {
    matches!(
        i,
        Instr::Nop
            | Instr::Block(_)
            | Instr::Loop(_)
            | Instr::I32ReinterpretF32
            | Instr::I64ReinterpretF64
            | Instr::F32ReinterpretI32
            | Instr::F64ReinterpretI64
    )
}

/// Net value-stack effect of a non-control instruction (used to track the
/// absolute heights branches truncate to). Control flow is handled
/// explicitly by the scan.
#[allow(clippy::match_same_arms)]
fn stack_delta(module: &Module, i: &Instr) -> i32 {
    match i {
        Instr::Call(idx) => {
            let ty = module.func_type(*idx).expect("validated call target");
            ty.results.len() as i32 - ty.params.len() as i32
        }
        Instr::CallIndirect(type_idx) => {
            let ty = &module.types[*type_idx as usize];
            ty.results.len() as i32 - ty.params.len() as i32 - 1
        }
        Instr::Drop => -1,
        Instr::Select => -2,
        Instr::LocalGet(_) | Instr::GlobalGet(_) | Instr::MemorySize => 1,
        Instr::LocalSet(_) | Instr::GlobalSet(_) => -1,
        Instr::LocalTee(_) => 0,
        Instr::I32Const(_) | Instr::I64Const(_) | Instr::F32Const(_) | Instr::F64Const(_) => 1,
        // Loads pop an address and push a value.
        Instr::I32Load(_)
        | Instr::I64Load(_)
        | Instr::F32Load(_)
        | Instr::F64Load(_)
        | Instr::I32Load8S(_)
        | Instr::I32Load8U(_)
        | Instr::I32Load16S(_)
        | Instr::I32Load16U(_)
        | Instr::I64Load8S(_)
        | Instr::I64Load8U(_)
        | Instr::I64Load16S(_)
        | Instr::I64Load16U(_)
        | Instr::I64Load32S(_)
        | Instr::I64Load32U(_) => 0,
        Instr::I32Store(_)
        | Instr::I64Store(_)
        | Instr::F32Store(_)
        | Instr::F64Store(_)
        | Instr::I32Store8(_)
        | Instr::I32Store16(_)
        | Instr::I64Store8(_)
        | Instr::I64Store16(_)
        | Instr::I64Store32(_) => -2,
        Instr::MemoryGrow => 0,
        Instr::MemoryCopy | Instr::MemoryFill => -3,
        // Binary numeric/comparison ops: two in, one out.
        Instr::I32Eq
        | Instr::I32Ne
        | Instr::I32LtS
        | Instr::I32LtU
        | Instr::I32GtS
        | Instr::I32GtU
        | Instr::I32LeS
        | Instr::I32LeU
        | Instr::I32GeS
        | Instr::I32GeU
        | Instr::I64Eq
        | Instr::I64Ne
        | Instr::I64LtS
        | Instr::I64LtU
        | Instr::I64GtS
        | Instr::I64GtU
        | Instr::I64LeS
        | Instr::I64LeU
        | Instr::I64GeS
        | Instr::I64GeU
        | Instr::F32Eq
        | Instr::F32Ne
        | Instr::F32Lt
        | Instr::F32Gt
        | Instr::F32Le
        | Instr::F32Ge
        | Instr::F64Eq
        | Instr::F64Ne
        | Instr::F64Lt
        | Instr::F64Gt
        | Instr::F64Le
        | Instr::F64Ge
        | Instr::I32Add
        | Instr::I32Sub
        | Instr::I32Mul
        | Instr::I32DivS
        | Instr::I32DivU
        | Instr::I32RemS
        | Instr::I32RemU
        | Instr::I32And
        | Instr::I32Or
        | Instr::I32Xor
        | Instr::I32Shl
        | Instr::I32ShrS
        | Instr::I32ShrU
        | Instr::I32Rotl
        | Instr::I32Rotr
        | Instr::I64Add
        | Instr::I64Sub
        | Instr::I64Mul
        | Instr::I64DivS
        | Instr::I64DivU
        | Instr::I64RemS
        | Instr::I64RemU
        | Instr::I64And
        | Instr::I64Or
        | Instr::I64Xor
        | Instr::I64Shl
        | Instr::I64ShrS
        | Instr::I64ShrU
        | Instr::I64Rotl
        | Instr::I64Rotr
        | Instr::F32Add
        | Instr::F32Sub
        | Instr::F32Mul
        | Instr::F32Div
        | Instr::F32Min
        | Instr::F32Max
        | Instr::F32Copysign
        | Instr::F64Add
        | Instr::F64Sub
        | Instr::F64Mul
        | Instr::F64Div
        | Instr::F64Min
        | Instr::F64Max
        | Instr::F64Copysign => -1,
        // Everything else (unary ops, conversions, eqz, reinterprets) is
        // one-in-one-out.
        _ => 0,
    }
}

/// True for ops that end a basic block: control transfers, calls (the callee
/// charges its own fuel) and variable-fuel memory ops.
fn is_terminator(op: &Op) -> bool {
    matches!(
        op,
        Op::Unreachable
            | Op::Jump(_)
            | Op::BrNz(_)
            | Op::BrZ(_)
            | Op::BrTable(_)
            | Op::Ret
            | Op::Call { .. }
            | Op::CallIndirect { .. }
            | Op::MemoryGrow { .. }
            | Op::MemoryCopy { .. }
            | Op::MemoryFill { .. }
            | Op::FBrCmpLL { .. }
            | Op::FBrCmpLI { .. }
    )
}

/// An op during lowering, before fuel-block assignment.
#[derive(Debug, Clone)]
struct PreOp {
    op: Op,
    cost: u32,
    pre: u32,
}

/// A structured-control frame tracked by the scan.
struct Frame {
    /// Stack height at frame entry (after the `if` condition pop).
    height: u32,
    /// Result arity of the block type (height contribution on fall-through).
    arity: u32,
    is_loop: bool,
    is_if: bool,
    else_pc: u32,
    end_pc: u32,
    /// Where a branch to this frame continues, in original pc space.
    cont_orig: u32,
    /// A live branch targets this frame (makes the code after `end` live).
    branched: bool,
    /// The then-arm of an `if` reached its `else` alive.
    then_fell: bool,
    /// The scan is currently inside the else-arm.
    in_else: bool,
}

/// Which field of an op a fixup patches.
enum Slot {
    Main,
    Entry(usize),
    Default,
}

/// A branch target to resolve once the whole body has been scanned.
struct Fixup {
    op: usize,
    slot: Slot,
    /// Walk start, in original pc space.
    start: usize,
    /// Extra fuel charged before the walk begins (the `Else` skip itself).
    bias: u32,
}

fn lower_func(module: &Module, body: &[Instr], meta: &[CtrlMeta]) -> LoweredFunc {
    let (mut ops, fixups, flat_of) = scan(module, body, meta);
    resolve(body, meta, &flat_of, &fixups, &mut ops);
    let ops = fuse(ops);
    assign_blocks(ops)
}

/// Pass 1: walk the body once, tracking liveness and stack heights, emitting
/// flat ops for live non-structural instructions.
#[allow(clippy::too_many_lines)]
fn scan(module: &Module, body: &[Instr], meta: &[CtrlMeta]) -> (Vec<PreOp>, Vec<Fixup>, Vec<u32>) {
    let mut ops: Vec<PreOp> = Vec::new();
    let mut fixups: Vec<Fixup> = Vec::new();
    let mut flat_of = vec![u32::MAX; body.len()];
    let mut frames: Vec<Frame> = Vec::new();
    let mut live = true;
    let mut dead_nest: u32 = 0;
    let mut height: u32 = 0;
    let mut elided: u32 = 0;

    // Builds the taken-edge args for a branch to relative depth `d` and
    // registers the walk fixup; returns None for a function return.
    let branch_args = |frames: &mut Vec<Frame>,
                       fixups: &mut Vec<Fixup>,
                       d: u32,
                       op: usize,
                       slot: Slot|
     -> BranchArgs {
        let d = d as usize;
        if d >= frames.len() {
            return BranchArgs {
                target: RETURN_TARGET,
                height: 0,
                carry: false,
                extra: 0,
            };
        }
        let fi = frames.len() - 1 - d;
        frames[fi].branched = true;
        let f = &frames[fi];
        fixups.push(Fixup {
            op,
            slot,
            start: f.cont_orig as usize,
            bias: 0,
        });
        BranchArgs {
            target: 0, // patched by the fixup
            height: f.height,
            carry: !f.is_loop && f.arity == 1,
            extra: 0,
        }
    };

    for (pc, instr) in body.iter().enumerate() {
        if !live {
            // Dead code is never emitted; only track the frame structure so
            // we know where liveness resumes.
            match instr {
                Instr::Block(_) | Instr::Loop(_) | Instr::If(_) => dead_nest += 1,
                Instr::Else if dead_nest == 0 => {
                    // The then-arm ended in a branch/return; the else-arm is
                    // still reachable via the if's false edge.
                    let f = frames.last_mut().expect("validated else inside if");
                    f.in_else = true;
                    live = true;
                    height = f.height;
                    elided = 0;
                }
                Instr::End => {
                    if dead_nest > 0 {
                        dead_nest -= 1;
                    } else if let Some(f) = frames.pop() {
                        let resurrect = if f.is_loop {
                            // A loop's `end` is only reachable by falling
                            // out of the body; back-edges don't help.
                            false
                        } else if f.is_if && !f.in_else && f.else_pc == u32::MAX {
                            // `if` without `else`: the false edge always
                            // lands on this `end`.
                            true
                        } else {
                            f.branched || f.then_fell
                        };
                        if resurrect {
                            live = true;
                            height = f.height + f.arity;
                            elided = 0;
                        }
                    }
                }
                _ => {}
            }
            continue;
        }

        match instr {
            i if is_elided(i) && !i.opens_block() => elided += 1,
            Instr::Block(bt) => {
                elided += 1;
                frames.push(Frame {
                    height,
                    arity: bt.arity() as u32,
                    is_loop: false,
                    is_if: false,
                    else_pc: u32::MAX,
                    end_pc: meta[pc].end_pc,
                    cont_orig: meta[pc].end_pc + 1,
                    branched: false,
                    then_fell: false,
                    in_else: false,
                });
            }
            Instr::Loop(bt) => {
                elided += 1;
                frames.push(Frame {
                    height,
                    arity: bt.arity() as u32,
                    is_loop: true,
                    is_if: false,
                    else_pc: u32::MAX,
                    end_pc: meta[pc].end_pc,
                    // Back-edges re-enter after the opener, so they never
                    // re-pay the `Loop` instruction — same as the
                    // interpreter's label cont.
                    cont_orig: pc as u32 + 1,
                    branched: false,
                    then_fell: false,
                    in_else: false,
                });
            }
            Instr::If(bt) => {
                height -= 1; // condition
                let m = meta[pc];
                let idx = ops.len();
                flat_of[pc] = idx as u32;
                ops.push(PreOp {
                    op: Op::BrZ(CondBr {
                        args: BranchArgs {
                            target: 0,
                            height,
                            carry: false,
                            extra: 0,
                        },
                        fall_extra: 0,
                    }),
                    cost: 1,
                    pre: std::mem::take(&mut elided),
                });
                // False edge: past the `else`, or onto the `end` (which the
                // interpreter executes) when there is none.
                let start = if m.else_pc != u32::MAX {
                    m.else_pc as usize + 1
                } else {
                    m.end_pc as usize
                };
                fixups.push(Fixup {
                    op: idx,
                    slot: Slot::Main,
                    start,
                    bias: 0,
                });
                frames.push(Frame {
                    height,
                    arity: bt.arity() as u32,
                    is_loop: false,
                    is_if: true,
                    else_pc: m.else_pc,
                    end_pc: m.end_pc,
                    cont_orig: m.end_pc + 1,
                    branched: false,
                    then_fell: false,
                    in_else: false,
                });
            }
            Instr::Else => {
                // Live then-arm falls into `else`: synthesize the jump over
                // the else-arm. The interpreter executes the `Else` (1 fuel)
                // and the matching `End` (counted by the walk from end_pc).
                let f = frames.last_mut().expect("validated else inside if");
                f.then_fell = true;
                f.in_else = true;
                let idx = ops.len();
                ops.push(PreOp {
                    op: Op::Jump(BranchArgs {
                        target: 0,
                        height: f.height + f.arity,
                        carry: false,
                        extra: 0,
                    }),
                    cost: 0,
                    pre: std::mem::take(&mut elided),
                });
                fixups.push(Fixup {
                    op: idx,
                    slot: Slot::Main,
                    start: f.end_pc as usize,
                    bias: 1,
                });
                height = f.height;
            }
            Instr::End => {
                if let Some(f) = frames.pop() {
                    elided += 1;
                    height = f.height + f.arity;
                } else {
                    // Function-level `end`: a real op (it costs 1 fuel and
                    // returns), and the terminator every fall-through walk
                    // lands on.
                    flat_of[pc] = ops.len() as u32;
                    ops.push(PreOp {
                        op: Op::Ret,
                        cost: 1,
                        pre: std::mem::take(&mut elided),
                    });
                    live = false;
                }
            }
            Instr::Br(d) => {
                let idx = ops.len();
                flat_of[pc] = idx as u32;
                let pre = std::mem::take(&mut elided);
                let args = branch_args(&mut frames, &mut fixups, *d, idx, Slot::Main);
                let op = if args.target == RETURN_TARGET {
                    Op::Ret
                } else {
                    Op::Jump(args)
                };
                ops.push(PreOp { op, cost: 1, pre });
                live = false;
            }
            Instr::BrIf(d) => {
                height -= 1;
                let idx = ops.len();
                flat_of[pc] = idx as u32;
                let pre = std::mem::take(&mut elided);
                let args = branch_args(&mut frames, &mut fixups, *d, idx, Slot::Main);
                ops.push(PreOp {
                    op: Op::BrNz(CondBr {
                        args,
                        fall_extra: 0,
                    }),
                    cost: 1,
                    pre,
                });
            }
            Instr::BrTable(t) => {
                height -= 1;
                let idx = ops.len();
                flat_of[pc] = idx as u32;
                let pre = std::mem::take(&mut elided);
                let entries: Vec<BranchArgs> = t
                    .targets
                    .iter()
                    .enumerate()
                    .map(|(e, d)| branch_args(&mut frames, &mut fixups, *d, idx, Slot::Entry(e)))
                    .collect();
                let default = branch_args(&mut frames, &mut fixups, t.default, idx, Slot::Default);
                ops.push(PreOp {
                    op: Op::BrTable(Box::new(LBrTable { entries, default })),
                    cost: 1,
                    pre,
                });
                live = false;
            }
            Instr::Return => {
                flat_of[pc] = ops.len() as u32;
                ops.push(PreOp {
                    op: Op::Ret,
                    cost: 1,
                    pre: std::mem::take(&mut elided),
                });
                live = false;
            }
            Instr::Unreachable => {
                flat_of[pc] = ops.len() as u32;
                ops.push(PreOp {
                    op: Op::Unreachable,
                    cost: 1,
                    pre: std::mem::take(&mut elided),
                });
                live = false;
            }
            _ => {
                // A plain (non-control) instruction.
                flat_of[pc] = ops.len() as u32;
                let pre = std::mem::take(&mut elided);
                let op = match instr {
                    Instr::Call(i) => Op::Call { idx: *i, extra: 0 },
                    Instr::CallIndirect(ti) => Op::CallIndirect {
                        type_idx: *ti,
                        extra: 0,
                    },
                    Instr::MemoryGrow => Op::MemoryGrow { extra: 0 },
                    Instr::MemoryCopy => Op::MemoryCopy { extra: 0 },
                    Instr::MemoryFill => Op::MemoryFill { extra: 0 },
                    Instr::LocalGet(i) => Op::LocalGet(*i),
                    Instr::LocalSet(i) => Op::LocalSet(*i),
                    Instr::LocalTee(i) => Op::LocalTee(*i),
                    Instr::I32Const(v) => Op::I32Const(*v),
                    Instr::I64Const(v) => Op::I64Const(*v),
                    other => Op::Plain(other.clone()),
                };
                ops.push(PreOp { op, cost: 1, pre });
                height = (height as i64 + stack_delta(module, instr) as i64) as u32;
            }
        }
    }
    debug_assert!(frames.is_empty(), "validated nesting");
    (ops, fixups, flat_of)
}

/// Walk forward from an original pc over elided instructions until a real
/// (registered) op, counting the fuel the interpreter would charge along the
/// way. Every walk starts on a live edge, so it must land on a live op.
fn walk(body: &[Instr], meta: &[CtrlMeta], flat_of: &[u32], mut p: usize) -> (u32, u32) {
    let mut extra: u32 = 0;
    loop {
        debug_assert!(p < body.len(), "walks terminate at the function Ret");
        if flat_of[p] != u32::MAX {
            return (flat_of[p], extra);
        }
        match &body[p] {
            Instr::Else => {
                // Executing `else` skips to the matching `end`.
                extra += 1;
                p = meta[p].end_pc as usize;
            }
            i => {
                debug_assert!(
                    is_elided(i) || matches!(i, Instr::End),
                    "live walks only cross elided instructions, found {i:?}"
                );
                extra += 1;
                p += 1;
            }
        }
    }
}

/// Pass 2: resolve every branch fixup to a flat target + edge fuel.
fn resolve(
    body: &[Instr],
    meta: &[CtrlMeta],
    flat_of: &[u32],
    fixups: &[Fixup],
    ops: &mut [PreOp],
) {
    for fx in fixups {
        let (target, walked) = walk(body, meta, flat_of, fx.start);
        let extra = fx.bias + walked;
        let args = match (&mut ops[fx.op].op, &fx.slot) {
            (Op::Jump(a), Slot::Main) => a,
            (Op::BrNz(c) | Op::BrZ(c), Slot::Main) => &mut c.args,
            (Op::BrTable(t), Slot::Entry(e)) => &mut t.entries[*e],
            (Op::BrTable(t), Slot::Default) => &mut t.default,
            _ => unreachable!("fixup does not match op shape"),
        };
        args.target = target;
        args.extra = extra;
    }
}

/// Every flat index some resolved branch can land on.
fn branch_targets(ops: &[PreOp]) -> Vec<bool> {
    let mut t = vec![false; ops.len()];
    let mut mark = |a: &BranchArgs| {
        if a.target != RETURN_TARGET {
            t[a.target as usize] = true;
        }
    };
    for p in ops {
        match &p.op {
            Op::Jump(a) => mark(a),
            Op::BrNz(c) | Op::BrZ(c) => mark(&c.args),
            Op::BrTable(tb) => {
                for e in &tb.entries {
                    mark(e);
                }
                mark(&tb.default);
            }
            _ => {}
        }
    }
    t
}

/// Pass 3: greedy superinstruction fusion. A sequence fuses only if no
/// branch lands on an interior constituent; the fused op keeps the first
/// constituent's `pre` and absorbs the rest's `cost + pre`.
#[allow(clippy::too_many_lines)]
fn fuse(ops: Vec<PreOp>) -> Vec<PreOp> {
    let n = ops.len();
    let is_target = branch_targets(&ops);
    let mut map = vec![u32::MAX; n];
    let mut out: Vec<PreOp> = Vec::with_capacity(n);

    // Pattern matcher: returns the fused op and the constituent count.
    let try_fuse = |i: usize| -> Option<(Op, usize)> {
        let free = |len: usize| -> bool { i + len <= n && (i + 1..i + len).all(|j| !is_target[j]) };
        let plain = |j: usize| -> Option<&Instr> {
            match &ops[j].op {
                Op::Plain(p) => Some(p),
                _ => None,
            }
        };

        // local, local, cmp, [eqz,] br_if
        if let (Op::LocalGet(a), Op::LocalGet(b)) = (&ops[i].op, ops.get(i + 1).map(|p| &p.op)?) {
            let (a, b) = (*a, *b);
            if let Some(cmp) = plain(i + 2).and_then(FusedCmp::from_instr) {
                if free(5)
                    && matches!(plain(i + 3), Some(Instr::I32Eqz))
                    && matches!(&ops[i + 4].op, Op::BrNz(_))
                {
                    if let Op::BrNz(br) = &ops[i + 4].op {
                        return Some((
                            Op::FBrCmpLL {
                                a,
                                b,
                                cmp,
                                when: false,
                                br: *br,
                            },
                            5,
                        ));
                    }
                }
                if free(4) {
                    if let Op::BrNz(br) = &ops[i + 3].op {
                        return Some((
                            Op::FBrCmpLL {
                                a,
                                b,
                                cmp,
                                when: true,
                                br: *br,
                            },
                            4,
                        ));
                    }
                }
            }
            if let Some(op) = plain(i + 2).and_then(FusedBin::from_instr) {
                if free(4) {
                    if let Op::LocalSet(dst) = ops[i + 3].op {
                        return Some((Op::FBinLLS { a, b, dst, op }, 4));
                    }
                }
                if free(3) {
                    return Some((Op::FBinLL { a, b, op }, 3));
                }
            }
        }
        // local, const, cmp/op, ...
        if let (Op::LocalGet(l), Op::I32Const(k)) = (&ops[i].op, ops.get(i + 1).map(|p| &p.op)?) {
            let (l, k) = (*l, *k);
            if let Some(cmp) = plain(i + 2).and_then(FusedCmp::from_instr) {
                if free(5)
                    && matches!(plain(i + 3), Some(Instr::I32Eqz))
                    && matches!(&ops[i + 4].op, Op::BrNz(_))
                {
                    if let Op::BrNz(br) = &ops[i + 4].op {
                        return Some((
                            Op::FBrCmpLI {
                                a: l,
                                imm: k,
                                cmp,
                                when: false,
                                br: *br,
                            },
                            5,
                        ));
                    }
                }
                if free(4) {
                    if let Op::BrNz(br) = &ops[i + 3].op {
                        return Some((
                            Op::FBrCmpLI {
                                a: l,
                                imm: k,
                                cmp,
                                when: true,
                                br: *br,
                            },
                            4,
                        ));
                    }
                }
            }
            if let Some(op) = plain(i + 2).and_then(FusedImm::from_instr) {
                if free(4) {
                    if let Op::LocalSet(dst) = ops[i + 3].op {
                        return Some((
                            Op::FImmLS {
                                src: l,
                                imm: k,
                                dst,
                                op,
                            },
                            4,
                        ));
                    }
                }
                if free(3) {
                    return Some((Op::FImmL { src: l, imm: k, op }, 3));
                }
            }
        }
        // local + full-width load/store
        if let Op::LocalGet(l) = ops[i].op {
            if free(2) {
                if let Some((width, offset)) = plain(i + 1).and_then(LsWidth::of_load) {
                    return Some((
                        Op::FLocalLoad {
                            local: l,
                            offset,
                            width,
                        },
                        2,
                    ));
                }
                if let Some((width, offset)) = plain(i + 1).and_then(LsWidth::of_store) {
                    return Some((
                        Op::FStoreL {
                            local: l,
                            offset,
                            width,
                        },
                        2,
                    ));
                }
            }
        }
        // i32.add + full-width load (element addressing)
        if matches!(plain(i), Some(Instr::I32Add)) && free(2) {
            if let Some((width, offset)) = plain(i + 1).and_then(LsWidth::of_load) {
                return Some((Op::FAddLoad { offset, width }, 2));
            }
        }
        // const + i32 op
        if let Op::I32Const(k) = ops[i].op {
            if free(2) {
                if let Some(op) = plain(i + 1).and_then(FusedImm::from_instr) {
                    return Some((Op::FImm { imm: k, op }, 2));
                }
            }
        }
        // eqz + br_if → br_z
        if matches!(plain(i), Some(Instr::I32Eqz)) && free(2) {
            if let Op::BrNz(br) = &ops[i + 1].op {
                return Some((Op::BrZ(*br), 2));
            }
        }
        None
    };

    let mut i = 0;
    while i < n {
        let (op, len) = match try_fuse(i) {
            Some((op, len)) => (op, len),
            None => (ops[i].op.clone(), 1),
        };
        map[i] = out.len() as u32;
        let cost: u32 = ops[i..i + len].iter().map(|p| p.cost).sum::<u32>()
            + ops[i + 1..i + len].iter().map(|p| p.pre).sum::<u32>();
        out.push(PreOp {
            op,
            cost,
            pre: ops[i].pre,
        });
        i += len;
    }

    // Remap branch targets from pre-fusion to post-fusion indices.
    let remap = |a: &mut BranchArgs| {
        if a.target != RETURN_TARGET {
            let t = map[a.target as usize];
            debug_assert!(t != u32::MAX, "branch into a fused interior");
            a.target = t;
        }
    };
    for p in &mut out {
        match &mut p.op {
            Op::Jump(a) => remap(a),
            Op::BrNz(c) | Op::BrZ(c) => remap(&mut c.args),
            Op::FBrCmpLL { br, .. } | Op::FBrCmpLI { br, .. } => remap(&mut br.args),
            Op::BrTable(t) => {
                for e in &mut t.entries {
                    remap(e);
                }
                remap(&mut t.default);
            }
            _ => {}
        }
    }
    out
}

/// Post-fusion branch targets (fused conditionals included).
fn final_targets(ops: &[PreOp]) -> Vec<bool> {
    let mut t = vec![false; ops.len()];
    let mut mark = |a: &BranchArgs| {
        if a.target != RETURN_TARGET {
            t[a.target as usize] = true;
        }
    };
    for p in ops {
        match &p.op {
            Op::Jump(a) => mark(a),
            Op::BrNz(c) | Op::BrZ(c) => mark(&c.args),
            Op::FBrCmpLL { br, .. } | Op::FBrCmpLI { br, .. } => mark(&br.args),
            Op::BrTable(tb) => {
                for e in &tb.entries {
                    mark(e);
                }
                mark(&tb.default);
            }
            _ => {}
        }
    }
    t
}

/// Pass 4: split into basic blocks and attach the bulk-fuel metadata.
fn assign_blocks(ops: Vec<PreOp>) -> LoweredFunc {
    let n = ops.len();
    let targets = final_targets(&ops);
    let mut leader = vec![false; n];
    if n > 0 {
        leader[0] = true;
    }
    for (i, p) in ops.iter().enumerate() {
        if is_terminator(&p.op) && i + 1 < n {
            leader[i + 1] = true;
        }
    }
    for (i, is_t) in targets.iter().enumerate() {
        if *is_t {
            leader[i] = true;
        }
    }

    let mut lops: Vec<LOp> = ops
        .into_iter()
        .map(|p| LOp {
            op: p.op,
            cost: p.cost,
            pre: p.pre,
            charge: 0,
            rest: 0,
        })
        .collect();

    // Non-leaders can only be reached linearly: fold their edge fuel into
    // their cost.
    for (i, l) in lops.iter_mut().enumerate() {
        if !leader[i] {
            l.cost += l.pre;
            l.pre = 0;
        }
    }

    // Ops that fall through into the next (leader) op at runtime carry that
    // leader's `pre` as their edge fuel.
    for i in 0..n {
        let next_pre = if i + 1 < n { lops[i + 1].pre } else { 0 };
        match &mut lops[i].op {
            Op::BrNz(c) | Op::BrZ(c) => c.fall_extra = next_pre,
            Op::FBrCmpLL { br, .. } | Op::FBrCmpLI { br, .. } => br.fall_extra = next_pre,
            Op::Call { extra, .. }
            | Op::CallIndirect { extra, .. }
            | Op::MemoryGrow { extra }
            | Op::MemoryCopy { extra }
            | Op::MemoryFill { extra } => *extra = next_pre,
            _ => {}
        }
    }

    // Per block: bulk charge on the leader, un-executed remainder per op.
    let mut s = 0;
    while s < n {
        let mut e = s + 1;
        while e < n && !leader[e] {
            e += 1;
        }
        // A block ending in a plain op falls into the next leader; its
        // `pre` is part of this block's edge and is refunded if the last op
        // traps.
        let tail = if !is_terminator(&lops[e - 1].op) && e < n {
            lops[e].pre
        } else {
            0
        };
        let total: u32 = lops[s..e].iter().map(|l| l.cost).sum::<u32>() + tail;
        let mut run = total;
        for l in &mut lops[s..e] {
            run -= l.cost;
            l.rest = if is_terminator(&l.op) { 0 } else { run };
        }
        lops[s].charge = total;
        s = e;
    }

    let entry_pre = lops.first().map_or(0, |l| l.pre);
    LoweredFunc {
        ops: lops,
        entry_pre,
    }
}

/// Keep `MemArg` referenced so fused offsets stay documented at the source.
#[allow(dead_code)]
fn _memarg_offsets_are_u32(m: MemArg) -> u32 {
    m.offset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleBuilder;
    use crate::object::ObjectModule;
    use crate::types::{BlockType, FuncType, ValType};
    use Instr::*;

    fn lower_body(params: Vec<ValType>, results: Vec<ValType>, body: Vec<Instr>) -> LoweredFunc {
        let mut b = ModuleBuilder::new();
        b.memory(1, 2);
        let sig = b.sig(FuncType::new(params, results));
        b.func(sig, vec![], body);
        let m = b.build();
        let obj = ObjectModule::prepare(m).unwrap();
        lower_module(&obj.module, &obj.ctrl).remove(0)
    }

    #[test]
    fn minimal_body_lowers_to_ret() {
        let lf = lower_body(vec![], vec![], vec![End]);
        assert_eq!(lf.ops.len(), 1);
        assert_eq!(lf.ops[0].op, Op::Ret);
        assert_eq!(lf.ops[0].cost, 1);
        assert_eq!(lf.ops[0].charge, 1);
        assert_eq!(lf.entry_pre, 0);
    }

    #[test]
    fn structural_ops_disappear_with_fuel_accounted() {
        // block; nop; end; end → one Ret carrying 3 elided units as pre.
        let lf = lower_body(vec![], vec![], vec![Block(BlockType::Empty), Nop, End, End]);
        assert_eq!(lf.ops.len(), 1);
        assert_eq!(lf.ops[0].op, Op::Ret);
        assert_eq!(lf.entry_pre, 3, "block + nop + end on the entry edge");
        assert_eq!(lf.ops[0].cost, 1);
    }

    #[test]
    fn loop_back_edge_skips_the_opener() {
        // local 0 counts down to 0.
        // 0: loop
        // 1:   local.get 0
        // 2:   i32.const 1
        // 3:   i32.sub
        // 4:   local.set 0
        // 5:   local.get 0
        // 6:   br_if 0
        // 7: end
        // 8: end
        let lf = lower_body(
            vec![ValType::I32],
            vec![],
            vec![
                Loop(BlockType::Empty),
                LocalGet(0),
                I32Const(1),
                I32Sub,
                LocalSet(0),
                LocalGet(0),
                BrIf(0),
                End,
                End,
            ],
        );
        // Fusion: [FImmLS, LocalGet, BrNz, Ret]
        assert_eq!(lf.ops.len(), 4, "ops: {:?}", lf.ops);
        assert!(matches!(
            lf.ops[0].op,
            Op::FImmLS {
                src: 0,
                imm: 1,
                dst: 0,
                op: FusedImm::Sub
            }
        ));
        assert_eq!(lf.entry_pre, 1, "the Loop opener");
        // The back-edge re-enters at the fused op without the opener's fuel.
        match &lf.ops[2].op {
            Op::BrNz(c) => {
                assert_eq!(c.args.target, 0);
                assert_eq!(c.args.extra, 0, "back-edge pays no elided fuel");
                assert_eq!(c.fall_extra, 1, "falling out executes the loop End");
            }
            other => panic!("expected BrNz, got {other:?}"),
        }
        // Fuel: whole loop body is one block of 6 interpreter units
        // (LocalGet, Const, Sub, Set, LocalGet, BrIf).
        assert_eq!(lf.ops[0].charge, 6);
        assert_eq!(lf.ops[0].cost, 4);
        assert_eq!(lf.ops[1].cost, 1);
        assert_eq!(lf.ops[2].cost, 1);
    }

    #[test]
    fn while_shape_fuses_compare_and_branch() {
        // The faasm-lang while shape:
        // block; loop; local.get 0; i32.const 10; i32.lt_s; i32.eqz;
        // br_if 1; local.get 0; i32.const 1; i32.add; local.set 0;
        // br 0; end; end; end
        let lf = lower_body(
            vec![ValType::I32],
            vec![],
            vec![
                Block(BlockType::Empty),
                Loop(BlockType::Empty),
                LocalGet(0),
                I32Const(10),
                I32LtS,
                I32Eqz,
                BrIf(1),
                LocalGet(0),
                I32Const(1),
                I32Add,
                LocalSet(0),
                Br(0),
                End,
                End,
                End,
            ],
        );
        // [FBrCmpLI(when=false), FImmLS, Jump, Ret]
        assert_eq!(lf.ops.len(), 4, "ops: {:?}", lf.ops);
        match &lf.ops[0].op {
            Op::FBrCmpLI {
                a: 0,
                imm: 10,
                cmp: FusedCmp::LtS,
                when: false,
                br,
            } => {
                assert_eq!(br.args.target, 3, "exit lands on Ret");
                // The branch jumps past both `end`s — the interpreter never
                // executes them on this edge.
                assert_eq!(br.args.extra, 0);
            }
            other => panic!("expected FBrCmpLI, got {other:?}"),
        }
        assert_eq!(lf.ops[0].cost, 5, "5 interpreter instructions fused");
        assert_eq!(lf.ops[0].charge, 5, "conditional terminates its block");
        match &lf.ops[2].op {
            Op::Jump(a) => {
                assert_eq!(a.target, 0, "back to the loop head");
                assert_eq!(a.extra, 0);
            }
            other => panic!("expected Jump, got {other:?}"),
        }
        // Second block: FImmLS(4 units) + Br(1 unit).
        assert_eq!(lf.ops[1].charge, 5);
        assert_eq!(lf.entry_pre, 2, "block + loop openers");
    }

    #[test]
    fn if_else_lowers_to_brz_and_jump() {
        // 0: local.get 0
        // 1: if (i32)
        // 2:   i32.const 1
        // 3: else
        // 4:   i32.const 2
        // 5: end
        // 6: end
        let lf = lower_body(
            vec![ValType::I32],
            vec![ValType::I32],
            vec![
                LocalGet(0),
                If(BlockType::Value(ValType::I32)),
                I32Const(1),
                Else,
                I32Const(2),
                End,
                End,
            ],
        );
        // [LocalGet, BrZ, I32Const 1, Jump, I32Const 2, Ret]
        assert_eq!(lf.ops.len(), 6, "ops: {:?}", lf.ops);
        match &lf.ops[1].op {
            Op::BrZ(c) => {
                assert_eq!(c.args.target, 4, "false edge lands on the else-arm");
                assert_eq!(c.args.extra, 0);
            }
            other => panic!("expected BrZ, got {other:?}"),
        }
        match &lf.ops[3].op {
            Op::Jump(a) => {
                assert_eq!(a.target, 5, "then-arm jumps past the else-arm");
                assert_eq!(a.extra, 2, "executes Else and End");
                assert!(!a.carry);
            }
            other => panic!("expected Jump, got {other:?}"),
        }
        assert_eq!(
            lf.ops[3].cost, 0,
            "synthetic jump is free; Else is edge fuel"
        );
        // Else-arm leader's pre is 0; its charge covers const only, plus
        // the Ret's pre (the if End) as fall-through tail... the const falls
        // into the Ret leader.
        assert_eq!(lf.ops[4].pre, 0);
        assert_eq!(lf.ops[5].pre, 1, "the if End before the function end");
    }

    #[test]
    fn dead_code_is_not_emitted() {
        // 0: block
        // 1:   br 0
        // 2:   i32.const 7   (dead)
        // 3:   drop          (dead)
        // 4: end
        // 5: end
        let lf = lower_body(
            vec![],
            vec![],
            vec![Block(BlockType::Empty), Br(0), I32Const(7), Drop, End, End],
        );
        // [Jump, Ret]
        assert_eq!(lf.ops.len(), 2, "ops: {:?}", lf.ops);
        match &lf.ops[0].op {
            Op::Jump(a) => {
                assert_eq!(a.target, 1);
                // The branch continuation is the function End itself (a real
                // Ret op), so no elided fuel rides the edge.
                assert_eq!(a.extra, 0);
            }
            other => panic!("expected Jump, got {other:?}"),
        }
        assert_eq!(lf.ops[1].op, Op::Ret);
    }

    #[test]
    fn branch_target_blocks_interior_fusion() {
        // The br_if's continuation (first op after the block) lands on the
        // I32Const in the middle of a would-be LocalGet+Const+Add pattern;
        // fusion must not swallow the branch target.
        // 0: block (i32)
        // 1:   local.get 0   ; carried value
        // 2:   local.get 1   ; condition
        // 3:   br_if 0       ; exits to pc 7
        // 4:   drop
        // 5:   local.get 2
        // 6: end
        // 7: i32.const 1     ; branch target
        // 8: i32.add
        // 9: drop
        // 10: end
        let lf = lower_body(
            vec![ValType::I32, ValType::I32, ValType::I32],
            vec![],
            vec![
                Block(BlockType::Value(ValType::I32)),
                LocalGet(0),
                LocalGet(1),
                BrIf(0),
                Drop,
                LocalGet(2),
                End,
                I32Const(1),
                I32Add,
                Drop,
                End,
            ],
        );
        // Pre-fusion flat ops: [LocalGet0, LocalGet1, BrNz, Drop, LocalGet2,
        // I32Const, I32Add, Drop, Ret] with the branch targeting the const.
        // LocalGet2+Const+Add must NOT fuse (interior target); Const+Add
        // still fuses starting at the target itself.
        let get2 = lf
            .ops
            .iter()
            .position(|l| matches!(l.op, Op::LocalGet(2)))
            .expect("LocalGet(2) stays unfused");
        match &lf.ops[get2 + 1].op {
            Op::FImm {
                imm: 1,
                op: FusedImm::Add,
            } => {}
            other => panic!("expected FImm at the branch target, got {other:?}"),
        }
        match &lf.ops[2].op {
            Op::BrNz(c) => {
                assert_eq!(c.args.target as usize, get2 + 1);
                assert!(c.args.carry, "block has arity 1");
                assert_eq!(c.args.extra, 0);
            }
            other => panic!("expected BrNz, got {other:?}"),
        }
    }

    #[test]
    fn local_load_store_fuse_full_width_only() {
        let lf = lower_body(
            vec![ValType::I32],
            vec![ValType::I32],
            vec![
                LocalGet(0),
                I32Load(MemArg::zero()),
                LocalGet(0),
                I32Load8U(MemArg::zero()),
                I32Add,
                End,
            ],
        );
        assert!(matches!(
            lf.ops[0].op,
            Op::FLocalLoad {
                local: 0,
                offset: 0,
                width: LsWidth::W4
            }
        ));
        // Narrow load does not fuse.
        assert!(matches!(lf.ops[1].op, Op::LocalGet(0)));
        assert!(matches!(lf.ops[2].op, Op::Plain(Instr::I32Load8U(_))));
    }

    #[test]
    fn block_charges_sum_member_costs() {
        // Straight-line: const, const, add, drop, end
        let lf = lower_body(
            vec![],
            vec![],
            vec![I32Const(1), I32Const(2), I32Add, Drop, End],
        );
        // const+add fuse at index 1: [I32Const, FImm, Drop, Ret] — one block.
        let total: u32 = lf.ops.iter().map(|l| l.cost).sum();
        assert_eq!(total, 5);
        assert_eq!(lf.ops[0].charge, 5, "single leader charges everything");
        assert!(lf.ops[1..].iter().all(|l| l.charge == 0));
        // rest decreases to zero along the block.
        assert_eq!(lf.ops[0].rest, lf.ops[0].charge - lf.ops[0].cost);
        assert_eq!(lf.ops.last().unwrap().rest, 0, "Ret is a terminator");
    }
}
