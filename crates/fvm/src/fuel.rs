//! Fuel metering: deterministic CPU accounting and the enforcement point for
//! cgroup-style CPU shares.
//!
//! The paper isolates CPU with Linux cgroups: each Faaslet's thread receives
//! an equal share under CFS (§3.1). The FVM reproduces the *mechanism* with
//! fuel: every interpreted instruction costs one fuel unit, fuel is granted
//! in slices, and when a slice is exhausted the interpreter calls out to a
//! [`CpuController`] which may block the thread until it is entitled to run
//! again (the scheduling decision lives in `faasm-core`'s cgroup module).
//! Total fuel consumed doubles as the "CPU cycles" metric of Tab. 3.

use std::sync::Arc;

use crate::trap::Trap;

/// Decides when a Faaslet may consume its next fuel slice.
///
/// Implementations typically block the calling thread (each Faaslet has a
/// dedicated thread, as in the paper) until the scheduler grants another
/// quantum, returning `Err` only to kill the Faaslet (e.g. hard CPU cap).
pub trait CpuController: Send + Sync {
    /// Request another slice of `slice` fuel units. Blocks until granted.
    ///
    /// # Errors
    ///
    /// Returns a trap to terminate the guest (e.g. [`Trap::OutOfFuel`] when a
    /// hard limit is reached).
    fn acquire_slice(&self, slice: u64) -> Result<(), Trap>;
}

/// A fuel meter with an optional hard limit and an optional controller.
pub struct FuelMeter {
    /// Fuel remaining in the current slice.
    remaining: u64,
    /// Slice size granted by the controller.
    slice: u64,
    /// Total fuel consumed since construction (monotonic).
    consumed: u64,
    /// Optional hard cap on total consumption.
    limit: Option<u64>,
    /// Optional scheduler callback.
    controller: Option<Arc<dyn CpuController>>,
}

impl std::fmt::Debug for FuelMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuelMeter")
            .field("remaining", &self.remaining)
            .field("slice", &self.slice)
            .field("consumed", &self.consumed)
            .field("limit", &self.limit)
            .field("has_controller", &self.controller.is_some())
            .finish()
    }
}

/// Default slice size: small enough for responsive preemption, large enough
/// that the slice-refill path is off the hot loop.
pub const DEFAULT_SLICE: u64 = 64 * 1024;

impl Default for FuelMeter {
    fn default() -> Self {
        FuelMeter::unlimited()
    }
}

impl FuelMeter {
    /// A meter that never blocks or traps; it only counts.
    pub fn unlimited() -> FuelMeter {
        FuelMeter {
            remaining: DEFAULT_SLICE,
            slice: DEFAULT_SLICE,
            consumed: 0,
            limit: None,
            controller: None,
        }
    }

    /// A meter that traps with [`Trap::OutOfFuel`] after `limit` units.
    pub fn with_limit(limit: u64) -> FuelMeter {
        FuelMeter {
            remaining: 0,
            slice: DEFAULT_SLICE,
            consumed: 0,
            limit: Some(limit),
            controller: None,
        }
    }

    /// A meter driven by a CPU controller granting `slice`-sized quanta.
    pub fn with_controller(controller: Arc<dyn CpuController>, slice: u64) -> FuelMeter {
        FuelMeter {
            remaining: 0,
            slice: slice.max(1),
            consumed: 0,
            limit: None,
            controller: Some(controller),
        }
    }

    /// Total fuel consumed so far (the CPU-cycles metric).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Reset the consumption counter (e.g. between function invocations when
    /// attributing cost per call).
    pub fn reset_consumed(&mut self) {
        self.consumed = 0;
    }

    /// Charge `n` fuel units, refilling slices as needed.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::OutOfFuel`] if the hard limit is exceeded, or whatever
    /// trap the controller returns when refusing a slice.
    #[inline]
    pub fn charge(&mut self, n: u64) -> Result<(), Trap> {
        self.consumed += n;
        if let Some(limit) = self.limit {
            if self.consumed > limit {
                return Err(Trap::OutOfFuel);
            }
        }
        if self.remaining >= n {
            self.remaining -= n;
            return Ok(());
        }
        self.refill(n)
    }

    /// Charge `n` fuel units that stand for `n` single-unit instruction
    /// charges. Unlike [`FuelMeter::charge`], crossing the hard limit leaves
    /// `consumed` at exactly `limit + 1` — the value a unit-at-a-time
    /// charging loop would observe at the trap — so the lowered tier's
    /// folded structural costs stay bitwise-compatible with the interpreter.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::OutOfFuel`] past the hard limit, or the controller's
    /// trap when it refuses a slice.
    #[inline]
    pub fn charge_steps(&mut self, n: u64) -> Result<(), Trap> {
        if let Some(limit) = self.limit {
            if self.consumed + n > limit {
                self.consumed = limit + 1;
                return Err(Trap::OutOfFuel);
            }
        }
        self.consumed += n;
        if self.remaining >= n {
            self.remaining -= n;
            return Ok(());
        }
        self.refill(n)
    }

    /// Try to charge a whole basic block of `n` units at once.
    ///
    /// Returns `Ok(false)` — charging *nothing* — when the hard limit would
    /// be crossed; the caller then re-executes the block charging op-by-op so
    /// the out-of-fuel trap lands on exactly the instruction the plain
    /// interpreter would trap on. Controller-driven meters have no hard
    /// limit and always charge in full (the controller sees whole-block
    /// quanta, a coarsening the fuel-semantics contract permits).
    ///
    /// # Errors
    ///
    /// Returns the controller's trap when it refuses a slice.
    #[inline]
    pub fn charge_block(&mut self, n: u64) -> Result<bool, Trap> {
        if let Some(limit) = self.limit {
            if self.consumed + n > limit {
                return Ok(false);
            }
        }
        self.consumed += n;
        if self.remaining >= n {
            self.remaining -= n;
            return Ok(true);
        }
        self.refill(n).map(|()| true)
    }

    /// Return `n` units charged by [`FuelMeter::charge_block`] but never
    /// executed (a non-fuel trap exited the block early). Keeps `consumed`
    /// equal to the fuel the guest actually burned.
    #[inline]
    pub fn refund(&mut self, n: u64) {
        debug_assert!(self.consumed >= n, "refund exceeds consumption");
        self.consumed -= n;
        self.remaining += n;
    }

    #[cold]
    fn refill(&mut self, n: u64) -> Result<(), Trap> {
        let mut needed = n - self.remaining;
        self.remaining = 0;
        while needed > 0 {
            if let Some(c) = &self.controller {
                c.acquire_slice(self.slice)?;
            }
            let grant = self.slice;
            if grant >= needed {
                self.remaining = grant - needed;
                needed = 0;
            } else {
                needed -= grant;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn unlimited_counts_without_trapping() {
        let mut m = FuelMeter::unlimited();
        for _ in 0..1000 {
            m.charge(1000).unwrap();
        }
        assert_eq!(m.consumed(), 1_000_000);
        m.reset_consumed();
        assert_eq!(m.consumed(), 0);
    }

    #[test]
    fn limit_traps_when_exceeded() {
        let mut m = FuelMeter::with_limit(100);
        m.charge(100).unwrap();
        assert_eq!(m.charge(1), Err(Trap::OutOfFuel));
    }

    #[test]
    fn controller_is_consulted_per_slice() {
        struct Counting(AtomicU64);
        impl CpuController for Counting {
            fn acquire_slice(&self, _slice: u64) -> Result<(), Trap> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
        let ctrl = Arc::new(Counting(AtomicU64::new(0)));
        let mut m = FuelMeter::with_controller(ctrl.clone(), 10);
        // 35 units at slice 10 → 4 slices.
        m.charge(35).unwrap();
        assert_eq!(ctrl.0.load(Ordering::Relaxed), 4);
        // 5 remaining; 5 more should not request a new slice.
        m.charge(5).unwrap();
        assert_eq!(ctrl.0.load(Ordering::Relaxed), 4);
        m.charge(1).unwrap();
        assert_eq!(ctrl.0.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn charge_steps_lands_on_limit_plus_one() {
        // A unit-at-a-time loop traps with consumed == limit + 1; the folded
        // form must observe the same value.
        let mut unit = FuelMeter::with_limit(10);
        let mut folded = FuelMeter::with_limit(10);
        unit.charge(7).unwrap();
        folded.charge(7).unwrap();
        let mut unit_err = None;
        for _ in 0..5 {
            if let Err(e) = unit.charge(1) {
                unit_err = Some(e);
                break;
            }
        }
        assert_eq!(unit_err, Some(Trap::OutOfFuel));
        assert_eq!(folded.charge_steps(5), Err(Trap::OutOfFuel));
        assert_eq!(unit.consumed(), folded.consumed());
        assert_eq!(folded.consumed(), 11);
    }

    #[test]
    fn charge_block_refuses_without_charging() {
        let mut m = FuelMeter::with_limit(10);
        m.charge(8).unwrap();
        assert_eq!(m.charge_block(3), Ok(false));
        assert_eq!(m.consumed(), 8, "a refused block charges nothing");
        assert_eq!(m.charge_block(2), Ok(true));
        assert_eq!(m.consumed(), 10);
    }

    #[test]
    fn refund_undoes_block_charge() {
        let mut m = FuelMeter::unlimited();
        assert_eq!(m.charge_block(100), Ok(true));
        m.refund(40);
        assert_eq!(m.consumed(), 60);
    }

    #[test]
    fn charge_block_without_limit_always_charges() {
        struct Grant;
        impl CpuController for Grant {
            fn acquire_slice(&self, _slice: u64) -> Result<(), Trap> {
                Ok(())
            }
        }
        let mut m = FuelMeter::with_controller(Arc::new(Grant), 16);
        assert_eq!(m.charge_block(1000), Ok(true));
        assert_eq!(m.consumed(), 1000);
    }

    #[test]
    fn controller_can_kill() {
        struct Deny;
        impl CpuController for Deny {
            fn acquire_slice(&self, _slice: u64) -> Result<(), Trap> {
                Err(Trap::OutOfFuel)
            }
        }
        let mut m = FuelMeter::with_controller(Arc::new(Deny), 10);
        assert_eq!(m.charge(1), Err(Trap::OutOfFuel));
    }
}
