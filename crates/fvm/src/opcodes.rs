//! Opcode assignments for the binary format (WebAssembly-compatible values).

/// Maps every immediate-free instruction to its opcode byte and back.
///
/// Instructions with immediates (control, variables, memory, constants) are
/// handled explicitly by the encoder/decoder; this table covers the numeric
/// bulk of the ISA so the mapping is written exactly once.
macro_rules! simple_opcodes {
    ($(($code:literal, $variant:ident)),* $(,)?) => {
        /// Return the opcode byte for an immediate-free instruction, if it is
        /// one.
        pub fn simple_opcode(i: &crate::instr::Instr) -> Option<u8> {
            use crate::instr::Instr::*;
            match i {
                $($variant => Some($code),)*
                _ => None,
            }
        }

        /// Return the immediate-free instruction for an opcode byte, if the
        /// byte maps to one.
        pub fn simple_instr(code: u8) -> Option<crate::instr::Instr> {
            use crate::instr::Instr::*;
            match code {
                $($code => Some($variant),)*
                _ => None,
            }
        }
    };
}

simple_opcodes![
    (0x00, Unreachable),
    (0x01, Nop),
    (0x0f, Return),
    (0x1a, Drop),
    (0x1b, Select),
    (0x45, I32Eqz),
    (0x46, I32Eq),
    (0x47, I32Ne),
    (0x48, I32LtS),
    (0x49, I32LtU),
    (0x4a, I32GtS),
    (0x4b, I32GtU),
    (0x4c, I32LeS),
    (0x4d, I32LeU),
    (0x4e, I32GeS),
    (0x4f, I32GeU),
    (0x50, I64Eqz),
    (0x51, I64Eq),
    (0x52, I64Ne),
    (0x53, I64LtS),
    (0x54, I64LtU),
    (0x55, I64GtS),
    (0x56, I64GtU),
    (0x57, I64LeS),
    (0x58, I64LeU),
    (0x59, I64GeS),
    (0x5a, I64GeU),
    (0x5b, F32Eq),
    (0x5c, F32Ne),
    (0x5d, F32Lt),
    (0x5e, F32Gt),
    (0x5f, F32Le),
    (0x60, F32Ge),
    (0x61, F64Eq),
    (0x62, F64Ne),
    (0x63, F64Lt),
    (0x64, F64Gt),
    (0x65, F64Le),
    (0x66, F64Ge),
    (0x67, I32Clz),
    (0x68, I32Ctz),
    (0x69, I32Popcnt),
    (0x6a, I32Add),
    (0x6b, I32Sub),
    (0x6c, I32Mul),
    (0x6d, I32DivS),
    (0x6e, I32DivU),
    (0x6f, I32RemS),
    (0x70, I32RemU),
    (0x71, I32And),
    (0x72, I32Or),
    (0x73, I32Xor),
    (0x74, I32Shl),
    (0x75, I32ShrS),
    (0x76, I32ShrU),
    (0x77, I32Rotl),
    (0x78, I32Rotr),
    (0x79, I64Clz),
    (0x7a, I64Ctz),
    (0x7b, I64Popcnt),
    (0x7c, I64Add),
    (0x7d, I64Sub),
    (0x7e, I64Mul),
    (0x7f, I64DivS),
    (0x80, I64DivU),
    (0x81, I64RemS),
    (0x82, I64RemU),
    (0x83, I64And),
    (0x84, I64Or),
    (0x85, I64Xor),
    (0x86, I64Shl),
    (0x87, I64ShrS),
    (0x88, I64ShrU),
    (0x89, I64Rotl),
    (0x8a, I64Rotr),
    (0x8b, F32Abs),
    (0x8c, F32Neg),
    (0x8d, F32Ceil),
    (0x8e, F32Floor),
    (0x8f, F32Trunc),
    (0x90, F32Nearest),
    (0x91, F32Sqrt),
    (0x92, F32Add),
    (0x93, F32Sub),
    (0x94, F32Mul),
    (0x95, F32Div),
    (0x96, F32Min),
    (0x97, F32Max),
    (0x98, F32Copysign),
    (0x99, F64Abs),
    (0x9a, F64Neg),
    (0x9b, F64Ceil),
    (0x9c, F64Floor),
    (0x9d, F64Trunc),
    (0x9e, F64Nearest),
    (0x9f, F64Sqrt),
    (0xa0, F64Add),
    (0xa1, F64Sub),
    (0xa2, F64Mul),
    (0xa3, F64Div),
    (0xa4, F64Min),
    (0xa5, F64Max),
    (0xa6, F64Copysign),
    (0xa7, I32WrapI64),
    (0xa8, I32TruncF32S),
    (0xa9, I32TruncF32U),
    (0xaa, I32TruncF64S),
    (0xab, I32TruncF64U),
    (0xac, I64ExtendI32S),
    (0xad, I64ExtendI32U),
    (0xae, I64TruncF32S),
    (0xaf, I64TruncF32U),
    (0xb0, I64TruncF64S),
    (0xb1, I64TruncF64U),
    (0xb2, F32ConvertI32S),
    (0xb3, F32ConvertI32U),
    (0xb4, F32ConvertI64S),
    (0xb5, F32ConvertI64U),
    (0xb6, F32DemoteF64),
    (0xb7, F64ConvertI32S),
    (0xb8, F64ConvertI32U),
    (0xb9, F64ConvertI64S),
    (0xba, F64ConvertI64U),
    (0xbb, F64PromoteF32),
    (0xbc, I32ReinterpretF32),
    (0xbd, I64ReinterpretF64),
    (0xbe, F32ReinterpretI32),
    (0xbf, F64ReinterpretI64),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    #[test]
    fn roundtrip_all_simple_opcodes() {
        let mut count = 0;
        for code in 0x00u8..=0xbf {
            if let Some(instr) = simple_instr(code) {
                assert_eq!(simple_opcode(&instr), Some(code));
                count += 1;
            }
        }
        assert!(count > 100, "expected over 100 simple opcodes, got {count}");
    }

    #[test]
    fn immediate_instructions_are_not_simple() {
        assert_eq!(simple_opcode(&Instr::I32Const(1)), None);
        assert_eq!(simple_opcode(&Instr::LocalGet(0)), None);
        assert_eq!(simple_opcode(&Instr::End), None);
    }
}
