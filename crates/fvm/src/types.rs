//! Value and function types.

use std::fmt;

/// The four WebAssembly-style value types supported by the FVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValType {
    /// 32-bit integer (also used for guest pointers: the FVM is a 32-bit
    /// address-space machine, like WebAssembly in the paper §2.2).
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
}

impl ValType {
    /// Binary encoding of the type (matching WebAssembly's encodings).
    pub fn code(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
            ValType::F32 => 0x7d,
            ValType::F64 => 0x7c,
        }
    }

    /// Decode a type from its binary code.
    pub fn from_code(code: u8) -> Option<ValType> {
        match code {
            0x7f => Some(ValType::I32),
            0x7e => Some(ValType::I64),
            0x7d => Some(ValType::F32),
            0x7c => Some(ValType::F64),
            _ => None,
        }
    }
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A typed runtime value, used at the host/guest API boundary.
///
/// Internally the interpreter runs on untyped 64-bit slots (validation makes
/// runtime tags redundant); `Val` is the typed view used for function
/// arguments, results and host-call marshalling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// A 32-bit integer value.
    I32(i32),
    /// A 64-bit integer value.
    I64(i64),
    /// A 32-bit float value.
    F32(f32),
    /// A 64-bit float value.
    F64(f64),
}

impl Val {
    /// The value's type.
    pub fn ty(&self) -> ValType {
        match self {
            Val::I32(_) => ValType::I32,
            Val::I64(_) => ValType::I64,
            Val::F32(_) => ValType::F32,
            Val::F64(_) => ValType::F64,
        }
    }

    /// Encode the value into an untyped 64-bit interpreter slot.
    pub fn to_slot(self) -> u64 {
        match self {
            Val::I32(v) => v as u32 as u64,
            Val::I64(v) => v as u64,
            Val::F32(v) => v.to_bits() as u64,
            Val::F64(v) => v.to_bits(),
        }
    }

    /// Decode an untyped slot into a typed value.
    pub fn from_slot(slot: u64, ty: ValType) -> Val {
        match ty {
            ValType::I32 => Val::I32(slot as u32 as i32),
            ValType::I64 => Val::I64(slot as i64),
            ValType::F32 => Val::F32(f32::from_bits(slot as u32)),
            ValType::F64 => Val::F64(f64::from_bits(slot)),
        }
    }

    /// Extract an `i32`, if that is the value's type.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Val::I32(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract an `i64`, if that is the value's type.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Val::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract an `f32`, if that is the value's type.
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Val::F32(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract an `f64`, if that is the value's type.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Val::F64(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::I32(v) => write!(f, "{v}:i32"),
            Val::I64(v) => write!(f, "{v}:i64"),
            Val::F32(v) => write!(f, "{v}:f32"),
            Val::F64(v) => write!(f, "{v}:f64"),
        }
    }
}

/// A function signature: parameter and result types.
///
/// Multi-value results are supported by the type but the validator restricts
/// functions to at most one result, as in the WebAssembly MVP the paper
/// targets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter types, in order.
    pub params: Vec<ValType>,
    /// Result types (zero or one entry).
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Construct a signature.
    pub fn new(params: Vec<ValType>, results: Vec<ValType>) -> FuncType {
        FuncType { params, results }
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// The type of a block construct: either no result or a single value result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockType {
    /// The block yields no values.
    Empty,
    /// The block yields one value of the given type.
    Value(ValType),
}

impl BlockType {
    /// Number of result values the block yields.
    pub fn arity(self) -> usize {
        match self {
            BlockType::Empty => 0,
            BlockType::Value(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_code_roundtrip() {
        for ty in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_code(ty.code()), Some(ty));
        }
        assert_eq!(ValType::from_code(0x00), None);
    }

    #[test]
    fn val_slot_roundtrip() {
        let cases = [
            Val::I32(-1),
            Val::I32(i32::MAX),
            Val::I64(i64::MIN),
            Val::F32(-0.5),
            Val::F64(1e300),
        ];
        for v in cases {
            assert_eq!(Val::from_slot(v.to_slot(), v.ty()), v);
        }
    }

    #[test]
    fn val_nan_roundtrip_preserves_bits() {
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let v = Val::F64(nan);
        let back = Val::from_slot(v.to_slot(), ValType::F64);
        if let Val::F64(b) = back {
            assert_eq!(b.to_bits(), nan.to_bits());
        } else {
            panic!("wrong type");
        }
    }

    #[test]
    fn val_accessors() {
        assert_eq!(Val::I32(7).as_i32(), Some(7));
        assert_eq!(Val::I32(7).as_i64(), None);
        assert_eq!(Val::I64(7).as_i64(), Some(7));
        assert_eq!(Val::F32(1.0).as_f32(), Some(1.0));
        assert_eq!(Val::F64(1.0).as_f64(), Some(1.0));
    }

    #[test]
    fn display_impls() {
        let ft = FuncType::new(vec![ValType::I32, ValType::F64], vec![ValType::I64]);
        assert_eq!(ft.to_string(), "(i32, f64) -> (i64)");
        assert_eq!(Val::I32(3).to_string(), "3:i32");
        assert_eq!(BlockType::Empty.arity(), 0);
        assert_eq!(BlockType::Value(ValType::I32).arity(), 1);
    }
}
