//! Instances and the execution engine.
//!
//! An [`Instance`] is the "executable" of Fig. 3: a prepared
//! [`ObjectModule`] linked with its host-interface thunks, given a private
//! linear memory, globals and an indirect-call table. Execution is a
//! stack-machine interpreter over untyped 64-bit slots — validation makes
//! runtime type tags redundant. Every linear-memory access is bounds-checked
//! by `faasm-mem` and surfaces as [`Trap::OutOfBoundsMemory`]; every
//! instruction is fuel-metered for cgroup-style CPU accounting.

use std::any::Any;
use std::sync::Arc;

use faasm_mem::{LinearMemory, MemError, MemorySnapshot};

use crate::fuel::FuelMeter;
use crate::host::{HostCtx, HostFunc, LinkError, Linker};
use crate::instr::Instr;
use crate::module::ExportKind;
use crate::object::ObjectModule;
use crate::trap::Trap;
use crate::types::Val;

/// Default limit on guest call depth.
///
/// The interpreter uses the Rust call stack for guest calls, so the bound
/// must fit inside the host thread's stack. Faaslet threads in `faasm-core`
/// are spawned with large stacks and may raise this via
/// [`Instance::set_max_call_depth`].
pub const DEFAULT_MAX_CALL_DEPTH: usize = 200;

/// Errors constructing an instance.
#[derive(Debug)]
pub enum InstantiateError {
    /// An import could not be resolved.
    Link(LinkError),
    /// The start function trapped.
    StartTrap(Trap),
    /// Memory construction failed (initial pages over the limit).
    Memory(MemError),
    /// A snapshot did not match the module shape.
    BadSnapshot,
}

impl std::fmt::Display for InstantiateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstantiateError::Link(e) => write!(f, "link error: {e}"),
            InstantiateError::StartTrap(t) => write!(f, "start function trapped: {t}"),
            InstantiateError::Memory(e) => write!(f, "memory error: {e}"),
            InstantiateError::BadSnapshot => write!(f, "snapshot does not match module"),
        }
    }
}

impl std::error::Error for InstantiateError {}

/// A point-in-time capture of an instance's mutable execution state: memory
/// pages (copy-on-write), globals and the indirect-call table — exactly the
/// state a Proto-Faaslet snapshot needs (§5.2: "a function's stack, heap,
/// function table, stack pointer and data"; the FVM keeps its operand stack
/// empty between calls, so memory + globals + table is the complete set).
#[derive(Debug, Clone)]
pub struct InstanceSnapshot {
    /// Captured linear memory, if the module has one.
    pub mem: Option<MemorySnapshot>,
    /// Captured global values (untyped slots).
    pub globals: Vec<u64>,
    /// Captured indirect-call table.
    pub table: Vec<Option<u32>>,
}

impl InstanceSnapshot {
    /// Approximate serialised size in bytes (used for snapshot accounting).
    pub fn size_bytes(&self) -> usize {
        self.mem.as_ref().map_or(0, |m| m.size_bytes())
            + self.globals.len() * 8
            + self.table.len() * 5
    }
}

struct Label {
    /// Where a branch to this label continues execution.
    cont: usize,
    /// Value-stack height at label entry.
    height: usize,
    /// Values a branch out of this label carries (0 or 1).
    arity: usize,
    /// Loops keep their label on branch; blocks pop it.
    is_loop: bool,
}

/// A linked, executable module instance.
pub struct Instance {
    object: Arc<ObjectModule>,
    mem: Option<LinearMemory>,
    globals: Vec<u64>,
    table: Vec<Option<u32>>,
    host_fns: Vec<Arc<dyn HostFunc>>,
    data: Box<dyn Any + Send>,
    /// Fuel meter; public so the embedder can swap policies between calls.
    pub fuel: FuelMeter,
    max_call_depth: usize,
    /// Ops retired by the execution engine (telemetry; the lowered tier
    /// retires fewer ops than the interpreter for the same work).
    instrs: u64,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("funcs", &self.object.module.func_count())
            .field("mem_pages", &self.mem.as_ref().map(|m| m.size_pages()))
            .field("globals", &self.globals.len())
            .field("table", &self.table.len())
            .field("fuel", &self.fuel)
            .finish()
    }
}

impl Instance {
    /// Instantiate an object module: resolve imports, build memory (applying
    /// data segments), globals and table, then run the start function.
    ///
    /// # Errors
    ///
    /// Returns [`InstantiateError`] on unresolved imports, memory limits, or
    /// a trapping start function.
    pub fn new(
        object: Arc<ObjectModule>,
        linker: &Linker,
        data: Box<dyn Any + Send>,
    ) -> Result<Instance, InstantiateError> {
        Instance::with_fuel(object, linker, data, FuelMeter::unlimited())
    }

    /// Instantiate with an explicit fuel meter.
    ///
    /// # Errors
    ///
    /// See [`Instance::new`].
    pub fn with_fuel(
        object: Arc<ObjectModule>,
        linker: &Linker,
        data: Box<dyn Any + Send>,
        fuel: FuelMeter,
    ) -> Result<Instance, InstantiateError> {
        let mut host_fns = Vec::with_capacity(object.module.imports.len());
        for imp in &object.module.imports {
            host_fns.push(
                linker
                    .resolve(&imp.module, &imp.name)
                    .map_err(InstantiateError::Link)?,
            );
        }

        let mem = match &object.module.memory {
            Some(spec) => {
                let mut m = LinearMemory::new(spec.initial_pages as usize, spec.max_pages as usize)
                    .map_err(InstantiateError::Memory)?;
                for seg in &object.module.data {
                    // Validation bounds-checked segments against the initial
                    // memory size.
                    m.write(seg.offset as usize, &seg.bytes)
                        .map_err(InstantiateError::Memory)?;
                }
                Some(m)
            }
            None => None,
        };

        let globals = object
            .module
            .globals
            .iter()
            .map(|g| g.init.to_slot())
            .collect();

        let mut table = vec![None; object.module.table_size as usize];
        for seg in &object.module.elems {
            for (i, func) in seg.funcs.iter().enumerate() {
                table[seg.offset as usize + i] = Some(*func);
            }
        }

        let mut inst = Instance {
            object,
            mem,
            globals,
            table,
            host_fns,
            data,
            fuel,
            max_call_depth: DEFAULT_MAX_CALL_DEPTH,
            instrs: 0,
        };

        if let Some(start) = inst.object.module.start {
            let mut stack = Vec::new();
            inst.dispatch_call(start, &mut stack, 0)
                .map_err(InstantiateError::StartTrap)?;
        }
        Ok(inst)
    }

    /// Rebuild an instance from a snapshot: memory is restored copy-on-write,
    /// data segments and the start function are *not* re-applied — the
    /// snapshot already contains initialised state. This is the
    /// Proto-Faaslet restore path (§5.2).
    ///
    /// # Errors
    ///
    /// Returns [`InstantiateError`] on unresolved imports or a snapshot whose
    /// shape does not match the module.
    pub fn restore(
        object: Arc<ObjectModule>,
        snap: &InstanceSnapshot,
        linker: &Linker,
        data: Box<dyn Any + Send>,
        fuel: FuelMeter,
    ) -> Result<Instance, InstantiateError> {
        let mut host_fns = Vec::with_capacity(object.module.imports.len());
        for imp in &object.module.imports {
            host_fns.push(
                linker
                    .resolve(&imp.module, &imp.name)
                    .map_err(InstantiateError::Link)?,
            );
        }
        if snap.globals.len() != object.module.globals.len()
            || snap.mem.is_some() != object.module.memory.is_some()
        {
            return Err(InstantiateError::BadSnapshot);
        }
        Ok(Instance {
            object,
            mem: snap.mem.as_ref().map(LinearMemory::restore),
            globals: snap.globals.clone(),
            table: snap.table.clone(),
            host_fns,
            data,
            fuel,
            max_call_depth: DEFAULT_MAX_CALL_DEPTH,
            instrs: 0,
        })
    }

    /// Capture the instance's mutable state.
    pub fn snapshot(&mut self) -> InstanceSnapshot {
        InstanceSnapshot {
            mem: self.mem.as_mut().map(|m| m.snapshot()),
            globals: self.globals.clone(),
            table: self.table.clone(),
        }
    }

    /// The prepared module this instance executes.
    pub fn object(&self) -> &Arc<ObjectModule> {
        &self.object
    }

    /// The instance's linear memory, if any.
    pub fn memory(&self) -> Option<&LinearMemory> {
        self.mem.as_ref()
    }

    /// Mutable access to the linear memory (host-side state mapping).
    pub fn memory_mut(&mut self) -> Option<&mut LinearMemory> {
        self.mem.as_mut()
    }

    /// Downcast the per-instance data.
    pub fn data_as<T: 'static>(&mut self) -> Option<&mut T> {
        self.data.downcast_mut::<T>()
    }

    /// Replace the per-instance data, returning the old box.
    pub fn replace_data(&mut self, data: Box<dyn Any + Send>) -> Box<dyn Any + Send> {
        std::mem::replace(&mut self.data, data)
    }

    /// Read a global by index (test/diagnostic helper).
    pub fn global(&self, idx: usize) -> Option<Val> {
        let g = self.object.module.globals.get(idx)?;
        Some(Val::from_slot(self.globals[idx], g.ty))
    }

    /// Set the call-depth limit.
    pub fn set_max_call_depth(&mut self, depth: usize) {
        self.max_call_depth = depth.max(1);
    }

    /// Ops retired since construction (guest-CPU telemetry). On the lowered
    /// tier one fused op may stand for several source instructions, so this
    /// counts engine dispatches; fuel remains the tier-independent
    /// instruction count.
    pub fn instrs_retired(&self) -> u64 {
        self.instrs
    }

    /// Zero the retired-op counter (per-call accounting, like
    /// [`crate::fuel::FuelMeter::reset_consumed`]).
    pub fn reset_instrs(&mut self) {
        self.instrs = 0;
    }

    /// Invoke an exported function by name with typed arguments.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::NoSuchExport`] / [`Trap::BadSignature`] for lookup and
    /// argument errors, or any trap raised during execution.
    pub fn invoke(&mut self, name: &str, args: &[Val]) -> Result<Option<Val>, Trap> {
        let func_idx = self
            .object
            .module
            .find_export(name, ExportKind::Func)
            .ok_or_else(|| Trap::NoSuchExport {
                name: name.to_string(),
            })?;
        self.call_func(func_idx, args)
    }

    /// Invoke a function by index with typed arguments.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::BadSignature`] on arity/type mismatch, or any runtime
    /// trap.
    pub fn call_func(&mut self, func_idx: u32, args: &[Val]) -> Result<Option<Val>, Trap> {
        let ty = self
            .object
            .module
            .func_type(func_idx)
            .ok_or(Trap::BadSignature {
                expected: format!("function index {func_idx} in range"),
            })?
            .clone();
        if args.len() != ty.params.len() || args.iter().zip(&ty.params).any(|(a, p)| a.ty() != *p) {
            return Err(Trap::BadSignature {
                expected: ty.to_string(),
            });
        }
        let mut stack: Vec<u64> = args.iter().map(|v| v.to_slot()).collect();
        self.dispatch_call(func_idx, &mut stack, 0)?;
        Ok(ty
            .results
            .first()
            .map(|t| Val::from_slot(stack.pop().expect("validated result"), *t)))
    }

    /// Call a function index with arguments already on `stack`; leaves
    /// results on `stack`.
    fn dispatch_call(
        &mut self,
        func_idx: u32,
        stack: &mut Vec<u64>,
        depth: usize,
    ) -> Result<(), Trap> {
        let n_imports = self.object.module.imports.len();
        if (func_idx as usize) < n_imports {
            self.call_host(func_idx as usize, stack)
        } else {
            let object = Arc::clone(&self.object);
            let local_idx = func_idx as usize - n_imports;
            let func = &object.module.funcs[local_idx];
            let ty = &object.module.types[func.type_idx as usize];
            let n_params = ty.params.len();
            debug_assert!(stack.len() >= n_params, "validated call arity");
            let mut locals: Vec<u64> = stack.split_off(stack.len() - n_params);
            locals.resize(n_params + func.locals.len(), 0);
            let result = self.exec_body(&object, local_idx, locals, depth)?;
            if let Some(v) = result {
                stack.push(v);
            }
            Ok(())
        }
    }

    /// Marshal a host call: slots → typed values → host thunk → slots.
    fn call_host(&mut self, import_idx: usize, stack: &mut Vec<u64>) -> Result<(), Trap> {
        let object = Arc::clone(&self.object);
        let imp = &object.module.imports[import_idx];
        let ty = &object.module.types[imp.type_idx as usize];
        let n = ty.params.len();
        debug_assert!(stack.len() >= n, "validated host call arity");
        let arg_slots = stack.split_off(stack.len() - n);
        let args: Vec<Val> = arg_slots
            .iter()
            .zip(&ty.params)
            .map(|(s, t)| Val::from_slot(*s, *t))
            .collect();
        // Host work is charged a flat fuel cost so that guest code cannot
        // spin through free host calls.
        self.fuel.charge(16)?;
        let f = Arc::clone(&self.host_fns[import_idx]);
        let mut ctx = HostCtx {
            mem: self.mem.as_mut(),
            data: &mut *self.data,
        };
        let results = f.call(&mut ctx, &args)?;
        if results.len() != ty.results.len()
            || results.iter().zip(&ty.results).any(|(r, t)| r.ty() != *t)
        {
            return Err(Trap::Host(format!(
                "host function {}::{} returned wrong types",
                imp.module, imp.name
            )));
        }
        stack.extend(results.iter().map(|v| v.to_slot()));
        Ok(())
    }

    /// Execute one function body on whichever tier the object module was
    /// prepared for. The `trace_enabled()` check is hoisted out of the hot
    /// loop here: the interpreter monomorphises into a traced and an
    /// untraced variant and the branch happens once per invoke.
    fn exec_body(
        &mut self,
        object: &Arc<ObjectModule>,
        local_idx: usize,
        locals: Vec<u64>,
        depth: usize,
    ) -> Result<Option<u64>, Trap> {
        if depth >= self.max_call_depth {
            return Err(Trap::CallStackExhausted);
        }
        if object.lowered.is_some() {
            return self.exec_lowered(object, local_idx, locals, depth);
        }
        if trace_enabled() {
            self.exec_body_impl::<true>(object, local_idx, locals, depth)
        } else {
            self.exec_body_impl::<false>(object, local_idx, locals, depth)
        }
    }

    /// The interpreter main loop for one function body.
    #[allow(clippy::too_many_lines)]
    fn exec_body_impl<const TRACED: bool>(
        &mut self,
        object: &Arc<ObjectModule>,
        local_idx: usize,
        mut locals: Vec<u64>,
        depth: usize,
    ) -> Result<Option<u64>, Trap> {
        let func = &object.module.funcs[local_idx];
        let func_arity = object.module.types[func.type_idx as usize].results.len();
        let body: &[Instr] = &func.body;

        let mut stack: Vec<u64> = Vec::with_capacity(32);
        let mut labels: Vec<Label> = Vec::with_capacity(8);
        let mut pc: usize = 0;

        // Performs a branch to relative `depth`; returns the function result
        // if the branch leaves the function body.
        macro_rules! branch {
            ($d:expr) => {{
                let d = $d as usize;
                if d >= labels.len() {
                    // Branch to the function frame: return.
                    return Ok(take_result(&mut stack, func_arity));
                }
                let idx = labels.len() - 1 - d;
                if labels[idx].is_loop {
                    let height = labels[idx].height;
                    let cont = labels[idx].cont;
                    labels.truncate(idx + 1);
                    stack.truncate(height);
                    pc = cont;
                } else {
                    let arity = labels[idx].arity;
                    let height = labels[idx].height;
                    let cont = labels[idx].cont;
                    let carried = if arity == 1 { stack.pop() } else { None };
                    labels.truncate(idx);
                    stack.truncate(height);
                    if let Some(v) = carried {
                        stack.push(v);
                    }
                    pc = cont;
                }
                continue;
            }};
        }

        loop {
            self.fuel.charge(1)?;
            self.instrs += 1;
            debug_assert!(pc < body.len(), "validated bodies end with End");
            let instr = &body[pc];
            if TRACED {
                eprintln!(
                    "pc {pc:3} {instr:?} stack={stack:?} labels={}",
                    labels.len()
                );
            }
            match instr {
                Instr::Unreachable => return Err(Trap::Unreachable),
                Instr::Block(bt) => {
                    let meta = object.meta(local_idx, pc);
                    labels.push(Label {
                        cont: meta.end_pc as usize + 1,
                        height: stack.len(),
                        arity: bt.arity(),
                        is_loop: false,
                    });
                }
                Instr::Loop(_) => {
                    labels.push(Label {
                        cont: pc + 1,
                        height: stack.len(),
                        arity: 0,
                        is_loop: true,
                    });
                }
                Instr::If(bt) => {
                    let meta = object.meta(local_idx, pc);
                    let cond = pop_u32(&mut stack);
                    labels.push(Label {
                        cont: meta.end_pc as usize + 1,
                        height: stack.len(),
                        arity: bt.arity(),
                        is_loop: false,
                    });
                    if cond == 0 {
                        if meta.else_pc != u32::MAX {
                            pc = meta.else_pc as usize + 1;
                        } else {
                            // No else: jump to the End, which pops the label.
                            pc = meta.end_pc as usize;
                        }
                        continue;
                    }
                }
                Instr::Else => {
                    // Fell out of the then-arm: skip to the matching end,
                    // which pops the label.
                    let meta = object.meta(local_idx, pc);
                    pc = meta.end_pc as usize;
                    continue;
                }
                Instr::End => {
                    if labels.pop().is_none() {
                        // Function-level end.
                        return Ok(take_result(&mut stack, func_arity));
                    }
                }
                Instr::Br(d) => branch!(*d),
                Instr::BrIf(d) => {
                    if pop_u32(&mut stack) != 0 {
                        branch!(*d);
                    }
                }
                Instr::BrTable(t) => {
                    let i = pop_u32(&mut stack) as usize;
                    let d = t.targets.get(i).copied().unwrap_or(t.default);
                    branch!(d);
                }
                Instr::Return => return Ok(take_result(&mut stack, func_arity)),
                Instr::Call(idx) => {
                    let idx = *idx;
                    self.dispatch_call(idx, &mut stack, depth + 1)?;
                }
                Instr::CallIndirect(type_idx) => {
                    let type_idx = *type_idx;
                    let i = pop_u32(&mut stack);
                    let slot = self
                        .table
                        .get(i as usize)
                        .ok_or(Trap::OutOfBoundsTable { index: i })?;
                    let func_idx = slot.ok_or(Trap::UninitializedElement { index: i })?;
                    let expected = &object.module.types[type_idx as usize];
                    let actual = object
                        .module
                        .func_type(func_idx)
                        .ok_or(Trap::IndirectCallTypeMismatch)?;
                    if actual != expected {
                        return Err(Trap::IndirectCallTypeMismatch);
                    }
                    self.dispatch_call(func_idx, &mut stack, depth + 1)?;
                }
                other => self.step_plain(other, &mut locals, &mut stack)?,
            }
            pc += 1;
        }
    }

    /// Execute one non-control instruction on the operand stack.
    ///
    /// This is the single evaluator shared by the interpreter and the
    /// lowered tier's `Plain` fallback, which keeps per-instruction
    /// semantics identical across tiers by construction. The per-instruction
    /// base fuel unit is charged by the caller; only the variable charges
    /// (`memory.grow`/`copy`/`fill`) live here, in exactly the interpreter's
    /// pop/charge order.
    #[allow(clippy::too_many_lines)]
    #[inline]
    fn step_plain(
        &mut self,
        instr: &Instr,
        locals: &mut [u64],
        stack: &mut Vec<u64>,
    ) -> Result<(), Trap> {
        macro_rules! bin {
            ($pop:ident, $push:ident, $f:expr) => {{
                let b = $pop(stack);
                let a = $pop(stack);
                $push(stack, $f(a, b));
            }};
        }
        macro_rules! un {
            ($pop:ident, $push:ident, $f:expr) => {{
                let a = $pop(stack);
                $push(stack, $f(a));
            }};
        }
        macro_rules! cmp {
            ($pop:ident, $f:expr) => {{
                let b = $pop(stack);
                let a = $pop(stack);
                push_bool(stack, $f(&a, &b));
            }};
        }
        macro_rules! load {
            ($marg:expr, $read:ident, $size:expr, $map:expr) => {{
                let base = pop_u32(stack);
                let addr = base as u64 + $marg.offset as u64;
                let mem = self.mem.as_ref().expect("validated memory presence");
                match mem.$read(addr as usize) {
                    Ok(v) => stack.push($map(v)),
                    Err(_) => return Err(Trap::OutOfBoundsMemory { addr, len: $size }),
                }
            }};
        }
        macro_rules! store {
            ($marg:expr, $write:ident, $size:expr, $pop:ident, $map:expr) => {{
                let v = $pop(stack);
                let base = pop_u32(stack);
                let addr = base as u64 + $marg.offset as u64;
                let mem = self.mem.as_mut().expect("validated memory presence");
                if mem.$write(addr as usize, $map(v)).is_err() {
                    return Err(Trap::OutOfBoundsMemory { addr, len: $size });
                }
            }};
        }

        match instr {
            Instr::Nop => {}
            Instr::Drop => {
                stack.pop();
            }
            Instr::Select => {
                let c = pop_u32(stack);
                let b = pop_raw(stack);
                let a = pop_raw(stack);
                stack.push(if c != 0 { a } else { b });
            }
            Instr::LocalGet(i) => stack.push(locals[*i as usize]),
            Instr::LocalSet(i) => locals[*i as usize] = pop_raw(stack),
            Instr::LocalTee(i) => {
                locals[*i as usize] = *stack.last().expect("validated stack");
            }
            Instr::GlobalGet(i) => stack.push(self.globals[*i as usize]),
            Instr::GlobalSet(i) => self.globals[*i as usize] = pop_raw(stack),
            Instr::I32Load(m) => load!(m, read_u32, 4, |v: u32| v as u64),
            Instr::I64Load(m) => load!(m, read_u64, 8, |v: u64| v),
            Instr::F32Load(m) => load!(m, read_u32, 4, |v: u32| v as u64),
            Instr::F64Load(m) => load!(m, read_u64, 8, |v: u64| v),
            Instr::I32Load8S(m) => load!(m, read_i8, 1, |v: i8| v as i32 as u32 as u64),
            Instr::I32Load8U(m) => load!(m, read_u8, 1, |v: u8| v as u64),
            Instr::I32Load16S(m) => load!(m, read_i16, 2, |v: i16| v as i32 as u32 as u64),
            Instr::I32Load16U(m) => load!(m, read_u16, 2, |v: u16| v as u64),
            Instr::I64Load8S(m) => load!(m, read_i8, 1, |v: i8| v as i64 as u64),
            Instr::I64Load8U(m) => load!(m, read_u8, 1, |v: u8| v as u64),
            Instr::I64Load16S(m) => load!(m, read_i16, 2, |v: i16| v as i64 as u64),
            Instr::I64Load16U(m) => load!(m, read_u16, 2, |v: u16| v as u64),
            Instr::I64Load32S(m) => load!(m, read_i32, 4, |v: i32| v as i64 as u64),
            Instr::I64Load32U(m) => load!(m, read_u32, 4, |v: u32| v as u64),
            Instr::I32Store(m) => store!(m, write_u32, 4, pop_raw, |v: u64| v as u32),
            Instr::I64Store(m) => store!(m, write_u64, 8, pop_raw, |v: u64| v),
            Instr::F32Store(m) => store!(m, write_u32, 4, pop_raw, |v: u64| v as u32),
            Instr::F64Store(m) => store!(m, write_u64, 8, pop_raw, |v: u64| v),
            Instr::I32Store8(m) => store!(m, write_u8, 1, pop_raw, |v: u64| v as u8),
            Instr::I32Store16(m) => store!(m, write_u16, 2, pop_raw, |v: u64| v as u16),
            Instr::I64Store8(m) => store!(m, write_u8, 1, pop_raw, |v: u64| v as u8),
            Instr::I64Store16(m) => store!(m, write_u16, 2, pop_raw, |v: u64| v as u16),
            Instr::I64Store32(m) => store!(m, write_u32, 4, pop_raw, |v: u64| v as u32),
            Instr::MemorySize => {
                let pages = self.mem.as_ref().expect("validated").size_pages();
                push_u32(stack, pages as u32);
            }
            Instr::MemoryGrow => {
                let delta = pop_u32(stack);
                let mem = self.mem.as_mut().expect("validated");
                // Growing costs fuel proportional to pages zeroed.
                self.fuel.charge(64 * delta as u64)?;
                match mem.grow(delta as usize) {
                    Ok(old) => push_u32(stack, old as u32),
                    Err(_) => push_i32(stack, -1),
                }
            }
            Instr::MemoryCopy => {
                let len = pop_u32(stack);
                let src = pop_u32(stack);
                let dst = pop_u32(stack);
                self.fuel.charge(len as u64 / 8)?;
                let mem = self.mem.as_mut().expect("validated");
                mem.copy_within(src as usize, dst as usize, len as usize)
                    .map_err(|_| Trap::OutOfBoundsMemory {
                        addr: src.max(dst) as u64,
                        len,
                    })?;
            }
            Instr::MemoryFill => {
                let len = pop_u32(stack);
                let val = pop_u32(stack);
                let dst = pop_u32(stack);
                self.fuel.charge(len as u64 / 8)?;
                let mem = self.mem.as_mut().expect("validated");
                mem.fill(dst as usize, len as usize, val as u8)
                    .map_err(|_| Trap::OutOfBoundsMemory {
                        addr: dst as u64,
                        len,
                    })?;
            }
            Instr::I32Const(v) => push_i32(stack, *v),
            Instr::I64Const(v) => push_i64(stack, *v),
            Instr::F32Const(v) => push_f32(stack, *v),
            Instr::F64Const(v) => push_f64(stack, *v),
            Instr::I32Eqz => {
                let v = pop_u32(stack);
                push_bool(stack, v == 0);
            }
            Instr::I64Eqz => {
                let v = pop_raw(stack);
                push_bool(stack, v == 0);
            }
            Instr::I32Eq => cmp!(pop_u32, |a, b| a == b),
            Instr::I32Ne => cmp!(pop_u32, |a, b| a != b),
            Instr::I32LtS => cmp!(pop_i32, |a, b| a < b),
            Instr::I32LtU => cmp!(pop_u32, |a, b| a < b),
            Instr::I32GtS => cmp!(pop_i32, |a, b| a > b),
            Instr::I32GtU => cmp!(pop_u32, |a, b| a > b),
            Instr::I32LeS => cmp!(pop_i32, |a, b| a <= b),
            Instr::I32LeU => cmp!(pop_u32, |a, b| a <= b),
            Instr::I32GeS => cmp!(pop_i32, |a, b| a >= b),
            Instr::I32GeU => cmp!(pop_u32, |a, b| a >= b),
            Instr::I64Eq => cmp!(pop_raw, |a, b| a == b),
            Instr::I64Ne => cmp!(pop_raw, |a, b| a != b),
            Instr::I64LtS => cmp!(pop_i64, |a, b| a < b),
            Instr::I64LtU => cmp!(pop_raw, |a, b| a < b),
            Instr::I64GtS => cmp!(pop_i64, |a, b| a > b),
            Instr::I64GtU => cmp!(pop_raw, |a, b| a > b),
            Instr::I64LeS => cmp!(pop_i64, |a, b| a <= b),
            Instr::I64LeU => cmp!(pop_raw, |a, b| a <= b),
            Instr::I64GeS => cmp!(pop_i64, |a, b| a >= b),
            Instr::I64GeU => cmp!(pop_raw, |a, b| a >= b),
            Instr::F32Eq => cmp!(pop_f32, |a, b| a == b),
            Instr::F32Ne => cmp!(pop_f32, |a, b| a != b),
            Instr::F32Lt => cmp!(pop_f32, |a, b| a < b),
            Instr::F32Gt => cmp!(pop_f32, |a, b| a > b),
            Instr::F32Le => cmp!(pop_f32, |a, b| a <= b),
            Instr::F32Ge => cmp!(pop_f32, |a, b| a >= b),
            Instr::F64Eq => cmp!(pop_f64, |a, b| a == b),
            Instr::F64Ne => cmp!(pop_f64, |a, b| a != b),
            Instr::F64Lt => cmp!(pop_f64, |a, b| a < b),
            Instr::F64Gt => cmp!(pop_f64, |a, b| a > b),
            Instr::F64Le => cmp!(pop_f64, |a, b| a <= b),
            Instr::F64Ge => cmp!(pop_f64, |a, b| a >= b),
            Instr::I32Clz => un!(pop_u32, push_u32, |a: u32| a.leading_zeros()),
            Instr::I32Ctz => un!(pop_u32, push_u32, |a: u32| a.trailing_zeros()),
            Instr::I32Popcnt => un!(pop_u32, push_u32, |a: u32| a.count_ones()),
            Instr::I32Add => bin!(pop_i32, push_i32, |a: i32, b: i32| a.wrapping_add(b)),
            Instr::I32Sub => bin!(pop_i32, push_i32, |a: i32, b: i32| a.wrapping_sub(b)),
            Instr::I32Mul => bin!(pop_i32, push_i32, |a: i32, b: i32| a.wrapping_mul(b)),
            Instr::I32DivS => {
                let b = pop_i32(stack);
                let a = pop_i32(stack);
                if b == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                if a == i32::MIN && b == -1 {
                    return Err(Trap::IntegerOverflow);
                }
                push_i32(stack, a.wrapping_div(b));
            }
            Instr::I32DivU => {
                let b = pop_u32(stack);
                let a = pop_u32(stack);
                if b == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                push_u32(stack, a / b);
            }
            Instr::I32RemS => {
                let b = pop_i32(stack);
                let a = pop_i32(stack);
                if b == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                push_i32(stack, a.wrapping_rem(b));
            }
            Instr::I32RemU => {
                let b = pop_u32(stack);
                let a = pop_u32(stack);
                if b == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                push_u32(stack, a % b);
            }
            Instr::I32And => bin!(pop_u32, push_u32, |a: u32, b: u32| a & b),
            Instr::I32Or => bin!(pop_u32, push_u32, |a: u32, b: u32| a | b),
            Instr::I32Xor => bin!(pop_u32, push_u32, |a: u32, b: u32| a ^ b),
            Instr::I32Shl => bin!(pop_u32, push_u32, |a: u32, b: u32| a << (b & 31)),
            Instr::I32ShrS => {
                bin!(pop_i32, push_i32, |a: i32, b: i32| a >> (b & 31))
            }
            Instr::I32ShrU => bin!(pop_u32, push_u32, |a: u32, b: u32| a >> (b & 31)),
            Instr::I32Rotl => {
                bin!(pop_u32, push_u32, |a: u32, b: u32| a.rotate_left(b & 31))
            }
            Instr::I32Rotr => {
                bin!(pop_u32, push_u32, |a: u32, b: u32| a.rotate_right(b & 31))
            }
            Instr::I64Clz => un!(pop_u64, push_u64, |a: u64| a.leading_zeros() as u64),
            Instr::I64Ctz => un!(pop_u64, push_u64, |a: u64| a.trailing_zeros() as u64),
            Instr::I64Popcnt => un!(pop_u64, push_u64, |a: u64| a.count_ones() as u64),
            Instr::I64Add => bin!(pop_i64, push_i64, |a: i64, b: i64| a.wrapping_add(b)),
            Instr::I64Sub => bin!(pop_i64, push_i64, |a: i64, b: i64| a.wrapping_sub(b)),
            Instr::I64Mul => bin!(pop_i64, push_i64, |a: i64, b: i64| a.wrapping_mul(b)),
            Instr::I64DivS => {
                let b = pop_i64(stack);
                let a = pop_i64(stack);
                if b == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                if a == i64::MIN && b == -1 {
                    return Err(Trap::IntegerOverflow);
                }
                push_i64(stack, a.wrapping_div(b));
            }
            Instr::I64DivU => {
                let b = pop_u64(stack);
                let a = pop_u64(stack);
                if b == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                push_u64(stack, a / b);
            }
            Instr::I64RemS => {
                let b = pop_i64(stack);
                let a = pop_i64(stack);
                if b == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                push_i64(stack, a.wrapping_rem(b));
            }
            Instr::I64RemU => {
                let b = pop_u64(stack);
                let a = pop_u64(stack);
                if b == 0 {
                    return Err(Trap::IntegerDivideByZero);
                }
                push_u64(stack, a % b);
            }
            Instr::I64And => bin!(pop_u64, push_u64, |a: u64, b: u64| a & b),
            Instr::I64Or => bin!(pop_u64, push_u64, |a: u64, b: u64| a | b),
            Instr::I64Xor => bin!(pop_u64, push_u64, |a: u64, b: u64| a ^ b),
            Instr::I64Shl => bin!(pop_u64, push_u64, |a: u64, b: u64| a << (b & 63)),
            Instr::I64ShrS => {
                bin!(pop_i64, push_i64, |a: i64, b: i64| a >> (b & 63))
            }
            Instr::I64ShrU => bin!(pop_u64, push_u64, |a: u64, b: u64| a >> (b & 63)),
            Instr::I64Rotl => bin!(pop_u64, push_u64, |a: u64, b: u64| a
                .rotate_left((b & 63) as u32)),
            Instr::I64Rotr => bin!(pop_u64, push_u64, |a: u64, b: u64| a
                .rotate_right((b & 63) as u32)),
            Instr::F32Abs => un!(pop_f32, push_f32, |a: f32| a.abs()),
            Instr::F32Neg => un!(pop_f32, push_f32, |a: f32| -a),
            Instr::F32Ceil => un!(pop_f32, push_f32, |a: f32| a.ceil()),
            Instr::F32Floor => un!(pop_f32, push_f32, |a: f32| a.floor()),
            Instr::F32Trunc => un!(pop_f32, push_f32, |a: f32| a.trunc()),
            Instr::F32Nearest => un!(pop_f32, push_f32, |a: f32| a.round_ties_even()),
            Instr::F32Sqrt => un!(pop_f32, push_f32, |a: f32| a.sqrt()),
            Instr::F32Add => bin!(pop_f32, push_f32, |a: f32, b: f32| a + b),
            Instr::F32Sub => bin!(pop_f32, push_f32, |a: f32, b: f32| a - b),
            Instr::F32Mul => bin!(pop_f32, push_f32, |a: f32, b: f32| a * b),
            Instr::F32Div => bin!(pop_f32, push_f32, |a: f32, b: f32| a / b),
            Instr::F32Min => bin!(pop_f32, push_f32, wasm_min_f32),
            Instr::F32Max => bin!(pop_f32, push_f32, wasm_max_f32),
            Instr::F32Copysign => bin!(pop_f32, push_f32, |a: f32, b: f32| a.copysign(b)),
            Instr::F64Abs => un!(pop_f64, push_f64, |a: f64| a.abs()),
            Instr::F64Neg => un!(pop_f64, push_f64, |a: f64| -a),
            Instr::F64Ceil => un!(pop_f64, push_f64, |a: f64| a.ceil()),
            Instr::F64Floor => un!(pop_f64, push_f64, |a: f64| a.floor()),
            Instr::F64Trunc => un!(pop_f64, push_f64, |a: f64| a.trunc()),
            Instr::F64Nearest => un!(pop_f64, push_f64, |a: f64| a.round_ties_even()),
            Instr::F64Sqrt => un!(pop_f64, push_f64, |a: f64| a.sqrt()),
            Instr::F64Add => bin!(pop_f64, push_f64, |a: f64, b: f64| a + b),
            Instr::F64Sub => bin!(pop_f64, push_f64, |a: f64, b: f64| a - b),
            Instr::F64Mul => bin!(pop_f64, push_f64, |a: f64, b: f64| a * b),
            Instr::F64Div => bin!(pop_f64, push_f64, |a: f64, b: f64| a / b),
            Instr::F64Min => bin!(pop_f64, push_f64, wasm_min_f64),
            Instr::F64Max => bin!(pop_f64, push_f64, wasm_max_f64),
            Instr::F64Copysign => bin!(pop_f64, push_f64, |a: f64, b: f64| a.copysign(b)),
            Instr::I32WrapI64 => un!(pop_u64, push_u32, |a: u64| a as u32),
            Instr::I32TruncF32S => {
                let v = pop_f32(stack);
                push_i32(stack, trunc_f32_to_i32(v)?);
            }
            Instr::I32TruncF32U => {
                let v = pop_f32(stack);
                push_u32(stack, trunc_f32_to_u32(v)?);
            }
            Instr::I32TruncF64S => {
                let v = pop_f64(stack);
                push_i32(stack, trunc_f64_to_i32(v)?);
            }
            Instr::I32TruncF64U => {
                let v = pop_f64(stack);
                push_u32(stack, trunc_f64_to_u32(v)?);
            }
            Instr::I64ExtendI32S => un!(pop_i32, push_i64, |a: i32| a as i64),
            Instr::I64ExtendI32U => un!(pop_u32, push_u64, |a: u32| a as u64),
            Instr::I64TruncF32S => {
                let v = pop_f32(stack);
                push_i64(stack, trunc_f32_to_i64(v)?);
            }
            Instr::I64TruncF32U => {
                let v = pop_f32(stack);
                push_u64(stack, trunc_f32_to_u64(v)?);
            }
            Instr::I64TruncF64S => {
                let v = pop_f64(stack);
                push_i64(stack, trunc_f64_to_i64(v)?);
            }
            Instr::I64TruncF64U => {
                let v = pop_f64(stack);
                push_u64(stack, trunc_f64_to_u64(v)?);
            }
            Instr::F32ConvertI32S => un!(pop_i32, push_f32, |a: i32| a as f32),
            Instr::F32ConvertI32U => un!(pop_u32, push_f32, |a: u32| a as f32),
            Instr::F32ConvertI64S => un!(pop_i64, push_f32, |a: i64| a as f32),
            Instr::F32ConvertI64U => un!(pop_u64, push_f32, |a: u64| a as f32),
            Instr::F32DemoteF64 => un!(pop_f64, push_f32, |a: f64| a as f32),
            Instr::F64ConvertI32S => un!(pop_i32, push_f64, |a: i32| a as f64),
            Instr::F64ConvertI32U => un!(pop_u32, push_f64, |a: u32| a as f64),
            Instr::F64ConvertI64S => un!(pop_i64, push_f64, |a: i64| a as f64),
            Instr::F64ConvertI64U => un!(pop_u64, push_f64, |a: u64| a as f64),
            Instr::F64PromoteF32 => un!(pop_f32, push_f64, |a: f32| a as f64),
            Instr::I32ReinterpretF32 => { /* bits already in slot */ }
            Instr::I64ReinterpretF64 => { /* bits already in slot */ }
            Instr::F32ReinterpretI32 => { /* bits already in slot */ }
            Instr::F64ReinterpretI64 => { /* bits already in slot */ }
            Instr::Unreachable
            | Instr::Block(_)
            | Instr::Loop(_)
            | Instr::If(_)
            | Instr::Else
            | Instr::End
            | Instr::Br(_)
            | Instr::BrIf(_)
            | Instr::BrTable(_)
            | Instr::Return
            | Instr::Call(_)
            | Instr::CallIndirect(_) => {
                unreachable!("control instruction in step_plain: {instr:?}")
            }
        }
        Ok(())
    }
}

/// Whether `FVM_TRACE` instruction tracing is on (checked once per process).
fn trace_enabled() -> bool {
    static TRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *TRACE.get_or_init(|| std::env::var_os("FVM_TRACE").is_some())
}

#[inline]
fn pop_raw(s: &mut Vec<u64>) -> u64 {
    s.pop().expect("validated stack")
}

#[inline]
fn pop_u32(s: &mut Vec<u64>) -> u32 {
    pop_raw(s) as u32
}

#[inline]
fn pop_i32(s: &mut Vec<u64>) -> i32 {
    pop_raw(s) as u32 as i32
}

#[inline]
fn pop_u64(s: &mut Vec<u64>) -> u64 {
    pop_raw(s)
}

#[inline]
fn pop_i64(s: &mut Vec<u64>) -> i64 {
    pop_raw(s) as i64
}

#[inline]
fn pop_f32(s: &mut Vec<u64>) -> f32 {
    f32::from_bits(pop_raw(s) as u32)
}

#[inline]
fn pop_f64(s: &mut Vec<u64>) -> f64 {
    f64::from_bits(pop_raw(s))
}

#[inline]
fn push_u32(s: &mut Vec<u64>, v: u32) {
    s.push(v as u64);
}

#[inline]
fn push_i32(s: &mut Vec<u64>, v: i32) {
    s.push(v as u32 as u64);
}

#[inline]
fn push_u64(s: &mut Vec<u64>, v: u64) {
    s.push(v);
}

#[inline]
fn push_i64(s: &mut Vec<u64>, v: i64) {
    s.push(v as u64);
}

#[inline]
fn push_f32(s: &mut Vec<u64>, v: f32) {
    s.push(v.to_bits() as u64);
}

#[inline]
fn push_f64(s: &mut Vec<u64>, v: f64) {
    s.push(v.to_bits());
}

#[inline]
fn push_bool(s: &mut Vec<u64>, v: bool) {
    s.push(v as u64);
}

#[inline]
fn take_result(stack: &mut Vec<u64>, arity: usize) -> Option<u64> {
    if arity == 1 {
        stack.pop()
    } else {
        None
    }
}

macro_rules! wasm_minmax {
    ($min:ident, $max:ident, $ty:ty, $nan:expr) => {
        /// WebAssembly `min`: NaN-propagating; `-0` beats `+0`.
        fn $min(a: $ty, b: $ty) -> $ty {
            if a.is_nan() || b.is_nan() {
                $nan
            } else if a == b {
                // Equal compares include `-0 == +0`: only the zero pair
                // needs a sign tie-break; other equal values are identical.
                if a == 0.0 && (a.is_sign_negative() || b.is_sign_negative()) {
                    -0.0
                } else {
                    a
                }
            } else if a < b {
                a
            } else {
                b
            }
        }

        /// WebAssembly `max`: NaN-propagating; `+0` beats `-0`.
        fn $max(a: $ty, b: $ty) -> $ty {
            if a.is_nan() || b.is_nan() {
                $nan
            } else if a == b {
                if a == 0.0 && (a.is_sign_positive() || b.is_sign_positive()) {
                    0.0
                } else {
                    a
                }
            } else if a > b {
                a
            } else {
                b
            }
        }
    };
}

wasm_minmax!(wasm_min_f32, wasm_max_f32, f32, f32::NAN);
wasm_minmax!(wasm_min_f64, wasm_max_f64, f64, f64::NAN);

macro_rules! trunc_fn {
    ($name:ident, $from:ty, $to:ty, $min:expr, $max:expr) => {
        /// Checked float→int truncation with WebAssembly trap semantics.
        // The bounds are type-specific constants; a range literal in the
        // macro would lose the per-instantiation doc value.
        #[allow(clippy::manual_range_contains)]
        fn $name(v: $from) -> Result<$to, Trap> {
            if v.is_nan() {
                return Err(Trap::InvalidConversionToInteger);
            }
            let t = v.trunc();
            if t < $min || t > $max {
                return Err(Trap::IntegerOverflow);
            }
            Ok(t as $to)
        }
    };
}

trunc_fn!(
    trunc_f32_to_i32,
    f32,
    i32,
    -2147483648.0f32,
    2147483520.0f32
);
trunc_fn!(trunc_f32_to_u32, f32, u32, 0.0f32, 4294967040.0f32);
trunc_fn!(
    trunc_f64_to_i32,
    f64,
    i32,
    -2147483648.0f64,
    2147483647.0f64
);
trunc_fn!(trunc_f64_to_u32, f64, u32, 0.0f64, 4294967295.0f64);
trunc_fn!(
    trunc_f32_to_i64,
    f32,
    i64,
    -9223372036854775808.0f32,
    9223371487098961920.0f32
);
trunc_fn!(
    trunc_f32_to_u64,
    f32,
    u64,
    0.0f32,
    18446742974197923840.0f32
);
trunc_fn!(
    trunc_f64_to_i64,
    f64,
    i64,
    -9223372036854775808.0f64,
    9223372036854774784.0f64
);
trunc_fn!(
    trunc_f64_to_u64,
    f64,
    u64,
    0.0f64,
    18446744073709549568.0f64
);

mod lowered;

#[cfg(test)]
mod tests;
