//! LEB128 variable-length integer encoding, as used by the module binary
//! format.

/// Append an unsigned LEB128 encoding of `value` to `out`.
pub fn write_u32(out: &mut Vec<u8>, value: u32) {
    write_u64(out, value as u64);
}

/// Append an unsigned LEB128 encoding of `value` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a signed LEB128 encoding of `value` to `out`.
pub fn write_i32(out: &mut Vec<u8>, value: i32) {
    write_i64(out, value as i64);
}

/// Append a signed LEB128 encoding of `value` to `out`.
pub fn write_i64(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (value == 0 && sign_clear) || (value == -1 && !sign_clear) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A cursor over encoded bytes that tracks its position.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

/// Errors from malformed varint or truncated input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LebError {
    /// Input ended inside a value.
    UnexpectedEof,
    /// A varint exceeded its maximum encodable width.
    Overflow,
}

impl std::fmt::Display for LebError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LebError::UnexpectedEof => write!(f, "unexpected end of input"),
            LebError::Overflow => write!(f, "varint overflows its type"),
        }
    }
}

impl std::error::Error for LebError {}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one raw byte.
    ///
    /// # Errors
    ///
    /// Returns [`LebError::UnexpectedEof`] at end of input.
    pub fn byte(&mut self) -> Result<u8, LebError> {
        let b = *self.data.get(self.pos).ok_or(LebError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`LebError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], LebError> {
        if self.remaining() < n {
            return Err(LebError::UnexpectedEof);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read an unsigned LEB128 u32.
    ///
    /// # Errors
    ///
    /// Returns [`LebError`] on truncation or overflow.
    pub fn u32(&mut self) -> Result<u32, LebError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| LebError::Overflow)
    }

    /// Read an unsigned LEB128 u64.
    ///
    /// # Errors
    ///
    /// Returns [`LebError`] on truncation or overflow.
    pub fn u64(&mut self) -> Result<u64, LebError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 64 || (shift == 63 && byte & 0x7e != 0) {
                return Err(LebError::Overflow);
            }
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Read a signed LEB128 i32.
    ///
    /// # Errors
    ///
    /// Returns [`LebError`] on truncation or overflow.
    pub fn i32(&mut self) -> Result<i32, LebError> {
        let v = self.i64()?;
        i32::try_from(v).map_err(|_| LebError::Overflow)
    }

    /// Read a signed LEB128 i64.
    ///
    /// # Errors
    ///
    /// Returns [`LebError`] on truncation or overflow.
    pub fn i64(&mut self) -> Result<i64, LebError> {
        let mut result: i64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 64 {
                return Err(LebError::Overflow);
            }
            result |= i64::from(byte & 0x7f) << shift;
            shift += 7;
            if byte & 0x80 == 0 {
                if shift < 64 && byte & 0x40 != 0 {
                    result |= -1i64 << shift;
                }
                return Ok(result);
            }
        }
    }

    /// Read a little-endian f32.
    ///
    /// # Errors
    ///
    /// Returns [`LebError::UnexpectedEof`] on truncation.
    pub fn f32(&mut self) -> Result<f32, LebError> {
        let b = self.bytes(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian f64.
    ///
    /// # Errors
    ///
    /// Returns [`LebError::UnexpectedEof`] on truncation.
    pub fn f64(&mut self) -> Result<f64, LebError> {
        let b = self.bytes(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u64(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        Reader::new(&buf).u64().unwrap()
    }

    fn roundtrip_i64(v: i64) -> i64 {
        let mut buf = Vec::new();
        write_i64(&mut buf, v);
        Reader::new(&buf).i64().unwrap()
    }

    #[test]
    fn unsigned_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            assert_eq!(roundtrip_u64(v), v);
        }
    }

    #[test]
    fn signed_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            64,
            -64,
            -65,
            i32::MIN as i64,
            i32::MAX as i64,
            i64::MIN,
            i64::MAX,
        ] {
            assert_eq!(roundtrip_i64(v), v);
        }
    }

    #[test]
    fn u32_rejects_overflow() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u32::MAX as u64 + 1);
        assert_eq!(Reader::new(&buf).u32(), Err(LebError::Overflow));
    }

    #[test]
    fn i32_rejects_overflow() {
        let mut buf = Vec::new();
        write_i64(&mut buf, i32::MAX as i64 + 1);
        assert_eq!(Reader::new(&buf).i32(), Err(LebError::Overflow));
    }

    #[test]
    fn truncated_input_errors() {
        assert_eq!(Reader::new(&[0x80]).u64(), Err(LebError::UnexpectedEof));
        assert_eq!(
            Reader::new(&[0x80, 0x80]).i64(),
            Err(LebError::UnexpectedEof)
        );
        assert_eq!(Reader::new(&[0, 0]).f32(), Err(LebError::UnexpectedEof));
    }

    #[test]
    fn unsigned_overflow_detected() {
        // 11 continuation bytes exceed 64 bits.
        let buf = [0xffu8; 10];
        let mut with_end = buf.to_vec();
        with_end.push(0x01);
        assert_eq!(Reader::new(&with_end).u64(), Err(LebError::Overflow));
    }

    #[test]
    fn float_roundtrip() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        buf.extend_from_slice(&(-2.25f64).to_le_bytes());
        let mut r = Reader::new(&buf);
        assert_eq!(r.f32().unwrap(), 1.5);
        assert_eq!(r.f64().unwrap(), -2.25);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_positioning() {
        let data = [1u8, 2, 3, 4];
        let mut r = Reader::new(&data);
        assert_eq!(r.byte().unwrap(), 1);
        assert_eq!(r.pos(), 1);
        assert_eq!(r.bytes(2).unwrap(), &[2, 3]);
        assert_eq!(r.remaining(), 1);
        assert!(r.bytes(2).is_err());
    }
}
