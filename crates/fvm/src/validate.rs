//! Module validation: the trusted entry gate of the code-generation pipeline.
//!
//! "Since \[compilation\] is untrusted, the code generation phase begins by
//! validating the WebAssembly binary, as defined in the WebAssembly
//! specification" (§3.4). This module implements the specification's
//! type-checking algorithm: a value stack of possibly-unknown types and a
//! control stack of frames, rejecting any body that could underflow the
//! stack, mistype an operand, branch to a missing label, or touch undeclared
//! locals, globals, functions or memory.

use crate::instr::Instr;
use crate::module::{ExportKind, Module};
use crate::types::{BlockType, FuncType, ValType};

/// A validation failure, with the instruction index where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A value of one type was found where another was required.
    TypeMismatch {
        /// Index of the offending instruction within its function body.
        at: usize,
        /// What the instruction required.
        expected: String,
        /// What was on the stack.
        got: String,
    },
    /// An instruction needed more operands than the stack held.
    StackUnderflow {
        /// Offending instruction index.
        at: usize,
    },
    /// Values were left on the stack when a frame ended.
    UnbalancedStack {
        /// Offending instruction index.
        at: usize,
    },
    /// A local index was out of range.
    UnknownLocal {
        /// Offending instruction index.
        at: usize,
        /// The bad index.
        idx: u32,
    },
    /// A global index was out of range.
    UnknownGlobal {
        /// Offending instruction index.
        at: usize,
        /// The bad index.
        idx: u32,
    },
    /// A function index was out of range.
    UnknownFunc {
        /// Offending instruction index.
        at: usize,
        /// The bad index.
        idx: u32,
    },
    /// A type index was out of range.
    UnknownType {
        /// The bad index.
        idx: u32,
    },
    /// A branch target depth exceeded the label stack.
    UnknownLabel {
        /// Offending instruction index.
        at: usize,
        /// The bad depth.
        depth: u32,
    },
    /// A write to an immutable global.
    ImmutableGlobal {
        /// Offending instruction index.
        at: usize,
        /// The global index.
        idx: u32,
    },
    /// A memory instruction in a module with no memory.
    NoMemory {
        /// Offending instruction index.
        at: usize,
    },
    /// An indirect call in a module with no table.
    NoTable {
        /// Offending instruction index.
        at: usize,
    },
    /// `else` appeared outside an `if`.
    ElseOutsideIf {
        /// Offending instruction index.
        at: usize,
    },
    /// More `end`s than open frames.
    UnbalancedEnd {
        /// Offending instruction index.
        at: usize,
    },
    /// The body ran out before closing every frame.
    MissingEnd,
    /// Functions may return at most one value in this VM.
    MultiValueUnsupported {
        /// The offending type index.
        type_idx: u32,
    },
    /// A global's declared type does not match its initialiser.
    GlobalInitMismatch {
        /// The global index.
        idx: u32,
    },
    /// An export references a missing item or duplicates a name.
    BadExport {
        /// The export name.
        name: String,
    },
    /// The start function is missing or has a non-empty signature.
    BadStart,
    /// A data segment falls outside the initial memory.
    BadDataSegment {
        /// Index of the segment.
        idx: usize,
    },
    /// An element segment falls outside the table or names a missing
    /// function.
    BadElemSegment {
        /// Index of the segment.
        idx: usize,
    },
    /// The memory's initial size exceeds its maximum.
    BadMemorySpec,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::TypeMismatch { at, expected, got } => {
                write!(
                    f,
                    "type mismatch at instr {at}: expected {expected}, got {got}"
                )
            }
            ValidateError::StackUnderflow { at } => write!(f, "stack underflow at instr {at}"),
            ValidateError::UnbalancedStack { at } => {
                write!(f, "values left on stack at instr {at}")
            }
            ValidateError::UnknownLocal { at, idx } => {
                write!(f, "unknown local {idx} at instr {at}")
            }
            ValidateError::UnknownGlobal { at, idx } => {
                write!(f, "unknown global {idx} at instr {at}")
            }
            ValidateError::UnknownFunc { at, idx } => {
                write!(f, "unknown function {idx} at instr {at}")
            }
            ValidateError::UnknownType { idx } => write!(f, "unknown type {idx}"),
            ValidateError::UnknownLabel { at, depth } => {
                write!(f, "unknown label depth {depth} at instr {at}")
            }
            ValidateError::ImmutableGlobal { at, idx } => {
                write!(f, "write to immutable global {idx} at instr {at}")
            }
            ValidateError::NoMemory { at } => {
                write!(f, "memory instruction without memory at instr {at}")
            }
            ValidateError::NoTable { at } => {
                write!(f, "indirect call without table at instr {at}")
            }
            ValidateError::ElseOutsideIf { at } => write!(f, "else outside if at instr {at}"),
            ValidateError::UnbalancedEnd { at } => write!(f, "unbalanced end at instr {at}"),
            ValidateError::MissingEnd => write!(f, "function body missing end"),
            ValidateError::MultiValueUnsupported { type_idx } => {
                write!(f, "type {type_idx} has multiple results (unsupported)")
            }
            ValidateError::GlobalInitMismatch { idx } => {
                write!(f, "global {idx} initialiser type mismatch")
            }
            ValidateError::BadExport { name } => write!(f, "bad export {name:?}"),
            ValidateError::BadStart => write!(f, "bad start function"),
            ValidateError::BadDataSegment { idx } => write!(f, "data segment {idx} out of range"),
            ValidateError::BadElemSegment { idx } => {
                write!(f, "element segment {idx} out of range")
            }
            ValidateError::BadMemorySpec => write!(f, "memory initial size exceeds maximum"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validate a whole module.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found.
pub fn validate(m: &Module) -> Result<(), ValidateError> {
    for (i, t) in m.types.iter().enumerate() {
        if t.results.len() > 1 {
            return Err(ValidateError::MultiValueUnsupported { type_idx: i as u32 });
        }
    }
    for imp in &m.imports {
        if imp.type_idx as usize >= m.types.len() {
            return Err(ValidateError::UnknownType { idx: imp.type_idx });
        }
    }
    if let Some(mem) = &m.memory {
        if mem.initial_pages > mem.max_pages {
            return Err(ValidateError::BadMemorySpec);
        }
    }
    for (i, g) in m.globals.iter().enumerate() {
        if g.init.ty() != g.ty {
            return Err(ValidateError::GlobalInitMismatch { idx: i as u32 });
        }
    }

    let mut seen_exports = std::collections::HashSet::new();
    for e in &m.exports {
        if !seen_exports.insert(&e.name) {
            return Err(ValidateError::BadExport {
                name: e.name.clone(),
            });
        }
        let ok = match e.kind {
            ExportKind::Func => (e.index as usize) < m.func_count(),
            ExportKind::Memory => e.index == 0 && m.memory.is_some(),
            ExportKind::Global => (e.index as usize) < m.globals.len(),
        };
        if !ok {
            return Err(ValidateError::BadExport {
                name: e.name.clone(),
            });
        }
    }

    if let Some(start) = m.start {
        let ty = m.func_type(start).ok_or(ValidateError::BadStart)?;
        if !ty.params.is_empty() || !ty.results.is_empty() {
            return Err(ValidateError::BadStart);
        }
    }

    for (i, seg) in m.data.iter().enumerate() {
        let mem = m
            .memory
            .as_ref()
            .ok_or(ValidateError::BadDataSegment { idx: i })?;
        let end = seg.offset as u64 + seg.bytes.len() as u64;
        if end > mem.initial_pages as u64 * faasm_mem::PAGE_SIZE as u64 {
            return Err(ValidateError::BadDataSegment { idx: i });
        }
    }

    for (i, seg) in m.elems.iter().enumerate() {
        let end = seg.offset as u64 + seg.funcs.len() as u64;
        if end > m.table_size as u64 {
            return Err(ValidateError::BadElemSegment { idx: i });
        }
        if seg.funcs.iter().any(|f| *f as usize >= m.func_count()) {
            return Err(ValidateError::BadElemSegment { idx: i });
        }
    }

    for f in &m.funcs {
        if f.type_idx as usize >= m.types.len() {
            return Err(ValidateError::UnknownType { idx: f.type_idx });
        }
        let ty = &m.types[f.type_idx as usize];
        let mut checker = FuncChecker::new(m, ty, &f.locals);
        checker.check_body(&f.body)?;
    }
    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlKind {
    Func,
    Block,
    Loop,
    If,
    Else,
}

#[derive(Debug)]
struct CtrlFrame {
    kind: CtrlKind,
    /// Result types the frame must leave on the stack.
    end_types: Vec<ValType>,
    /// Value-stack height at frame entry.
    height: usize,
    /// Set after an unconditional branch: the rest of the frame is
    /// polymorphic.
    unreachable: bool,
}

impl CtrlFrame {
    /// The types a branch *to* this frame carries: a loop's branch re-enters
    /// the loop head (no values in this parameterless-block VM); any other
    /// frame receives its results.
    fn label_types(&self) -> &[ValType] {
        if self.kind == CtrlKind::Loop {
            &[]
        } else {
            &self.end_types
        }
    }
}

struct FuncChecker<'m> {
    module: &'m Module,
    locals: Vec<ValType>,
    vals: Vec<Option<ValType>>,
    ctrls: Vec<CtrlFrame>,
    at: usize,
}

impl<'m> FuncChecker<'m> {
    fn new(module: &'m Module, ty: &FuncType, extra_locals: &[ValType]) -> FuncChecker<'m> {
        let mut locals = ty.params.clone();
        locals.extend_from_slice(extra_locals);
        FuncChecker {
            module,
            locals,
            vals: Vec::new(),
            ctrls: vec![CtrlFrame {
                kind: CtrlKind::Func,
                end_types: ty.results.clone(),
                height: 0,
                unreachable: false,
            }],
            at: 0,
        }
    }

    fn push(&mut self, t: ValType) {
        self.vals.push(Some(t));
    }

    fn push_unknown(&mut self) {
        self.vals.push(None);
    }

    fn pop_any(&mut self) -> Result<Option<ValType>, ValidateError> {
        let frame = self.ctrls.last().expect("frame invariant");
        if self.vals.len() == frame.height {
            if frame.unreachable {
                return Ok(None);
            }
            return Err(ValidateError::StackUnderflow { at: self.at });
        }
        Ok(self.vals.pop().expect("checked height"))
    }

    fn pop_expect(&mut self, t: ValType) -> Result<(), ValidateError> {
        match self.pop_any()? {
            None => Ok(()),
            Some(got) if got == t => Ok(()),
            Some(got) => Err(ValidateError::TypeMismatch {
                at: self.at,
                expected: t.to_string(),
                got: got.to_string(),
            }),
        }
    }

    fn push_ctrl(&mut self, kind: CtrlKind, end_types: Vec<ValType>) {
        self.ctrls.push(CtrlFrame {
            kind,
            end_types,
            height: self.vals.len(),
            unreachable: false,
        });
    }

    fn pop_ctrl(&mut self) -> Result<CtrlFrame, ValidateError> {
        let end_types = self
            .ctrls
            .last()
            .map(|f| f.end_types.clone())
            .expect("frame invariant");
        for t in end_types.iter().rev() {
            self.pop_expect(*t)?;
        }
        let frame = self.ctrls.last().expect("frame invariant");
        if self.vals.len() != frame.height {
            return Err(ValidateError::UnbalancedStack { at: self.at });
        }
        Ok(self.ctrls.pop().expect("frame invariant"))
    }

    fn mark_unreachable(&mut self) {
        let frame = self.ctrls.last_mut().expect("frame invariant");
        self.vals.truncate(frame.height);
        frame.unreachable = true;
    }

    fn label(&self, depth: u32) -> Result<&CtrlFrame, ValidateError> {
        let n = self.ctrls.len();
        if (depth as usize) >= n {
            return Err(ValidateError::UnknownLabel { at: self.at, depth });
        }
        Ok(&self.ctrls[n - 1 - depth as usize])
    }

    fn local(&self, idx: u32) -> Result<ValType, ValidateError> {
        self.locals
            .get(idx as usize)
            .copied()
            .ok_or(ValidateError::UnknownLocal { at: self.at, idx })
    }

    fn need_memory(&self) -> Result<(), ValidateError> {
        if self.module.memory.is_none() {
            return Err(ValidateError::NoMemory { at: self.at });
        }
        Ok(())
    }

    fn binop(&mut self, t: ValType) -> Result<(), ValidateError> {
        self.pop_expect(t)?;
        self.pop_expect(t)?;
        self.push(t);
        Ok(())
    }

    fn relop(&mut self, t: ValType) -> Result<(), ValidateError> {
        self.pop_expect(t)?;
        self.pop_expect(t)?;
        self.push(ValType::I32);
        Ok(())
    }

    fn unop(&mut self, t: ValType) -> Result<(), ValidateError> {
        self.pop_expect(t)?;
        self.push(t);
        Ok(())
    }

    fn cvt(&mut self, from: ValType, to: ValType) -> Result<(), ValidateError> {
        self.pop_expect(from)?;
        self.push(to);
        Ok(())
    }

    fn load(&mut self, t: ValType) -> Result<(), ValidateError> {
        self.need_memory()?;
        self.pop_expect(ValType::I32)?;
        self.push(t);
        Ok(())
    }

    fn store(&mut self, t: ValType) -> Result<(), ValidateError> {
        self.need_memory()?;
        self.pop_expect(t)?;
        self.pop_expect(ValType::I32)?;
        Ok(())
    }

    fn check_body(&mut self, body: &[Instr]) -> Result<(), ValidateError> {
        use Instr::*;
        use ValType::*;
        for (at, instr) in body.iter().enumerate() {
            self.at = at;
            match instr {
                Unreachable => self.mark_unreachable(),
                Nop => {}
                Block(bt) => {
                    let ends = match bt {
                        BlockType::Empty => vec![],
                        BlockType::Value(t) => vec![*t],
                    };
                    self.push_ctrl(CtrlKind::Block, ends);
                }
                Loop(bt) => {
                    let ends = match bt {
                        BlockType::Empty => vec![],
                        BlockType::Value(t) => vec![*t],
                    };
                    self.push_ctrl(CtrlKind::Loop, ends);
                }
                If(bt) => {
                    self.pop_expect(I32)?;
                    let ends = match bt {
                        BlockType::Empty => vec![],
                        BlockType::Value(t) => vec![*t],
                    };
                    self.push_ctrl(CtrlKind::If, ends);
                }
                Else => {
                    let frame = self.pop_ctrl()?;
                    if frame.kind != CtrlKind::If {
                        return Err(ValidateError::ElseOutsideIf { at });
                    }
                    self.push_ctrl(CtrlKind::Else, frame.end_types);
                }
                End => {
                    let frame = self.pop_ctrl()?;
                    // An `if` with a result but no `else` cannot produce the
                    // result on the false path.
                    if frame.kind == CtrlKind::If && !frame.end_types.is_empty() {
                        return Err(ValidateError::TypeMismatch {
                            at,
                            expected: "else arm producing block result".into(),
                            got: "missing else".into(),
                        });
                    }
                    if self.ctrls.is_empty() {
                        if at != body.len() - 1 {
                            return Err(ValidateError::UnbalancedEnd { at });
                        }
                        return Ok(());
                    }
                    for t in frame.end_types {
                        self.push(t);
                    }
                }
                Br(depth) => {
                    let tys = self.label(*depth)?.label_types().to_vec();
                    for t in tys.iter().rev() {
                        self.pop_expect(*t)?;
                    }
                    self.mark_unreachable();
                }
                BrIf(depth) => {
                    self.pop_expect(I32)?;
                    let tys = self.label(*depth)?.label_types().to_vec();
                    for t in tys.iter().rev() {
                        self.pop_expect(*t)?;
                    }
                    for t in tys {
                        self.push(t);
                    }
                }
                BrTable(data) => {
                    self.pop_expect(I32)?;
                    let default_tys = self.label(data.default)?.label_types().to_vec();
                    for target in &data.targets {
                        let tys = self.label(*target)?.label_types();
                        if tys != default_tys.as_slice() {
                            return Err(ValidateError::TypeMismatch {
                                at,
                                expected: format!("{default_tys:?}"),
                                got: format!("{tys:?}"),
                            });
                        }
                    }
                    for t in default_tys.iter().rev() {
                        self.pop_expect(*t)?;
                    }
                    self.mark_unreachable();
                }
                Return => {
                    let tys = self.ctrls[0].end_types.clone();
                    for t in tys.iter().rev() {
                        self.pop_expect(*t)?;
                    }
                    self.mark_unreachable();
                }
                Call(idx) => {
                    let ty = self
                        .module
                        .func_type(*idx)
                        .ok_or(ValidateError::UnknownFunc { at, idx: *idx })?
                        .clone();
                    for t in ty.params.iter().rev() {
                        self.pop_expect(*t)?;
                    }
                    for t in ty.results {
                        self.push(t);
                    }
                }
                CallIndirect(type_idx) => {
                    if self.module.table_size == 0 {
                        return Err(ValidateError::NoTable { at });
                    }
                    let ty = self
                        .module
                        .types
                        .get(*type_idx as usize)
                        .ok_or(ValidateError::UnknownType { idx: *type_idx })?
                        .clone();
                    self.pop_expect(I32)?;
                    for t in ty.params.iter().rev() {
                        self.pop_expect(*t)?;
                    }
                    for t in ty.results {
                        self.push(t);
                    }
                }
                Drop => {
                    self.pop_any()?;
                }
                Select => {
                    self.pop_expect(I32)?;
                    let a = self.pop_any()?;
                    let b = self.pop_any()?;
                    match (a, b) {
                        (Some(x), Some(y)) if x != y => {
                            return Err(ValidateError::TypeMismatch {
                                at,
                                expected: x.to_string(),
                                got: y.to_string(),
                            });
                        }
                        (Some(x), _) => self.push(x),
                        (None, Some(y)) => self.push(y),
                        (None, None) => self.push_unknown(),
                    }
                }
                LocalGet(idx) => {
                    let t = self.local(*idx)?;
                    self.push(t);
                }
                LocalSet(idx) => {
                    let t = self.local(*idx)?;
                    self.pop_expect(t)?;
                }
                LocalTee(idx) => {
                    let t = self.local(*idx)?;
                    self.pop_expect(t)?;
                    self.push(t);
                }
                GlobalGet(idx) => {
                    let g = self
                        .module
                        .globals
                        .get(*idx as usize)
                        .ok_or(ValidateError::UnknownGlobal { at, idx: *idx })?;
                    self.push(g.ty);
                }
                GlobalSet(idx) => {
                    let g = *self
                        .module
                        .globals
                        .get(*idx as usize)
                        .ok_or(ValidateError::UnknownGlobal { at, idx: *idx })?;
                    if !g.mutable {
                        return Err(ValidateError::ImmutableGlobal { at, idx: *idx });
                    }
                    self.pop_expect(g.ty)?;
                }
                I32Load(_) | I32Load8S(_) | I32Load8U(_) | I32Load16S(_) | I32Load16U(_) => {
                    self.load(I32)?
                }
                I64Load(_) | I64Load8S(_) | I64Load8U(_) | I64Load16S(_) | I64Load16U(_)
                | I64Load32S(_) | I64Load32U(_) => self.load(I64)?,
                F32Load(_) => self.load(F32)?,
                F64Load(_) => self.load(F64)?,
                I32Store(_) | I32Store8(_) | I32Store16(_) => self.store(I32)?,
                I64Store(_) | I64Store8(_) | I64Store16(_) | I64Store32(_) => self.store(I64)?,
                F32Store(_) => self.store(F32)?,
                F64Store(_) => self.store(F64)?,
                MemorySize => {
                    self.need_memory()?;
                    self.push(I32);
                }
                MemoryGrow => {
                    self.need_memory()?;
                    self.pop_expect(I32)?;
                    self.push(I32);
                }
                MemoryCopy => {
                    self.need_memory()?;
                    self.pop_expect(I32)?;
                    self.pop_expect(I32)?;
                    self.pop_expect(I32)?;
                }
                MemoryFill => {
                    self.need_memory()?;
                    self.pop_expect(I32)?;
                    self.pop_expect(I32)?;
                    self.pop_expect(I32)?;
                }
                I32Const(_) => self.push(I32),
                I64Const(_) => self.push(I64),
                F32Const(_) => self.push(F32),
                F64Const(_) => self.push(F64),
                I32Eqz => self.cvt(I32, I32)?,
                I64Eqz => self.cvt(I64, I32)?,
                I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
                | I32GeU => self.relop(I32)?,
                I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
                | I64GeU => self.relop(I64)?,
                F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => self.relop(F32)?,
                F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => self.relop(F64)?,
                I32Clz | I32Ctz | I32Popcnt => self.unop(I32)?,
                I64Clz | I64Ctz | I64Popcnt => self.unop(I64)?,
                I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And
                | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => {
                    self.binop(I32)?
                }
                I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And
                | I64Or | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => {
                    self.binop(I64)?
                }
                F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt => {
                    self.unop(F32)?
                }
                F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt => {
                    self.unop(F64)?
                }
                F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => {
                    self.binop(F32)?
                }
                F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => {
                    self.binop(F64)?
                }
                I32WrapI64 => self.cvt(I64, I32)?,
                I32TruncF32S | I32TruncF32U => self.cvt(F32, I32)?,
                I32TruncF64S | I32TruncF64U => self.cvt(F64, I32)?,
                I64ExtendI32S | I64ExtendI32U => self.cvt(I32, I64)?,
                I64TruncF32S | I64TruncF32U => self.cvt(F32, I64)?,
                I64TruncF64S | I64TruncF64U => self.cvt(F64, I64)?,
                F32ConvertI32S | F32ConvertI32U => self.cvt(I32, F32)?,
                F32ConvertI64S | F32ConvertI64U => self.cvt(I64, F32)?,
                F32DemoteF64 => self.cvt(F64, F32)?,
                F64ConvertI32S | F64ConvertI32U => self.cvt(I32, F64)?,
                F64ConvertI64S | F64ConvertI64U => self.cvt(I64, F64)?,
                F64PromoteF32 => self.cvt(F32, F64)?,
                I32ReinterpretF32 => self.cvt(F32, I32)?,
                I64ReinterpretF64 => self.cvt(F64, I64)?,
                F32ReinterpretI32 => self.cvt(I32, F32)?,
                F64ReinterpretI64 => self.cvt(I64, F64)?,
            }
        }
        Err(ValidateError::MissingEnd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleBuilder;
    use crate::types::{FuncType, Val};
    use Instr::*;
    use ValType::*;

    fn module_with_body(
        params: Vec<ValType>,
        results: Vec<ValType>,
        locals: Vec<ValType>,
        body: Vec<Instr>,
    ) -> Module {
        let mut b = ModuleBuilder::new();
        b.memory(1, 2);
        let sig = b.sig(FuncType::new(params, results));
        b.func(sig, locals, body);
        b.build()
    }

    #[test]
    fn valid_add_function() {
        let m = module_with_body(
            vec![I32, I32],
            vec![I32],
            vec![],
            vec![LocalGet(0), LocalGet(1), I32Add, End],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn type_mismatch_rejected() {
        let m = module_with_body(
            vec![I32, I64],
            vec![I32],
            vec![],
            vec![LocalGet(0), LocalGet(1), I32Add, End],
        );
        assert!(matches!(
            validate(&m),
            Err(ValidateError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn stack_underflow_rejected() {
        let m = module_with_body(vec![], vec![I32], vec![], vec![I32Add, End]);
        assert!(matches!(
            validate(&m),
            Err(ValidateError::StackUnderflow { .. })
        ));
    }

    #[test]
    fn missing_end_rejected() {
        let m = module_with_body(vec![], vec![], vec![], vec![Nop]);
        assert_eq!(validate(&m), Err(ValidateError::MissingEnd));
    }

    #[test]
    fn leftover_values_rejected() {
        let m = module_with_body(vec![], vec![], vec![], vec![I32Const(1), End]);
        assert!(matches!(
            validate(&m),
            Err(ValidateError::UnbalancedStack { .. })
        ));
    }

    #[test]
    fn unknown_local_rejected() {
        let m = module_with_body(vec![I32], vec![], vec![], vec![LocalGet(5), Drop, End]);
        assert!(matches!(
            validate(&m),
            Err(ValidateError::UnknownLocal { idx: 5, .. })
        ));
    }

    #[test]
    fn block_with_result() {
        let m = module_with_body(
            vec![],
            vec![I32],
            vec![],
            vec![Block(BlockType::Value(I32)), I32Const(42), End, End],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn branch_carries_block_result() {
        let m = module_with_body(
            vec![],
            vec![I32],
            vec![],
            vec![Block(BlockType::Value(I32)), I32Const(1), Br(0), End, End],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn branch_to_unknown_label_rejected() {
        let m = module_with_body(vec![], vec![], vec![], vec![Br(3), End]);
        assert!(matches!(
            validate(&m),
            Err(ValidateError::UnknownLabel { depth: 3, .. })
        ));
    }

    #[test]
    fn loop_branch_carries_no_values() {
        // br 0 inside a loop jumps to the head, so the stack must be empty at
        // the branch even though the loop yields a value.
        let m = module_with_body(
            vec![I32],
            vec![I32],
            vec![],
            vec![
                Loop(BlockType::Value(I32)),
                LocalGet(0),
                BrIf(0),
                I32Const(7),
                End,
                End,
            ],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn if_without_else_needing_result_rejected() {
        let m = module_with_body(
            vec![I32],
            vec![I32],
            vec![],
            vec![
                LocalGet(0),
                If(BlockType::Value(I32)),
                I32Const(1),
                End,
                End,
            ],
        );
        assert!(matches!(
            validate(&m),
            Err(ValidateError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn if_else_with_result_accepted() {
        let m = module_with_body(
            vec![I32],
            vec![I32],
            vec![],
            vec![
                LocalGet(0),
                If(BlockType::Value(I32)),
                I32Const(1),
                Else,
                I32Const(2),
                End,
                End,
            ],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn else_outside_if_rejected() {
        let m = module_with_body(
            vec![],
            vec![],
            vec![],
            vec![Block(BlockType::Empty), Else, End, End],
        );
        assert!(matches!(
            validate(&m),
            Err(ValidateError::ElseOutsideIf { .. })
        ));
    }

    #[test]
    fn code_after_unreachable_is_polymorphic() {
        let m = module_with_body(vec![], vec![I32], vec![], vec![Unreachable, I32Add, End]);
        validate(&m).unwrap();
    }

    #[test]
    fn memory_ops_without_memory_rejected() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::default());
        b.func(
            sig,
            vec![],
            vec![
                I32Const(0),
                I32Load(crate::instr::MemArg::zero()),
                Drop,
                End,
            ],
        );
        assert!(matches!(
            validate(&b.build()),
            Err(ValidateError::NoMemory { .. })
        ));
    }

    #[test]
    fn immutable_global_write_rejected() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::default());
        b.global(I32, false, Val::I32(1));
        b.func(sig, vec![], vec![I32Const(2), GlobalSet(0), End]);
        assert!(matches!(
            validate(&b.build()),
            Err(ValidateError::ImmutableGlobal { idx: 0, .. })
        ));
    }

    #[test]
    fn global_init_type_mismatch_rejected() {
        let mut b = ModuleBuilder::new();
        b.global(I32, true, Val::I64(1));
        assert!(matches!(
            validate(&b.build()),
            Err(ValidateError::GlobalInitMismatch { idx: 0 })
        ));
    }

    #[test]
    fn call_type_checked() {
        let mut b = ModuleBuilder::new();
        let sig_i = b.sig(FuncType::new(vec![I32], vec![I64]));
        let sig_v = b.sig(FuncType::new(vec![], vec![I64]));
        let callee = b.func(sig_i, vec![], vec![I64Const(1), End]);
        b.func(sig_v, vec![], vec![I32Const(5), Call(callee), End]);
        validate(&b.build()).unwrap();
        // Calling with missing argument fails.
        let mut b2 = ModuleBuilder::new();
        let sig_i = b2.sig(FuncType::new(vec![I32], vec![I64]));
        let sig_v = b2.sig(FuncType::new(vec![], vec![I64]));
        let callee = b2.func(sig_i, vec![], vec![I64Const(1), End]);
        b2.func(sig_v, vec![], vec![Call(callee), End]);
        assert!(matches!(
            validate(&b2.build()),
            Err(ValidateError::StackUnderflow { .. })
        ));
    }

    #[test]
    fn call_indirect_requires_table() {
        let m = module_with_body(
            vec![],
            vec![],
            vec![],
            vec![I32Const(0), CallIndirect(0), End],
        );
        assert!(matches!(validate(&m), Err(ValidateError::NoTable { .. })));
    }

    #[test]
    fn multi_result_types_rejected() {
        let mut b = ModuleBuilder::new();
        b.sig(FuncType::new(vec![], vec![I32, I32]));
        assert!(matches!(
            validate(&b.build()),
            Err(ValidateError::MultiValueUnsupported { type_idx: 0 })
        ));
    }

    #[test]
    fn data_segment_bounds_checked() {
        let mut b = ModuleBuilder::new();
        b.memory(1, 1);
        b.data(faasm_mem::PAGE_SIZE as u32 - 2, vec![1, 2, 3]);
        assert!(matches!(
            validate(&b.build()),
            Err(ValidateError::BadDataSegment { idx: 0 })
        ));
    }

    #[test]
    fn elem_segment_bounds_checked() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::default());
        let f = b.func(sig, vec![], vec![End]);
        b.table(1);
        b.elem(1, vec![f]);
        assert!(matches!(
            validate(&b.build()),
            Err(ValidateError::BadElemSegment { idx: 0 })
        ));
    }

    #[test]
    fn duplicate_export_names_rejected() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::default());
        let f = b.func(sig, vec![], vec![End]);
        b.export_func("dup", f);
        b.export_func("dup", f);
        assert!(matches!(
            validate(&b.build()),
            Err(ValidateError::BadExport { .. })
        ));
    }

    #[test]
    fn bad_start_rejected() {
        let mut b = ModuleBuilder::new();
        let sig = b.sig(FuncType::new(vec![I32], vec![]));
        let f = b.func(sig, vec![], vec![End]);
        b.start(f);
        assert_eq!(validate(&b.build()), Err(ValidateError::BadStart));
    }

    #[test]
    fn br_table_targets_must_agree() {
        let m = module_with_body(
            vec![I32],
            vec![],
            vec![],
            vec![
                Block(BlockType::Value(I32)),
                Block(BlockType::Empty),
                I32Const(0),
                LocalGet(0),
                BrTable(Box::new(crate::instr::BrTableData {
                    targets: vec![0],
                    default: 1,
                })),
                End,
                Drop,
                I32Const(0),
                End,
                Drop,
                End,
            ],
        );
        assert!(matches!(
            validate(&m),
            Err(ValidateError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn select_requires_matching_types() {
        let m = module_with_body(
            vec![],
            vec![],
            vec![],
            vec![I32Const(1), I64Const(2), I32Const(0), Select, Drop, End],
        );
        assert!(matches!(
            validate(&m),
            Err(ValidateError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn memory_spec_checked() {
        let mut b = ModuleBuilder::new();
        b.memory(4, 2);
        assert_eq!(validate(&b.build()), Err(ValidateError::BadMemorySpec));
    }
}
