//! Traps: the runtime half of software-fault isolation.
//!
//! WebAssembly's security model backs its compile-time checks with runtime
//! traps (§2.2 of the paper). In the FVM every trap is a value returned
//! through `Result`; a trapped Faaslet is torn down and reset from its
//! Proto-Faaslet without affecting any other Faaslet in the process.

use std::fmt;

/// A runtime fault raised by guest execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// The `unreachable` instruction was executed.
    Unreachable,
    /// A linear-memory access fell outside the memory (the SFI bounds check).
    OutOfBoundsMemory {
        /// Faulting address.
        addr: u64,
        /// Access size in bytes.
        len: u32,
    },
    /// An indirect call used a table slot that is out of range.
    OutOfBoundsTable {
        /// The faulting table index.
        index: u32,
    },
    /// An indirect call hit an uninitialised table slot.
    UninitializedElement {
        /// The faulting table index.
        index: u32,
    },
    /// An indirect call's target had a different signature than expected.
    IndirectCallTypeMismatch,
    /// Integer division or remainder by zero.
    IntegerDivideByZero,
    /// Integer overflow (`i32::MIN / -1` and friends).
    IntegerOverflow,
    /// A float-to-int conversion of NaN or an out-of-range value.
    InvalidConversionToInteger,
    /// Guest recursion exceeded the configured call-depth limit.
    CallStackExhausted,
    /// The Faaslet's fuel allowance was exhausted (CPU limit; the cgroup
    /// analogue described in DESIGN.md §S7).
    OutOfFuel,
    /// `memory.grow` or a host `mmap`/`brk` exceeded the function's memory
    /// limit (§3.2).
    MemoryLimitExceeded,
    /// A host-interface call failed; carries the host's message.
    Host(String),
    /// An exported function was invoked with the wrong argument types.
    BadSignature {
        /// Human-readable description of the mismatch.
        expected: String,
    },
    /// The named export does not exist.
    NoSuchExport {
        /// The requested export name.
        name: String,
    },
}

impl Trap {
    /// Construct a host-error trap from any displayable error.
    pub fn host(err: impl fmt::Display) -> Trap {
        Trap::Host(err.to_string())
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::OutOfBoundsMemory { addr, len } => {
                write!(f, "out-of-bounds memory access at {addr:#x} len {len}")
            }
            Trap::OutOfBoundsTable { index } => write!(f, "table index {index} out of range"),
            Trap::UninitializedElement { index } => {
                write!(f, "uninitialised table element {index}")
            }
            Trap::IndirectCallTypeMismatch => write!(f, "indirect call type mismatch"),
            Trap::IntegerDivideByZero => write!(f, "integer divide by zero"),
            Trap::IntegerOverflow => write!(f, "integer overflow"),
            Trap::InvalidConversionToInteger => write!(f, "invalid conversion to integer"),
            Trap::CallStackExhausted => write!(f, "call stack exhausted"),
            Trap::OutOfFuel => write!(f, "out of fuel"),
            Trap::MemoryLimitExceeded => write!(f, "memory limit exceeded"),
            Trap::Host(msg) => write!(f, "host error: {msg}"),
            Trap::BadSignature { expected } => write!(f, "bad signature: expected {expected}"),
            Trap::NoSuchExport { name } => write!(f, "no such export: {name}"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let t = Trap::OutOfBoundsMemory {
            addr: 0x100,
            len: 8,
        };
        assert!(t.to_string().contains("0x100"));
        assert!(Trap::host("kv miss").to_string().contains("kv miss"));
        assert!(Trap::NoSuchExport {
            name: "main".into()
        }
        .to_string()
        .contains("main"));
    }
}
