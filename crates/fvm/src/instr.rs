//! The FVM instruction set: a pragmatic WebAssembly MVP subset.

use crate::types::BlockType;

/// Static operand of a load/store instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemArg {
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
    /// Alignment hint (log2); kept for format fidelity, ignored at runtime.
    pub align: u32,
}

impl MemArg {
    /// A zero-offset, byte-aligned access.
    pub fn zero() -> MemArg {
        MemArg::default()
    }

    /// An access with the given constant offset.
    pub fn at(offset: u32) -> MemArg {
        MemArg { offset, align: 0 }
    }
}

/// Targets of a `br_table` instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrTableData {
    /// Branch depths selected by index.
    pub targets: Vec<u32>,
    /// Branch depth used when the index is out of range.
    pub default: u32,
}

/// One FVM instruction.
///
/// Semantics follow the WebAssembly MVP: a structured stack machine with
/// `block`/`loop`/`if` control, typed numeric operations that trap on
/// division by zero and invalid float-to-int conversion, and bounds-checked
/// linear memory access that traps with [`crate::Trap::OutOfBoundsMemory`] —
/// the SFI property the paper relies on (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ── Control ────────────────────────────────────────────────────────
    /// Trap unconditionally.
    Unreachable,
    /// Do nothing.
    Nop,
    /// Begin a block; branches to it jump past its `end`.
    Block(BlockType),
    /// Begin a loop; branches to it jump back to the loop head.
    Loop(BlockType),
    /// Pop a condition; run the then-arm when non-zero.
    If(BlockType),
    /// Separator between the arms of an `if`.
    Else,
    /// Close the innermost `block`/`loop`/`if` (or function body).
    End,
    /// Unconditional branch to the label `depth` levels out.
    Br(u32),
    /// Conditional branch (pops an i32 condition).
    BrIf(u32),
    /// Indexed branch (pops an i32 selector).
    BrTable(Box<BrTableData>),
    /// Return from the current function.
    Return,
    /// Call the function with the given index (imports come first).
    Call(u32),
    /// Pop a table index and call the function it refers to; the immediate is
    /// the expected type index. This is what makes `dlsym`-style dynamic
    /// linking callable from guest code (§3.2).
    CallIndirect(u32),

    // ── Parametric ─────────────────────────────────────────────────────
    /// Pop and discard a value.
    Drop,
    /// Pop a condition and two values; push the first if non-zero.
    Select,

    // ── Variables ──────────────────────────────────────────────────────
    /// Push a local.
    LocalGet(u32),
    /// Pop into a local.
    LocalSet(u32),
    /// Copy the top of stack into a local.
    LocalTee(u32),
    /// Push a global.
    GlobalGet(u32),
    /// Pop into a (mutable) global.
    GlobalSet(u32),

    // ── Memory loads ───────────────────────────────────────────────────
    /// Load an i32.
    I32Load(MemArg),
    /// Load an i64.
    I64Load(MemArg),
    /// Load an f32.
    F32Load(MemArg),
    /// Load an f64.
    F64Load(MemArg),
    /// Load a sign-extended 8-bit value as i32.
    I32Load8S(MemArg),
    /// Load a zero-extended 8-bit value as i32.
    I32Load8U(MemArg),
    /// Load a sign-extended 16-bit value as i32.
    I32Load16S(MemArg),
    /// Load a zero-extended 16-bit value as i32.
    I32Load16U(MemArg),
    /// Load a sign-extended 8-bit value as i64.
    I64Load8S(MemArg),
    /// Load a zero-extended 8-bit value as i64.
    I64Load8U(MemArg),
    /// Load a sign-extended 16-bit value as i64.
    I64Load16S(MemArg),
    /// Load a zero-extended 16-bit value as i64.
    I64Load16U(MemArg),
    /// Load a sign-extended 32-bit value as i64.
    I64Load32S(MemArg),
    /// Load a zero-extended 32-bit value as i64.
    I64Load32U(MemArg),

    // ── Memory stores ──────────────────────────────────────────────────
    /// Store an i32.
    I32Store(MemArg),
    /// Store an i64.
    I64Store(MemArg),
    /// Store an f32.
    F32Store(MemArg),
    /// Store an f64.
    F64Store(MemArg),
    /// Store the low 8 bits of an i32.
    I32Store8(MemArg),
    /// Store the low 16 bits of an i32.
    I32Store16(MemArg),
    /// Store the low 8 bits of an i64.
    I64Store8(MemArg),
    /// Store the low 16 bits of an i64.
    I64Store16(MemArg),
    /// Store the low 32 bits of an i64.
    I64Store32(MemArg),
    /// Push the memory size in pages.
    MemorySize,
    /// Grow the memory; pushes the old size or -1 on failure.
    MemoryGrow,
    /// Bulk copy within linear memory (dst, src, len on the stack).
    MemoryCopy,
    /// Bulk fill of linear memory (dst, value, len on the stack).
    MemoryFill,

    // ── Constants ──────────────────────────────────────────────────────
    /// Push an i32 constant.
    I32Const(i32),
    /// Push an i64 constant.
    I64Const(i64),
    /// Push an f32 constant.
    F32Const(f32),
    /// Push an f64 constant.
    F64Const(f64),

    // ── i32 comparisons and arithmetic ─────────────────────────────────
    /// i32 equals zero.
    I32Eqz,
    /// i32 equality.
    I32Eq,
    /// i32 inequality.
    I32Ne,
    /// i32 signed less-than.
    I32LtS,
    /// i32 unsigned less-than.
    I32LtU,
    /// i32 signed greater-than.
    I32GtS,
    /// i32 unsigned greater-than.
    I32GtU,
    /// i32 signed less-or-equal.
    I32LeS,
    /// i32 unsigned less-or-equal.
    I32LeU,
    /// i32 signed greater-or-equal.
    I32GeS,
    /// i32 unsigned greater-or-equal.
    I32GeU,
    /// i32 count leading zeros.
    I32Clz,
    /// i32 count trailing zeros.
    I32Ctz,
    /// i32 population count.
    I32Popcnt,
    /// i32 wrapping addition.
    I32Add,
    /// i32 wrapping subtraction.
    I32Sub,
    /// i32 wrapping multiplication.
    I32Mul,
    /// i32 signed division (traps on zero and overflow).
    I32DivS,
    /// i32 unsigned division (traps on zero).
    I32DivU,
    /// i32 signed remainder (traps on zero).
    I32RemS,
    /// i32 unsigned remainder (traps on zero).
    I32RemU,
    /// i32 bitwise and.
    I32And,
    /// i32 bitwise or.
    I32Or,
    /// i32 bitwise xor.
    I32Xor,
    /// i32 shift left.
    I32Shl,
    /// i32 arithmetic shift right.
    I32ShrS,
    /// i32 logical shift right.
    I32ShrU,
    /// i32 rotate left.
    I32Rotl,
    /// i32 rotate right.
    I32Rotr,

    // ── i64 comparisons and arithmetic ─────────────────────────────────
    /// i64 equals zero.
    I64Eqz,
    /// i64 equality.
    I64Eq,
    /// i64 inequality.
    I64Ne,
    /// i64 signed less-than.
    I64LtS,
    /// i64 unsigned less-than.
    I64LtU,
    /// i64 signed greater-than.
    I64GtS,
    /// i64 unsigned greater-than.
    I64GtU,
    /// i64 signed less-or-equal.
    I64LeS,
    /// i64 unsigned less-or-equal.
    I64LeU,
    /// i64 signed greater-or-equal.
    I64GeS,
    /// i64 unsigned greater-or-equal.
    I64GeU,
    /// i64 count leading zeros.
    I64Clz,
    /// i64 count trailing zeros.
    I64Ctz,
    /// i64 population count.
    I64Popcnt,
    /// i64 wrapping addition.
    I64Add,
    /// i64 wrapping subtraction.
    I64Sub,
    /// i64 wrapping multiplication.
    I64Mul,
    /// i64 signed division (traps on zero and overflow).
    I64DivS,
    /// i64 unsigned division (traps on zero).
    I64DivU,
    /// i64 signed remainder (traps on zero).
    I64RemS,
    /// i64 unsigned remainder (traps on zero).
    I64RemU,
    /// i64 bitwise and.
    I64And,
    /// i64 bitwise or.
    I64Or,
    /// i64 bitwise xor.
    I64Xor,
    /// i64 shift left.
    I64Shl,
    /// i64 arithmetic shift right.
    I64ShrS,
    /// i64 logical shift right.
    I64ShrU,
    /// i64 rotate left.
    I64Rotl,
    /// i64 rotate right.
    I64Rotr,

    // ── f32 ────────────────────────────────────────────────────────────
    /// f32 equality.
    F32Eq,
    /// f32 inequality.
    F32Ne,
    /// f32 less-than.
    F32Lt,
    /// f32 greater-than.
    F32Gt,
    /// f32 less-or-equal.
    F32Le,
    /// f32 greater-or-equal.
    F32Ge,
    /// f32 absolute value.
    F32Abs,
    /// f32 negation.
    F32Neg,
    /// f32 round up.
    F32Ceil,
    /// f32 round down.
    F32Floor,
    /// f32 round toward zero.
    F32Trunc,
    /// f32 round to nearest even.
    F32Nearest,
    /// f32 square root.
    F32Sqrt,
    /// f32 addition.
    F32Add,
    /// f32 subtraction.
    F32Sub,
    /// f32 multiplication.
    F32Mul,
    /// f32 division.
    F32Div,
    /// f32 minimum.
    F32Min,
    /// f32 maximum.
    F32Max,
    /// f32 copysign.
    F32Copysign,

    // ── f64 ────────────────────────────────────────────────────────────
    /// f64 equality.
    F64Eq,
    /// f64 inequality.
    F64Ne,
    /// f64 less-than.
    F64Lt,
    /// f64 greater-than.
    F64Gt,
    /// f64 less-or-equal.
    F64Le,
    /// f64 greater-or-equal.
    F64Ge,
    /// f64 absolute value.
    F64Abs,
    /// f64 negation.
    F64Neg,
    /// f64 round up.
    F64Ceil,
    /// f64 round down.
    F64Floor,
    /// f64 round toward zero.
    F64Trunc,
    /// f64 round to nearest even.
    F64Nearest,
    /// f64 square root.
    F64Sqrt,
    /// f64 addition.
    F64Add,
    /// f64 subtraction.
    F64Sub,
    /// f64 multiplication.
    F64Mul,
    /// f64 division.
    F64Div,
    /// f64 minimum.
    F64Min,
    /// f64 maximum.
    F64Max,
    /// f64 copysign.
    F64Copysign,

    // ── Conversions ────────────────────────────────────────────────────
    /// Truncate i64 to i32.
    I32WrapI64,
    /// f32 → i32, signed (traps on NaN/overflow).
    I32TruncF32S,
    /// f32 → i32, unsigned (traps on NaN/overflow).
    I32TruncF32U,
    /// f64 → i32, signed (traps on NaN/overflow).
    I32TruncF64S,
    /// f64 → i32, unsigned (traps on NaN/overflow).
    I32TruncF64U,
    /// Sign-extend i32 to i64.
    I64ExtendI32S,
    /// Zero-extend i32 to i64.
    I64ExtendI32U,
    /// f32 → i64, signed (traps on NaN/overflow).
    I64TruncF32S,
    /// f32 → i64, unsigned (traps on NaN/overflow).
    I64TruncF32U,
    /// f64 → i64, signed (traps on NaN/overflow).
    I64TruncF64S,
    /// f64 → i64, unsigned (traps on NaN/overflow).
    I64TruncF64U,
    /// i32 → f32, signed.
    F32ConvertI32S,
    /// i32 → f32, unsigned.
    F32ConvertI32U,
    /// i64 → f32, signed.
    F32ConvertI64S,
    /// i64 → f32, unsigned.
    F32ConvertI64U,
    /// f64 → f32.
    F32DemoteF64,
    /// i32 → f64, signed.
    F64ConvertI32S,
    /// i32 → f64, unsigned.
    F64ConvertI32U,
    /// i64 → f64, signed.
    F64ConvertI64S,
    /// i64 → f64, unsigned.
    F64ConvertI64U,
    /// f32 → f64.
    F64PromoteF32,
    /// Bit-cast f32 to i32.
    I32ReinterpretF32,
    /// Bit-cast f64 to i64.
    I64ReinterpretF64,
    /// Bit-cast i32 to f32.
    F32ReinterpretI32,
    /// Bit-cast i64 to f64.
    F64ReinterpretI64,
}

impl Instr {
    /// True for instructions that open a structured control frame.
    pub fn opens_block(&self) -> bool {
        matches!(self, Instr::Block(_) | Instr::Loop(_) | Instr::If(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValType;

    #[test]
    fn memarg_helpers() {
        assert_eq!(
            MemArg::zero(),
            MemArg {
                offset: 0,
                align: 0
            }
        );
        assert_eq!(MemArg::at(16).offset, 16);
    }

    #[test]
    fn opens_block_classification() {
        assert!(Instr::Block(BlockType::Empty).opens_block());
        assert!(Instr::Loop(BlockType::Value(ValType::I32)).opens_block());
        assert!(Instr::If(BlockType::Empty).opens_block());
        assert!(!Instr::End.opens_block());
        assert!(!Instr::I32Add.opens_block());
    }
}
