//! Differential properties: the lowered tier must be observationally
//! identical to the reference interpreter.
//!
//! Generated modules (realistic codegen shapes: local arithmetic, fused-able
//! patterns, while loops, if/else, br_table, calls, memory traffic, float
//! conversions, dead code, elided structural instructions) run on both tiers
//! and must agree bitwise on:
//!
//! * the result value / trap kind (including trap payloads, which pin the
//!   trap *location* observably — e.g. the faulting address),
//! * fuel consumed at return or trap,
//! * all globals and the full linear memory.
//!
//! A second property bisects the fuel budget so exhaustion lands mid-block,
//! pinning the lowered tier's bulk-charge/refund bookkeeping against the
//! interpreter's per-instruction metering.

use std::sync::Arc;

use faasm_fvm::fuel::FuelMeter;
use faasm_fvm::instr::BrTableData;
use faasm_fvm::prelude::*;
use proptest::prelude::*;

// ── Module skeleton ────────────────────────────────────────────────────
//
// main (i32, i32, i64) -> i32 with locals:
//   0,1   i32 params    2 i64 param
//   3     i32 scratch   4 i64 scratch   5 f32   6 f64
//   7,8,9 i32 loop counters (one per nesting level; bodies never touch them)
// imports: func 0 = env::bump (i32)->i32, returns x+7
// funcs:   1 = main, 2 = helper (i32)->i32 (x+3), 3 = noop ()->()
// table:   size 4, elems [helper, noop] at 0 (slots 2,3 uninitialised)
// globals: g0 i32 mut = 5, g1 i64 mut = -7
// memory:  1 page initial, max 4

const IMPORT_BUMP: u32 = 0;
const FUNC_HELPER: u32 = 2;

/// i32 scratch locals statements may read/write.
fn i32_local(sel: u8) -> u32 {
    [0, 1, 3][sel as usize % 3]
}

fn build_module(stmts: &[Stmt]) -> Module {
    let mut b = ModuleBuilder::new();
    b.memory(1, 4);
    let t_main = b.sig(FuncType::new(
        vec![ValType::I32, ValType::I32, ValType::I64],
        vec![ValType::I32],
    ));
    let t1 = b.sig(FuncType::new(vec![ValType::I32], vec![ValType::I32]));
    let t2 = b.sig(FuncType::new(vec![], vec![]));
    b.import_func("env", "bump", t1);

    let mut body = Vec::new();
    for s in stmts {
        s.emit(&mut body, 0, t1);
    }
    // Result: mix the locals the statements mutated.
    body.extend([
        Instr::LocalGet(0),
        Instr::LocalGet(1),
        Instr::I32Add,
        Instr::LocalGet(3),
        Instr::I32Add,
        Instr::End,
    ]);
    let main = b.func(
        t_main,
        vec![
            ValType::I32,
            ValType::I64,
            ValType::F32,
            ValType::F64,
            ValType::I32,
            ValType::I32,
            ValType::I32,
        ],
        body,
    );
    let helper = b.func(
        t1,
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::I32Const(3),
            Instr::I32Add,
            Instr::End,
        ],
    );
    let noop = b.func(t2, vec![], vec![Instr::End]);
    assert_eq!((main, helper, noop), (1, FUNC_HELPER, 3));
    b.table(4);
    b.elem(0, vec![helper, noop]);
    b.export_func("main", main);
    b.global(ValType::I32, true, Val::I32(5));
    b.global(ValType::I64, true, Val::I64(-7));
    b.data(16, vec![0xAB, 0x10, 0x00, 0x7F, 0xFE, 0x01, 0x02, 0x03]);
    b.build()
}

// ── Statement generator ────────────────────────────────────────────────

#[derive(Debug, Clone)]
enum Stmt {
    /// local\[dst] = local\[a] op local\[b] — i32, incl. trapping div/rem.
    BinLL { a: u8, b: u8, dst: u8, op: u8 },
    /// local\[dst] = local\[src] op k — the `FImmLS` fusion shape.
    ImmOp { src: u8, k: i32, dst: u8, op: u8 },
    /// local4 = local2 op64 local4.
    Bin64 { op: u8 },
    /// f32 / f64 arithmetic on locals 5 / 6.
    FOp { wide: bool, op: u8 },
    /// Conversions, i64 compares, trapping float→int truncations.
    Convert { which: u8 },
    /// Load into the matching-typed local; `masked` keeps the address safe.
    Load {
        al: u8,
        masked: bool,
        offset: u32,
        which: u8,
    },
    /// Store a local; the `FStoreL` fusion shape.
    Store {
        al: u8,
        masked: bool,
        offset: u32,
        which: u8,
    },
    /// Bounded counting loop in the toolchain's while shape.
    While { bound: u8, body: Vec<Stmt> },
    /// if/else (or if-without-else) on an i32 local.
    IfElse {
        cond: u8,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
        has_else: bool,
    },
    /// Arity-1 if: local\[dst] = cond ? k1 : k2.
    IfVal { cond: u8, k1: i32, k2: i32, dst: u8 },
    /// Three-armed br_table over nested blocks.
    Table3 { sel: u8, a: Vec<Stmt>, b: Vec<Stmt> },
    /// local\[dst] = call(local\[arg]) — host import or wasm helper.
    Call { arg: u8, dst: u8, host: bool },
    /// call_indirect through table slot (success / mismatch / trap cases).
    CallInd { arg: u8, slot: u8, dst: u8 },
    /// Global get/set round-trips.
    GlobalOps { which: u8 },
    /// memory.size / grow / copy / fill.
    MemBulk { which: u8, a: u32, b: u32, c: u32 },
    /// Elided instructions: nop, reinterpret round-trips, empty blocks.
    Elided { which: u8 },
    /// br past statements: the dead tail must not perturb anything.
    DeadAfterBr { dead: Vec<Stmt> },
    /// Early return from mid-function when the condition local is nonzero.
    EarlyRet { cond: u8, k: i32 },
    /// Guarded trap: unreachable when the condition local is nonzero.
    Unreach { cond: u8 },
}

const I32_BIN: &[Instr] = &[
    Instr::I32Add,
    Instr::I32Sub,
    Instr::I32Mul,
    Instr::I32And,
    Instr::I32Or,
    Instr::I32Xor,
    Instr::I32Shl,
    Instr::I32ShrS,
    Instr::I32ShrU,
    Instr::I32Rotl,
    Instr::I32Rotr,
    Instr::I32DivS,
    Instr::I32DivU,
    Instr::I32RemS,
    Instr::I32RemU,
    Instr::I32Eq,
    Instr::I32Ne,
    Instr::I32LtS,
    Instr::I32LtU,
    Instr::I32GtS,
    Instr::I32GeU,
    Instr::I32LeS,
];

const I32_IMM: &[Instr] = &[
    Instr::I32Add,
    Instr::I32Sub,
    Instr::I32Mul,
    Instr::I32And,
    Instr::I32Or,
    Instr::I32Xor,
    Instr::I32Shl,
    Instr::I32ShrS,
    Instr::I32ShrU,
];

const I64_BIN: &[Instr] = &[
    Instr::I64Add,
    Instr::I64Sub,
    Instr::I64Mul,
    Instr::I64DivS,
    Instr::I64DivU,
    Instr::I64RemS,
    Instr::I64RemU,
    Instr::I64And,
    Instr::I64Or,
    Instr::I64Xor,
    Instr::I64Shl,
    Instr::I64ShrS,
    Instr::I64ShrU,
    Instr::I64Rotl,
    Instr::I64Rotr,
];

const F32_BIN: &[Instr] = &[
    Instr::F32Add,
    Instr::F32Sub,
    Instr::F32Mul,
    Instr::F32Div,
    Instr::F32Min,
    Instr::F32Max,
    Instr::F32Copysign,
];
const F32_UN: &[Instr] = &[
    Instr::F32Abs,
    Instr::F32Neg,
    Instr::F32Sqrt,
    Instr::F32Ceil,
    Instr::F32Floor,
    Instr::F32Nearest,
    Instr::F32Trunc,
];
const F64_BIN: &[Instr] = &[
    Instr::F64Add,
    Instr::F64Sub,
    Instr::F64Mul,
    Instr::F64Div,
    Instr::F64Min,
    Instr::F64Max,
    Instr::F64Copysign,
];
const F64_UN: &[Instr] = &[
    Instr::F64Abs,
    Instr::F64Neg,
    Instr::F64Sqrt,
    Instr::F64Ceil,
    Instr::F64Floor,
    Instr::F64Nearest,
    Instr::F64Trunc,
];

impl Stmt {
    /// Append this statement's (net-zero stack effect) instructions.
    ///
    /// `loops` counts enclosing while-loops so each level gets its own
    /// counter local (7 + level); nesting deeper than the reserved counters
    /// degrades to emitting the body inline, keeping termination guaranteed.
    fn emit(&self, out: &mut Vec<Instr>, loops: u32, t1: u32) {
        match self {
            Stmt::BinLL { a, b, dst, op } => {
                out.push(Instr::LocalGet(i32_local(*a)));
                out.push(Instr::LocalGet(i32_local(*b)));
                out.push(I32_BIN[*op as usize % I32_BIN.len()].clone());
                out.push(Instr::LocalSet(i32_local(*dst)));
            }
            Stmt::ImmOp { src, k, dst, op } => {
                out.push(Instr::LocalGet(i32_local(*src)));
                out.push(Instr::I32Const(*k));
                out.push(I32_IMM[*op as usize % I32_IMM.len()].clone());
                out.push(Instr::LocalSet(i32_local(*dst)));
            }
            Stmt::Bin64 { op } => {
                out.push(Instr::LocalGet(2));
                out.push(Instr::LocalGet(4));
                out.push(I64_BIN[*op as usize % I64_BIN.len()].clone());
                out.push(Instr::LocalSet(4));
            }
            Stmt::FOp { wide, op } => {
                let (l, bin, un) = if *wide {
                    (6, F64_BIN, F64_UN)
                } else {
                    (5, F32_BIN, F32_UN)
                };
                let i = *op as usize;
                out.push(Instr::LocalGet(l));
                if i.is_multiple_of(2) {
                    out.push(Instr::LocalGet(l));
                    out.push(bin[i / 2 % bin.len()].clone());
                } else {
                    out.push(un[i / 2 % un.len()].clone());
                }
                out.push(Instr::LocalSet(l));
            }
            Stmt::Convert { which } => {
                let seq: &[Instr] = match which % 11 {
                    0 => &[Instr::LocalGet(2), Instr::I32WrapI64, Instr::LocalSet(3)],
                    1 => &[Instr::LocalGet(0), Instr::I64ExtendI32S, Instr::LocalSet(4)],
                    2 => &[Instr::LocalGet(1), Instr::I64ExtendI32U, Instr::LocalSet(4)],
                    3 => &[
                        Instr::LocalGet(3),
                        Instr::F32ConvertI32S,
                        Instr::LocalSet(5),
                    ],
                    4 => &[
                        Instr::LocalGet(4),
                        Instr::F64ConvertI64S,
                        Instr::LocalSet(6),
                    ],
                    // Trapping truncations: NaN / out-of-range must trap
                    // identically on both tiers.
                    5 => &[Instr::LocalGet(5), Instr::I32TruncF32S, Instr::LocalSet(3)],
                    6 => &[Instr::LocalGet(6), Instr::I64TruncF64U, Instr::LocalSet(4)],
                    7 => &[Instr::LocalGet(5), Instr::F64PromoteF32, Instr::LocalSet(6)],
                    8 => &[Instr::LocalGet(6), Instr::F32DemoteF64, Instr::LocalSet(5)],
                    9 => &[
                        Instr::LocalGet(2),
                        Instr::LocalGet(4),
                        Instr::I64LtS,
                        Instr::LocalSet(3),
                    ],
                    _ => &[Instr::LocalGet(4), Instr::I64Eqz, Instr::LocalSet(3)],
                };
                out.extend_from_slice(seq);
            }
            Stmt::Load {
                al,
                masked,
                offset,
                which,
            } => {
                out.push(Instr::LocalGet(i32_local(*al)));
                if *masked {
                    out.push(Instr::I32Const(0x7FF8));
                    out.push(Instr::I32And);
                }
                let m = MemArg::at(*offset);
                let (ld, dst) = match which % 12 {
                    0 => (Instr::I32Load(m), 3),
                    1 => (Instr::I32Load8U(m), 3),
                    2 => (Instr::I32Load8S(m), 3),
                    3 => (Instr::I32Load16U(m), 3),
                    4 => (Instr::I32Load16S(m), 3),
                    5 => (Instr::I64Load(m), 4),
                    6 => (Instr::I64Load8U(m), 4),
                    7 => (Instr::I64Load16S(m), 4),
                    8 => (Instr::I64Load32U(m), 4),
                    9 => (Instr::I64Load32S(m), 4),
                    10 => (Instr::F32Load(m), 5),
                    _ => (Instr::F64Load(m), 6),
                };
                out.push(ld);
                out.push(Instr::LocalSet(dst));
            }
            Stmt::Store {
                al,
                masked,
                offset,
                which,
            } => {
                out.push(Instr::LocalGet(i32_local(*al)));
                if *masked {
                    out.push(Instr::I32Const(0x7FF8));
                    out.push(Instr::I32And);
                }
                let m = MemArg::at(*offset);
                let (st, src) = match which % 9 {
                    0 => (Instr::I32Store(m), 3),
                    1 => (Instr::I32Store8(m), 3),
                    2 => (Instr::I32Store16(m), 3),
                    3 => (Instr::I64Store(m), 4),
                    4 => (Instr::I64Store8(m), 4),
                    5 => (Instr::I64Store16(m), 4),
                    6 => (Instr::I64Store32(m), 4),
                    7 => (Instr::F32Store(m), 5),
                    _ => (Instr::F64Store(m), 6),
                };
                out.push(Instr::LocalGet(src));
                out.push(st);
            }
            Stmt::While { bound, body } => {
                if loops >= 3 {
                    for s in body {
                        s.emit(out, loops, t1);
                    }
                    return;
                }
                let ctr = 7 + loops;
                out.push(Instr::I32Const(0));
                out.push(Instr::LocalSet(ctr));
                out.push(Instr::Block(BlockType::Empty));
                out.push(Instr::Loop(BlockType::Empty));
                out.push(Instr::LocalGet(ctr));
                out.push(Instr::I32Const(i32::from(*bound % 12)));
                out.push(Instr::I32LtS);
                out.push(Instr::I32Eqz);
                out.push(Instr::BrIf(1));
                for s in body {
                    s.emit(out, loops + 1, t1);
                }
                out.push(Instr::LocalGet(ctr));
                out.push(Instr::I32Const(1));
                out.push(Instr::I32Add);
                out.push(Instr::LocalSet(ctr));
                out.push(Instr::Br(0));
                out.push(Instr::End);
                out.push(Instr::End);
            }
            Stmt::IfElse {
                cond,
                then,
                els,
                has_else,
            } => {
                out.push(Instr::LocalGet(i32_local(*cond)));
                out.push(Instr::If(BlockType::Empty));
                for s in then {
                    s.emit(out, loops, t1);
                }
                if *has_else {
                    out.push(Instr::Else);
                    for s in els {
                        s.emit(out, loops, t1);
                    }
                }
                out.push(Instr::End);
            }
            Stmt::IfVal { cond, k1, k2, dst } => {
                out.push(Instr::LocalGet(i32_local(*cond)));
                out.push(Instr::If(BlockType::Value(ValType::I32)));
                out.push(Instr::I32Const(*k1));
                out.push(Instr::Else);
                out.push(Instr::I32Const(*k2));
                out.push(Instr::End);
                out.push(Instr::LocalSet(i32_local(*dst)));
            }
            Stmt::Table3 { sel, a, b } => {
                out.push(Instr::Block(BlockType::Empty));
                out.push(Instr::Block(BlockType::Empty));
                out.push(Instr::Block(BlockType::Empty));
                out.push(Instr::LocalGet(i32_local(*sel)));
                out.push(Instr::BrTable(Box::new(BrTableData {
                    targets: vec![0, 1],
                    default: 2,
                })));
                out.push(Instr::End);
                for s in a {
                    s.emit(out, loops, t1);
                }
                out.push(Instr::Br(1));
                out.push(Instr::End);
                for s in b {
                    s.emit(out, loops, t1);
                }
                out.push(Instr::End);
            }
            Stmt::Call { arg, dst, host } => {
                out.push(Instr::LocalGet(i32_local(*arg)));
                out.push(Instr::Call(if *host { IMPORT_BUMP } else { FUNC_HELPER }));
                out.push(Instr::LocalSet(i32_local(*dst)));
            }
            Stmt::CallInd { arg, slot, dst } => {
                out.push(Instr::LocalGet(i32_local(*arg)));
                out.push(Instr::I32Const(i32::from(*slot % 6)));
                out.push(Instr::CallIndirect(t1));
                out.push(Instr::LocalSet(i32_local(*dst)));
            }
            Stmt::GlobalOps { which } => {
                let seq: &[Instr] = match which % 4 {
                    0 => &[Instr::GlobalGet(0), Instr::LocalSet(3)],
                    1 => &[Instr::LocalGet(0), Instr::GlobalSet(0)],
                    2 => &[Instr::GlobalGet(1), Instr::LocalSet(4)],
                    _ => &[Instr::LocalGet(2), Instr::GlobalSet(1)],
                };
                out.extend_from_slice(seq);
            }
            Stmt::MemBulk { which, a, b, c } => match which % 4 {
                0 => out.extend([Instr::MemorySize, Instr::LocalSet(3)]),
                1 => out.extend([
                    Instr::I32Const((a % 2) as i32),
                    Instr::MemoryGrow,
                    Instr::LocalSet(3),
                ]),
                2 => out.extend([
                    Instr::I32Const((a & 0x3FFF) as i32),
                    Instr::I32Const((b & 0x3FFF) as i32),
                    Instr::I32Const((c & 0xFF) as i32),
                    Instr::MemoryCopy,
                ]),
                _ => out.extend([
                    Instr::I32Const((a & 0x3FFF) as i32),
                    Instr::I32Const((b & 0xFF) as i32),
                    Instr::I32Const((c & 0xFF) as i32),
                    Instr::MemoryFill,
                ]),
            },
            Stmt::Elided { which } => match which % 4 {
                0 => out.push(Instr::Nop),
                1 => out.extend([
                    Instr::LocalGet(3),
                    Instr::F32ReinterpretI32,
                    Instr::I32ReinterpretF32,
                    Instr::LocalSet(3),
                ]),
                2 => out.extend([
                    Instr::LocalGet(4),
                    Instr::F64ReinterpretI64,
                    Instr::I64ReinterpretF64,
                    Instr::LocalSet(4),
                ]),
                _ => out.extend([Instr::Block(BlockType::Empty), Instr::End]),
            },
            Stmt::DeadAfterBr { dead } => {
                out.push(Instr::Block(BlockType::Empty));
                out.push(Instr::Br(0));
                for s in dead {
                    s.emit(out, loops, t1);
                }
                out.push(Instr::End);
            }
            Stmt::EarlyRet { cond, k } => {
                out.push(Instr::LocalGet(i32_local(*cond)));
                out.push(Instr::If(BlockType::Empty));
                out.push(Instr::I32Const(*k));
                out.push(Instr::Return);
                out.push(Instr::End);
            }
            Stmt::Unreach { cond } => {
                out.push(Instr::LocalGet(i32_local(*cond)));
                out.push(Instr::If(BlockType::Empty));
                out.push(Instr::Unreachable);
                out.push(Instr::End);
            }
        }
    }
}

fn leaf_stmt() -> BoxedStrategy<Stmt> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(a, b, dst, op)| Stmt::BinLL { a, b, dst, op }),
        (any::<u8>(), any::<i32>(), any::<u8>(), any::<u8>())
            .prop_map(|(src, k, dst, op)| Stmt::ImmOp { src, k, dst, op }),
        any::<u8>().prop_map(|op| Stmt::Bin64 { op }),
        (any::<bool>(), any::<u8>()).prop_map(|(wide, op)| Stmt::FOp { wide, op }),
        any::<u8>().prop_map(|which| Stmt::Convert { which }),
        (any::<u8>(), any::<bool>(), 0u32..80, any::<u8>()).prop_map(
            |(al, masked, offset, which)| Stmt::Load {
                al,
                masked,
                offset,
                which
            }
        ),
        (any::<u8>(), any::<bool>(), 0u32..80, any::<u8>()).prop_map(
            |(al, masked, offset, which)| Stmt::Store {
                al,
                masked,
                offset,
                which
            }
        ),
        (any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(arg, dst, host)| Stmt::Call {
            arg,
            dst,
            host
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(arg, slot, dst)| Stmt::CallInd {
            arg,
            slot,
            dst
        }),
        any::<u8>().prop_map(|which| Stmt::GlobalOps { which }),
        (any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(which, a, b, c)| Stmt::MemBulk { which, a, b, c }),
        any::<u8>().prop_map(|which| Stmt::Elided { which }),
        (any::<u8>(), any::<i32>(), any::<u8>(), any::<u8>()).prop_map(|(cond, k1, k2, dst)| {
            Stmt::IfVal {
                cond,
                k1: k1 / 2,
                k2: i32::from(k2),
                dst,
            }
        }),
        (any::<u8>(), any::<i32>()).prop_map(|(cond, k)| Stmt::EarlyRet { cond, k }),
        any::<u8>().prop_map(|cond| Stmt::Unreach { cond }),
    ]
    .boxed()
}

fn stmt_strategy() -> BoxedStrategy<Stmt> {
    leaf_stmt().prop_recursive(2, 32, 4, |inner| {
        prop_oneof![
            (any::<u8>(), prop::collection::vec(inner.clone(), 0..4))
                .prop_map(|(bound, body)| Stmt::While { bound, body }),
            (
                any::<u8>(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3),
                any::<bool>(),
            )
                .prop_map(|(cond, then, els, has_else)| Stmt::IfElse {
                    cond,
                    then,
                    els,
                    has_else
                }),
            (
                any::<u8>(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3),
            )
                .prop_map(|(sel, a, b)| Stmt::Table3 { sel, a, b }),
            prop::collection::vec(inner, 0..3).prop_map(|dead| Stmt::DeadAfterBr { dead }),
        ]
    })
}

// ── Harness ────────────────────────────────────────────────────────────

/// Everything observable about one execution.
#[derive(Debug, PartialEq)]
struct Outcome {
    result: Result<Option<Val>, Trap>,
    fuel: u64,
    globals: Vec<Val>,
    memory: Vec<u8>,
}

fn linker() -> Linker {
    let mut l = Linker::new();
    l.define_fn("env", "bump", |_ctx, args| {
        let Val::I32(x) = args[0] else { unreachable!() };
        Ok(vec![Val::I32(x.wrapping_add(7))])
    });
    l
}

fn run_tier(object: Arc<ObjectModule>, args: &[Val], fuel: FuelMeter) -> Outcome {
    let mut inst = Instance::with_fuel(object, &linker(), Box::new(()), fuel).expect("instantiate");
    let result = inst.invoke("main", args);
    let globals = (0..2).map(|i| inst.global(i).expect("global")).collect();
    let mem = inst.memory().expect("memory");
    let mut memory = vec![0u8; mem.size_bytes()];
    mem.read(0, &mut memory).expect("memory read");
    Outcome {
        result,
        fuel: inst.fuel.consumed(),
        globals,
        memory,
    }
}

fn run_both(module: &Module, args: &[Val], limit: Option<u64>) -> (Outcome, Outcome) {
    let meter = || limit.map_or_else(FuelMeter::unlimited, FuelMeter::with_limit);
    let interp = ObjectModule::prepare(module.clone()).expect("validates");
    let lowered = ObjectModule::prepare_lowered(module.clone()).expect("validates");
    assert!(!interp.is_lowered());
    assert!(lowered.is_lowered());
    (
        run_tier(interp, args, meter()),
        run_tier(lowered, args, meter()),
    )
}

fn args_of(a: i32, b: i32, c: i64) -> [Val; 3] {
    [Val::I32(a), Val::I32(b), Val::I64(c)]
}

proptest! {
    /// Unlimited fuel: results, traps (kind + payload), fuel consumed,
    /// globals, and the whole linear memory match bitwise.
    #[test]
    fn tiers_agree_unlimited(
        stmts in prop::collection::vec(stmt_strategy(), 0..10),
        a in any::<i32>(),
        b in any::<i32>(),
        c in any::<i64>(),
    ) {
        let module = build_module(&stmts);
        let (i, l) = run_both(&module, &args_of(a, b, c), None);
        prop_assert_eq!(i, l);
    }

    /// Fuel budgets bisected to land mid-block: the lowered tier's bulk
    /// charging + metered fallback must exhaust at the interpreter's exact
    /// instruction, with identical partial side effects.
    #[test]
    fn tiers_agree_at_every_fuel_bisection(
        stmts in prop::collection::vec(stmt_strategy(), 1..8),
        a in any::<i32>(),
        b in any::<i32>(),
        c in any::<i64>(),
    ) {
        let module = build_module(&stmts);
        let args = args_of(a, b, c);
        // Reference run to learn the total cost.
        let (full, _) = run_both(&module, &args, None);
        let total = full.fuel;
        let mut limits = vec![1, total / 3, total / 2, total.saturating_sub(1), total, total + 1];
        limits.sort_unstable();
        limits.dedup();
        for limit in limits {
            if limit == 0 {
                continue;
            }
            let (i, l) = run_both(&module, &args, Some(limit));
            prop_assert_eq!(&i, &l, "diverged at fuel limit {}", limit);
            if limit < total {
                // The budget really did bite mid-run. Unit charges land on
                // exactly limit + 1; variable charges (host calls, bulk
                // memory ops) may overshoot — but identically on both tiers.
                prop_assert_eq!(i.result, Err(Trap::OutOfFuel));
                prop_assert!(i.fuel > limit);
            }
        }
    }

    /// Snapshot/restore round-trips on the lowered tier mid-workload and
    /// resumes to the same final state as an uninterrupted lowered run and
    /// as the interpreter.
    #[test]
    fn lowered_snapshot_restore_matches(
        stmts in prop::collection::vec(stmt_strategy(), 1..8),
        a in any::<i32>(),
        b in any::<i32>(),
        c in any::<i64>(),
    ) {
        let module = build_module(&stmts);
        let args = args_of(a, b, c);
        let (interp, direct) = run_both(&module, &args, None);
        prop_assert_eq!(&interp, &direct);

        // Run once to mutate state, snapshot, restore into a fresh
        // instance, then run again: both tiers must agree on the
        // second run's outcome starting from the snapshotted state.
        let run_twice = |object: Arc<ObjectModule>| {
            let lk = linker();
            let mut first =
                Instance::with_fuel(object.clone(), &lk, Box::new(()), FuelMeter::unlimited())
                    .expect("instantiate");
            let _ = first.invoke("main", &args);
            let snap = first.snapshot();
            let mut second =
                Instance::restore(object, &snap, &lk, Box::new(()), FuelMeter::unlimited())
                    .expect("restore");
            let result = second.invoke("main", &args);
            let globals: Vec<Val> = (0..2).map(|i| second.global(i).expect("global")).collect();
            let mem = second.memory().expect("memory");
            let mut memory = vec![0u8; mem.size_bytes()];
            mem.read(0, &mut memory).expect("memory read");
            (result, globals, memory)
        };
        let i2 = run_twice(ObjectModule::prepare(module.clone()).expect("validates"));
        let l2 = run_twice(ObjectModule::prepare_lowered(module.clone()).expect("validates"));
        prop_assert_eq!(i2, l2);
    }
}
