//! Byte-level traffic accounting.
//!
//! The paper's evaluation reports network transfer volumes directly
//! (Figs. 6b and 8b); every message that crosses the fabric is counted here,
//! including a fixed per-message header overhead so that chatty protocols
//! are charged realistically.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for one direction of an endpoint (or the fabric
/// total).
#[derive(Debug, Default)]
pub struct TrafficStats {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    msgs_sent: AtomicU64,
    msgs_received: AtomicU64,
}

impl TrafficStats {
    /// New zeroed counters.
    pub fn new() -> TrafficStats {
        TrafficStats::default()
    }

    /// Record an outgoing message of `bytes` bytes.
    pub fn record_send(&self, bytes: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an incoming message of `bytes` bytes.
    pub fn record_recv(&self, bytes: u64) {
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
        self.msgs_received.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total bytes received.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Messages sent.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }

    /// Messages received.
    pub fn msgs_received(&self) -> u64 {
        self.msgs_received.load(Ordering::Relaxed)
    }

    /// Sent + received bytes — the "Sent + recv (GB)" metric of Fig. 6b/8b.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent() + self.bytes_received()
    }

    /// A point-in-time copy, for before/after deltas.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            bytes_sent: self.bytes_sent(),
            bytes_received: self.bytes_received(),
            msgs_sent: self.msgs_sent(),
            msgs_received: self.msgs_received(),
        }
    }
}

/// An immutable copy of [`TrafficStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Bytes sent at snapshot time.
    pub bytes_sent: u64,
    /// Bytes received at snapshot time.
    pub bytes_received: u64,
    /// Messages sent at snapshot time.
    pub msgs_sent: u64,
    /// Messages received at snapshot time.
    pub msgs_received: u64,
}

impl TrafficSnapshot {
    /// Sent + received bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Counter-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            msgs_sent: self.msgs_sent - earlier.msgs_sent,
            msgs_received: self.msgs_received - earlier.msgs_received,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TrafficStats::new();
        s.record_send(100);
        s.record_send(50);
        s.record_recv(10);
        assert_eq!(s.bytes_sent(), 150);
        assert_eq!(s.bytes_received(), 10);
        assert_eq!(s.msgs_sent(), 2);
        assert_eq!(s.msgs_received(), 1);
        assert_eq!(s.total_bytes(), 160);
    }

    #[test]
    fn snapshot_delta() {
        let s = TrafficStats::new();
        s.record_send(100);
        let a = s.snapshot();
        s.record_send(40);
        s.record_recv(5);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.bytes_sent, 40);
        assert_eq!(d.bytes_received, 5);
        assert_eq!(d.total_bytes(), 45);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let s = std::sync::Arc::new(TrafficStats::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_send(3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.bytes_sent(), 12_000);
        assert_eq!(s.msgs_sent(), 4000);
    }
}
