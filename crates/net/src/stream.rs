//! Byte-stream connections over the message fabric.
//!
//! The fabric delivers whole messages; real ingress traffic arrives as a
//! byte *stream* whose read boundaries need not align with protocol frames
//! (TCP segmentation and coalescing). This module layers connections on
//! top of [`Nic`] one-way messages: a connection is identified by
//! `(source host, connection id)`, carries `Open`/`Data`/`Close` control
//! flow, and a [`StreamConn`] fragments writes into MTU-sized `Data`
//! chunks so receivers must reassemble — exactly the conditions a framed
//! protocol's decoder has to survive.
//!
//! Ordering: the fabric preserves per-sender FIFO delivery, so chunks of
//! one connection arrive in order as long as a single receiver drains the
//! destination NIC (servers that fan envelopes out across threads would
//! reorder chunks and must not be used under stream traffic).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::fabric::{HostId, NetError, Nic};

/// Default fragmentation size for [`StreamConn`] writes, mimicking an
/// Ethernet-ish MTU so multi-kilobyte frames always arrive in pieces.
pub const DEFAULT_MTU: usize = 1400;

/// Allocator for connection ids; global so every connection in a process
/// is distinguishable even across fabrics (ids only need to be unique per
/// source host, this is strictly stronger).
static NEXT_CONN: AtomicU64 = AtomicU64::new(1);

/// What a stream message means to the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Start of a connection; carries no bytes.
    Open,
    /// A chunk of the byte stream.
    Data,
    /// End of the connection (either side may send it); carries no bytes.
    Close,
}

/// A decoded stream message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamMsg {
    /// Connection id, unique per source host.
    pub conn: u64,
    /// Control flag.
    pub kind: StreamKind,
    /// Stream bytes (`Data` only; empty for `Open`/`Close`).
    pub bytes: Vec<u8>,
}

const KIND_OPEN: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_CLOSE: u8 = 3;

/// Encode a stream message: `[kind u8][conn u64 LE][bytes…]`.
pub fn encode_stream_msg(conn: u64, kind: StreamKind, bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + bytes.len());
    out.push(match kind {
        StreamKind::Open => KIND_OPEN,
        StreamKind::Data => KIND_DATA,
        StreamKind::Close => KIND_CLOSE,
    });
    out.extend_from_slice(&conn.to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Decode a stream message; `None` when the payload is not stream traffic.
pub fn decode_stream_msg(payload: &[u8]) -> Option<StreamMsg> {
    if payload.len() < 9 {
        return None;
    }
    let kind = match payload[0] {
        KIND_OPEN => StreamKind::Open,
        KIND_DATA => StreamKind::Data,
        KIND_CLOSE => StreamKind::Close,
        _ => return None,
    };
    let conn = u64::from_le_bytes(payload[1..9].try_into().unwrap());
    Some(StreamMsg {
        conn,
        kind,
        bytes: payload[9..].to_vec(),
    })
}

/// The sending half of a byte-stream connection.
///
/// Writes are fragmented into chunks of at most `mtu` bytes, each shipped
/// as one `Data` message; the receiver sees arbitrary chunk boundaries and
/// must reassemble. Cheaply cloneable is *not* offered on purpose: one
/// writer per connection keeps the chunk order well-defined.
#[derive(Debug)]
pub struct StreamConn {
    nic: Nic,
    peer: HostId,
    conn: u64,
    mtu: usize,
    closed: bool,
}

impl StreamConn {
    /// Open a connection from `nic` to `peer`, announcing it with an
    /// `Open` message.
    ///
    /// # Errors
    ///
    /// Routing errors from the `Open` send ([`NetError::UnknownHost`],
    /// [`NetError::Disconnected`]).
    pub fn open(nic: Nic, peer: HostId, mtu: usize) -> Result<StreamConn, NetError> {
        let conn = NEXT_CONN.fetch_add(1, Ordering::Relaxed);
        nic.send(peer, encode_stream_msg(conn, StreamKind::Open, &[]))?;
        Ok(StreamConn {
            nic,
            peer,
            conn,
            mtu: mtu.max(1),
            closed: false,
        })
    }

    /// This connection's id (the receiver keys state by `(src, conn)`).
    pub fn conn_id(&self) -> u64 {
        self.conn
    }

    /// The peer host.
    pub fn peer(&self) -> HostId {
        self.peer
    }

    /// Send `bytes` down the stream, fragmented into `Data` chunks of at
    /// most the connection MTU.
    ///
    /// # Errors
    ///
    /// Routing errors; a partial write is possible when the peer vanishes
    /// mid-stream (as on a real network).
    pub fn send(&self, bytes: &[u8]) -> Result<(), NetError> {
        for chunk in bytes.chunks(self.mtu) {
            self.nic.send(
                self.peer,
                encode_stream_msg(self.conn, StreamKind::Data, chunk),
            )?;
        }
        Ok(())
    }

    /// Close the connection, notifying the peer. Idempotent; also runs on
    /// drop.
    pub fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            let _ = self.nic.send(
                self.peer,
                encode_stream_msg(self.conn, StreamKind::Close, &[]),
            );
        }
    }
}

impl Drop for StreamConn {
    fn drop(&mut self) {
        self.close();
    }
}

/// Build a `Data` message for an already-open connection — the raw-bytes
/// escape hatch servers use to speak back down a connection they accepted
/// (they hold a `(src, conn)` pair, not a [`StreamConn`]).
pub fn data_msg(conn: u64, bytes: &[u8]) -> Vec<u8> {
    encode_stream_msg(conn, StreamKind::Data, bytes)
}

/// Build a `Close` message for an already-open connection.
pub fn close_msg(conn: u64) -> Vec<u8> {
    encode_stream_msg(conn, StreamKind::Close, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;

    #[test]
    fn stream_msg_roundtrip() {
        for (kind, bytes) in [
            (StreamKind::Open, vec![]),
            (StreamKind::Data, b"payload".to_vec()),
            (StreamKind::Close, vec![]),
        ] {
            let enc = encode_stream_msg(7, kind, &bytes);
            assert_eq!(
                decode_stream_msg(&enc),
                Some(StreamMsg {
                    conn: 7,
                    kind,
                    bytes
                })
            );
        }
        assert_eq!(decode_stream_msg(&[]), None);
        assert_eq!(decode_stream_msg(&[9; 12]), None);
    }

    #[test]
    fn writes_fragment_at_the_mtu() {
        let fabric = Fabric::new();
        let client = fabric.add_host();
        let server = fabric.add_host();
        let conn = StreamConn::open(client, server.id(), 4).unwrap();
        conn.send(&[1, 2, 3, 4, 5, 6, 7, 8, 9]).unwrap();

        let open = decode_stream_msg(&server.recv().unwrap().payload).unwrap();
        assert_eq!(open.kind, StreamKind::Open);
        assert_eq!(open.conn, conn.conn_id());
        let mut reassembled = Vec::new();
        let mut chunks = 0;
        while reassembled.len() < 9 {
            let msg = decode_stream_msg(&server.recv().unwrap().payload).unwrap();
            assert_eq!(msg.kind, StreamKind::Data);
            assert!(msg.bytes.len() <= 4, "chunk exceeds MTU");
            reassembled.extend_from_slice(&msg.bytes);
            chunks += 1;
        }
        assert_eq!(reassembled, [1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(chunks, 3);
    }

    #[test]
    fn drop_sends_close() {
        let fabric = Fabric::new();
        let client = fabric.add_host();
        let server = fabric.add_host();
        let conn = StreamConn::open(client, server.id(), DEFAULT_MTU).unwrap();
        let id = conn.conn_id();
        drop(conn);
        let open = decode_stream_msg(&server.recv().unwrap().payload).unwrap();
        assert_eq!(open.kind, StreamKind::Open);
        let close = decode_stream_msg(&server.recv().unwrap().payload).unwrap();
        assert_eq!(close.kind, StreamKind::Close);
        assert_eq!(close.conn, id);
    }

    #[test]
    fn connection_ids_are_unique() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        let b = fabric.add_host();
        let c1 = StreamConn::open(a.clone(), b.id(), DEFAULT_MTU).unwrap();
        let c2 = StreamConn::open(a, b.id(), DEFAULT_MTU).unwrap();
        assert_ne!(c1.conn_id(), c2.conn_id());
    }
}
