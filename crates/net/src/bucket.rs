//! Token-bucket traffic shaping — the `tc` analogue of §3.1.
//!
//! "To ensure fairness between co-located tenants, each Faaslet applies
//! traffic shaping on its virtual network interface using tc, thus enforcing
//! ingress and egress traffic rate limits." A [`TokenBucket`] enforces a
//! rate with a burst capacity; callers either poll ([`TokenBucket::try_acquire`]),
//! block ([`TokenBucket::acquire`]) or compute the virtual delay a transfer
//! would incur ([`TokenBucket::delay_for`]) for modelled-time experiments.
//!
//! The bucket is unit-agnostic: the NIC shapes *bytes*, while the cluster
//! ingress tier (`faasm-gateway`) shapes *requests* through the same
//! mechanics via [`TokenBucket::per_second`] / [`TokenBucket::try_acquire_one`].

use std::time::{Duration, Instant};

use parking_lot::Mutex;

#[derive(Debug)]
struct State {
    tokens: f64,
    last_refill: Instant,
}

/// A thread-safe token bucket over bytes.
#[derive(Debug)]
pub struct TokenBucket {
    /// Refill rate in bytes/second; `None` disables shaping.
    rate: Option<f64>,
    /// Maximum burst size in bytes.
    capacity: f64,
    state: Mutex<State>,
}

impl TokenBucket {
    /// A bucket refilling at `rate_bytes_per_sec` with burst `capacity_bytes`.
    pub fn new(rate_bytes_per_sec: u64, capacity_bytes: u64) -> TokenBucket {
        TokenBucket {
            rate: Some(rate_bytes_per_sec.max(1) as f64),
            capacity: capacity_bytes.max(1) as f64,
            state: Mutex::new(State {
                tokens: capacity_bytes.max(1) as f64,
                last_refill: Instant::now(),
            }),
        }
    }

    /// A bucket over discrete operations: admits `ops_per_sec` sustained
    /// with bursts of `burst` (requests, calls — any unit where one
    /// acquisition debits one token).
    pub fn per_second(ops_per_sec: u64, burst: u64) -> TokenBucket {
        TokenBucket::new(ops_per_sec, burst)
    }

    /// A bucket that never limits (shaping disabled).
    pub fn unlimited() -> TokenBucket {
        TokenBucket {
            rate: None,
            capacity: f64::MAX,
            state: Mutex::new(State {
                tokens: 0.0,
                last_refill: Instant::now(),
            }),
        }
    }

    /// True if this bucket enforces a rate.
    pub fn is_limited(&self) -> bool {
        self.rate.is_some()
    }

    fn refill(&self, s: &mut State, rate: f64) {
        let now = Instant::now();
        let dt = now.duration_since(s.last_refill).as_secs_f64();
        s.tokens = (s.tokens + dt * rate).min(self.capacity);
        s.last_refill = now;
    }

    /// Try to debit `bytes`; returns `false` if insufficient tokens are
    /// available right now.
    pub fn try_acquire(&self, bytes: usize) -> bool {
        let Some(rate) = self.rate else { return true };
        let mut s = self.state.lock();
        self.refill(&mut s, rate);
        if s.tokens >= bytes as f64 {
            s.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Try to debit a single token (one request/operation).
    pub fn try_acquire_one(&self) -> bool {
        self.try_acquire(1)
    }

    /// Debit `bytes`, sleeping until the bucket permits it. Oversized
    /// requests (larger than the burst capacity) are allowed by letting the
    /// token count go negative, which models the transfer back-pressuring
    /// subsequent sends.
    pub fn acquire(&self, bytes: usize) {
        let Some(rate) = self.rate else { return };
        let wait = {
            let mut s = self.state.lock();
            self.refill(&mut s, rate);
            s.tokens -= bytes as f64;
            if s.tokens >= 0.0 {
                None
            } else {
                Some(Duration::from_secs_f64(-s.tokens / rate))
            }
        };
        if let Some(d) = wait {
            std::thread::sleep(d);
        }
    }

    /// Return one previously debited token, capped at the burst capacity.
    ///
    /// For admission pipelines with gates behind the bucket: a request that
    /// passes the rate limit but is shed by a later gate (e.g. a full
    /// queue) consumed no capacity, so charging it would double-penalise
    /// the tenant — shed at the queue *and* drained from the rate budget.
    pub fn refund_one(&self) {
        if self.rate.is_none() {
            return;
        }
        let mut s = self.state.lock();
        s.tokens = (s.tokens + 1.0).min(self.capacity);
    }

    /// The virtual delay `bytes` would incur at the configured rate,
    /// ignoring current bucket state (used for modelled-time accounting).
    pub fn delay_for(&self, bytes: usize) -> Duration {
        match self.rate {
            Some(rate) => Duration::from_secs_f64(bytes as f64 / rate),
            None => Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_permits() {
        let b = TokenBucket::unlimited();
        assert!(!b.is_limited());
        assert!(b.try_acquire(usize::MAX / 2));
        b.acquire(usize::MAX / 2);
        assert_eq!(b.delay_for(1_000_000), Duration::ZERO);
    }

    #[test]
    fn burst_then_deny() {
        let b = TokenBucket::new(1, 100);
        assert!(b.is_limited());
        assert!(b.try_acquire(100), "burst capacity available");
        assert!(!b.try_acquire(50), "bucket drained at 1 B/s");
    }

    #[test]
    fn refill_over_time() {
        let b = TokenBucket::new(1_000_000, 1000);
        assert!(b.try_acquire(1000));
        assert!(!b.try_acquire(1000));
        std::thread::sleep(Duration::from_millis(5));
        // ~5000 bytes refilled, capped at capacity 1000.
        assert!(b.try_acquire(1000));
    }

    #[test]
    fn refund_restores_a_token_capped_at_capacity() {
        let b = TokenBucket::per_second(1, 2);
        assert!(b.try_acquire_one());
        assert!(b.try_acquire_one());
        assert!(!b.try_acquire_one(), "burst drained at 1/s");
        b.refund_one();
        assert!(b.try_acquire_one(), "refunded token is usable");
        // Refunds never exceed the burst capacity.
        let full = TokenBucket::per_second(1, 1);
        full.refund_one();
        full.refund_one();
        assert!(full.try_acquire_one());
        assert!(!full.try_acquire_one(), "capacity caps refunds");
        // Unlimited buckets ignore refunds.
        TokenBucket::unlimited().refund_one();
    }

    #[test]
    fn acquire_blocks_for_rate() {
        let b = TokenBucket::new(100_000, 100);
        b.acquire(100); // drain burst
        let start = Instant::now();
        b.acquire(1000); // needs 10 ms at 100 kB/s
        assert!(start.elapsed() >= Duration::from_millis(8));
    }

    #[test]
    fn delay_model() {
        let b = TokenBucket::new(1_000_000, 1);
        assert_eq!(b.delay_for(1_000_000), Duration::from_secs(1));
        assert_eq!(b.delay_for(500_000), Duration::from_millis(500));
    }
}
