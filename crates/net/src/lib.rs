//! Simulated cluster network: fabric, NICs, traffic shaping and accounting.
//!
//! This crate replaces the 20-host, 1 Gbps testbed network of the paper's
//! evaluation (§6.1; DESIGN.md substitution S5/S7). Three properties matter
//! for reproducing the experiments:
//!
//! 1. **Measured bytes** — every message is counted (payload + header) at
//!    both endpoints, giving the "network transfer" series of Figs. 6b/8b
//!    without modelling.
//! 2. **Enforced shaping** — per-Faaslet [`VirtualInterface`]s carry their
//!    own [`TokenBucket`] egress limits, reproducing the network-namespace +
//!    `tc` mechanism of §3.1 as an actual mechanism, not an annotation.
//! 3. **Modelled wire time** — [`NetModel`] converts measured bytes into the
//!    time they would take on the paper's 1 Gbps links, for latency figures
//!    that cannot be reproduced in wall-clock on one machine.
//!
//! On top of the message fabric, [`stream`] layers byte-stream connections
//! ([`StreamConn`]): MTU-fragmented `Data` chunks under `Open`/`Close`
//! control flow, so framed protocols (the gateway's ingress codec) face
//! realistic segmentation and must reassemble.

#![warn(missing_docs)]

pub mod bucket;
pub mod fabric;
pub mod stats;
pub mod stream;

pub use bucket::TokenBucket;
pub use fabric::{
    Envelope, Fabric, HostId, NetError, NetModel, Nic, VirtualInterface, DEFAULT_RPC_TIMEOUT,
    MSG_HEADER_BYTES,
};
pub use stats::{TrafficSnapshot, TrafficStats};
pub use stream::{StreamConn, StreamKind, StreamMsg, DEFAULT_MTU};
