//! The cluster fabric: hosts, NICs and request/response messaging.
//!
//! The fabric replaces the 1 Gbps switched network of the paper's testbed
//! (§6.1). Every host registers a [`Nic`]; messages are delivered through
//! in-process channels while being counted by [`TrafficStats`] and subject
//! to token-bucket shaping, so byte metrics are *measured*, not modelled.
//! A [`NetModel`] converts measured bytes into modelled wire time for the
//! latency figures.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::bucket::TokenBucket;
use crate::stats::TrafficStats;

/// Identifies a host on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Fixed per-message overhead charged on top of the payload (framing,
/// headers).
pub const MSG_HEADER_BYTES: u64 = 64;

/// Errors from fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination host is not registered.
    UnknownHost(HostId),
    /// The peer disconnected or the fabric shut down.
    Disconnected,
    /// A blocking call exceeded its timeout.
    Timeout,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownHost(h) => write!(f, "unknown host {h}"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "network timeout"),
        }
    }
}

impl std::error::Error for NetError {}

/// An incoming message.
#[derive(Debug)]
pub struct Envelope {
    /// Sender host.
    pub src: HostId,
    /// Correlation tag; present when the sender awaits a reply.
    pub reply_tag: Option<u64>,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

struct HostPort {
    req_tx: Sender<Envelope>,
    pending: Arc<Mutex<HashMap<u64, Sender<Vec<u8>>>>>,
    stats: Arc<TrafficStats>,
}

struct FabricInner {
    hosts: Mutex<HashMap<HostId, HostPort>>,
    partitioned: Mutex<HashSet<HostId>>,
    total: TrafficStats,
    next_host: AtomicU64,
    next_tag: AtomicU64,
}

/// The in-process cluster network.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("hosts", &self.inner.hosts.lock().len())
            .field("total_bytes", &self.inner.total.total_bytes())
            .finish()
    }
}

impl Default for Fabric {
    fn default() -> Self {
        Fabric::new()
    }
}

impl Fabric {
    /// An empty fabric.
    pub fn new() -> Fabric {
        Fabric {
            inner: Arc::new(FabricInner {
                hosts: Mutex::new(HashMap::new()),
                partitioned: Mutex::new(HashSet::new()),
                total: TrafficStats::new(),
                next_host: AtomicU64::new(0),
                next_tag: AtomicU64::new(1),
            }),
        }
    }

    /// Register a new host, returning its NIC.
    pub fn add_host(&self) -> Nic {
        let id = HostId(self.inner.next_host.fetch_add(1, Ordering::Relaxed) as u32);
        let (req_tx, req_rx) = unbounded();
        let stats = Arc::new(TrafficStats::new());
        let pending = Arc::new(Mutex::new(HashMap::new()));
        self.inner.hosts.lock().insert(
            id,
            HostPort {
                req_tx,
                pending: Arc::clone(&pending),
                stats: Arc::clone(&stats),
            },
        );
        Nic {
            inner: Arc::new(NicInner {
                id,
                fabric: self.clone(),
                req_rx,
                pending,
                stats,
            }),
        }
    }

    /// Remove a host (simulating failure); in-flight sends to it error with
    /// [`NetError::UnknownHost`] or [`NetError::Disconnected`].
    pub fn remove_host(&self, id: HostId) {
        self.inner.hosts.lock().remove(&id);
        self.inner.partitioned.lock().remove(&id);
    }

    /// Cut a host off the fabric without removing it: traffic to or from it
    /// is silently dropped, so senders see [`NetError::Timeout`] rather than
    /// a routing error — a network partition, not a crash. Undo with
    /// [`Fabric::heal_host`].
    pub fn partition_host(&self, id: HostId) {
        self.inner.partitioned.lock().insert(id);
    }

    /// Reconnect a host cut off by [`Fabric::partition_host`].
    pub fn heal_host(&self, id: HostId) {
        self.inner.partitioned.lock().remove(&id);
    }

    fn is_cut(&self, a: HostId, b: HostId) -> bool {
        let p = self.inner.partitioned.lock();
        if p.is_empty() {
            return false;
        }
        p.contains(&a) || p.contains(&b)
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.inner.hosts.lock().len()
    }

    /// Fabric-wide traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.inner.total
    }

    fn fresh_tag(&self) -> u64 {
        self.inner.next_tag.fetch_add(1, Ordering::Relaxed)
    }

    /// Deliver a request to `dst`. Byte counters are touched only after
    /// delivery succeeds: a send to an unknown or removed host moved
    /// nothing across the fabric, and counting it would break the
    /// "measured, not modelled" invariant.
    fn route_request(&self, env: Envelope, dst: HostId) -> Result<(), NetError> {
        if self.is_cut(env.src, dst) {
            // Partitioned link: the frame vanishes in transit. The sender
            // sees a timeout (its bytes did leave the host), never an error.
            return Ok(());
        }
        let bytes = env.payload.len() as u64 + MSG_HEADER_BYTES;
        let hosts = self.inner.hosts.lock();
        let port = hosts.get(&dst).ok_or(NetError::UnknownHost(dst))?;
        port.req_tx.send(env).map_err(|_| NetError::Disconnected)?;
        port.stats.record_recv(bytes);
        self.inner.total.record_recv(bytes);
        Ok(())
    }

    fn route_response(&self, dst: HostId, tag: u64, payload: Vec<u8>) -> Result<(), NetError> {
        if self.inner.partitioned.lock().contains(&dst) {
            // The responder's bytes are lost in transit; the caller times out.
            return Ok(());
        }
        let bytes = payload.len() as u64 + MSG_HEADER_BYTES;
        let hosts = self.inner.hosts.lock();
        let port = hosts.get(&dst).ok_or(NetError::UnknownHost(dst))?;
        let tx = port
            .pending
            .lock()
            .remove(&tag)
            .ok_or(NetError::Disconnected)?;
        tx.send(payload).map_err(|_| NetError::Disconnected)?;
        port.stats.record_recv(bytes);
        self.inner.total.record_recv(bytes);
        Ok(())
    }
}

struct NicInner {
    id: HostId,
    fabric: Fabric,
    req_rx: Receiver<Envelope>,
    pending: Arc<Mutex<HashMap<u64, Sender<Vec<u8>>>>>,
    stats: Arc<TrafficStats>,
}

/// A host's network interface.
///
/// Cloneable; clones share the same queues and counters. Request/response
/// correlation is built in: [`Nic::call`] blocks for the matching
/// [`Nic::respond`] from the server side.
#[derive(Clone)]
pub struct Nic {
    inner: Arc<NicInner>,
}

impl std::fmt::Debug for Nic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nic").field("id", &self.inner.id).finish()
    }
}

/// Default timeout for blocking RPC calls.
pub const DEFAULT_RPC_TIMEOUT: Duration = Duration::from_secs(30);

impl Nic {
    /// This NIC's host id.
    pub fn id(&self) -> HostId {
        self.inner.id
    }

    /// Per-host traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.inner.stats
    }

    fn record_send(&self, payload_len: usize) {
        let bytes = payload_len as u64 + MSG_HEADER_BYTES;
        self.inner.stats.record_send(bytes);
        self.inner.fabric.inner.total.record_send(bytes);
    }

    /// Send a one-way message (no reply expected).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownHost`] or [`NetError::Disconnected`];
    /// failed sends are not counted (nothing crossed the fabric).
    pub fn send(&self, dst: HostId, payload: Vec<u8>) -> Result<(), NetError> {
        let len = payload.len();
        self.inner.fabric.route_request(
            Envelope {
                src: self.inner.id,
                reply_tag: None,
                payload,
            },
            dst,
        )?;
        self.record_send(len);
        Ok(())
    }

    /// Send a request and block for its response (an RPC).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] after [`DEFAULT_RPC_TIMEOUT`], or a
    /// routing error.
    pub fn call(&self, dst: HostId, payload: Vec<u8>) -> Result<Vec<u8>, NetError> {
        self.call_timeout(dst, payload, DEFAULT_RPC_TIMEOUT)
    }

    /// [`Nic::call`] with an explicit timeout.
    ///
    /// # Errors
    ///
    /// See [`Nic::call`].
    pub fn call_timeout(
        &self,
        dst: HostId,
        payload: Vec<u8>,
        timeout: Duration,
    ) -> Result<Vec<u8>, NetError> {
        self.call_timeout_tracked(dst, payload, timeout).0
    }

    /// [`Nic::call_timeout`] plus whether the request was actually
    /// delivered (`true` even on timeout: the bytes crossed the fabric,
    /// only the reply is missing). Lets shaped interfaces keep their
    /// counters in agreement with the NIC's.
    fn call_timeout_tracked(
        &self,
        dst: HostId,
        payload: Vec<u8>,
        timeout: Duration,
    ) -> (Result<Vec<u8>, NetError>, bool) {
        let tag = self.inner.fabric.fresh_tag();
        let (tx, rx) = bounded(1);
        self.inner.pending.lock().insert(tag, tx);
        let len = payload.len();
        let routed = self.inner.fabric.route_request(
            Envelope {
                src: self.inner.id,
                reply_tag: Some(tag),
                payload,
            },
            dst,
        );
        if let Err(e) = routed {
            self.inner.pending.lock().remove(&tag);
            return (Err(e), false);
        }
        // Counted only now: a request bounced by routing never left the host.
        self.record_send(len);
        let result = match rx.recv_timeout(timeout) {
            Ok(resp) => Ok(resp),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                self.inner.pending.lock().remove(&tag);
                Err(NetError::Timeout)
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        };
        (result, true)
    }

    /// Receive the next incoming request/one-way message, blocking.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if the fabric shut down.
    pub fn recv(&self) -> Result<Envelope, NetError> {
        self.inner.req_rx.recv().map_err(|_| NetError::Disconnected)
    }

    /// Receive with a timeout.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] if nothing arrives in time.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, NetError> {
        self.inner
            .req_rx
            .recv_timeout(timeout)
            .map_err(|e| match e {
                crossbeam::channel::RecvTimeoutError::Timeout => NetError::Timeout,
                crossbeam::channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
            })
    }

    /// Try to receive without blocking; `None` if the queue is empty.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.inner.req_rx.try_recv().ok()
    }

    /// Respond to a request received via [`Nic::recv`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if the requester is gone, or
    /// [`NetError::UnknownHost`] if its host was removed.
    pub fn respond(&self, env: &Envelope, payload: Vec<u8>) -> Result<(), NetError> {
        let Some(tag) = env.reply_tag else {
            // One-way messages need no response; dropping it is a server
            // bug, so surface it.
            return Err(NetError::Disconnected);
        };
        if self.inner.fabric.is_cut(self.inner.id, env.src) {
            // The reply is lost in the partition; the caller times out.
            return Ok(());
        }
        let len = payload.len();
        self.inner.fabric.route_response(env.src, tag, payload)?;
        self.record_send(len);
        Ok(())
    }

    /// Create a shaped virtual interface on this NIC — the per-Faaslet
    /// network namespace + `tc` pair of §3.1.
    pub fn virtual_interface(&self, egress: TokenBucket) -> VirtualInterface {
        VirtualInterface {
            nic: self.clone(),
            shaper: egress,
            stats: TrafficStats::new(),
        }
    }
}

/// A per-Faaslet virtual interface: its own counters and egress shaping,
/// multiplexed over the host NIC.
#[derive(Debug)]
pub struct VirtualInterface {
    nic: Nic,
    shaper: TokenBucket,
    stats: TrafficStats,
}

impl VirtualInterface {
    /// The underlying host NIC.
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    /// Per-interface counters (the Faaslet's own traffic).
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Whether egress shaping is enabled.
    pub fn is_shaped(&self) -> bool {
        self.shaper.is_limited()
    }

    /// Shaped one-way send.
    ///
    /// # Errors
    ///
    /// See [`Nic::send`]; failed sends are not counted.
    pub fn send(&self, dst: HostId, payload: Vec<u8>) -> Result<(), NetError> {
        let len = payload.len();
        self.shaper.acquire(len + MSG_HEADER_BYTES as usize);
        self.nic.send(dst, payload)?;
        self.stats.record_send(len as u64 + MSG_HEADER_BYTES);
        Ok(())
    }

    /// Shaped RPC.
    ///
    /// # Errors
    ///
    /// See [`Nic::call`]. Requests bounced by routing are not counted; a
    /// request that reached the peer but timed out awaiting the reply *is*
    /// (the bytes crossed the fabric).
    pub fn call(&self, dst: HostId, payload: Vec<u8>) -> Result<Vec<u8>, NetError> {
        let len = payload.len();
        self.shaper.acquire(len + MSG_HEADER_BYTES as usize);
        let (result, delivered) = self
            .nic
            .call_timeout_tracked(dst, payload, DEFAULT_RPC_TIMEOUT);
        if delivered {
            self.stats.record_send(len as u64 + MSG_HEADER_BYTES);
        }
        if let Ok(resp) = &result {
            self.stats.record_recv(resp.len() as u64 + MSG_HEADER_BYTES);
        }
        result
    }
}

/// Bandwidth/latency model used to convert measured bytes into modelled wire
/// time (the paper's testbed: 1 Gbps links).
#[derive(Debug, Clone, Copy)]
pub struct NetModel {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way message latency.
    pub latency: Duration,
}

impl Default for NetModel {
    fn default() -> NetModel {
        NetModel {
            bandwidth_bps: 1_000_000_000,
            latency: Duration::from_micros(100),
        }
    }
}

impl NetModel {
    /// Modelled time to move `bytes` across one link.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let secs = (bytes as f64 * 8.0) / self.bandwidth_bps as f64;
        self.latency + Duration::from_secs_f64(secs)
    }

    /// Modelled time for `msgs` messages totalling `bytes`.
    pub fn batch_time(&self, msgs: u64, bytes: u64) -> Duration {
        let secs = (bytes as f64 * 8.0) / self.bandwidth_bps as f64;
        self.latency * msgs as u32 + Duration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_send_and_recv() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        let b = fabric.add_host();
        a.send(b.id(), b"hello".to_vec()).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.src, a.id());
        assert_eq!(env.payload, b"hello");
        assert!(env.reply_tag.is_none());
    }

    #[test]
    fn rpc_roundtrip() {
        let fabric = Fabric::new();
        let client = fabric.add_host();
        let server = fabric.add_host();
        let server_id = server.id();
        let handle = std::thread::spawn(move || {
            let env = server.recv().unwrap();
            let mut resp = env.payload.clone();
            resp.reverse();
            server.respond(&env, resp).unwrap();
        });
        let resp = client.call(server_id, b"abc".to_vec()).unwrap();
        assert_eq!(resp, b"cba");
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_rpcs_correlate() {
        let fabric = Fabric::new();
        let client = fabric.add_host();
        let server = fabric.add_host();
        let server_id = server.id();
        // Server: collect two requests, respond in reverse order.
        let handle = std::thread::spawn(move || {
            let e1 = server.recv().unwrap();
            let e2 = server.recv().unwrap();
            server.respond(&e2, e2.payload.clone()).unwrap();
            server.respond(&e1, e1.payload.clone()).unwrap();
        });
        let c1 = client.clone();
        let t1 = std::thread::spawn(move || c1.call(server_id, b"one".to_vec()).unwrap());
        // Give the first request a head start so ordering is deterministic
        // enough; correlation must hold regardless.
        std::thread::sleep(Duration::from_millis(10));
        let t2 = std::thread::spawn({
            let c = client.clone();
            move || c.call(server_id, b"two".to_vec()).unwrap()
        });
        assert_eq!(t1.join().unwrap(), b"one");
        assert_eq!(t2.join().unwrap(), b"two");
        handle.join().unwrap();
    }

    #[test]
    fn unknown_host_rejected() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        assert_eq!(
            a.send(HostId(99), vec![]),
            Err(NetError::UnknownHost(HostId(99)))
        );
    }

    #[test]
    fn removed_host_unreachable() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        let b = fabric.add_host();
        fabric.remove_host(b.id());
        assert_eq!(fabric.host_count(), 1);
        assert!(matches!(
            a.send(b.id(), vec![]),
            Err(NetError::UnknownHost(_))
        ));
    }

    #[test]
    fn call_times_out_without_server() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        let b = fabric.add_host();
        let err = a
            .call_timeout(b.id(), b"ping".to_vec(), Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    #[test]
    fn traffic_is_counted_with_header_overhead() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        let b = fabric.add_host();
        a.send(b.id(), vec![0u8; 100]).unwrap();
        b.recv().unwrap();
        assert_eq!(a.stats().bytes_sent(), 100 + MSG_HEADER_BYTES);
        assert_eq!(b.stats().bytes_received(), 100 + MSG_HEADER_BYTES);
        assert_eq!(
            fabric.stats().total_bytes(),
            2 * (100 + MSG_HEADER_BYTES),
            "fabric counts both directions"
        );
    }

    #[test]
    fn virtual_interface_counts_and_shapes() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        let b = fabric.add_host();
        let vif = a.virtual_interface(TokenBucket::unlimited());
        assert!(!vif.is_shaped());
        vif.send(b.id(), vec![1, 2, 3]).unwrap();
        assert_eq!(vif.stats().bytes_sent(), 3 + MSG_HEADER_BYTES);
        // Host NIC sees it too.
        assert_eq!(a.stats().bytes_sent(), 3 + MSG_HEADER_BYTES);

        let shaped = a.virtual_interface(TokenBucket::new(
            100_000,
            64 + MSG_HEADER_BYTES as usize as u64,
        ));
        assert!(shaped.is_shaped());
        let start = std::time::Instant::now();
        shaped.send(b.id(), vec![0u8; 64]).unwrap(); // uses burst
        shaped.send(b.id(), vec![0u8; 64]).unwrap(); // must wait ~1.3 ms
        assert!(start.elapsed() >= Duration::from_micros(900));
    }

    #[test]
    fn failed_sends_are_not_counted() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        let b = fabric.add_host();
        fabric.remove_host(b.id());
        // One-way send, RPC and shaped-interface traffic to a gone host:
        // nothing crossed the fabric, so nothing may be counted.
        assert!(a.send(b.id(), vec![0u8; 100]).is_err());
        assert!(a.call(b.id(), vec![0u8; 100]).is_err());
        let vif = a.virtual_interface(TokenBucket::unlimited());
        assert!(vif.send(b.id(), vec![0u8; 100]).is_err());
        assert!(vif.call(b.id(), vec![0u8; 100]).is_err());
        assert_eq!(a.stats().bytes_sent(), 0);
        assert_eq!(a.stats().msgs_sent(), 0);
        assert_eq!(vif.stats().bytes_sent(), 0);
        assert_eq!(fabric.stats().total_bytes(), 0);
        // A successful send still counts exactly once.
        let c = fabric.add_host();
        a.send(c.id(), vec![0u8; 100]).unwrap();
        assert_eq!(a.stats().bytes_sent(), 100 + MSG_HEADER_BYTES);
    }

    #[test]
    fn undeliverable_call_agrees_across_vif_and_nic_counters() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        let b = fabric.add_host();
        let b_id = b.id();
        // Drop b's NIC while the host stays registered: routing finds the
        // port but channel delivery fails (pre-routing Disconnected).
        drop(b);
        let vif = a.virtual_interface(TokenBucket::unlimited());
        assert_eq!(
            vif.call(b_id, vec![0u8; 50]).unwrap_err(),
            NetError::Disconnected
        );
        // Nothing was delivered, so the interface and the NIC must agree:
        // zero bytes, both.
        assert_eq!(vif.stats().bytes_sent(), 0);
        assert_eq!(a.stats().bytes_sent(), 0);
    }

    #[test]
    fn timed_out_call_counts_the_request_bytes() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        let b = fabric.add_host();
        // No server drains `b`, so the call times out — but the request
        // really was delivered to b's queue and must be counted.
        let err = a
            .call_timeout(b.id(), vec![0u8; 10], Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
        assert_eq!(a.stats().bytes_sent(), 10 + MSG_HEADER_BYTES);
        assert_eq!(b.stats().bytes_received(), 10 + MSG_HEADER_BYTES);
    }

    #[test]
    fn recv_timeout_and_try_recv() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        assert!(a.try_recv().is_none());
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            NetError::Timeout
        );
    }

    #[test]
    fn net_model_times() {
        let m = NetModel::default();
        // 1 Gbps: 125 MB/s; 125 MB takes ~1 s + latency.
        let t = m.transfer_time(125_000_000);
        assert!(t >= Duration::from_secs(1));
        assert!(t < Duration::from_millis(1200));
        let b = m.batch_time(10, 0);
        assert_eq!(b, m.latency * 10);
    }

    #[test]
    fn respond_to_oneway_is_error() {
        let fabric = Fabric::new();
        let a = fabric.add_host();
        let b = fabric.add_host();
        a.send(b.id(), vec![]).unwrap();
        let env = b.recv().unwrap();
        assert!(b.respond(&env, vec![]).is_err());
    }
}
