//! Two-tier state architecture and distributed data objects (§4).
//!
//! "A local tier provides in-memory sharing, and a global tier supports
//! distributed access to state across hosts." This crate implements both
//! halves and the API between them:
//!
//! * [`StateEntry`] — one key's local replica in a `faasm-mem` shared
//!   region (zero-copy across co-located Faaslets), with chunk-granular
//!   pull/push, implicit local read/write locking, and global lock hooks.
//! * [`StateManager`] — the per-host local tier handing out shared entries.
//! * [`ddo`] — the high-level distributed data objects of Listing 1:
//!   [`SharedVector`] (`VectorAsync`), [`MatrixReadOnly`],
//!   [`SparseMatrixReadOnly`], plus a lazy dictionary, an atomic append
//!   list and a strongly-consistent counter, each choosing its own
//!   consistency point on the push/pull spectrum (§4.1).

#![warn(missing_docs)]

pub mod ddo;
pub mod entry;
pub mod error;
pub mod manager;
pub mod rwlock;

pub use ddo::{
    bytes_to_f64s, f64s_to_bytes, MatrixReadOnly, SharedCounter, SharedDict, SharedList,
    SharedVector, SparseMatrixBuilder, SparseMatrixReadOnly,
};
pub use entry::{StateEntry, DEFAULT_CHUNK_SIZE};
pub use error::StateError;
pub use manager::StateManager;
pub use rwlock::SyncRwLock;
