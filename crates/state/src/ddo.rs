//! Distributed data objects (DDOs, §4).
//!
//! "Stateful serverless applications can be created with Faaslets using
//! distributed data objects (DDO), which are language-specific classes that
//! expose a convenient high-level state interface." Each DDO here wraps one
//! (or a few) state keys and hides the two-tier push/pull mechanics, exactly
//! mirroring the classes of Listing 1: `VectorAsync` ([`SharedVector`]),
//! `MatrixReadOnly` ([`MatrixReadOnly`]), `SparseMatrixReadOnly`
//! ([`SparseMatrixReadOnly`]) — plus a dictionary, an append-only list and a
//! counter with different consistency choices (§4.1: "DDOs may employ push
//! and pull operations to produce variable consistency").

use std::sync::Arc;

use faasm_kvs::{KvBackend, LockMode, SharedKv};

use crate::entry::StateEntry;
use crate::error::StateError;
use crate::manager::StateManager;

/// Convert a little-endian byte slice to `f64`s.
///
/// # Panics
///
/// Panics if the length is not a multiple of 8 (an internal layout
/// invariant, not reachable from user input).
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert!(bytes.len().is_multiple_of(8), "f64 buffer misaligned");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

/// Convert `f64`s to little-endian bytes.
pub fn f64s_to_bytes(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn u32s_to_bytes(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn bytes_to_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

/// The paper's `VectorAsync`: a shared `f64` vector whose writes accumulate
/// in the local tier and reach the global tier only on an explicit
/// [`SharedVector::push`] — eventual consistency by design; HOGWILD! SGD
/// "tolerates such inconsistencies" (§4.1).
pub struct SharedVector {
    entry: Arc<StateEntry>,
    len: usize,
}

impl std::fmt::Debug for SharedVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedVector")
            .field("key", &self.entry.key())
            .field("len", &self.len)
            .finish()
    }
}

impl SharedVector {
    /// Open (or create) the vector `key` with `len` elements.
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn open(mgr: &StateManager, key: &str, len: usize) -> Result<SharedVector, StateError> {
        let entry = mgr.get(key, len * 8)?;
        Ok(SharedVector { entry, len })
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Initialise all elements and push the full value (driver-side setup).
    ///
    /// # Errors
    ///
    /// State-layer errors; [`StateError::OutOfRange`] on length mismatch.
    pub fn init(&self, values: &[f64]) -> Result<(), StateError> {
        if values.len() != self.len {
            return Err(StateError::OutOfRange {
                offset: 0,
                len: values.len() * 8,
                size: self.len * 8,
            });
        }
        self.entry.write(0, &f64s_to_bytes(values))?;
        self.entry.push()
    }

    /// Read one element from the local tier (pulling its chunk if absent).
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn get(&self, i: usize) -> Result<f64, StateError> {
        let mut buf = [0u8; 8];
        self.entry.read(i * 8, &mut buf)?;
        Ok(f64::from_le_bytes(buf))
    }

    /// Write one element in the local tier.
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn set(&self, i: usize, v: f64) -> Result<(), StateError> {
        self.entry.write(i * 8, &v.to_le_bytes())
    }

    /// `v[i] += delta` — the HOGWILD! update: lock-free, racy by design.
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn add(&self, i: usize, delta: f64) -> Result<(), StateError> {
        let cur = self.get(i)?;
        self.set(i, cur + delta)
    }

    /// Read the whole vector.
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn to_vec(&self) -> Result<Vec<f64>, StateError> {
        let mut buf = vec![0u8; self.len * 8];
        self.entry.read(0, &mut buf)?;
        Ok(bytes_to_f64s(&buf))
    }

    /// Push dirty chunks to the global tier (Listing 1 line 13).
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn push(&self) -> Result<(), StateError> {
        self.entry.push()
    }

    /// Re-pull the whole vector from the global tier.
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn pull(&self) -> Result<(), StateError> {
        self.entry.invalidate();
        self.entry.pull()
    }

    /// The backing entry (for mapping into guest memory).
    pub fn entry(&self) -> &Arc<StateEntry> {
        &self.entry
    }
}

/// A dense, read-only `f64` matrix in column-major layout; `column` pulls
/// only the chunks covering that column (§4.2 state chunks).
pub struct MatrixReadOnly {
    entry: Arc<StateEntry>,
    rows: usize,
    cols: usize,
}

impl std::fmt::Debug for MatrixReadOnly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatrixReadOnly")
            .field("key", &self.entry.key())
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish()
    }
}

impl MatrixReadOnly {
    /// Upload a matrix to the global tier (driver-side).
    ///
    /// # Errors
    ///
    /// Global-tier errors; panics are avoided — a size mismatch returns
    /// [`StateError::OutOfRange`].
    pub fn create(
        kv: &dyn KvBackend,
        key: &str,
        rows: usize,
        cols: usize,
        data: &[f64],
    ) -> Result<(), StateError> {
        if data.len() != rows * cols {
            return Err(StateError::OutOfRange {
                offset: 0,
                len: data.len() * 8,
                size: rows * cols * 8,
            });
        }
        kv.set(key, f64s_to_bytes(data))?;
        Ok(())
    }

    /// Open a replica of the matrix.
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn open(
        mgr: &StateManager,
        key: &str,
        rows: usize,
        cols: usize,
    ) -> Result<MatrixReadOnly, StateError> {
        let entry = mgr.get(key, rows * cols * 8)?;
        Ok(MatrixReadOnly { entry, rows, cols })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read column `j`, pulling only the bytes that back it.
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn column(&self, j: usize) -> Result<Vec<f64>, StateError> {
        let mut buf = vec![0u8; self.rows * 8];
        self.entry.read(j * self.rows * 8, &mut buf)?;
        Ok(bytes_to_f64s(&buf))
    }

    /// Read element `(i, j)`.
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn get(&self, i: usize, j: usize) -> Result<f64, StateError> {
        let mut buf = [0u8; 8];
        self.entry.read((j * self.rows + i) * 8, &mut buf)?;
        Ok(f64::from_le_bytes(buf))
    }

    /// Chunks currently replicated locally (test/metric hook).
    pub fn present_chunks(&self) -> usize {
        self.entry.present_chunks()
    }
}

/// A read-only sparse matrix in compressed-sparse-column form, split over
/// three state values so column slices pull only their own data — the
/// `SparseMatrixReadOnly` of Listing 1.
pub struct SparseMatrixReadOnly {
    vals: Arc<StateEntry>,
    row_idx: Arc<StateEntry>,
    col_ptr: Arc<StateEntry>,
    rows: usize,
    cols: usize,
    nnz: usize,
}

impl std::fmt::Debug for SparseMatrixReadOnly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMatrixReadOnly")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("nnz", &self.nnz)
            .finish()
    }
}

/// Driver-side builder for sparse matrices.
#[derive(Debug, Default)]
pub struct SparseMatrixBuilder {
    rows: usize,
    cols: usize,
    /// (row, col, value) triplets.
    triplets: Vec<(u32, u32, f64)>,
}

impl SparseMatrixBuilder {
    /// A builder for an `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> SparseMatrixBuilder {
        SparseMatrixBuilder {
            rows,
            cols,
            triplets: Vec::new(),
        }
    }

    /// Add a non-zero.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> &mut Self {
        debug_assert!(row < self.rows && col < self.cols, "triplet in bounds");
        self.triplets.push((row as u32, col as u32, value));
        self
    }

    /// Number of non-zeros so far.
    pub fn nnz(&self) -> usize {
        self.triplets.len()
    }

    /// Upload as CSC under `key` (three global values: `key:vals`,
    /// `key:rows`, `key:colptr`).
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn upload(&self, kv: &dyn KvBackend, key: &str) -> Result<(), StateError> {
        let mut sorted = self.triplets.clone();
        sorted.sort_by_key(|(r, c, _)| (*c, *r));
        let mut vals = Vec::with_capacity(sorted.len());
        let mut rows = Vec::with_capacity(sorted.len());
        let mut col_ptr = vec![0u32; self.cols + 1];
        for (r, c, v) in &sorted {
            vals.push(*v);
            rows.push(*r);
            col_ptr[*c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        kv.set(&format!("{key}:vals"), f64s_to_bytes(&vals))?;
        kv.set(&format!("{key}:rows"), u32s_to_bytes(&rows))?;
        kv.set(&format!("{key}:colptr"), u32s_to_bytes(&col_ptr))?;
        Ok(())
    }
}

impl SparseMatrixReadOnly {
    /// Open a replica of the sparse matrix uploaded under `key`.
    ///
    /// # Errors
    ///
    /// State-layer errors ([`StateError::NotFound`] if never uploaded).
    pub fn open(
        mgr: &StateManager,
        key: &str,
        rows: usize,
        cols: usize,
    ) -> Result<SparseMatrixReadOnly, StateError> {
        let nnz = mgr.kv().strlen(&format!("{key}:vals"))? as usize / 8;
        if nnz == 0 && !mgr.kv().exists(&format!("{key}:vals"))? {
            return Err(StateError::NotFound {
                key: format!("{key}:vals"),
            });
        }
        let vals = mgr.get(&format!("{key}:vals"), nnz.max(1) * 8)?;
        let row_idx = mgr.get(&format!("{key}:rows"), nnz.max(1) * 4)?;
        let col_ptr = mgr.get(&format!("{key}:colptr"), (cols + 1) * 4)?;
        Ok(SparseMatrixReadOnly {
            vals,
            row_idx,
            col_ptr,
            rows,
            cols,
            nnz,
        })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Non-zero count.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The non-zeros of column `j` as `(row, value)` pairs, pulling only the
    /// column-pointer window and the value/row spans for that column
    /// ("the entire matrix is not transferred unnecessarily", §4.1).
    ///
    /// # Errors
    ///
    /// State-layer errors.
    pub fn column(&self, j: usize) -> Result<Vec<(u32, f64)>, StateError> {
        let mut ptr_buf = [0u8; 8];
        self.col_ptr.read(j * 4, &mut ptr_buf)?;
        let ptrs = bytes_to_u32s(&ptr_buf);
        let (start, end) = (ptrs[0] as usize, ptrs[1] as usize);
        if start == end {
            return Ok(Vec::new());
        }
        let mut vbuf = vec![0u8; (end - start) * 8];
        self.vals.read(start * 8, &mut vbuf)?;
        let mut rbuf = vec![0u8; (end - start) * 4];
        self.row_idx.read(start * 4, &mut rbuf)?;
        let vals = bytes_to_f64s(&vbuf);
        let rows = bytes_to_u32s(&rbuf);
        Ok(rows.into_iter().zip(vals).collect())
    }
}

/// A distributed dictionary that lazily pulls each field on access (§4.1's
/// "lazily pull values only when they are accessed, such as in a distributed
/// dictionary"). Fields live in the global tier as independent keys.
pub struct SharedDict {
    kv: SharedKv,
    key: String,
}

impl std::fmt::Debug for SharedDict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedDict")
            .field("key", &self.key)
            .finish()
    }
}

impl SharedDict {
    /// Open the dictionary `key`.
    pub fn open(mgr: &StateManager, key: &str) -> SharedDict {
        SharedDict {
            kv: Arc::clone(mgr.kv()),
            key: key.to_string(),
        }
    }

    fn field_key(&self, field: &str) -> String {
        format!("{}:f:{field}", self.key)
    }

    /// Get a field.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn get(&self, field: &str) -> Result<Option<Vec<u8>>, StateError> {
        Ok(self.kv.get(&self.field_key(field))?)
    }

    /// Set a field (write-through).
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn set(&self, field: &str, value: Vec<u8>) -> Result<(), StateError> {
        self.kv.set(&self.field_key(field), value)?;
        self.kv
            .sadd(&format!("{}:fields", self.key), field.as_bytes())?;
        Ok(())
    }

    /// Remove a field; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn remove(&self, field: &str) -> Result<bool, StateError> {
        self.kv
            .srem(&format!("{}:fields", self.key), field.as_bytes())?;
        Ok(self.kv.del(&self.field_key(field))?)
    }

    /// All field names, sorted.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn fields(&self) -> Result<Vec<String>, StateError> {
        Ok(self
            .kv
            .smembers(&format!("{}:fields", self.key))?
            .into_iter()
            .filter_map(|b| String::from_utf8(b).ok())
            .collect())
    }
}

/// An append-only distributed list with atomic multi-byte appends (§4.2's
/// example of a list needing explicit locking to "perform multiple writes to
/// its state value when atomically adding an element").
pub struct SharedList {
    kv: SharedKv,
    key: String,
}

impl std::fmt::Debug for SharedList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedList")
            .field("key", &self.key)
            .finish()
    }
}

impl SharedList {
    /// Open the list `key`.
    pub fn open(mgr: &StateManager, key: &str) -> SharedList {
        SharedList {
            kv: Arc::clone(mgr.kv()),
            key: key.to_string(),
        }
    }

    /// Append one element atomically (global write lock around the
    /// length-prefixed record append).
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn push_back(&self, element: &[u8]) -> Result<(), StateError> {
        let mut record = Vec::with_capacity(4 + element.len());
        record.extend_from_slice(&(element.len() as u32).to_le_bytes());
        record.extend_from_slice(element);
        self.kv.lock(&self.key, LockMode::Write)?;
        let result = self.kv.append(&self.key, record);
        self.kv.unlock(&self.key, LockMode::Write)?;
        result?;
        Ok(())
    }

    /// Read every element.
    ///
    /// # Errors
    ///
    /// Global-tier errors; malformed bytes yield a truncated list (cannot
    /// happen through this API).
    pub fn read_all(&self) -> Result<Vec<Vec<u8>>, StateError> {
        let Some(raw) = self.kv.get(&self.key)? else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        let mut pos = 0;
        while pos + 4 <= raw.len() {
            let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4;
            if pos + len > raw.len() {
                break;
            }
            out.push(raw[pos..pos + len].to_vec());
            pos += len;
        }
        Ok(out)
    }

    /// Number of elements.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn len(&self) -> Result<usize, StateError> {
        Ok(self.read_all()?.len())
    }

    /// True if the list has no elements.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn is_empty(&self) -> Result<bool, StateError> {
        Ok(self.kv.strlen(&self.key)? == 0)
    }
}

/// A strongly-consistent distributed counter (every update is an atomic
/// global-tier operation).
pub struct SharedCounter {
    kv: SharedKv,
    key: String,
}

impl std::fmt::Debug for SharedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCounter")
            .field("key", &self.key)
            .finish()
    }
}

impl SharedCounter {
    /// Open the counter `key`.
    pub fn open(mgr: &StateManager, key: &str) -> SharedCounter {
        SharedCounter {
            kv: Arc::clone(mgr.kv()),
            key: key.to_string(),
        }
    }

    /// Atomically add `delta`; returns the new value.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn add(&self, delta: i64) -> Result<i64, StateError> {
        Ok(self.kv.incr(&self.key, delta)?)
    }

    /// Current value.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn get(&self) -> Result<i64, StateError> {
        Ok(self.kv.incr(&self.key, 0)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_kvs::{KvClient, KvStore};

    fn two_hosts() -> (StateManager, StateManager, Arc<KvClient>) {
        let store = Arc::new(KvStore::new());
        let kv1 = Arc::new(KvClient::local(Arc::clone(&store)));
        let kv2 = Arc::new(KvClient::local(Arc::clone(&store)));
        let driver = Arc::new(KvClient::local(store));
        (StateManager::new(kv1), StateManager::new(kv2), driver)
    }

    #[test]
    fn f64_byte_helpers_roundtrip() {
        let vals = vec![0.0, -1.5, std::f64::consts::PI];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&vals)), vals);
    }

    #[test]
    fn shared_vector_push_pull_across_hosts() {
        let (h1, h2, _driver) = two_hosts();
        let v1 = SharedVector::open(&h1, "w", 8).unwrap();
        v1.init(&[0.0; 8]).unwrap();
        v1.add(3, 2.5).unwrap();
        v1.add(3, 0.5).unwrap();
        v1.push().unwrap();

        let v2 = SharedVector::open(&h2, "w", 8).unwrap();
        v2.pull().unwrap();
        assert_eq!(v2.get(3).unwrap(), 3.0);
        assert_eq!(v2.get(0).unwrap(), 0.0);
        assert_eq!(v2.to_vec().unwrap().len(), 8);
    }

    #[test]
    fn shared_vector_local_sharing_without_push() {
        let (h1, _h2, _driver) = two_hosts();
        let a = SharedVector::open(&h1, "w", 4).unwrap();
        let b = SharedVector::open(&h1, "w", 4).unwrap();
        a.set(1, 9.0).unwrap();
        // Same host → same shared region → no push needed.
        assert_eq!(b.get(1).unwrap(), 9.0);
    }

    #[test]
    fn matrix_column_pulls_subset() {
        let (h1, _h2, driver) = two_hosts();
        // 64x64 matrix: one column = 512 bytes; chunk = 16 KiB default →
        // use a small chunk size manager for granularity.
        let store_mgr = StateManager::with_chunk_size(Arc::clone(h1.kv()), 512);
        let rows = 64;
        let cols = 64;
        let data: Vec<f64> = (0..rows * cols).map(|i| i as f64).collect();
        MatrixReadOnly::create(driver.as_ref(), "m", rows, cols, &data).unwrap();
        let m = MatrixReadOnly::open(&store_mgr, "m", rows, cols).unwrap();
        let col5 = m.column(5).unwrap();
        assert_eq!(col5[0], (5 * rows) as f64);
        assert_eq!(col5[rows - 1], (5 * rows + rows - 1) as f64);
        assert_eq!(m.present_chunks(), 1, "only one 512-byte chunk pulled");
        assert_eq!(m.get(2, 5).unwrap(), (5 * rows + 2) as f64);
    }

    #[test]
    fn matrix_create_validates_shape() {
        let (_h1, _h2, driver) = two_hosts();
        assert!(MatrixReadOnly::create(driver.as_ref(), "m", 2, 2, &[1.0]).is_err());
    }

    #[test]
    fn sparse_matrix_columns() {
        let (h1, _h2, driver) = two_hosts();
        let mut b = SparseMatrixBuilder::new(4, 3);
        b.push(0, 0, 1.0).push(2, 0, 3.0).push(1, 2, 5.0);
        assert_eq!(b.nnz(), 3);
        b.upload(driver.as_ref(), "sm").unwrap();
        let m = SparseMatrixReadOnly::open(&h1, "sm", 4, 3).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.column(0).unwrap(), vec![(0, 1.0), (2, 3.0)]);
        assert_eq!(m.column(1).unwrap(), vec![]);
        assert_eq!(m.column(2).unwrap(), vec![(1, 5.0)]);
    }

    #[test]
    fn sparse_matrix_missing_errors() {
        let (h1, _h2, _driver) = two_hosts();
        assert!(matches!(
            SparseMatrixReadOnly::open(&h1, "absent", 2, 2),
            Err(StateError::NotFound { .. })
        ));
    }

    #[test]
    fn shared_dict_lazy_fields() {
        let (h1, h2, _driver) = two_hosts();
        let d1 = SharedDict::open(&h1, "cfg");
        d1.set("alpha", b"1".to_vec()).unwrap();
        d1.set("beta", b"2".to_vec()).unwrap();
        let d2 = SharedDict::open(&h2, "cfg");
        assert_eq!(d2.get("alpha").unwrap(), Some(b"1".to_vec()));
        assert_eq!(d2.get("missing").unwrap(), None);
        assert_eq!(d2.fields().unwrap(), vec!["alpha", "beta"]);
        assert!(d1.remove("alpha").unwrap());
        assert_eq!(d2.fields().unwrap(), vec!["beta"]);
    }

    #[test]
    fn shared_list_appends_atomically() {
        let (h1, h2, _driver) = two_hosts();
        let l1 = SharedList::open(&h1, "log");
        assert!(l1.is_empty().unwrap());
        l1.push_back(b"first").unwrap();
        l1.push_back(b"second record").unwrap();
        let l2 = SharedList::open(&h2, "log");
        assert_eq!(
            l2.read_all().unwrap(),
            vec![b"first".to_vec(), b"second record".to_vec()]
        );
        assert_eq!(l2.len().unwrap(), 2);
    }

    #[test]
    fn shared_list_concurrent_appends_keep_records_intact() {
        let (h1, _h2, _driver) = two_hosts();
        let l = Arc::new(SharedList::open(&h1, "clog"));
        let mut handles = vec![];
        for t in 0..4u8 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u8 {
                    l.push_back(&[t, i]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let all = l.read_all().unwrap();
        assert_eq!(all.len(), 200);
        assert!(all.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn shared_counter() {
        let (h1, h2, _driver) = two_hosts();
        let c1 = SharedCounter::open(&h1, "n");
        let c2 = SharedCounter::open(&h2, "n");
        assert_eq!(c1.add(5).unwrap(), 5);
        assert_eq!(c2.add(3).unwrap(), 8);
        assert_eq!(c1.get().unwrap(), 8);
    }
}
