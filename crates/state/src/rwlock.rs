//! A readers-writer lock with explicit lock/unlock operations.
//!
//! The host interface exposes `lock_state_read` / `unlock_state_read` as
//! separate calls (Tab. 2), so guard-based locks cannot model it — the lock
//! and unlock happen in different host-call activations. This lock keeps the
//! count-based state explicit and panics on misuse only in debug builds;
//! in release it saturates safely.

use parking_lot::{Condvar, Mutex};

#[derive(Debug, Default)]
struct LockState {
    readers: usize,
    writer: bool,
}

/// An explicit (guard-free) readers-writer lock.
#[derive(Debug, Default)]
pub struct SyncRwLock {
    state: Mutex<LockState>,
    cond: Condvar,
}

impl SyncRwLock {
    /// A new unlocked lock.
    pub fn new() -> SyncRwLock {
        SyncRwLock::default()
    }

    /// Acquire a shared read lock, blocking while a writer holds the lock.
    pub fn lock_read(&self) {
        let mut s = self.state.lock();
        while s.writer {
            self.cond.wait(&mut s);
        }
        s.readers += 1;
    }

    /// Release a read lock.
    pub fn unlock_read(&self) {
        let mut s = self.state.lock();
        debug_assert!(s.readers > 0, "unlock_read without lock_read");
        s.readers = s.readers.saturating_sub(1);
        if s.readers == 0 {
            self.cond.notify_all();
        }
    }

    /// Acquire the exclusive write lock, blocking while readers or another
    /// writer hold the lock.
    pub fn lock_write(&self) {
        let mut s = self.state.lock();
        while s.writer || s.readers > 0 {
            self.cond.wait(&mut s);
        }
        s.writer = true;
    }

    /// Release the write lock.
    pub fn unlock_write(&self) {
        let mut s = self.state.lock();
        debug_assert!(s.writer, "unlock_write without lock_write");
        s.writer = false;
        self.cond.notify_all();
    }

    /// Run `f` under the read lock.
    pub fn with_read<T>(&self, f: impl FnOnce() -> T) -> T {
        self.lock_read();
        let out = f();
        self.unlock_read();
        out
    }

    /// Run `f` under the write lock.
    pub fn with_write<T>(&self, f: impl FnOnce() -> T) -> T {
        self.lock_write();
        let out = f();
        self.unlock_write();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn readers_share() {
        let l = SyncRwLock::new();
        l.lock_read();
        l.lock_read();
        l.unlock_read();
        l.unlock_read();
    }

    #[test]
    fn writer_excludes_readers() {
        let l = Arc::new(SyncRwLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        l.lock_write();
        let l2 = Arc::clone(&l);
        let c2 = Arc::clone(&counter);
        let t = std::thread::spawn(move || {
            l2.lock_read();
            c2.store(1, Ordering::SeqCst);
            l2.unlock_read();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(counter.load(Ordering::SeqCst), 0, "reader must wait");
        l.unlock_write();
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn writer_waits_for_readers() {
        let l = Arc::new(SyncRwLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        l.lock_read();
        let l2 = Arc::clone(&l);
        let c2 = Arc::clone(&counter);
        let t = std::thread::spawn(move || {
            l2.lock_write();
            c2.store(1, Ordering::SeqCst);
            l2.unlock_write();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(counter.load(Ordering::SeqCst), 0, "writer must wait");
        l.unlock_read();
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn with_helpers() {
        let l = SyncRwLock::new();
        assert_eq!(l.with_read(|| 1), 1);
        assert_eq!(l.with_write(|| 2), 2);
    }

    #[test]
    fn mutual_exclusion_of_writers() {
        let l = Arc::new(SyncRwLock::new());
        let shared = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    l.lock_write();
                    // Non-atomic read-modify-write protected by the lock.
                    let v = shared.load(Ordering::Relaxed);
                    std::hint::black_box(v);
                    shared.store(v + 1, Ordering::Relaxed);
                    l.unlock_write();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.load(Ordering::Relaxed), 2000);
    }
}
