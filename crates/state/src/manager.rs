//! The per-host state manager: owner of the local tier.
//!
//! One [`StateManager`] exists per host runtime instance (Fig. 4/5). It
//! hands out [`StateEntry`] replicas backed by shared regions, so every
//! Faaslet on the host asking for the same key gets the *same* memory — the
//! local tier is "held exclusively in Faaslet shared memory regions", with
//! no separate local storage service (§4.2).

use std::collections::HashMap;
use std::sync::Arc;

use faasm_kvs::SharedKv;
use faasm_mem::SharedRegion;
use parking_lot::RwLock;

use crate::entry::{StateEntry, DEFAULT_CHUNK_SIZE};
use crate::error::StateError;

/// Per-host local-tier manager.
pub struct StateManager {
    kv: SharedKv,
    entries: RwLock<HashMap<String, Arc<StateEntry>>>,
    chunk_size: usize,
}

impl std::fmt::Debug for StateManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateManager")
            .field("entries", &self.entries.read().len())
            .field("chunk_size", &self.chunk_size)
            .finish()
    }
}

impl StateManager {
    /// A manager over the given global-tier client.
    pub fn new(kv: SharedKv) -> StateManager {
        StateManager::with_chunk_size(kv, DEFAULT_CHUNK_SIZE)
    }

    /// A manager with an explicit chunk size.
    pub fn with_chunk_size(kv: SharedKv, chunk_size: usize) -> StateManager {
        StateManager {
            kv,
            entries: RwLock::new(HashMap::new()),
            chunk_size: chunk_size.max(1),
        }
    }

    /// The global-tier client.
    pub fn kv(&self) -> &SharedKv {
        &self.kv
    }

    /// Get (or create) the local replica for `key` with value size `size`.
    /// Concurrent callers receive the same entry — that sharing *is* the
    /// local tier.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::CapacityExceeded`] if the key already has a
    /// replica smaller than `size`.
    pub fn get(&self, key: &str, size: usize) -> Result<Arc<StateEntry>, StateError> {
        if let Some(e) = self.entries.read().get(key) {
            if size <= e.size() {
                return Ok(Arc::clone(e));
            }
            return Err(StateError::CapacityExceeded {
                requested: size,
                capacity: e.size(),
            });
        }
        let mut entries = self.entries.write();
        // Re-check under the write lock.
        if let Some(e) = entries.get(key) {
            if size <= e.size() {
                return Ok(Arc::clone(e));
            }
            return Err(StateError::CapacityExceeded {
                requested: size,
                capacity: e.size(),
            });
        }
        let region = SharedRegion::new(size);
        let entry = Arc::new(StateEntry::new(
            key,
            size,
            region,
            Arc::clone(&self.kv),
            self.chunk_size,
        )?);
        entries.insert(key.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Open a replica of an existing global value, sized from the global
    /// tier.
    ///
    /// # Errors
    ///
    /// [`StateError::NotFound`] if the key has no global value.
    pub fn get_existing(&self, key: &str) -> Result<Arc<StateEntry>, StateError> {
        if let Some(e) = self.entries.read().get(key) {
            return Ok(Arc::clone(e));
        }
        if !self.kv.exists(key)? {
            return Err(StateError::NotFound {
                key: key.to_string(),
            });
        }
        let size = self.kv.strlen(key)? as usize;
        self.get(key, size)
    }

    /// Drop the local replica for `key` (the global value is untouched).
    pub fn evict(&self, key: &str) -> bool {
        self.entries.write().remove(key).is_some()
    }

    /// Delete a key everywhere: local replica and global value.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn delete(&self, key: &str) -> Result<(), StateError> {
        self.entries.write().remove(key);
        self.kv.del(key)?;
        Ok(())
    }

    /// Keys with local replicas on this host.
    pub fn local_keys(&self) -> Vec<String> {
        let mut v: Vec<String> = self.entries.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Bytes held by the local tier (page-rounded region capacities) — the
    /// state component of the host's memory footprint.
    pub fn local_bytes(&self) -> usize {
        self.entries
            .read()
            .values()
            .map(|e| e.region().capacity())
            .sum()
    }

    /// Drop every local replica (host reset).
    pub fn clear(&self) {
        self.entries.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_kvs::{KvClient, KvStore};

    fn manager() -> StateManager {
        let store = Arc::new(KvStore::new());
        StateManager::new(Arc::new(KvClient::local(store)))
    }

    #[test]
    fn same_key_shares_one_entry() {
        let m = manager();
        let a = m.get("k", 100).unwrap();
        let b = m.get("k", 100).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.region().id(), b.region().id());
        assert_eq!(m.local_keys(), vec!["k"]);
    }

    #[test]
    fn smaller_request_reuses_larger_entry() {
        let m = manager();
        let a = m.get("k", 100).unwrap();
        let b = m.get("k", 50).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(matches!(
            m.get("k", 200),
            Err(StateError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn get_existing_uses_global_size() {
        let m = manager();
        m.kv().set("g", vec![1u8; 77]).unwrap();
        let e = m.get_existing("g").unwrap();
        assert_eq!(e.size(), 77);
        assert!(matches!(
            m.get_existing("absent"),
            Err(StateError::NotFound { .. })
        ));
    }

    #[test]
    fn evict_and_delete() {
        let m = manager();
        m.get("k", 10).unwrap();
        assert!(m.evict("k"));
        assert!(!m.evict("k"));
        m.get("d", 10).unwrap().write(0, &[1u8; 10]).unwrap();
        m.get("d", 10).unwrap().push().unwrap();
        assert!(m.kv().exists("d").unwrap());
        m.delete("d").unwrap();
        assert!(!m.kv().exists("d").unwrap());
        assert!(m.local_keys().is_empty());
    }

    #[test]
    fn local_bytes_accounts_regions() {
        let m = manager();
        m.get("a", 10).unwrap();
        m.get("b", faasm_mem::PAGE_SIZE + 1).unwrap();
        assert_eq!(m.local_bytes(), 3 * faasm_mem::PAGE_SIZE);
        m.clear();
        assert_eq!(m.local_bytes(), 0);
    }

    #[test]
    fn concurrent_get_returns_same_entry() {
        let m = Arc::new(manager());
        let mut handles = vec![];
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                m.get("shared", 1000).unwrap().region().id()
            }));
        }
        let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
