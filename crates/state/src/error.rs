//! State-layer errors.

use faasm_kvs::KvError;
use faasm_mem::MemError;

/// Errors from two-tier state operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StateError {
    /// The global tier failed.
    Kv(KvError),
    /// A local-memory operation failed.
    Mem(MemError),
    /// An access fell outside the state value.
    OutOfRange {
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Value size.
        size: usize,
    },
    /// A state value was re-opened with a size exceeding its capacity.
    CapacityExceeded {
        /// Requested size.
        requested: usize,
        /// Backing capacity.
        capacity: usize,
    },
    /// The key does not exist in the global tier.
    NotFound {
        /// The state key.
        key: String,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Kv(e) => write!(f, "global tier: {e}"),
            StateError::Mem(e) => write!(f, "local tier: {e}"),
            StateError::OutOfRange { offset, len, size } => {
                write!(
                    f,
                    "state access {offset}..{} out of range (size {size})",
                    offset + len
                )
            }
            StateError::CapacityExceeded {
                requested,
                capacity,
            } => write!(f, "state size {requested} exceeds capacity {capacity}"),
            StateError::NotFound { key } => write!(f, "state key not found: {key:?}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<KvError> for StateError {
    fn from(e: KvError) -> StateError {
        StateError::Kv(e)
    }
}

impl From<MemError> for StateError {
    fn from(e: MemError) -> StateError {
        StateError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = StateError::OutOfRange {
            offset: 10,
            len: 4,
            size: 12,
        };
        assert!(e.to_string().contains("10..14"));
        assert!(StateError::NotFound { key: "k".into() }
            .to_string()
            .contains("k"));
    }
}
