//! A single state value in the two-tier architecture (§4.2).
//!
//! A [`StateEntry`] is one key's **local-tier replica**: a shared memory
//! region (mapped zero-copy into every Faaslet on the host that uses the
//! key), a chunk table tracking which parts of the authoritative global
//! value are present locally and which local writes are dirty, plus the
//! local read/write lock. Pulls fetch only missing chunks; pushes send only
//! dirty chunks — the mechanism behind Listing 1's sparse matrix access and
//! batched weight updates.
//!
//! Failover transparency: batched pulls and pushes go through the shared
//! [`SharedKv`] backend, whose cell-connected sharded client parks and
//! retries on `WrongEpoch`/`NotPrimary` redirects and on the network
//! errors of a crashed primary. A push in flight when a shard dies simply
//! waits out the failover blackout and lands on the promoted backup — no
//! code here knows replication exists.

use faasm_kvs::{LockMode, SharedKv};
use faasm_mem::SharedRegion;
use faasm_telemetry::{Recorder, SpanKind};
use parking_lot::Mutex;

use crate::error::StateError;
use crate::rwlock::SyncRwLock;

/// The state tier's flight recorder, fetched once (the `tier()` registry
/// lock must not sit on the pull/push hot path).
fn state_recorder() -> &'static std::sync::Arc<Recorder> {
    static RECORDER: std::sync::OnceLock<std::sync::Arc<Recorder>> = std::sync::OnceLock::new();
    RECORDER.get_or_init(|| faasm_telemetry::tier("state"))
}

/// Run one global-tier round trip under its own child span. The span's
/// context is installed as the thread-local current for the duration, so
/// KVS requests encoded inside `f` carry it — the shard's `ShardApply`
/// span (and any `WrongEpochRetry` park) nests under this pull/push span
/// in the trace tree. Untraced callers pay one thread-local read.
fn state_span<T>(kind: SpanKind, extra: u64, f: impl FnOnce() -> T) -> T {
    let parent = faasm_telemetry::current();
    if parent.is_none() {
        return f();
    }
    let ctx = parent.child();
    let start_ns = faasm_telemetry::now_ns();
    let out = {
        let _tracing = faasm_telemetry::set_current(ctx);
        f()
    };
    state_recorder().record(faasm_telemetry::SpanRecord {
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_id: parent.span_id,
        kind,
        start_ns,
        end_ns: faasm_telemetry::now_ns(),
        extra,
    });
    out
}

/// Default chunk size: 16 KiB balances pull granularity against per-request
/// overhead (the paper treats chunks as "smaller independent state values").
pub const DEFAULT_CHUNK_SIZE: usize = 16 * 1024;

#[derive(Debug)]
struct ChunkTable {
    present: Vec<bool>,
    dirty: Vec<bool>,
}

/// One state key's local replica plus its synchronisation state.
pub struct StateEntry {
    key: String,
    region: SharedRegion,
    size: usize,
    chunk_size: usize,
    chunks: Mutex<ChunkTable>,
    local_lock: SyncRwLock,
    kv: SharedKv,
}

impl std::fmt::Debug for StateEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateEntry")
            .field("key", &self.key)
            .field("size", &self.size)
            .field("chunk_size", &self.chunk_size)
            .finish()
    }
}

impl StateEntry {
    /// Create a replica of `key` with value size `size`, backed by `region`
    /// (which must have capacity for `size` bytes).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::CapacityExceeded`] if the region is too small.
    pub fn new(
        key: &str,
        size: usize,
        region: SharedRegion,
        kv: SharedKv,
        chunk_size: usize,
    ) -> Result<StateEntry, StateError> {
        if size > region.capacity() {
            return Err(StateError::CapacityExceeded {
                requested: size,
                capacity: region.capacity(),
            });
        }
        let n_chunks = size.div_ceil(chunk_size).max(1);
        Ok(StateEntry {
            key: key.to_string(),
            region,
            size,
            chunk_size,
            chunks: Mutex::new(ChunkTable {
                present: vec![false; n_chunks],
                dirty: vec![false; n_chunks],
            }),
            local_lock: SyncRwLock::new(),
            kv,
        })
    }

    /// The state key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The value size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The chunk size in bytes.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// The backing shared region — mapped into Faaslet linear memories for
    /// zero-copy access (§3.3). Callers mapping the region get raw access;
    /// they must use [`StateEntry::lock_read`]/[`StateEntry::lock_write`]
    /// for synchronised access or accept HOGWILD-style races.
    pub fn region(&self) -> &SharedRegion {
        &self.region
    }

    /// Number of chunks currently present in the local tier.
    pub fn present_chunks(&self) -> usize {
        self.chunks.lock().present.iter().filter(|p| **p).count()
    }

    /// Number of chunks dirtied by local writes since the last push.
    pub fn dirty_chunks(&self) -> usize {
        self.chunks.lock().dirty.iter().filter(|d| **d).count()
    }

    fn check_range(&self, offset: usize, len: usize) -> Result<(), StateError> {
        if offset.checked_add(len).is_none_or(|end| end > self.size) {
            return Err(StateError::OutOfRange {
                offset,
                len,
                size: self.size,
            });
        }
        Ok(())
    }

    fn chunk_span(&self, offset: usize, len: usize) -> (usize, usize) {
        let first = offset / self.chunk_size;
        let last = if len == 0 {
            first
        } else {
            (offset + len - 1) / self.chunk_size
        };
        (first, last)
    }

    fn chunk_bounds(&self, idx: usize) -> (usize, usize) {
        let start = idx * self.chunk_size;
        let end = ((idx + 1) * self.chunk_size).min(self.size);
        (start, end)
    }

    /// Coalesce sorted chunk indices into contiguous `(start, end)` byte
    /// spans (adjacent chunks merge into one wire span).
    fn coalesce(&self, chunks: &[usize]) -> Vec<(usize, usize)> {
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for &idx in chunks {
            let (start, end) = self.chunk_bounds(idx);
            match spans.last_mut() {
                Some((_, e)) if *e == start => *e = end,
                _ => spans.push((start, end)),
            }
        }
        spans
    }

    /// Fetch any chunks in `offset..offset+len` missing from the local
    /// replica ("the DDO implicitly performs a pull operation to ensure that
    /// data is present... only replicates the necessary subsets", §4.1).
    ///
    /// Missing chunks are coalesced into contiguous spans and fetched with
    /// **one** batched round-trip; the chunk table is never locked while
    /// the request is on the wire, so concurrent operations on other
    /// chunks of this key proceed at memory speed.
    ///
    /// # Errors
    ///
    /// Global-tier or range errors.
    pub fn pull_range(&self, offset: usize, len: usize) -> Result<(), StateError> {
        self.check_range(offset, len)?;
        let (first, last) = self.chunk_span(offset, len);
        // Snapshot the missing set, then release the lock before the fetch.
        let missing: Vec<usize> = {
            let table = self.chunks.lock();
            (first..=last).filter(|&i| !table.present[i]).collect()
        };
        if missing.is_empty() {
            return Ok(());
        }
        let spans = self.coalesce(&missing);
        let wire_spans: Vec<(u64, u64)> = spans
            .iter()
            .map(|&(s, e)| (s as u64, (e - s) as u64))
            .collect();
        let pulled_bytes: u64 = wire_spans.iter().map(|&(_, len)| len).sum();
        let fetched = state_span(SpanKind::StatePull, pulled_bytes, || {
            self.kv.multi_get_range(&self.key, &wire_spans)
        })?;
        // Reconcile under the lock: a chunk that became present meanwhile
        // (a concurrent write dirtied it, or another pull landed first)
        // keeps its local bytes — global data fetched before the race
        // resolved must not clobber it.
        let mut table = self.chunks.lock();
        match fetched {
            Some(runs) => {
                for (&(span_start, span_end), run) in spans.iter().zip(&runs) {
                    let mut idx = span_start / self.chunk_size;
                    loop {
                        let (start, end) = self.chunk_bounds(idx);
                        if start >= span_end {
                            break;
                        }
                        if !table.present[idx] {
                            // The run may be truncated if the global value
                            // is shorter than the span.
                            let have = run.len().saturating_sub(start - span_start);
                            let take = have.min(end - start);
                            if take > 0 {
                                let rel = start - span_start;
                                self.region.write(start, &run[rel..rel + take])?;
                            }
                            table.present[idx] = true;
                        }
                        idx += 1;
                    }
                }
            }
            // Key absent globally: the zeroed region is authoritative.
            None => missing.iter().for_each(|&i| table.present[i] = true),
        }
        Ok(())
    }

    /// Pull the entire value (`pull_state`, Tab. 2).
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn pull(&self) -> Result<(), StateError> {
        self.pull_range(0, self.size)
    }

    /// Push dirty chunks to the global tier (`push_state`); clears dirty
    /// bits. Adjacent dirty chunks coalesce into contiguous spans sent in
    /// **one** batched round-trip, with no table lock held on the wire.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn push(&self) -> Result<(), StateError> {
        // Claim the dirty set up front (bits clear now): a write racing
        // this push re-dirties its chunk and is owed the *next* push —
        // clearing after the send would silently absorb it into this one.
        // On error the claimed bits are restored so no write is lost.
        let dirty: Vec<usize> = {
            let mut table = self.chunks.lock();
            let dirty: Vec<usize> = table
                .dirty
                .iter()
                .enumerate()
                .filter_map(|(i, d)| d.then_some(i))
                .collect();
            dirty.iter().for_each(|&i| table.dirty[i] = false);
            dirty
        };
        if dirty.is_empty() {
            return Ok(());
        }
        let result = (|| {
            let spans = self.coalesce(&dirty);
            let mut writes = Vec::with_capacity(spans.len());
            for &(start, end) in &spans {
                let mut buf = vec![0u8; end - start];
                self.region.read(start, &mut buf)?;
                writes.push((start as u64, buf));
            }
            let pushed_bytes: u64 = writes.iter().map(|(_, buf)| buf.len() as u64).sum();
            state_span(SpanKind::StatePush, pushed_bytes, || {
                self.kv.multi_set_range(&self.key, writes)
            })?;
            Ok(())
        })();
        if result.is_err() {
            let mut table = self.chunks.lock();
            dirty.iter().for_each(|&i| table.dirty[i] = true);
        }
        result
    }

    /// Push the entire value regardless of dirty state (`push_state`,
    /// Tab. 2). Guests that write through a mapped pointer bypass dirty
    /// tracking (§4.2 notes pointer writes skip the implicit machinery), so
    /// the whole-value push is the safe host-interface semantics. Marks all
    /// chunks present and clean.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn push_full(&self) -> Result<(), StateError> {
        let mut buf = vec![0u8; self.size];
        self.region.read(0, &mut buf)?;
        state_span(SpanKind::StatePush, self.size as u64, || {
            self.kv.set(&self.key, buf)
        })?;
        let mut table = self.chunks.lock();
        table.present.iter_mut().for_each(|p| *p = true);
        table.dirty.iter_mut().for_each(|d| *d = false);
        Ok(())
    }

    /// Push one byte range regardless of dirty state (`push_state_offset`).
    ///
    /// # Errors
    ///
    /// Global-tier or range errors.
    pub fn push_range(&self, offset: usize, len: usize) -> Result<(), StateError> {
        self.push_ranges(&[(offset, len)])
    }

    /// Push several byte ranges regardless of dirty state, in **one**
    /// batched round-trip — the safe flush for writers updating scattered
    /// disjoint ranges of a shared value (chunk-granular [`StateEntry::push`]
    /// would overwrite neighbouring bytes they never touched).
    ///
    /// # Errors
    ///
    /// Global-tier or range errors.
    pub fn push_ranges(&self, ranges: &[(usize, usize)]) -> Result<(), StateError> {
        for &(offset, len) in ranges {
            self.check_range(offset, len)?;
        }
        if ranges.is_empty() {
            return Ok(());
        }
        // Claim fully covered dirty chunks up front, like [`StateEntry::push`]:
        // a write racing this flush re-dirties its chunk *after* the claim
        // and is owed the next push — clearing after the send would mark a
        // racing write clean without its bytes ever leaving the host.
        let claimed: Vec<usize> = {
            let mut table = self.chunks.lock();
            let mut claimed = Vec::new();
            for &(offset, len) in ranges {
                let (first, last) = self.chunk_span(offset, len);
                for idx in first..=last {
                    let (start, end) = self.chunk_bounds(idx);
                    if offset <= start && offset + len >= end && table.dirty[idx] {
                        table.dirty[idx] = false;
                        claimed.push(idx);
                    }
                }
            }
            claimed
        };
        let result = (|| {
            let mut writes = Vec::with_capacity(ranges.len());
            for &(offset, len) in ranges {
                let mut buf = vec![0u8; len];
                self.region.read(offset, &mut buf)?;
                writes.push((offset as u64, buf));
            }
            let pushed_bytes: u64 = writes.iter().map(|(_, buf)| buf.len() as u64).sum();
            state_span(SpanKind::StatePush, pushed_bytes, || {
                self.kv.multi_set_range(&self.key, writes)
            })?;
            Ok(())
        })();
        if result.is_err() {
            let mut table = self.chunks.lock();
            claimed.iter().for_each(|&i| table.dirty[i] = true);
        }
        result
    }

    /// Clear dirty bits for every chunk overlapping `ranges` — the settle
    /// step of the range-flush protocol. A writer that flushes **all** of
    /// its writes through [`StateEntry::push_ranges`] holds nothing locally
    /// newer than the global tier in the chunks it touched, so it clears
    /// them here; otherwise a later chunk-granular [`StateEntry::push`]
    /// would re-upload whole stale chunks and, on a shared-output value,
    /// clobber other writers' bytes. Out-of-range entries are ignored.
    pub fn clear_dirty_ranges(&self, ranges: &[(usize, usize)]) {
        let mut table = self.chunks.lock();
        for &(offset, len) in ranges {
            if offset.checked_add(len).is_none_or(|end| end > self.size) {
                continue;
            }
            let (first, last) = self.chunk_span(offset, len);
            for idx in first..=last {
                table.dirty[idx] = false;
            }
        }
    }

    /// Read from the local replica, pulling missing chunks first. Takes the
    /// local read lock implicitly (§4.2 "locking happens implicitly as part
    /// of all state API functions").
    ///
    /// # Errors
    ///
    /// Global-tier or range errors.
    pub fn read(&self, offset: usize, buf: &mut [u8]) -> Result<(), StateError> {
        self.pull_range(offset, buf.len())?;
        self.local_lock.lock_read();
        let r = self.region.read(offset, buf);
        self.local_lock.unlock_read();
        r.map_err(StateError::from)
    }

    /// Write to the local replica and mark dirty chunks. Chunks partially
    /// covered by the write are pulled first (read-modify-write), so a later
    /// push cannot clobber global bytes the Faaslet never saw. Takes the
    /// local write lock implicitly.
    ///
    /// # Errors
    ///
    /// Global-tier or range errors.
    pub fn write(&self, offset: usize, data: &[u8]) -> Result<(), StateError> {
        self.check_range(offset, data.len())?;
        let (first, last) = self.chunk_span(offset, data.len());
        // Pull partially-covered, absent chunks.
        {
            let table = self.chunks.lock();
            let mut need_pull = Vec::new();
            for idx in first..=last {
                let (start, end) = self.chunk_bounds(idx);
                let fully_covered = offset <= start && offset + data.len() >= end;
                if !table.present[idx] && !fully_covered {
                    need_pull.push((start, end));
                }
            }
            drop(table);
            for (start, end) in need_pull {
                self.pull_range(start, end - start)?;
            }
        }
        // Claim every covered chunk present *before* touching the region:
        // a pull whose batched fetch is already on the wire reconciles
        // under the table lock and skips present chunks, so the claim is
        // what stops stale global bytes from overwriting this write once
        // it lands (the fetch-in-flight/write race).
        {
            let mut table = self.chunks.lock();
            for idx in first..=last {
                table.present[idx] = true;
            }
        }
        self.local_lock.lock_write();
        let r = self.region.write(offset, data);
        self.local_lock.unlock_write();
        r?;
        let mut table = self.chunks.lock();
        for idx in first..=last {
            table.dirty[idx] = true;
        }
        Ok(())
    }

    /// Append to the authoritative global value (`append_state`). Appended
    /// data bypasses the fixed-size local replica; readers use
    /// [`StateEntry::read_appended`].
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn append(&self, data: &[u8]) -> Result<u64, StateError> {
        let len = data.len() as u64;
        Ok(state_span(SpanKind::StatePush, len, || {
            self.kv.append(&self.key, data.to_vec())
        })?)
    }

    /// Read the full current global value, including appended data beyond
    /// the local replica size.
    ///
    /// # Errors
    ///
    /// Global-tier errors; [`StateError::NotFound`] if the key is absent.
    pub fn read_appended(&self) -> Result<Vec<u8>, StateError> {
        state_span(SpanKind::StatePull, 0, || self.kv.get(&self.key))?.ok_or_else(|| {
            StateError::NotFound {
                key: self.key.clone(),
            }
        })
    }

    /// Explicit local read lock (`lock_state_read`).
    pub fn lock_read(&self) {
        self.local_lock.lock_read();
    }

    /// Explicit local read unlock.
    pub fn unlock_read(&self) {
        self.local_lock.unlock_read();
    }

    /// Explicit local write lock (`lock_state_write`).
    pub fn lock_write(&self) {
        self.local_lock.lock_write();
    }

    /// Explicit local write unlock.
    pub fn unlock_write(&self) {
        self.local_lock.unlock_write();
    }

    /// Acquire the global read lock (`lock_state_global_read`), blocking.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn lock_global_read(&self) -> Result<(), StateError> {
        Ok(state_span(SpanKind::LockWait, 0, || {
            self.kv.lock(&self.key, LockMode::Read)
        })?)
    }

    /// Release the global read lock.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn unlock_global_read(&self) -> Result<(), StateError> {
        Ok(self.kv.unlock(&self.key, LockMode::Read)?)
    }

    /// Acquire the global write lock (`lock_state_global_write`), blocking.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn lock_global_write(&self) -> Result<(), StateError> {
        Ok(state_span(SpanKind::LockWait, 1, || {
            self.kv.lock(&self.key, LockMode::Write)
        })?)
    }

    /// Release the global write lock.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn unlock_global_write(&self) -> Result<(), StateError> {
        Ok(self.kv.unlock(&self.key, LockMode::Write)?)
    }

    /// Forget local presence so the next access re-pulls (used after another
    /// party is known to have changed the global value, and by tests).
    pub fn invalidate(&self) {
        let mut table = self.chunks.lock();
        table.present.iter_mut().for_each(|p| *p = false);
        table.dirty.iter_mut().for_each(|d| *d = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_kvs::{KvBackend, KvClient, KvError, KvStore};
    use std::sync::Arc;
    use std::time::Duration;

    fn entry_with(size: usize, chunk: usize) -> (Arc<KvClient>, StateEntry) {
        let store = Arc::new(KvStore::new());
        let kv = Arc::new(KvClient::local(store));
        let region = SharedRegion::new(size.max(1));
        let e = StateEntry::new("k", size, region, Arc::clone(&kv) as SharedKv, chunk).unwrap();
        (kv, e)
    }

    /// Forwards every non-batched [`KvBackend`] method to an inner client
    /// field, so test wrappers only spell out the batched ops they alter.
    macro_rules! forward_kv_passthrough {
        ($field:tt) => {
            fn get(&self, key: &str) -> Result<Option<Vec<u8>>, KvError> {
                self.$field.get(key)
            }
            fn set(&self, key: &str, value: Vec<u8>) -> Result<(), KvError> {
                self.$field.set(key, value)
            }
            fn get_range(
                &self,
                key: &str,
                offset: u64,
                len: u64,
            ) -> Result<Option<Vec<u8>>, KvError> {
                self.$field.get_range(key, offset, len)
            }
            fn set_range(&self, key: &str, offset: u64, data: Vec<u8>) -> Result<(), KvError> {
                self.$field.set_range(key, offset, data)
            }
            fn append(&self, key: &str, data: Vec<u8>) -> Result<u64, KvError> {
                self.$field.append(key, data)
            }
            fn del(&self, key: &str) -> Result<bool, KvError> {
                self.$field.del(key)
            }
            fn exists(&self, key: &str) -> Result<bool, KvError> {
                self.$field.exists(key)
            }
            fn strlen(&self, key: &str) -> Result<u64, KvError> {
                self.$field.strlen(key)
            }
            fn incr(&self, key: &str, delta: i64) -> Result<i64, KvError> {
                self.$field.incr(key, delta)
            }
            fn sadd(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
                self.$field.sadd(key, member)
            }
            fn srem(&self, key: &str, member: &[u8]) -> Result<bool, KvError> {
                self.$field.srem(key, member)
            }
            fn smembers(&self, key: &str) -> Result<Vec<Vec<u8>>, KvError> {
                self.$field.smembers(key)
            }
            fn scard(&self, key: &str) -> Result<u64, KvError> {
                self.$field.scard(key)
            }
            fn try_lock(&self, key: &str, mode: LockMode) -> Result<bool, KvError> {
                self.$field.try_lock(key, mode)
            }
            fn lock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
                self.$field.lock(key, mode)
            }
            fn unlock(&self, key: &str, mode: LockMode) -> Result<(), KvError> {
                self.$field.unlock(key, mode)
            }
            fn ping(&self) -> Result<(), KvError> {
                self.$field.ping()
            }
            fn flush(&self) -> Result<(), KvError> {
                self.$field.flush()
            }
        };
    }

    /// A backend that counts batched calls and stalls batched *reads* on
    /// demand — the latency-injection seam for lock-discipline tests.
    struct SlowKv {
        inner: Arc<KvClient>,
        delay: Duration,
        multi_gets: std::sync::atomic::AtomicUsize,
        multi_sets: std::sync::atomic::AtomicUsize,
    }

    impl SlowKv {
        fn new(inner: Arc<KvClient>, delay: Duration) -> SlowKv {
            SlowKv {
                inner,
                delay,
                multi_gets: std::sync::atomic::AtomicUsize::new(0),
                multi_sets: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl KvBackend for SlowKv {
        forward_kv_passthrough!(inner);
        fn multi_get_range(
            &self,
            key: &str,
            spans: &[(u64, u64)],
        ) -> Result<Option<Vec<Vec<u8>>>, KvError> {
            self.multi_gets
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            std::thread::sleep(self.delay);
            self.inner.multi_get_range(key, spans)
        }
        fn multi_set_range(&self, key: &str, writes: Vec<(u64, Vec<u8>)>) -> Result<(), KvError> {
            self.multi_sets
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.multi_set_range(key, writes)
        }
    }

    #[test]
    fn write_then_read_local() {
        let (_kv, e) = entry_with(100, 16);
        e.write(10, b"hello").unwrap();
        let mut buf = [0u8; 5];
        e.read(10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert!(e.dirty_chunks() > 0);
    }

    #[test]
    fn push_sends_only_dirty_chunks() {
        let (kv, e) = entry_with(64, 16); // 4 chunks
        e.write(0, &[1u8; 16]).unwrap(); // chunk 0
        e.write(48, &[2u8; 16]).unwrap(); // chunk 3
        assert_eq!(e.dirty_chunks(), 2);
        e.push().unwrap();
        assert_eq!(e.dirty_chunks(), 0);
        let global = kv.get("k").unwrap().unwrap();
        assert_eq!(&global[0..16], &[1u8; 16]);
        assert_eq!(&global[48..64], &[2u8; 16]);
        // Untouched middle chunks were never sent; global zero-extended.
        assert_eq!(&global[16..48], &[0u8; 32]);
    }

    #[test]
    fn pull_fetches_only_missing_chunks() {
        let (kv, e) = entry_with(64, 16);
        kv.set("k", (0u8..64).collect()).unwrap();
        e.pull_range(20, 4).unwrap(); // chunk 1 only
        assert_eq!(e.present_chunks(), 1);
        let mut buf = [0u8; 4];
        e.read(20, &mut buf).unwrap();
        assert_eq!(buf, [20, 21, 22, 23]);
        e.pull().unwrap();
        assert_eq!(e.present_chunks(), 4);
    }

    #[test]
    fn read_pulls_implicitly() {
        let (kv, e) = entry_with(32, 16);
        kv.set("k", vec![7u8; 32]).unwrap();
        let mut buf = [0u8; 8];
        e.read(4, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 8]);
        assert_eq!(e.present_chunks(), 1, "only the covering chunk pulled");
    }

    #[test]
    fn partial_write_to_absent_chunk_preserves_global_bytes() {
        let (kv, e) = entry_with(32, 16);
        kv.set("k", vec![9u8; 32]).unwrap();
        // Partial write into chunk 0 without reading it first.
        e.write(4, b"AB").unwrap();
        e.push().unwrap();
        let global = kv.get("k").unwrap().unwrap();
        assert_eq!(global[0], 9, "pre-existing byte survives RMW");
        assert_eq!(&global[4..6], b"AB");
        assert_eq!(global[6], 9);
    }

    #[test]
    fn push_range_clears_covered_chunk_dirty() {
        let (kv, e) = entry_with(32, 16);
        e.write(0, &[1u8; 32]).unwrap();
        assert_eq!(e.dirty_chunks(), 2);
        e.push_range(0, 16).unwrap();
        assert_eq!(e.dirty_chunks(), 1);
        assert_eq!(kv.strlen("k").unwrap(), 16);
    }

    #[test]
    fn out_of_range_rejected() {
        let (_kv, e) = entry_with(10, 16);
        let mut buf = [0u8; 4];
        assert!(matches!(
            e.read(8, &mut buf),
            Err(StateError::OutOfRange { .. })
        ));
        assert!(e.write(10, &[0]).is_err());
        assert!(e.pull_range(usize::MAX, 2).is_err());
    }

    #[test]
    fn capacity_checked_at_creation() {
        let store = Arc::new(KvStore::new());
        let kv = Arc::new(KvClient::local(store));
        let region = SharedRegion::new(10); // one page capacity
        assert!(StateEntry::new("k", faasm_mem::PAGE_SIZE + 1, region, kv, 1024).is_err());
    }

    #[test]
    fn append_and_read_appended() {
        let (_kv, e) = entry_with(4, 16);
        e.write(0, b"base").unwrap();
        e.push().unwrap();
        assert_eq!(e.append(b"+one").unwrap(), 8);
        assert_eq!(e.append(b"+two").unwrap(), 12);
        assert_eq!(e.read_appended().unwrap(), b"base+one+two");
    }

    #[test]
    fn explicit_local_locks() {
        let (_kv, e) = entry_with(8, 16);
        e.lock_write();
        e.unlock_write();
        e.lock_read();
        e.lock_read();
        e.unlock_read();
        e.unlock_read();
    }

    #[test]
    fn global_locks_roundtrip() {
        let (_kv, e) = entry_with(8, 16);
        e.lock_global_write().unwrap();
        e.unlock_global_write().unwrap();
        e.lock_global_read().unwrap();
        e.unlock_global_read().unwrap();
    }

    #[test]
    fn invalidate_forces_repull() {
        let (kv, e) = entry_with(8, 16);
        kv.set("k", vec![1u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        e.read(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 8]);
        kv.set("k", vec![2u8; 8]).unwrap();
        // Still cached.
        e.read(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 8]);
        e.invalidate();
        e.read(0, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 8]);
    }

    #[test]
    fn pull_and_push_batch_into_single_round_trips() {
        let store = Arc::new(KvStore::new());
        let plain = Arc::new(KvClient::local(Arc::clone(&store)));
        plain.set("k", (0u8..64).collect()).unwrap();
        let kv = Arc::new(SlowKv::new(Arc::clone(&plain), Duration::ZERO));
        let e = StateEntry::new(
            "k",
            64,
            SharedRegion::new(64),
            Arc::clone(&kv) as SharedKv,
            16,
        )
        .unwrap();
        // 4 missing chunks, one wire round-trip.
        e.pull().unwrap();
        assert_eq!(kv.multi_gets.load(std::sync::atomic::Ordering::Relaxed), 1);
        let mut buf = [0u8; 64];
        e.read(0, &mut buf).unwrap();
        assert_eq!(buf.to_vec(), (0u8..64).collect::<Vec<u8>>());
        // Scattered dirty chunks (0, 1 and 3): still one round-trip, and
        // the untouched chunk 2 is not clobbered.
        e.write(0, &[9u8; 32]).unwrap();
        e.write(48, &[8u8; 16]).unwrap();
        e.push().unwrap();
        assert_eq!(kv.multi_sets.load(std::sync::atomic::Ordering::Relaxed), 1);
        let global = plain.get("k").unwrap().unwrap();
        assert_eq!(&global[0..32], &[9u8; 32]);
        assert_eq!(&global[32..48], &(32u8..48).collect::<Vec<u8>>()[..]);
        assert_eq!(&global[48..64], &[8u8; 16]);
    }

    #[test]
    fn pull_zero_fills_beyond_a_short_global_value() {
        let store = Arc::new(KvStore::new());
        let kv = Arc::new(KvClient::local(Arc::clone(&store)));
        kv.set("k", vec![7u8; 20]).unwrap();
        let region = SharedRegion::new(64);
        let e = StateEntry::new("k", 64, region, Arc::clone(&kv) as SharedKv, 16).unwrap();
        let mut buf = [0u8; 64];
        e.read(0, &mut buf).unwrap();
        assert_eq!(&buf[..20], &[7u8; 20]);
        assert_eq!(&buf[20..], &[0u8; 44]);
        assert_eq!(e.present_chunks(), 4);
    }

    #[test]
    fn slow_pull_does_not_block_ops_on_other_chunks() {
        // Regression for the chunk-table mutex held across KV round-trips:
        // while one thread's pull is stalled on the wire, local writes,
        // dirty queries and range pushes on *other* chunks must proceed.
        let store = Arc::new(KvStore::new());
        let plain = Arc::new(KvClient::local(Arc::clone(&store)));
        plain.set("k", vec![5u8; 64]).unwrap();
        // Delay reads only, so the concurrent push is not itself slowed.
        let slow = Arc::new(SlowKv::new(Arc::clone(&plain), Duration::from_millis(400)));
        let e = Arc::new(
            StateEntry::new(
                "k",
                64,
                SharedRegion::new(64),
                Arc::clone(&slow) as SharedKv,
                16,
            )
            .unwrap(),
        );
        let puller = {
            let e = Arc::clone(&e);
            std::thread::spawn(move || e.pull_range(0, 16).unwrap())
        };
        // Let the puller reach its stalled round-trip.
        while slow.multi_gets.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let t0 = std::time::Instant::now();
        e.write(48, &[1u8; 16]).unwrap();
        assert_eq!(e.dirty_chunks(), 1);
        e.push_range(48, 16).unwrap();
        let elapsed = t0.elapsed();
        puller.join().unwrap();
        assert!(
            elapsed < Duration::from_millis(150),
            "ops on other chunks stalled {elapsed:?} behind a slow pull"
        );
        // And the slow pull still landed its chunk.
        let mut buf = [0u8; 16];
        e.read(0, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 16]);
    }

    #[test]
    fn write_during_inflight_pull_is_not_clobbered_by_stale_fetch() {
        // The fetch-in-flight/write race: a pull's batched read is on the
        // wire (no lock held) when a fully-covering write lands on one of
        // the chunks being fetched. The write's claim must win — the
        // pull's reconcile may not overwrite it with stale global bytes,
        // and the next push must upload the fresh write.
        let store = Arc::new(KvStore::new());
        let plain = Arc::new(KvClient::local(Arc::clone(&store)));
        plain.set("k", vec![5u8; 32]).unwrap();
        let slow = Arc::new(SlowKv::new(Arc::clone(&plain), Duration::from_millis(300)));
        let e = Arc::new(
            StateEntry::new(
                "k",
                32,
                SharedRegion::new(32),
                Arc::clone(&slow) as SharedKv,
                16,
            )
            .unwrap(),
        );
        let puller = {
            let e = Arc::clone(&e);
            std::thread::spawn(move || e.pull().unwrap())
        };
        while slow.multi_gets.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The fetch (stale 5s) is in flight; overwrite chunk 0 locally.
        e.write(0, &[9u8; 16]).unwrap();
        puller.join().unwrap();
        let mut buf = [0u8; 16];
        e.read(0, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 16], "in-flight pull must not clobber the write");
        e.push().unwrap();
        assert_eq!(
            plain.get_range("k", 0, 16).unwrap().unwrap(),
            vec![9u8; 16],
            "push uploads the surviving write"
        );
    }

    #[test]
    fn clear_dirty_ranges_settles_flushed_chunks() {
        let store = Arc::new(KvStore::new());
        let plain = Arc::new(KvClient::local(Arc::clone(&store)));
        let kv = Arc::new(SlowKv::new(Arc::clone(&plain), Duration::ZERO));
        let e = StateEntry::new(
            "k",
            64,
            SharedRegion::new(64),
            Arc::clone(&kv) as SharedKv,
            16,
        )
        .unwrap();
        // Scattered partial-chunk writes flushed by range stay dirty...
        e.write(0, &[1u8; 4]).unwrap();
        e.write(40, &[2u8; 4]).unwrap();
        e.push_ranges(&[(0, 4), (40, 4)]).unwrap();
        assert_eq!(e.dirty_chunks(), 2);
        // ...until the writer settles them; a later chunk push then sends
        // nothing (no stale-chunk clobber on shared-output values).
        e.clear_dirty_ranges(&[(0, 4), (40, 4)]);
        assert_eq!(e.dirty_chunks(), 0);
        let sets_before = kv.multi_sets.load(std::sync::atomic::Ordering::Relaxed);
        e.push().unwrap();
        assert_eq!(
            kv.multi_sets.load(std::sync::atomic::Ordering::Relaxed),
            sets_before,
            "nothing dirty, nothing sent"
        );
        // Out-of-range settles are ignored.
        e.clear_dirty_ranges(&[(usize::MAX, 2), (60, 8)]);
    }

    #[test]
    fn push_ranges_is_one_round_trip_and_preserves_neighbours() {
        let store = Arc::new(KvStore::new());
        let plain = Arc::new(KvClient::local(Arc::clone(&store)));
        plain.set("k", vec![3u8; 64]).unwrap();
        let kv = Arc::new(SlowKv::new(Arc::clone(&plain), Duration::ZERO));
        let e = StateEntry::new(
            "k",
            64,
            SharedRegion::new(64),
            Arc::clone(&kv) as SharedKv,
            16,
        )
        .unwrap();
        // Scattered 4-byte writes within chunks this entry never pulled.
        e.write(0, &[1u8; 4]).unwrap();
        e.write(20, &[2u8; 4]).unwrap();
        e.push_ranges(&[(0, 4), (20, 4)]).unwrap();
        assert_eq!(kv.multi_sets.load(std::sync::atomic::Ordering::Relaxed), 1);
        let global = plain.get("k").unwrap().unwrap();
        assert_eq!(&global[0..4], &[1u8; 4]);
        assert_eq!(&global[4..20], &[3u8; 16], "neighbour bytes survive");
        assert_eq!(&global[20..24], &[2u8; 4]);
        assert_eq!(&global[24..], &[3u8; 40]);
        // Partial-chunk pushes leave the chunks dirty (not fully covered).
        assert_eq!(e.dirty_chunks(), 2);
        // Out-of-range ranges are rejected before any wire traffic.
        assert!(e.push_ranges(&[(60, 8)]).is_err());
    }

    #[test]
    fn failed_push_restores_dirty_bits() {
        struct FailingSets(Arc<KvClient>);
        impl KvBackend for FailingSets {
            forward_kv_passthrough!(0);
            fn multi_get_range(
                &self,
                key: &str,
                spans: &[(u64, u64)],
            ) -> Result<Option<Vec<Vec<u8>>>, KvError> {
                self.0.multi_get_range(key, spans)
            }
            fn multi_set_range(&self, _: &str, _: Vec<(u64, Vec<u8>)>) -> Result<(), KvError> {
                Err(KvError::Server("injected".into()))
            }
        }
        let store = Arc::new(KvStore::new());
        let kv = Arc::new(FailingSets(Arc::new(KvClient::local(store))));
        let e = StateEntry::new("k", 32, SharedRegion::new(32), kv as SharedKv, 16).unwrap();
        e.write(0, &[1u8; 32]).unwrap();
        assert_eq!(e.dirty_chunks(), 2);
        assert!(e.push().is_err());
        assert_eq!(e.dirty_chunks(), 2, "failed push must not lose dirt");
        // The range flush claims fully covered chunks the same way and
        // must also restore them when the send fails.
        assert!(e.push_range(0, 16).is_err());
        assert_eq!(e.dirty_chunks(), 2, "failed push_ranges must not lose dirt");
    }

    #[test]
    fn shared_region_visible_to_co_located_replica_users() {
        // Two "Faaslets" with the same entry share one region: writes by one
        // are readable by the other without any pull/push.
        let (_kv, e) = entry_with(16, 16);
        let e = Arc::new(e);
        let e2 = Arc::clone(&e);
        e.write(0, b"from-f1").unwrap();
        let mut buf = [0u8; 7];
        e2.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"from-f1");
    }
}
