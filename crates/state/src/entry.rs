//! A single state value in the two-tier architecture (§4.2).
//!
//! A [`StateEntry`] is one key's **local-tier replica**: a shared memory
//! region (mapped zero-copy into every Faaslet on the host that uses the
//! key), a chunk table tracking which parts of the authoritative global
//! value are present locally and which local writes are dirty, plus the
//! local read/write lock. Pulls fetch only missing chunks; pushes send only
//! dirty chunks — the mechanism behind Listing 1's sparse matrix access and
//! batched weight updates.

use std::sync::Arc;

use faasm_kvs::{KvClient, LockMode};
use faasm_mem::SharedRegion;
use parking_lot::Mutex;

use crate::error::StateError;
use crate::rwlock::SyncRwLock;

/// Default chunk size: 16 KiB balances pull granularity against per-request
/// overhead (the paper treats chunks as "smaller independent state values").
pub const DEFAULT_CHUNK_SIZE: usize = 16 * 1024;

#[derive(Debug)]
struct ChunkTable {
    present: Vec<bool>,
    dirty: Vec<bool>,
}

/// One state key's local replica plus its synchronisation state.
pub struct StateEntry {
    key: String,
    region: SharedRegion,
    size: usize,
    chunk_size: usize,
    chunks: Mutex<ChunkTable>,
    local_lock: SyncRwLock,
    kv: Arc<KvClient>,
}

impl std::fmt::Debug for StateEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateEntry")
            .field("key", &self.key)
            .field("size", &self.size)
            .field("chunk_size", &self.chunk_size)
            .finish()
    }
}

impl StateEntry {
    /// Create a replica of `key` with value size `size`, backed by `region`
    /// (which must have capacity for `size` bytes).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::CapacityExceeded`] if the region is too small.
    pub fn new(
        key: &str,
        size: usize,
        region: SharedRegion,
        kv: Arc<KvClient>,
        chunk_size: usize,
    ) -> Result<StateEntry, StateError> {
        if size > region.capacity() {
            return Err(StateError::CapacityExceeded {
                requested: size,
                capacity: region.capacity(),
            });
        }
        let n_chunks = size.div_ceil(chunk_size).max(1);
        Ok(StateEntry {
            key: key.to_string(),
            region,
            size,
            chunk_size,
            chunks: Mutex::new(ChunkTable {
                present: vec![false; n_chunks],
                dirty: vec![false; n_chunks],
            }),
            local_lock: SyncRwLock::new(),
            kv,
        })
    }

    /// The state key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The value size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The chunk size in bytes.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// The backing shared region — mapped into Faaslet linear memories for
    /// zero-copy access (§3.3). Callers mapping the region get raw access;
    /// they must use [`StateEntry::lock_read`]/[`StateEntry::lock_write`]
    /// for synchronised access or accept HOGWILD-style races.
    pub fn region(&self) -> &SharedRegion {
        &self.region
    }

    /// Number of chunks currently present in the local tier.
    pub fn present_chunks(&self) -> usize {
        self.chunks.lock().present.iter().filter(|p| **p).count()
    }

    /// Number of chunks dirtied by local writes since the last push.
    pub fn dirty_chunks(&self) -> usize {
        self.chunks.lock().dirty.iter().filter(|d| **d).count()
    }

    fn check_range(&self, offset: usize, len: usize) -> Result<(), StateError> {
        if offset.checked_add(len).is_none_or(|end| end > self.size) {
            return Err(StateError::OutOfRange {
                offset,
                len,
                size: self.size,
            });
        }
        Ok(())
    }

    fn chunk_span(&self, offset: usize, len: usize) -> (usize, usize) {
        let first = offset / self.chunk_size;
        let last = if len == 0 {
            first
        } else {
            (offset + len - 1) / self.chunk_size
        };
        (first, last)
    }

    fn chunk_bounds(&self, idx: usize) -> (usize, usize) {
        let start = idx * self.chunk_size;
        let end = ((idx + 1) * self.chunk_size).min(self.size);
        (start, end)
    }

    /// Fetch any chunks in `offset..offset+len` missing from the local
    /// replica ("the DDO implicitly performs a pull operation to ensure that
    /// data is present... only replicates the necessary subsets", §4.1).
    ///
    /// # Errors
    ///
    /// Global-tier or range errors.
    pub fn pull_range(&self, offset: usize, len: usize) -> Result<(), StateError> {
        self.check_range(offset, len)?;
        let (first, last) = self.chunk_span(offset, len);
        let mut table = self.chunks.lock();
        for idx in first..=last {
            if table.present[idx] {
                continue;
            }
            let (start, end) = self.chunk_bounds(idx);
            if let Some(data) = self
                .kv
                .get_range(&self.key, start as u64, (end - start) as u64)?
            {
                if !data.is_empty() {
                    self.region.write(start, &data)?;
                }
            }
            table.present[idx] = true;
        }
        Ok(())
    }

    /// Pull the entire value (`pull_state`, Tab. 2).
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn pull(&self) -> Result<(), StateError> {
        self.pull_range(0, self.size)
    }

    /// Push dirty chunks to the global tier (`push_state`); clears dirty
    /// bits.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn push(&self) -> Result<(), StateError> {
        let dirty: Vec<usize> = {
            let table = self.chunks.lock();
            table
                .dirty
                .iter()
                .enumerate()
                .filter_map(|(i, d)| d.then_some(i))
                .collect()
        };
        for idx in dirty {
            let (start, end) = self.chunk_bounds(idx);
            let mut buf = vec![0u8; end - start];
            self.region.read(start, &mut buf)?;
            self.kv.set_range(&self.key, start as u64, buf)?;
            self.chunks.lock().dirty[idx] = false;
        }
        Ok(())
    }

    /// Push the entire value regardless of dirty state (`push_state`,
    /// Tab. 2). Guests that write through a mapped pointer bypass dirty
    /// tracking (§4.2 notes pointer writes skip the implicit machinery), so
    /// the whole-value push is the safe host-interface semantics. Marks all
    /// chunks present and clean.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn push_full(&self) -> Result<(), StateError> {
        let mut buf = vec![0u8; self.size];
        self.region.read(0, &mut buf)?;
        self.kv.set(&self.key, buf)?;
        let mut table = self.chunks.lock();
        table.present.iter_mut().for_each(|p| *p = true);
        table.dirty.iter_mut().for_each(|d| *d = false);
        Ok(())
    }

    /// Push one byte range regardless of dirty state (`push_state_offset`).
    ///
    /// # Errors
    ///
    /// Global-tier or range errors.
    pub fn push_range(&self, offset: usize, len: usize) -> Result<(), StateError> {
        self.check_range(offset, len)?;
        let mut buf = vec![0u8; len];
        self.region.read(offset, &mut buf)?;
        self.kv.set_range(&self.key, offset as u64, buf)?;
        // Covered whole chunks are no longer dirty.
        let (first, last) = self.chunk_span(offset, len);
        let mut table = self.chunks.lock();
        for idx in first..=last {
            let (start, end) = self.chunk_bounds(idx);
            if offset <= start && offset + len >= end {
                table.dirty[idx] = false;
            }
        }
        Ok(())
    }

    /// Read from the local replica, pulling missing chunks first. Takes the
    /// local read lock implicitly (§4.2 "locking happens implicitly as part
    /// of all state API functions").
    ///
    /// # Errors
    ///
    /// Global-tier or range errors.
    pub fn read(&self, offset: usize, buf: &mut [u8]) -> Result<(), StateError> {
        self.pull_range(offset, buf.len())?;
        self.local_lock.lock_read();
        let r = self.region.read(offset, buf);
        self.local_lock.unlock_read();
        r.map_err(StateError::from)
    }

    /// Write to the local replica and mark dirty chunks. Chunks partially
    /// covered by the write are pulled first (read-modify-write), so a later
    /// push cannot clobber global bytes the Faaslet never saw. Takes the
    /// local write lock implicitly.
    ///
    /// # Errors
    ///
    /// Global-tier or range errors.
    pub fn write(&self, offset: usize, data: &[u8]) -> Result<(), StateError> {
        self.check_range(offset, data.len())?;
        let (first, last) = self.chunk_span(offset, data.len());
        // Pull partially-covered, absent chunks.
        {
            let table = self.chunks.lock();
            let mut need_pull = Vec::new();
            for idx in first..=last {
                let (start, end) = self.chunk_bounds(idx);
                let fully_covered = offset <= start && offset + data.len() >= end;
                if !table.present[idx] && !fully_covered {
                    need_pull.push((start, end));
                }
            }
            drop(table);
            for (start, end) in need_pull {
                self.pull_range(start, end - start)?;
            }
        }
        self.local_lock.lock_write();
        let r = self.region.write(offset, data);
        self.local_lock.unlock_write();
        r?;
        let mut table = self.chunks.lock();
        for idx in first..=last {
            table.dirty[idx] = true;
            table.present[idx] = true;
        }
        Ok(())
    }

    /// Append to the authoritative global value (`append_state`). Appended
    /// data bypasses the fixed-size local replica; readers use
    /// [`StateEntry::read_appended`].
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn append(&self, data: &[u8]) -> Result<u64, StateError> {
        Ok(self.kv.append(&self.key, data.to_vec())?)
    }

    /// Read the full current global value, including appended data beyond
    /// the local replica size.
    ///
    /// # Errors
    ///
    /// Global-tier errors; [`StateError::NotFound`] if the key is absent.
    pub fn read_appended(&self) -> Result<Vec<u8>, StateError> {
        self.kv.get(&self.key)?.ok_or_else(|| StateError::NotFound {
            key: self.key.clone(),
        })
    }

    /// Explicit local read lock (`lock_state_read`).
    pub fn lock_read(&self) {
        self.local_lock.lock_read();
    }

    /// Explicit local read unlock.
    pub fn unlock_read(&self) {
        self.local_lock.unlock_read();
    }

    /// Explicit local write lock (`lock_state_write`).
    pub fn lock_write(&self) {
        self.local_lock.lock_write();
    }

    /// Explicit local write unlock.
    pub fn unlock_write(&self) {
        self.local_lock.unlock_write();
    }

    /// Acquire the global read lock (`lock_state_global_read`), blocking.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn lock_global_read(&self) -> Result<(), StateError> {
        Ok(self.kv.lock(&self.key, LockMode::Read)?)
    }

    /// Release the global read lock.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn unlock_global_read(&self) -> Result<(), StateError> {
        Ok(self.kv.unlock(&self.key, LockMode::Read)?)
    }

    /// Acquire the global write lock (`lock_state_global_write`), blocking.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn lock_global_write(&self) -> Result<(), StateError> {
        Ok(self.kv.lock(&self.key, LockMode::Write)?)
    }

    /// Release the global write lock.
    ///
    /// # Errors
    ///
    /// Global-tier errors.
    pub fn unlock_global_write(&self) -> Result<(), StateError> {
        Ok(self.kv.unlock(&self.key, LockMode::Write)?)
    }

    /// Forget local presence so the next access re-pulls (used after another
    /// party is known to have changed the global value, and by tests).
    pub fn invalidate(&self) {
        let mut table = self.chunks.lock();
        table.present.iter_mut().for_each(|p| *p = false);
        table.dirty.iter_mut().for_each(|d| *d = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_kvs::KvStore;

    fn entry_with(size: usize, chunk: usize) -> (Arc<KvClient>, StateEntry) {
        let store = Arc::new(KvStore::new());
        let kv = Arc::new(KvClient::local(store));
        let region = SharedRegion::new(size.max(1));
        let e = StateEntry::new("k", size, region, Arc::clone(&kv), chunk).unwrap();
        (kv, e)
    }

    #[test]
    fn write_then_read_local() {
        let (_kv, e) = entry_with(100, 16);
        e.write(10, b"hello").unwrap();
        let mut buf = [0u8; 5];
        e.read(10, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert!(e.dirty_chunks() > 0);
    }

    #[test]
    fn push_sends_only_dirty_chunks() {
        let (kv, e) = entry_with(64, 16); // 4 chunks
        e.write(0, &[1u8; 16]).unwrap(); // chunk 0
        e.write(48, &[2u8; 16]).unwrap(); // chunk 3
        assert_eq!(e.dirty_chunks(), 2);
        e.push().unwrap();
        assert_eq!(e.dirty_chunks(), 0);
        let global = kv.get("k").unwrap().unwrap();
        assert_eq!(&global[0..16], &[1u8; 16]);
        assert_eq!(&global[48..64], &[2u8; 16]);
        // Untouched middle chunks were never sent; global zero-extended.
        assert_eq!(&global[16..48], &[0u8; 32]);
    }

    #[test]
    fn pull_fetches_only_missing_chunks() {
        let (kv, e) = entry_with(64, 16);
        kv.set("k", (0u8..64).collect()).unwrap();
        e.pull_range(20, 4).unwrap(); // chunk 1 only
        assert_eq!(e.present_chunks(), 1);
        let mut buf = [0u8; 4];
        e.read(20, &mut buf).unwrap();
        assert_eq!(buf, [20, 21, 22, 23]);
        e.pull().unwrap();
        assert_eq!(e.present_chunks(), 4);
    }

    #[test]
    fn read_pulls_implicitly() {
        let (kv, e) = entry_with(32, 16);
        kv.set("k", vec![7u8; 32]).unwrap();
        let mut buf = [0u8; 8];
        e.read(4, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 8]);
        assert_eq!(e.present_chunks(), 1, "only the covering chunk pulled");
    }

    #[test]
    fn partial_write_to_absent_chunk_preserves_global_bytes() {
        let (kv, e) = entry_with(32, 16);
        kv.set("k", vec![9u8; 32]).unwrap();
        // Partial write into chunk 0 without reading it first.
        e.write(4, b"AB").unwrap();
        e.push().unwrap();
        let global = kv.get("k").unwrap().unwrap();
        assert_eq!(global[0], 9, "pre-existing byte survives RMW");
        assert_eq!(&global[4..6], b"AB");
        assert_eq!(global[6], 9);
    }

    #[test]
    fn push_range_clears_covered_chunk_dirty() {
        let (kv, e) = entry_with(32, 16);
        e.write(0, &[1u8; 32]).unwrap();
        assert_eq!(e.dirty_chunks(), 2);
        e.push_range(0, 16).unwrap();
        assert_eq!(e.dirty_chunks(), 1);
        assert_eq!(kv.strlen("k").unwrap(), 16);
    }

    #[test]
    fn out_of_range_rejected() {
        let (_kv, e) = entry_with(10, 16);
        let mut buf = [0u8; 4];
        assert!(matches!(
            e.read(8, &mut buf),
            Err(StateError::OutOfRange { .. })
        ));
        assert!(e.write(10, &[0]).is_err());
        assert!(e.pull_range(usize::MAX, 2).is_err());
    }

    #[test]
    fn capacity_checked_at_creation() {
        let store = Arc::new(KvStore::new());
        let kv = Arc::new(KvClient::local(store));
        let region = SharedRegion::new(10); // one page capacity
        assert!(StateEntry::new("k", faasm_mem::PAGE_SIZE + 1, region, kv, 1024).is_err());
    }

    #[test]
    fn append_and_read_appended() {
        let (_kv, e) = entry_with(4, 16);
        e.write(0, b"base").unwrap();
        e.push().unwrap();
        assert_eq!(e.append(b"+one").unwrap(), 8);
        assert_eq!(e.append(b"+two").unwrap(), 12);
        assert_eq!(e.read_appended().unwrap(), b"base+one+two");
    }

    #[test]
    fn explicit_local_locks() {
        let (_kv, e) = entry_with(8, 16);
        e.lock_write();
        e.unlock_write();
        e.lock_read();
        e.lock_read();
        e.unlock_read();
        e.unlock_read();
    }

    #[test]
    fn global_locks_roundtrip() {
        let (_kv, e) = entry_with(8, 16);
        e.lock_global_write().unwrap();
        e.unlock_global_write().unwrap();
        e.lock_global_read().unwrap();
        e.unlock_global_read().unwrap();
    }

    #[test]
    fn invalidate_forces_repull() {
        let (kv, e) = entry_with(8, 16);
        kv.set("k", vec![1u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        e.read(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 8]);
        kv.set("k", vec![2u8; 8]).unwrap();
        // Still cached.
        e.read(0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 8]);
        e.invalidate();
        e.read(0, &mut buf).unwrap();
        assert_eq!(buf, [2u8; 8]);
    }

    #[test]
    fn shared_region_visible_to_co_located_replica_users() {
        // Two "Faaslets" with the same entry share one region: writes by one
        // are readable by the other without any pull/push.
        let (_kv, e) = entry_with(16, 16);
        let e = Arc::new(e);
        let e2 = Arc::clone(&e);
        e.write(0, b"from-f1").unwrap();
        let mut buf = [0u8; 7];
        e2.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"from-f1");
    }
}
