//! Minimal arbitrary-precision unsigned integers for MiniDyn.
//!
//! The paper's Fig. 9b highlights `pidigits`, which "stresses big integer
//! arithmetic". This implementation provides exactly the operations the
//! benchmark suite needs: add, subtract, schoolbook multiply, small-divisor
//! divmod, comparison and decimal printing. Limbs are base-2³² stored
//! little-endian.

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigUint {
    /// Little-endian base-2³² limbs; no trailing zeros (zero = empty).
    limbs: Vec<u32>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// From a machine integer.
    pub fn from_u64(v: u64) -> BigUint {
        let mut limbs = vec![(v & 0xffff_ffff) as u32, (v >> 32) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of limbs (size accounting).
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = *self.limbs.get(i).unwrap_or(&0) as u64;
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let sum = a + b + carry;
            out.push((sum & 0xffff_ffff) as u32);
            carry = sum >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        BigUint { limbs: out }
    }

    /// `self + small`.
    pub fn add_small(&self, v: u64) -> BigUint {
        self.add(&BigUint::from_u64(v))
    }

    /// `self - other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp_big(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        Some(BigUint { limbs: out })
    }

    /// Schoolbook `self × other`.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] + a as u64 * b as u64 + carry;
                out[i + j] = cur & 0xffff_ffff;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] + carry;
                out[k] = cur & 0xffff_ffff;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut limbs: Vec<u32> = out.into_iter().map(|v| v as u32).collect();
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// `self × small`.
    pub fn mul_small(&self, v: u64) -> BigUint {
        self.mul(&BigUint::from_u64(v))
    }

    /// `(self / d, self % d)` for a small divisor.
    ///
    /// # Panics
    ///
    /// Panics on `d == 0` (callers validate).
    pub fn divmod_small(&self, d: u32) -> (BigUint, u32) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            out[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        (BigUint { limbs: out }, rem as u32)
    }

    /// Total order.
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }
}

impl std::fmt::Display for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divmod_small(10);
            digits.push(b'0' + r as u8);
            cur = q;
        }
        digits.reverse();
        write!(f, "{}", std::str::from_utf8(&digits).expect("ascii digits"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_and_display() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::from_u64(0).to_string(), "0");
        assert_eq!(BigUint::from_u64(42).to_string(), "42");
        assert_eq!(
            BigUint::from_u64(u64::MAX).to_string(),
            "18446744073709551615"
        );
    }

    #[test]
    fn add_with_carries() {
        let a = BigUint::from_u64(u64::MAX);
        let b = a.add(&a);
        assert_eq!(b.to_string(), "36893488147419103230");
        assert_eq!(a.add_small(1).to_string(), "18446744073709551616");
    }

    #[test]
    fn sub_and_underflow() {
        let a = BigUint::from_u64(1000);
        let b = BigUint::from_u64(999);
        assert_eq!(a.checked_sub(&b).unwrap().to_string(), "1");
        assert_eq!(a.checked_sub(&a).unwrap().to_string(), "0");
        assert!(b.checked_sub(&a).is_none());
        // Multi-limb borrow.
        let big = BigUint::from_u64(1)
            .mul(&BigUint::from_u64(1))
            .add(&BigUint::from_u64(u64::MAX).mul_small(2));
        let small = BigUint::from_u64(u64::MAX);
        let d = big.checked_sub(&small).unwrap();
        assert_eq!(d.to_string(), "18446744073709551616");
    }

    #[test]
    fn mul_schoolbook() {
        let a = BigUint::from_u64(u64::MAX);
        let sq = a.mul(&a);
        assert_eq!(sq.to_string(), "340282366920938463426481119284349108225");
        assert!(BigUint::zero().mul(&a).is_zero());
        assert_eq!(a.mul_small(10).to_string(), "184467440737095516150");
    }

    #[test]
    fn divmod() {
        let a = BigUint::from_u64(1_000_000_007);
        let (q, r) = a.divmod_small(10);
        assert_eq!(q.to_string(), "100000000");
        assert_eq!(r, 7);
        let (q, r) = BigUint::zero().divmod_small(7);
        assert!(q.is_zero());
        assert_eq!(r, 0);
    }

    #[test]
    fn factorial_100() {
        let mut acc = BigUint::from_u64(1);
        for i in 2..=100u64 {
            acc = acc.mul_small(i);
        }
        let s = acc.to_string();
        assert_eq!(s.len(), 158);
        assert!(s.starts_with("9332621544394415268"));
        assert!(s.ends_with("000000000000000000000000"), "24 trailing zeros");
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(6);
        let c = BigUint::from_u64(u64::MAX).mul_small(2);
        assert_eq!(a.cmp_big(&b), Ordering::Less);
        assert_eq!(b.cmp_big(&a), Ordering::Greater);
        assert_eq!(a.cmp_big(&a), Ordering::Equal);
        assert_eq!(c.cmp_big(&b), Ordering::Greater);
        assert!(c.limb_count() >= 2);
    }
}
