//! The Fig. 9b benchmark suite: MiniDyn programs in the style of the Python
//! Performance Benchmarks the paper runs under CPython-in-a-Faaslet.
//!
//! Each program defines `bench(n)` returning a checksum the tests verify, so
//! both execution paths (inside a Faaslet vs. direct) must do identical
//! work. The in-Faaslet path loads program source from the Faaslet
//! filesystem, like CPython loading modules (§3.1).

use std::sync::Arc;

use faasm_core::{Cluster, NativeApi, NativeGuest};

use super::{run_source, Value};
use crate::env::{FaasEnv, FaasmEnv};

/// One suite entry.
#[derive(Debug, Clone, Copy)]
pub struct DynBench {
    /// Benchmark name (Fig. 9b x-axis).
    pub name: &'static str,
    /// MiniDyn source defining `bench(n)`.
    pub source: &'static str,
    /// Default problem size.
    pub default_n: i64,
    /// Expected `bench(default_n)` output (checksum pinning).
    pub expected: &'static str,
}

/// The benchmark programs.
pub fn suite() -> Vec<DynBench> {
    vec![
        DynBench {
            name: "nbody",
            source: r#"
fn bench(n) {
    # Two-body energy integration, pure float arithmetic.
    px = 1.0; py = 0.0; vx = 0.0; vy = 0.9;
    qx = -1.0; qy = 0.0; wx = 0.0; wy = -0.9;
    dt = 0.01;
    for i in range(n) {
        dx = qx - px; dy = qy - py;
        d2 = dx * dx + dy * dy;
        d = sqrt(d2);
        f = 1.0 / (d2 * d);
        vx = vx + dx * f * dt; vy = vy + dy * f * dt;
        wx = wx - dx * f * dt; wy = wy - dy * f * dt;
        px = px + vx * dt; py = py + vy * dt;
        qx = qx + wx * dt; qy = qy + wy * dt;
    }
    return int((px * 1000.0) + (py * 1000.0) * 7.0);
}
"#,
            default_n: 2000,
            expected: "79082",
        },
        DynBench {
            name: "float",
            source: r#"
fn bench(n) {
    acc = 0.0;
    x = 0.5;
    for i in range(n) {
        x = x * 1.000001 + 0.0001;
        acc = acc + sqrt(x) - abs(x - 1.0);
    }
    return int(acc * 100.0);
}
"#,
            default_n: 20000,
            expected: "1136351",
        },
        DynBench {
            name: "pidigits",
            source: r#"
fn bench(n) {
    # Gosper-series spigot with arbitrary-precision integers.
    q = big(1); r = big(0); t = big(1);
    k = 1; digits = ""; produced = 0;
    while (produced < n) {
        # next candidate digit = (q*3 + r) / t when it agrees with (q*4+r)/t
        a = bigdivmod(q * 3 + r, smallt(t));
        b = bigdivmod(q * 4 + r, smallt(t));
        if (tostr(a[0]) == tostr(b[0])) {
            digits = digits + tostr(a[0]);
            produced = produced + 1;
            r = (r + q * 3 - a[0] * t) * 10;
            q = q * 10;
        } else {
            # widen: q,r,t = q*k, (2q+r)*(2k+1), t*(2k+1)
            r = (q * 2 + r) * (2 * k + 1);
            t = t * (2 * k + 1);
            q = q * k;
            k = k + 1;
        }
    }
    return digits;
}
fn tostr(b) { return str(b); }
fn smallt(b) { return toint(b); }
fn toint(b) {
    # Convert a (small) big value back to an int via decimal digits.
    s = str(b);
    acc = 0;
    for i in range(len(s)) {
        acc = acc * 10 + digit(s, i);
    }
    return acc;
}
fn digit(s, i) {
    # MiniDyn has no char ops; emulate with nested compares on slices of the
    # decimal string via dict lookup.
    d = {"0":0,"1":1,"2":2,"3":3,"4":4,"5":5,"6":6,"7":7,"8":8,"9":9};
    return d[substr(s, i)];
}
fn substr(s, i) { return mid(s, i); }
fn mid(s, i) {
    # Build per-character strings by repeated str() of digits 0..9 probing.
    # (Provided as a helper because the pure language lacks indexing on
    # strings; see the simplified variant below.)
    return "0";
}
"#,
            // The string-probing helpers above make the faithful spigot too
            // awkward; the registered benchmark uses the simpler variant
            // below. This entry is replaced in `suite()` post-processing.
            default_n: 12,
            expected: "314159265358",
        },
        DynBench {
            name: "fannkuch",
            source: r#"
fn bench(n) {
    # Count flips over all rotations of a permutation, list-heavy.
    perm = [];
    for i in range(n) { push(perm, i + 1); }
    total = 0;
    for round in range(200) {
        # Rotate left by one.
        first = perm[0];
        for i in range(n - 1) { perm[i] = perm[i + 1]; }
        perm[n - 1] = first;
        # Count flips of a copy.
        copy = [];
        for i in range(n) { push(copy, perm[i]); }
        flips = 0;
        while (copy[0] != 1) {
            k = copy[0];
            i = 0; j = k - 1;
            while (i < j) {
                tmp = copy[i]; copy[i] = copy[j]; copy[j] = tmp;
                i = i + 1; j = j - 1;
            }
            flips = flips + 1;
            if (flips > 1000) { break; }
        }
        total = total + flips;
    }
    return total;
}
"#,
            default_n: 7,
            expected: "547",
        },
        DynBench {
            name: "spectral-norm",
            source: r#"
fn a(i, j) { return 1.0 / float((i + j) * (i + j + 1) / 2 + i + 1); }
fn atav(u, n) {
    w = [];
    for i in range(n) {
        acc = 0.0;
        for j in range(n) { acc = acc + a(i, j) * u[j]; }
        push(w, acc);
    }
    v = [];
    for i in range(n) {
        acc = 0.0;
        for j in range(n) { acc = acc + a(j, i) * w[j]; }
        push(v, acc);
    }
    return v;
}
fn bench(n) {
    u = [];
    for i in range(n) { push(u, 1.0); }
    for it in range(3) { u = atav(u, n); }
    v = atav(u, n);
    vbv = 0.0; vv = 0.0;
    for i in range(n) {
        vbv = vbv + u[i] * v[i];
        vv = vv + v[i] * v[i];
    }
    return int(sqrt(vbv / vv) * 100000.0);
}
"#,
            default_n: 24,
            expected: "78493",
        },
        DynBench {
            name: "mandel",
            source: r#"
fn bench(n) {
    inside = 0;
    for yi in range(n) {
        for xi in range(n) {
            cr = float(xi) * 3.0 / float(n) - 2.0;
            ci = float(yi) * 2.0 / float(n) - 1.0;
            zr = 0.0; zi = 0.0; it = 0;
            while (it < 30 && zr * zr + zi * zi < 4.0) {
                t = zr * zr - zi * zi + cr;
                zi = 2.0 * zr * zi + ci;
                zr = t;
                it = it + 1;
            }
            if (it == 30) { inside = inside + 1; }
        }
    }
    return inside;
}
"#,
            default_n: 40,
            expected: "446",
        },
        DynBench {
            name: "quicksort",
            source: r#"
fn qs(l, lo, hi) {
    if (lo >= hi) { return 0; }
    pivot = l[(lo + hi) / 2];
    i = lo; j = hi;
    while (i <= j) {
        while (l[i] < pivot) { i = i + 1; }
        while (l[j] > pivot) { j = j - 1; }
        if (i <= j) {
            tmp = l[i]; l[i] = l[j]; l[j] = tmp;
            i = i + 1; j = j - 1;
        }
    }
    qs(l, lo, j);
    qs(l, i, hi);
    return 0;
}
fn bench(n) {
    l = [];
    seed = 12345;
    for i in range(n) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        push(l, seed % 10000);
    }
    qs(l, 0, n - 1);
    # Checksum: sortedness + sample values.
    for i in range(n - 1) {
        if (l[i] > l[i + 1]) { return -1; }
    }
    return l[0] + l[n / 2] * 7 + l[n - 1] * 13;
}
"#,
            default_n: 400,
            expected: "164732",
        },
        DynBench {
            name: "dictops",
            source: r#"
fn bench(n) {
    d = {};
    for i in range(n) {
        k = str(i % 97);
        cur = d[k];
        if (!cur) { d[k] = 1; }
        else { d[k] = cur + 1; }
    }
    total = 0;
    for i in range(97) {
        v = d[str(i)];
        if (v) { total = total + v * (i + 1); }
    }
    return total;
}
"#,
            default_n: 5000,
            expected: "243834",
        },
        DynBench {
            name: "primes",
            source: r#"
fn bench(n) {
    sieve = [];
    for i in range(n + 1) { push(sieve, 1); }
    sieve[0] = 0; sieve[1] = 0;
    i = 2;
    while (i * i <= n) {
        if (sieve[i] == 1) {
            j = i * i;
            while (j <= n) { sieve[j] = 0; j = j + i; }
        }
        i = i + 1;
    }
    count = 0; last = 0;
    for k in range(n + 1) {
        if (sieve[k] == 1) { count = count + 1; last = k; }
    }
    return count * 100000 + last;
}
"#,
            default_n: 5000,
            expected: "66904999",
        },
        DynBench {
            name: "bigfact",
            source: r#"
fn bench(n) {
    # The big-integer stress: factorial, then digit-sum via divmod.
    acc = big(1);
    for i in range(2, n + 1) { acc = acc * i; }
    total = 0;
    pair = bigdivmod(acc, 10);
    while (!(pair[0] == big(0))) {
        total = total + pair[1];
        pair = bigdivmod(pair[0], 10);
    }
    return total + pair[1];
}
"#,
            default_n: 120,
            expected: "783",
        },
    ]
    .into_iter()
    .map(|mut b| {
        // Replace the unwieldy faithful spigot with a big-integer Machin
        // computation that still stresses BigUint (see file comment).
        if b.name == "pidigits" {
            b.source = PIDIGITS_SIMPLE;
            b.default_n = 25;
            b.expected = "3141592653589793238462643";
        }
        b
    })
    .collect()
}

/// π digits via an integer Machin-like formula entirely in big arithmetic:
/// `pi × 10^(n-1)` using arctan(1/5), arctan(1/239) with scaled bigints.
const PIDIGITS_SIMPLE: &str = r#"
fn arctan_inv(x, scale) {
    # arctan(1/x) * scale, by alternating series, all in bigints.
    term = bigdivmod(scale, x)[0];
    total = term;
    x2 = x * x;
    k = 3;
    sub = 1;
    while (!(term == big(0))) {
        term = bigdivmod(term, x2)[0];
        t = bigdivmod(term, k)[0];
        if (t == big(0)) { break; }
        if (sub == 1) {
            total = total - t;
            sub = 0;
        } else {
            total = total + t;
            sub = 1;
        }
        k = k + 2;
    }
    return total;
}
fn pow10(n) {
    acc = big(1);
    for i in range(n) { acc = acc * 10; }
    return acc;
}
fn bench(n) {
    scale = pow10(n + 5);
    pi = (arctan_inv(5, scale) * 16) - (arctan_inv(239, scale) * 4);
    # Drop the guard digits.
    for i in range(6) { pi = bigdivmod(pi, 10)[0]; }
    return str(pi);
}
"#;

/// Run one benchmark directly (the "native" side of Fig. 9b).
///
/// # Errors
///
/// Interpreter errors.
pub fn run_direct(bench: &DynBench, n: i64) -> Result<String, String> {
    run_source(bench.source, "bench", &[Value::Int(n)])
}

/// The Faaslet guest: input `name-bytes | ';' | n`, loads the program from
/// the filesystem and interprets it.
fn minidyn_guest<E: FaasEnv>(env: &mut E) -> Result<i32, String> {
    let input = env.input();
    let text = String::from_utf8(input).map_err(|_| "bad input".to_string())?;
    let (name, n) = text
        .split_once(';')
        .ok_or_else(|| "input must be name;n".to_string())?;
    let n: i64 = n.parse().map_err(|_| "bad n".to_string())?;
    let source = env.load_file(&format!("shared/minidyn/{name}.md"))?;
    let source = String::from_utf8(source).map_err(|_| "bad program file".to_string())?;
    let out = run_source(&source, "bench", &[Value::Int(n)])?;
    env.write_output(out.as_bytes());
    Ok(0)
}

/// Publish every benchmark program to the cluster's filesystem and register
/// the interpreter function (the CPython-in-a-Faaslet analogue).
pub fn setup_faasm(cluster: &Cluster, user: &str) {
    for b in suite() {
        cluster.object_store().put(
            &format!("shared/minidyn/{}.md", b.name),
            b.source.as_bytes().to_vec(),
        );
    }
    let guest: Arc<dyn NativeGuest> = Arc::new(|api: &mut NativeApi<'_>| {
        let mut env = FaasmEnv::new(api);
        minidyn_guest(&mut env).map_err(faasm_fvm::Trap::host)
    });
    cluster.register_native(user, "minidyn", guest, false);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_produce_expected_checksums() {
        for b in suite() {
            let out =
                run_direct(&b, b.default_n).unwrap_or_else(|e| panic!("{} failed: {e}", b.name));
            assert_eq!(out, b.expected, "{} checksum", b.name);
        }
    }

    #[test]
    fn suite_is_full_size() {
        assert!(suite().len() >= 10, "Fig. 9b needs a real suite");
    }

    #[test]
    fn in_faaslet_matches_direct() {
        let cluster = Cluster::new(1);
        setup_faasm(&cluster, "py");
        for b in suite().into_iter().take(4) {
            let input = format!("{};{}", b.name, b.default_n);
            let r = cluster.invoke("py", "minidyn", input.into_bytes());
            assert_eq!(r.return_code(), 0, "{} status {:?}", b.name, r.status);
            assert_eq!(
                String::from_utf8(r.output).unwrap(),
                b.expected,
                "{}",
                b.name
            );
        }
    }

    #[test]
    fn missing_program_errors() {
        let cluster = Cluster::new(1);
        setup_faasm(&cluster, "py");
        let r = cluster.invoke("py", "minidyn", b"ghost;5".to_vec());
        assert!(matches!(r.status, faasm_core::CallStatus::Error(_)));
    }
}
