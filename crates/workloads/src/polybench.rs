//! Polybench kernels for Fig. 9a (§6.4).
//!
//! Each kernel exists twice: as FL source compiled to the FVM (the paper's
//! "compiled directly to WebAssembly and executed in Faaslets") and as a
//! native Rust mirror with the identical operation order. The benchmark
//! harness reports guest/native time ratios; the test suite asserts that
//! both implementations produce the same numbers, which pins the guest
//! semantics to the reference.
//!
//! Buffer convention: every kernel works on a single packed `f64` array
//! placed at guest address [`BASE`]; the `slots` function gives its length
//! for problem size `n`, `init` fills it identically for both sides, and
//! the FL entry is `void kernel(int n)`.

use std::time::{Duration, Instant};

use faasm_fvm::prelude::*;
use faasm_lang::MemConfig;

/// Guest base address of the data buffer (page 1).
pub const BASE: u32 = 65536;

/// One Polybench kernel.
pub struct Kernel {
    /// Kernel name, as in Fig. 9a.
    pub name: &'static str,
    /// FL source defining `void kernel(int n)`.
    pub fl: &'static str,
    /// Native mirror with identical operation order.
    pub native: fn(n: usize, mem: &mut [f64]),
    /// Buffer length in `f64` slots for problem size `n`.
    pub slots: fn(n: usize) -> usize,
    /// Deterministic input initialiser (shared by both sides).
    pub init: fn(n: usize, mem: &mut [f64]),
    /// Default problem size for tests.
    pub default_n: usize,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kernel({})", self.name)
    }
}

/// Generic input fill: bounded, varied, deterministic.
#[allow(clippy::needless_range_loop)]
fn generic_init(_n: usize, mem: &mut [f64]) {
    for (i, v) in mem.iter_mut().enumerate() {
        *v = ((i * 7 + 3) % 13) as f64 / 13.0 + 0.1;
    }
}

/// Symmetric positive-definite fill for factorisation kernels: strong
/// diagonal dominance keeps Cholesky/LU stable.
fn spd_init(n: usize, mem: &mut [f64]) {
    generic_init(n, mem);
    for i in 0..n {
        for j in 0..n {
            let v = if i == j {
                n as f64 + 1.0
            } else {
                0.3 / (1.0 + (i as f64 - j as f64).abs())
            };
            mem[i * n + j] = v;
        }
    }
}

/// Durbin needs |reflection coefficients| < 1: tiny autocorrelations.
fn durbin_init(n: usize, mem: &mut [f64]) {
    for (i, v) in mem.iter_mut().enumerate().take(n) {
        *v = 0.01 / (i as f64 + 1.0);
    }
    for v in mem.iter_mut().skip(n) {
        *v = 0.0;
    }
}

/// Nussinov sequence: bases 0..=3 cyclically; the DP table starts zeroed.
fn nussinov_init(n: usize, mem: &mut [f64]) {
    for (i, v) in mem.iter_mut().enumerate().take(n) {
        *v = (i % 4) as f64;
    }
    for v in mem.iter_mut().skip(n) {
        *v = 0.0;
    }
}

/// Compile and run a kernel in the FVM, returning the output buffer and the
/// guest execution time.
///
/// # Panics
///
/// Panics on FL compile errors (kernel sources are fixed test vectors).
pub fn run_fvm(kernel: &Kernel, n: usize) -> (Vec<f64>, Duration) {
    let slots = (kernel.slots)(n);
    let bytes_needed = BASE as usize + slots * 8;
    let pages = faasm_mem::pages_for_bytes(bytes_needed) as u32 + 1;
    let module = faasm_lang::compile_with(
        kernel.fl,
        MemConfig {
            initial_pages: pages,
            max_pages: pages + 4,
        },
    )
    .unwrap_or_else(|e| panic!("{} failed to compile: {e}", kernel.name));
    let object = ObjectModule::prepare(module)
        .unwrap_or_else(|e| panic!("{} failed validation: {e}", kernel.name));
    let mut inst = Instance::new(object, &Linker::new(), Box::new(())).expect("links");

    let mut buf = vec![0.0f64; slots];
    (kernel.init)(n, &mut buf);
    let mem = inst.memory_mut().expect("kernel module has memory");
    for (i, v) in buf.iter().enumerate() {
        mem.write_f64(BASE as usize + i * 8, *v).expect("in bounds");
    }

    let t0 = Instant::now();
    inst.invoke("kernel", &[Val::I32(n as i32)])
        .unwrap_or_else(|t| panic!("{} trapped: {t}", kernel.name));
    let elapsed = t0.elapsed();

    let mem = inst.memory().expect("kernel module has memory");
    let mut out = vec![0.0f64; slots];
    for (i, v) in out.iter_mut().enumerate() {
        *v = mem.read_f64(BASE as usize + i * 8).expect("in bounds");
    }
    (out, elapsed)
}

/// Run the native mirror, returning the output buffer and execution time.
pub fn run_native(kernel: &Kernel, n: usize) -> (Vec<f64>, Duration) {
    let mut buf = vec![0.0f64; (kernel.slots)(n)];
    (kernel.init)(n, &mut buf);
    let t0 = Instant::now();
    (kernel.native)(n, &mut buf);
    (buf, t0.elapsed())
}

mod kernels;
pub use kernels::all_kernels;

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_outputs_match(kernel: &Kernel) {
        let n = kernel.default_n;
        let (guest, _) = run_fvm(kernel, n);
        let (native, _) = run_native(kernel, n);
        assert_eq!(guest.len(), native.len());
        for (i, (g, r)) in guest.iter().zip(&native).enumerate() {
            let scale = r.abs().max(1.0);
            assert!(
                (g - r).abs() / scale < 1e-9,
                "{}: slot {i} differs: guest {g} vs native {r}",
                kernel.name
            );
        }
        // The kernel must actually change the buffer.
        let mut input = vec![0.0f64; (kernel.slots)(n)];
        (kernel.init)(n, &mut input);
        assert_ne!(native, input, "{}: kernel is a no-op", kernel.name);
    }

    #[test]
    fn suite_has_many_kernels() {
        assert!(all_kernels().len() >= 16, "Fig. 9a needs a real suite");
    }

    // One test per kernel so failures name the culprit.
    macro_rules! kernel_test {
        ($fn_name:ident, $kernel_name:literal) => {
            #[test]
            fn $fn_name() {
                let kernel = all_kernels()
                    .into_iter()
                    .find(|k| k.name == $kernel_name)
                    .expect("kernel registered");
                assert_outputs_match(&kernel);
            }
        };
    }

    kernel_test!(twomm_matches, "2mm");
    kernel_test!(threemm_matches, "3mm");
    kernel_test!(atax_matches, "atax");
    kernel_test!(bicg_matches, "bicg");
    kernel_test!(mvt_matches, "mvt");
    kernel_test!(cholesky_matches, "cholesky");
    kernel_test!(lu_matches, "lu");
    kernel_test!(ludcmp_matches, "ludcmp");
    kernel_test!(trisolv_matches, "trisolv");
    kernel_test!(durbin_matches, "durbin");
    kernel_test!(jacobi1d_matches, "jacobi-1d");
    kernel_test!(jacobi2d_matches, "jacobi-2d");
    kernel_test!(seidel2d_matches, "seidel-2d");
    kernel_test!(fdtd2d_matches, "fdtd-2d");
    kernel_test!(heat3d_matches, "heat-3d");
    kernel_test!(floyd_matches, "floyd-warshall");
    kernel_test!(covariance_matches, "covariance");
    kernel_test!(correlation_matches, "correlation");
    kernel_test!(gramschmidt_matches, "gramschmidt");
    kernel_test!(doitgen_matches, "doitgen");
    kernel_test!(nussinov_matches, "nussinov");
}
