//! The platform-agnostic function environment.
//!
//! "All experiments are implemented using the same code for both FAASM and
//! Knative, with a Knative-specific implementation of the Faaslet host
//! interface" (§6.1). [`FaasEnv`] is that shared interface: every workload
//! function is written against it once, and the two adapters bind it to the
//! Faaslet host interface ([`FaasmEnv`]) and the container API
//! ([`ContainerEnv`]). The semantics differ exactly where the paper says
//! they do: Faaslets pull state chunks into *shared* regions, containers
//! ship *whole values* into private copies.

use faasm_baseline::ContainerApi;
use faasm_core::NativeApi;

/// The operations workloads need from their platform.
pub trait FaasEnv {
    /// The call's input bytes.
    fn input(&self) -> Vec<u8>;

    /// Append output bytes.
    fn write_output(&mut self, data: &[u8]);

    /// Read `len` bytes of state `key` at `offset`; `total_size` is the
    /// value's full size (needed to size replicas on first touch).
    ///
    /// # Errors
    ///
    /// A platform error message.
    fn state_read(
        &mut self,
        key: &str,
        total_size: usize,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, String>;

    /// Write state bytes at `offset`.
    ///
    /// # Errors
    ///
    /// A platform error message.
    fn state_write(
        &mut self,
        key: &str,
        total_size: usize,
        offset: usize,
        data: &[u8],
    ) -> Result<(), String>;

    /// Flush local writes of `key` to the global tier (a no-op on platforms
    /// that write through).
    ///
    /// # Errors
    ///
    /// A platform error message.
    fn state_push(&mut self, key: &str, total_size: usize) -> Result<(), String>;

    /// Flush exactly `[offset, offset + len)` of `key` to the global tier
    /// (`push_state_offset`, Tab. 2). Writers updating disjoint ranges of a
    /// shared value must use this instead of [`FaasEnv::state_push`]:
    /// chunk-granular pushes can clobber a neighbour's concurrent update
    /// with stale local bytes.
    ///
    /// # Errors
    ///
    /// A platform error message.
    fn state_push_range(
        &mut self,
        key: &str,
        total_size: usize,
        offset: usize,
        len: usize,
    ) -> Result<(), String> {
        let _ = (offset, len);
        self.state_push(key, total_size)
    }

    /// Flush several disjoint `(offset, len)` ranges of `key` — the
    /// batched form of [`FaasEnv::state_push_range`] for writers that
    /// touched scattered ranges of a shared value. On Faasm this is a
    /// single global-tier round-trip; the default falls back to one
    /// [`FaasEnv::state_push_range`] per range.
    ///
    /// # Errors
    ///
    /// A platform error message.
    fn state_push_ranges(
        &mut self,
        key: &str,
        total_size: usize,
        ranges: &[(usize, usize)],
    ) -> Result<(), String> {
        for &(offset, len) in ranges {
            self.state_push_range(key, total_size, offset, len)?;
        }
        Ok(())
    }

    /// Settle after a range-flush protocol: the caller asserts every local
    /// write it made to `key` within `ranges` has been flushed (via
    /// [`FaasEnv::state_push_range`]/[`FaasEnv::state_push_ranges`]), so
    /// the platform may drop its local dirty claim on those ranges — a
    /// later chunk-granular [`FaasEnv::state_push`] must not re-upload
    /// whole stale chunks of a shared value. No-op on platforms without
    /// local dirty tracking (containers write through).
    ///
    /// # Errors
    ///
    /// A platform error message.
    fn state_settle_ranges(
        &mut self,
        key: &str,
        total_size: usize,
        ranges: &[(usize, usize)],
    ) -> Result<(), String> {
        let _ = (key, total_size, ranges);
        Ok(())
    }

    /// Size of a state value in the global tier.
    ///
    /// # Errors
    ///
    /// A platform error message.
    fn state_size(&self, key: &str) -> Result<usize, String>;

    /// Atomically add to a global counter; returns the new value.
    ///
    /// # Errors
    ///
    /// A platform error message.
    fn counter_add(&mut self, key: &str, delta: i64) -> Result<i64, String>;

    /// Chain a call to another function of the same user.
    fn chain(&mut self, function: &str, input: Vec<u8>) -> u64;

    /// Await a chained call; returns its return code.
    fn await_call(&mut self, id: u64) -> i32;

    /// Output of an awaited chained call.
    fn call_output(&mut self, id: u64) -> Option<Vec<u8>>;

    /// Read a whole file (model weights, datasets); Faaslets hit the
    /// host-shared read-global filesystem, containers fetch private copies.
    ///
    /// # Errors
    ///
    /// A platform error message.
    fn load_file(&mut self, path: &str) -> Result<Vec<u8>, String>;
}

/// [`FaasEnv`] over the Faaslet host interface.
pub struct FaasmEnv<'a, 'b> {
    api: &'a mut NativeApi<'b>,
}

impl<'a, 'b> FaasmEnv<'a, 'b> {
    /// Wrap a native-guest API.
    pub fn new(api: &'a mut NativeApi<'b>) -> FaasmEnv<'a, 'b> {
        FaasmEnv { api }
    }
}

impl FaasEnv for FaasmEnv<'_, '_> {
    fn input(&self) -> Vec<u8> {
        self.api.input().to_vec()
    }

    fn write_output(&mut self, data: &[u8]) {
        self.api.write_output(data);
    }

    fn state_read(
        &mut self,
        key: &str,
        total_size: usize,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, String> {
        let entry = self.api.state(key, total_size).map_err(|e| e.to_string())?;
        let mut buf = vec![0u8; len];
        entry.read(offset, &mut buf).map_err(|e| e.to_string())?;
        Ok(buf)
    }

    fn state_write(
        &mut self,
        key: &str,
        total_size: usize,
        offset: usize,
        data: &[u8],
    ) -> Result<(), String> {
        let entry = self.api.state(key, total_size).map_err(|e| e.to_string())?;
        entry.write(offset, data).map_err(|e| e.to_string())
    }

    fn state_push(&mut self, key: &str, total_size: usize) -> Result<(), String> {
        let entry = self.api.state(key, total_size).map_err(|e| e.to_string())?;
        entry.push().map_err(|e| e.to_string())
    }

    fn state_push_range(
        &mut self,
        key: &str,
        total_size: usize,
        offset: usize,
        len: usize,
    ) -> Result<(), String> {
        let entry = self.api.state(key, total_size).map_err(|e| e.to_string())?;
        entry.push_range(offset, len).map_err(|e| e.to_string())
    }

    fn state_push_ranges(
        &mut self,
        key: &str,
        total_size: usize,
        ranges: &[(usize, usize)],
    ) -> Result<(), String> {
        let entry = self.api.state(key, total_size).map_err(|e| e.to_string())?;
        entry.push_ranges(ranges).map_err(|e| e.to_string())
    }

    fn state_settle_ranges(
        &mut self,
        key: &str,
        total_size: usize,
        ranges: &[(usize, usize)],
    ) -> Result<(), String> {
        let entry = self.api.state(key, total_size).map_err(|e| e.to_string())?;
        entry.clear_dirty_ranges(ranges);
        Ok(())
    }

    fn state_size(&self, key: &str) -> Result<usize, String> {
        self.api
            .state_manager()
            .kv()
            .strlen(key)
            .map(|n| n as usize)
            .map_err(|e| e.to_string())
    }

    fn counter_add(&mut self, key: &str, delta: i64) -> Result<i64, String> {
        self.api
            .state_manager()
            .kv()
            .incr(key, delta)
            .map_err(|e| e.to_string())
    }

    fn chain(&mut self, function: &str, input: Vec<u8>) -> u64 {
        self.api.chain(function, input).0
    }

    fn await_call(&mut self, id: u64) -> i32 {
        self.api.await_call(faasm_core::CallId(id))
    }

    fn call_output(&mut self, id: u64) -> Option<Vec<u8>> {
        self.api
            .call_output(faasm_core::CallId(id))
            .map(<[u8]>::to_vec)
    }

    fn load_file(&mut self, path: &str) -> Result<Vec<u8>, String> {
        let fs = self.api.fs();
        let fd = fs
            .open(path, faasm_vfs::OpenFlags::read_only())
            .map_err(|e| e.to_string())?;
        let size = fs.fstat(fd).map_err(|e| e.to_string())?.size as usize;
        let data = fs.read(fd, size).map_err(|e| e.to_string())?;
        let _ = fs.close(fd);
        Ok(data)
    }
}

/// [`FaasEnv`] over the container API.
pub struct ContainerEnv<'a, 'b> {
    api: &'a mut ContainerApi<'b>,
    /// Container-side "filesystem": private copies fetched from the object
    /// store through the platform KVS (containers have no shared read-global
    /// filesystem).
    files: std::collections::HashMap<String, Vec<u8>>,
}

impl<'a, 'b> ContainerEnv<'a, 'b> {
    /// Wrap a container API.
    pub fn new(api: &'a mut ContainerApi<'b>) -> ContainerEnv<'a, 'b> {
        ContainerEnv {
            api,
            files: std::collections::HashMap::new(),
        }
    }
}

impl FaasEnv for ContainerEnv<'_, '_> {
    fn input(&self) -> Vec<u8> {
        self.api.input().to_vec()
    }

    fn write_output(&mut self, data: &[u8]) {
        self.api.write_output(data);
    }

    fn state_read(
        &mut self,
        key: &str,
        _total_size: usize,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, String> {
        self.api.state_read(key, offset, len)
    }

    fn state_write(
        &mut self,
        key: &str,
        _total_size: usize,
        offset: usize,
        data: &[u8],
    ) -> Result<(), String> {
        self.api.state_write(key, offset, data)
    }

    fn state_push(&mut self, _key: &str, _total_size: usize) -> Result<(), String> {
        // Containers write through on every state_write; nothing to flush.
        Ok(())
    }

    fn state_size(&self, key: &str) -> Result<usize, String> {
        self.api.state_size(key)
    }

    fn counter_add(&mut self, key: &str, delta: i64) -> Result<i64, String> {
        self.api.counter_add(key, delta)
    }

    fn chain(&mut self, function: &str, input: Vec<u8>) -> u64 {
        self.api.chain(function, input).0
    }

    fn await_call(&mut self, id: u64) -> i32 {
        self.api.await_call(faasm_core::CallId(id))
    }

    fn call_output(&mut self, id: u64) -> Option<Vec<u8>> {
        self.api
            .call_output(faasm_core::CallId(id))
            .map(<[u8]>::to_vec)
    }

    fn load_file(&mut self, path: &str) -> Result<Vec<u8>, String> {
        if let Some(f) = self.files.get(path) {
            return Ok(f.clone());
        }
        // Containers fetch files as state values keyed by path: a private,
        // per-container copy shipped over the network every cold start.
        let size = self.api.state_size(&format!("file:{path}"))?;
        if size == 0 {
            return Err(format!("no such file: {path}"));
        }
        let data = self.api.state_read(&format!("file:{path}"), 0, size)?;
        self.files.insert(path.to_string(), data.clone());
        Ok(data)
    }
}

/// Upload a file so both platforms can read it: Faasm's shared object store
/// (read-global filesystem) and the baseline's KVS-backed `file:` namespace.
pub fn publish_file(
    faasm: Option<&faasm_core::Cluster>,
    baseline: Option<&faasm_baseline::BaselinePlatform>,
    path: &str,
    data: &[u8],
) {
    if let Some(c) = faasm {
        c.object_store().put(path, data.to_vec());
    }
    if let Some(b) = baseline {
        b.kv()
            .set(&format!("file:{path}"), data.to_vec())
            .expect("baseline file upload");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_baseline::{BaselinePlatform, ContainerGuest};
    use faasm_core::{Cluster, NativeGuest};
    use std::sync::Arc;

    /// A guest that exercises the whole FaasEnv surface, written once.
    fn exercise<E: FaasEnv>(env: &mut E) -> Result<i32, String> {
        let input = env.input();
        env.state_write("wk", 16, 0, &input)?;
        env.state_push("wk", 16)?;
        let back = env.state_read("wk", 16, 0, input.len())?;
        if back != input {
            return Err("state roundtrip mismatch".into());
        }
        let n = env.counter_add("wc", 1)?;
        let f = env.load_file("shared/data/blob.bin")?;
        env.write_output(&back);
        env.write_output(&[n as u8, f[0]]);
        Ok(0)
    }

    #[test]
    fn same_code_runs_on_faasm() {
        let cluster = Cluster::new(1);
        publish_file(Some(&cluster), None, "shared/data/blob.bin", &[0xee, 2, 3]);
        let guest: Arc<dyn NativeGuest> = Arc::new(|api: &mut NativeApi<'_>| {
            let mut env = FaasmEnv::new(api);
            exercise(&mut env).map_err(faasm_fvm::Trap::host)
        });
        cluster.register_native("u", "ex", guest, false);
        let r = cluster.invoke("u", "ex", b"hi!!".to_vec());
        assert_eq!(r.return_code(), 0, "status {:?}", r.status);
        assert_eq!(&r.output[..4], b"hi!!");
        assert_eq!(r.output[4], 1);
        assert_eq!(r.output[5], 0xee);
    }

    #[test]
    fn same_code_runs_on_baseline() {
        let platform = BaselinePlatform::with_config(faasm_baseline::BaselineConfig {
            hosts: 1,
            image: faasm_baseline::ImageConfig {
                image_bytes: 64 * 1024,
                layers: 2,
                boot_passes: 1,
            },
            ..Default::default()
        });
        publish_file(None, Some(&platform), "shared/data/blob.bin", &[0xee, 2, 3]);
        let guest: Arc<dyn ContainerGuest> = Arc::new(|api: &mut ContainerApi<'_>| {
            let mut env = ContainerEnv::new(api);
            exercise(&mut env)
        });
        platform.register("u", "ex", guest);
        let r = platform.invoke("u", "ex", b"hi!!".to_vec());
        assert_eq!(r.return_code(), 0, "status {:?}", r.status);
        assert_eq!(&r.output[..4], b"hi!!");
        assert_eq!(r.output[4], 1);
        assert_eq!(r.output[5], 0xee);
    }
}
