//! Synthetic dataset generators (DESIGN.md S8).
//!
//! The paper trains on Reuters RCV1 (~800 K documents, ~47 K features,
//! highly sparse) and serves inference on images. Both are replaced by
//! seeded generators with matching structure so experiments are reproducible
//! without external data; scale factors are recorded by the harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sparse text-classification dataset in triplet form.
#[derive(Debug, Clone)]
pub struct SparseDataset {
    /// Number of examples (documents).
    pub examples: usize,
    /// Feature dimensionality.
    pub features: usize,
    /// `(example, feature, value)` non-zeros.
    pub triplets: Vec<(u32, u32, f64)>,
    /// Labels in `{-1, +1}`.
    pub labels: Vec<f64>,
}

/// Generate an RCV1-like dataset: each example draws a small number of
/// features (Zipf-ish reuse of common features), with labels from a planted
/// weight vector so SGD has signal to learn.
pub fn rcv1_like(
    examples: usize,
    features: usize,
    nnz_per_example: usize,
    seed: u64,
) -> SparseDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Planted ground-truth weights.
    let truth: Vec<f64> = (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut triplets = Vec::with_capacity(examples * nnz_per_example);
    let mut labels = Vec::with_capacity(examples);
    for ex in 0..examples {
        let mut dot = 0.0;
        for _ in 0..nnz_per_example {
            // Zipf-ish: bias toward low feature ids (common words).
            let r: f64 = rng.gen_range(0.0f64..1.0);
            let feat = ((r * r) * features as f64) as u32 % features as u32;
            let val: f64 = rng.gen_range(0.1..1.0);
            triplets.push((ex as u32, feat, val));
            dot += truth[feat as usize] * val;
        }
        labels.push(if dot >= 0.0 { 1.0 } else { -1.0 });
    }
    SparseDataset {
        examples,
        features,
        triplets,
        labels,
    }
}

impl SparseDataset {
    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.triplets.len()
    }

    /// Serialise to compressed-sparse-column layout over **examples as
    /// columns** (the paper's SGD partitions work by example/column ranges):
    /// returns `(values, row_features, col_ptr)` where `col_ptr[e]..col_ptr[e+1]`
    /// spans example `e`'s non-zeros.
    pub fn to_csc(&self) -> (Vec<f64>, Vec<u32>, Vec<u32>) {
        let mut order: Vec<usize> = (0..self.triplets.len()).collect();
        order.sort_by_key(|&i| (self.triplets[i].0, self.triplets[i].1));
        let mut vals = Vec::with_capacity(self.triplets.len());
        let mut feats = Vec::with_capacity(self.triplets.len());
        let mut col_ptr = vec![0u32; self.examples + 1];
        for &i in &order {
            let (ex, feat, v) = self.triplets[i];
            vals.push(v);
            feats.push(feat);
            col_ptr[ex as usize + 1] += 1;
        }
        for e in 0..self.examples {
            col_ptr[e + 1] += col_ptr[e];
        }
        (vals, feats, col_ptr)
    }
}

/// Little-endian f64 vector encoding.
pub fn f64s_to_bytes(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Little-endian f64 vector decoding.
///
/// # Panics
///
/// Panics on misaligned input length (an internal invariant).
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert!(bytes.len().is_multiple_of(8), "f64 buffer misaligned");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Little-endian u32 vector encoding.
pub fn u32s_to_bytes(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Little-endian u32 vector decoding.
///
/// # Panics
///
/// Panics on misaligned input length (an internal invariant).
pub fn bytes_to_u32s(bytes: &[u8]) -> Vec<u32> {
    assert!(bytes.len().is_multiple_of(4), "u32 buffer misaligned");
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect()
}

/// A synthetic greyscale image batch for inference serving: `count` images
/// of `side × side` pixels with a few bright blobs each.
pub fn synth_images(count: usize, side: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut img = vec![0u8; side * side];
            for _ in 0..4 {
                let cx = rng.gen_range(0..side) as i64;
                let cy = rng.gen_range(0..side) as i64;
                let bright: u8 = rng.gen_range(128..=255);
                for dy in -2i64..=2 {
                    for dx in -2i64..=2 {
                        let (x, y) = (cx + dx, cy + dy);
                        if x >= 0 && y >= 0 && (x as usize) < side && (y as usize) < side {
                            let falloff = (dx.abs() + dy.abs()) as u8;
                            let px = &mut img[y as usize * side + x as usize];
                            *px = (*px).max(bright.saturating_sub(falloff * 40));
                        }
                    }
                }
            }
            img
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_determinism() {
        let d1 = rcv1_like(100, 500, 12, 7);
        let d2 = rcv1_like(100, 500, 12, 7);
        assert_eq!(d1.triplets, d2.triplets, "seeded determinism");
        assert_eq!(d1.examples, 100);
        assert_eq!(d1.labels.len(), 100);
        assert_eq!(d1.nnz(), 1200);
        assert!(d1
            .triplets
            .iter()
            .all(|&(e, f, _)| (e as usize) < 100 && (f as usize) < 500));
        assert!(d1.labels.iter().all(|&l| l == 1.0 || l == -1.0));
        // Both classes present (planted weights are balanced).
        assert!(d1.labels.contains(&1.0));
        assert!(d1.labels.iter().any(|&l| l == -1.0));
    }

    #[test]
    fn csc_layout_is_consistent() {
        let d = rcv1_like(50, 100, 8, 3);
        let (vals, feats, col_ptr) = d.to_csc();
        assert_eq!(vals.len(), d.nnz());
        assert_eq!(feats.len(), d.nnz());
        assert_eq!(col_ptr.len(), 51);
        assert_eq!(col_ptr[0], 0);
        assert_eq!(col_ptr[50] as usize, d.nnz());
        // Per-example spans hold that example's nnz count.
        for e in 0..50 {
            let span = (col_ptr[e + 1] - col_ptr[e]) as usize;
            assert_eq!(span, 8);
        }
    }

    #[test]
    fn byte_codecs_roundtrip() {
        let f = vec![1.5f64, -2.25, 0.0];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&f)), f);
        let u = vec![0u32, 7, u32::MAX];
        assert_eq!(bytes_to_u32s(&u32s_to_bytes(&u)), u);
    }

    #[test]
    fn images_are_deterministic_and_sized() {
        let a = synth_images(3, 28, 9);
        let b = synth_images(3, 28, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|img| img.len() == 28 * 28));
        assert!(a[0].iter().any(|&p| p > 100), "blobs present");
    }
}
