//! MiniDyn: a small dynamic-language runtime (DESIGN.md S3).
//!
//! The paper runs CPython inside Faaslets to show that full dynamic language
//! runtimes work behind the host interface (§6.4). MiniDyn is this
//! reproduction's interpreter: dynamically typed values (ints, floats,
//! strings, arbitrary-precision integers, lists, dictionaries), functions
//! with recursion, and a tree-walking evaluator. Programs are loaded from
//! the Faaslet filesystem — like CPython loading `.py` modules — and the
//! Fig. 9b benchmark suite ([`programs`]) runs both inside a Faaslet and
//! directly, to measure the isolation overhead of hosting a language
//! runtime.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

pub mod bigint;
pub mod programs;

use bigint::BigUint;

/// A MiniDyn value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Machine integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Immutable string.
    Str(Rc<String>),
    /// Arbitrary-precision unsigned integer.
    Big(Rc<BigUint>),
    /// Mutable list.
    List(Rc<std::cell::RefCell<Vec<Value>>>),
    /// Mutable string-keyed dictionary.
    Dict(Rc<std::cell::RefCell<HashMap<String, Value>>>),
    /// The unit/none value.
    None,
}

impl Value {
    /// Truthiness: zero, empty and none are false.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Big(b) => !b.is_zero(),
            Value::List(l) => !l.borrow().is_empty(),
            Value::Dict(d) => !d.borrow().is_empty(),
            Value::None => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Big(b) => write!(f, "{b}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Dict(d) => {
                // Sorted keys for deterministic output.
                let mut keys: Vec<String> = d.borrow().keys().cloned().collect();
                keys.sort();
                write!(f, "{{")?;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    let v = d.borrow().get(k).cloned().unwrap_or(Value::None);
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::None => write!(f, "none"),
        }
    }
}

// ── AST ─────────────────────────────────────────────────────────────────

#[derive(Debug, Clone)]
enum Expr {
    Int(i64),
    Float(f64),
    Str(String),
    Var(String),
    ListLit(Vec<Expr>),
    DictLit(Vec<(String, Expr)>),
    Index(Box<Expr>, Box<Expr>),
    Call(String, Vec<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    Not(Box<Expr>),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)]
enum Stmt {
    Assign(String, Expr),
    IndexAssign(Expr, Expr, Expr),
    ExprStmt(Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    While(Expr, Vec<Stmt>),
    ForRange(String, Expr, Expr, Vec<Stmt>),
    Return(Expr),
    Break,
    Continue,
}

#[derive(Debug, Clone)]
struct FnDef {
    params: Vec<String>,
    body: Vec<Stmt>,
}

/// A parsed MiniDyn program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    fns: HashMap<String, Rc<FnDef>>,
}

// ── Lexer/Parser ────────────────────────────────────────────────────────

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
    Eof,
}

fn lex(src: &str) -> Result<Vec<Tok>, String> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let s = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(src[s..i].to_string()));
            }
            '0'..='9' => {
                let s = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    out.push(Tok::Float(
                        src[s..i].parse().map_err(|_| "bad float".to_string())?,
                    ));
                } else {
                    out.push(Tok::Int(
                        src[s..i].parse().map_err(|_| "bad int".to_string())?,
                    ));
                }
            }
            '"' => {
                i += 1;
                let s = i;
                while i < b.len() && b[i] != b'"' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err("unterminated string".into());
                }
                out.push(Tok::Str(src[s..i].to_string()));
                i += 1;
            }
            _ => {
                let two: &[(&str, &str)] = &[
                    ("==", "=="),
                    ("!=", "!="),
                    ("<=", "<="),
                    (">=", ">="),
                    ("&&", "&&"),
                    ("||", "||"),
                ];
                let rest = &src[i..];
                if let Some((_, sym)) = two.iter().find(|(p, _)| rest.starts_with(p)) {
                    out.push(Tok::Sym(sym));
                    i += 2;
                } else {
                    let sym = match c {
                        '(' => "(",
                        ')' => ")",
                        '{' => "{",
                        '}' => "}",
                        '[' => "[",
                        ']' => "]",
                        ',' => ",",
                        ';' => ";",
                        ':' => ":",
                        '=' => "=",
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '/' => "/",
                        '%' => "%",
                        '<' => "<",
                        '>' => ">",
                        '!' => "!",
                        _ => return Err(format!("unexpected character {c:?}")),
                    };
                    out.push(Tok::Sym(sym));
                    i += 1;
                }
            }
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, sym: &str) -> Result<(), String> {
        match self.bump() {
            Tok::Sym(s) if s == sym => Ok(()),
            other => Err(format!("expected {sym:?}, found {other:?}")),
        }
    }

    fn try_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(s) if *s == sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    fn program(&mut self) -> Result<Program, String> {
        let mut prog = Program::default();
        while *self.peek() != Tok::Eof {
            match self.bump() {
                Tok::Ident(kw) if kw == "fn" => {
                    let name = self.ident()?;
                    self.eat("(")?;
                    let mut params = Vec::new();
                    if !self.try_sym(")") {
                        loop {
                            params.push(self.ident()?);
                            if self.try_sym(")") {
                                break;
                            }
                            self.eat(",")?;
                        }
                    }
                    let body = self.block()?;
                    prog.fns.insert(name, Rc::new(FnDef { params, body }));
                }
                other => return Err(format!("expected fn, found {other:?}")),
            }
        }
        Ok(prog)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, String> {
        self.eat("{")?;
        let mut out = Vec::new();
        while !self.try_sym("}") {
            if *self.peek() == Tok::Eof {
                return Err("unterminated block".into());
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, String> {
        match self.peek().clone() {
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                self.eat("(")?;
                let cond = self.expr()?;
                self.eat(")")?;
                let then = self.block()?;
                let otherwise = if matches!(self.peek(), Tok::Ident(k) if k == "else") {
                    self.bump();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, otherwise))
            }
            Tok::Ident(kw) if kw == "while" => {
                self.bump();
                self.eat("(")?;
                let cond = self.expr()?;
                self.eat(")")?;
                Ok(Stmt::While(cond, self.block()?))
            }
            Tok::Ident(kw) if kw == "for" => {
                self.bump();
                let var = self.ident()?;
                match self.bump() {
                    Tok::Ident(k) if k == "in" => {}
                    other => return Err(format!("expected `in`, found {other:?}")),
                }
                match self.bump() {
                    Tok::Ident(k) if k == "range" => {}
                    other => return Err(format!("expected `range`, found {other:?}")),
                }
                self.eat("(")?;
                let a = self.expr()?;
                let (lo, hi) = if self.try_sym(",") {
                    let b = self.expr()?;
                    (a, b)
                } else {
                    (Expr::Int(0), a)
                };
                self.eat(")")?;
                Ok(Stmt::ForRange(var, lo, hi, self.block()?))
            }
            Tok::Ident(kw) if kw == "return" => {
                self.bump();
                if self.try_sym(";") {
                    return Ok(Stmt::Return(Expr::Int(0)));
                }
                let e = self.expr()?;
                self.eat(";")?;
                Ok(Stmt::Return(e))
            }
            Tok::Ident(kw) if kw == "break" => {
                self.bump();
                self.eat(";")?;
                Ok(Stmt::Break)
            }
            Tok::Ident(kw) if kw == "continue" => {
                self.bump();
                self.eat(";")?;
                Ok(Stmt::Continue)
            }
            _ => {
                let e = self.expr()?;
                if self.try_sym("=") {
                    let value = self.expr()?;
                    self.eat(";")?;
                    match e {
                        Expr::Var(name) => Ok(Stmt::Assign(name, value)),
                        Expr::Index(target, idx) => Ok(Stmt::IndexAssign(*target, *idx, value)),
                        _ => Err("invalid assignment target".into()),
                    }
                } else {
                    self.eat(";")?;
                    Ok(Stmt::ExprStmt(e))
                }
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, String> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, String> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Sym("||") => (BinOp::Or, 1),
                Tok::Sym("&&") => (BinOp::And, 2),
                Tok::Sym("==") => (BinOp::Eq, 3),
                Tok::Sym("!=") => (BinOp::Ne, 3),
                Tok::Sym("<") => (BinOp::Lt, 4),
                Tok::Sym("<=") => (BinOp::Le, 4),
                Tok::Sym(">") => (BinOp::Gt, 4),
                Tok::Sym(">=") => (BinOp::Ge, 4),
                Tok::Sym("+") => (BinOp::Add, 5),
                Tok::Sym("-") => (BinOp::Sub, 5),
                Tok::Sym("*") => (BinOp::Mul, 6),
                Tok::Sym("/") => (BinOp::Div, 6),
                Tok::Sym("%") => (BinOp::Rem, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, String> {
        if self.try_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.try_sym("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, String> {
        let mut e = self.primary()?;
        while self.try_sym("[") {
            let idx = self.expr()?;
            self.eat("]")?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, String> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Sym("(") => {
                let e = self.expr()?;
                self.eat(")")?;
                Ok(e)
            }
            Tok::Sym("[") => {
                let mut items = Vec::new();
                if !self.try_sym("]") {
                    loop {
                        items.push(self.expr()?);
                        if self.try_sym("]") {
                            break;
                        }
                        self.eat(",")?;
                    }
                }
                Ok(Expr::ListLit(items))
            }
            Tok::Sym("{") => {
                let mut items = Vec::new();
                if !self.try_sym("}") {
                    loop {
                        let key = match self.bump() {
                            Tok::Str(s) => s,
                            Tok::Ident(s) => s,
                            other => return Err(format!("expected dict key, found {other:?}")),
                        };
                        self.eat(":")?;
                        items.push((key, self.expr()?));
                        if self.try_sym("}") {
                            break;
                        }
                        self.eat(",")?;
                    }
                }
                Ok(Expr::DictLit(items))
            }
            Tok::Ident(name) => {
                if self.try_sym("(") {
                    let mut args = Vec::new();
                    if !self.try_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.try_sym(")") {
                                break;
                            }
                            self.eat(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Parse MiniDyn source.
///
/// # Errors
///
/// A parse error message.
pub fn parse(src: &str) -> Result<Program, String> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.program()
}

// ── Evaluator ───────────────────────────────────────────────────────────

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// The MiniDyn interpreter: parsed program + execution counters.
pub struct Interp {
    prog: Program,
    /// Total evaluation steps (for fuel-style accounting/tests).
    pub steps: u64,
    depth: usize,
}

/// Maximum recursion depth.
const MAX_DEPTH: usize = 64;

impl Interp {
    /// Build an interpreter for a parsed program.
    pub fn new(prog: Program) -> Interp {
        Interp {
            prog,
            steps: 0,
            depth: 0,
        }
    }

    /// Call a named function with arguments.
    ///
    /// # Errors
    ///
    /// Runtime error messages (unknown names, type errors, depth).
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, String> {
        let def = self
            .prog
            .fns
            .get(name)
            .cloned()
            .ok_or_else(|| format!("unknown function {name:?}"))?;
        if args.len() != def.params.len() {
            return Err(format!(
                "{name:?} expects {} args, got {}",
                def.params.len(),
                args.len()
            ));
        }
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err("recursion limit exceeded".into());
        }
        let mut env: HashMap<String, Value> = def
            .params
            .iter()
            .cloned()
            .zip(args.iter().cloned())
            .collect();
        let flow = self.exec_block(&def.body, &mut env);
        self.depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::None),
        }
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        env: &mut HashMap<String, Value>,
    ) -> Result<Flow, String> {
        for s in stmts {
            match self.exec(s, env)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, s: &Stmt, env: &mut HashMap<String, Value>) -> Result<Flow, String> {
        self.steps += 1;
        match s {
            Stmt::Assign(name, e) => {
                let v = self.eval(e, env)?;
                env.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::IndexAssign(target, idx, value) => {
                let t = self.eval(target, env)?;
                let i = self.eval(idx, env)?;
                let v = self.eval(value, env)?;
                match (t, i) {
                    (Value::List(l), Value::Int(i)) => {
                        let mut l = l.borrow_mut();
                        let idx = usize::try_from(i).map_err(|_| "negative index")?;
                        if idx >= l.len() {
                            return Err(format!("index {idx} out of range ({})", l.len()));
                        }
                        l[idx] = v;
                        Ok(Flow::Normal)
                    }
                    (Value::Dict(d), Value::Str(k)) => {
                        d.borrow_mut().insert((*k).clone(), v);
                        Ok(Flow::Normal)
                    }
                    (t, i) => Err(format!("cannot index {t} with {i}")),
                }
            }
            Stmt::ExprStmt(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, otherwise) => {
                if self.eval(cond, env)?.truthy() {
                    self.exec_block(then, env)
                } else {
                    self.exec_block(otherwise, env)
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, env)?.truthy() {
                    match self.exec_block(body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ForRange(var, lo, hi, body) => {
                let lo = match self.eval(lo, env)? {
                    Value::Int(v) => v,
                    other => return Err(format!("range bound must be int, got {other}")),
                };
                let hi = match self.eval(hi, env)? {
                    Value::Int(v) => v,
                    other => return Err(format!("range bound must be int, got {other}")),
                };
                for i in lo..hi {
                    env.insert(var.clone(), Value::Int(i));
                    match self.exec_block(body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = self.eval(e, env)?;
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn eval(&mut self, e: &Expr, env: &mut HashMap<String, Value>) -> Result<Value, String> {
        self.steps += 1;
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Str(s) => Ok(Value::Str(Rc::new(s.clone()))),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| format!("unknown variable {name:?}")),
            Expr::ListLit(items) => {
                let mut out = Vec::with_capacity(items.len());
                for it in items {
                    out.push(self.eval(it, env)?);
                }
                Ok(Value::List(Rc::new(std::cell::RefCell::new(out))))
            }
            Expr::DictLit(items) => {
                let mut out = HashMap::new();
                for (k, v) in items {
                    out.insert(k.clone(), self.eval(v, env)?);
                }
                Ok(Value::Dict(Rc::new(std::cell::RefCell::new(out))))
            }
            Expr::Index(target, idx) => {
                let t = self.eval(target, env)?;
                let i = self.eval(idx, env)?;
                match (t, i) {
                    (Value::List(l), Value::Int(i)) => {
                        let l = l.borrow();
                        let idx = usize::try_from(i).map_err(|_| "negative index")?;
                        l.get(idx)
                            .cloned()
                            .ok_or_else(|| format!("index {idx} out of range ({})", l.len()))
                    }
                    (Value::Dict(d), Value::Str(k)) => {
                        Ok(d.borrow().get(k.as_str()).cloned().unwrap_or(Value::None))
                    }
                    (t, i) => Err(format!("cannot index {t} with {i}")),
                }
            }
            Expr::Neg(x) => match self.eval(x, env)? {
                Value::Int(v) => Ok(Value::Int(-v)),
                Value::Float(v) => Ok(Value::Float(-v)),
                other => Err(format!("cannot negate {other}")),
            },
            Expr::Not(x) => Ok(Value::Int(!self.eval(x, env)?.truthy() as i64)),
            Expr::Bin(op, a, b) => {
                // Short-circuit logicals.
                if *op == BinOp::And {
                    let av = self.eval(a, env)?;
                    if !av.truthy() {
                        return Ok(Value::Int(0));
                    }
                    return Ok(Value::Int(self.eval(b, env)?.truthy() as i64));
                }
                if *op == BinOp::Or {
                    let av = self.eval(a, env)?;
                    if av.truthy() {
                        return Ok(Value::Int(1));
                    }
                    return Ok(Value::Int(self.eval(b, env)?.truthy() as i64));
                }
                let av = self.eval(a, env)?;
                let bv = self.eval(b, env)?;
                binop(*op, av, bv)
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                self.call_builtin_or_fn(name, vals)
            }
        }
    }

    fn call_builtin_or_fn(&mut self, name: &str, args: Vec<Value>) -> Result<Value, String> {
        match (name, args.as_slice()) {
            ("len", [Value::List(l)]) => Ok(Value::Int(l.borrow().len() as i64)),
            ("len", [Value::Str(s)]) => Ok(Value::Int(s.len() as i64)),
            ("len", [Value::Dict(d)]) => Ok(Value::Int(d.borrow().len() as i64)),
            ("push", [Value::List(l), v]) => {
                l.borrow_mut().push(v.clone());
                Ok(Value::None)
            }
            ("pop", [Value::List(l)]) => l.borrow_mut().pop().ok_or("pop from empty list".into()),
            ("sqrt", [Value::Float(v)]) => Ok(Value::Float(v.sqrt())),
            ("sqrt", [Value::Int(v)]) => Ok(Value::Float((*v as f64).sqrt())),
            ("abs", [Value::Int(v)]) => Ok(Value::Int(v.abs())),
            ("abs", [Value::Float(v)]) => Ok(Value::Float(v.abs())),
            ("float", [Value::Int(v)]) => Ok(Value::Float(*v as f64)),
            ("int", [Value::Float(v)]) => Ok(Value::Int(*v as i64)),
            ("str", [v]) => Ok(Value::Str(Rc::new(v.to_string()))),
            ("big", [Value::Int(v)]) => {
                if *v < 0 {
                    return Err("big() requires a non-negative int".into());
                }
                Ok(Value::Big(Rc::new(BigUint::from_u64(*v as u64))))
            }
            ("bigdivmod", [Value::Big(b), Value::Int(d)]) => {
                if *d <= 0 {
                    return Err("bigdivmod divisor must be positive".into());
                }
                let (q, r) = b.divmod_small(*d as u32);
                Ok(Value::List(Rc::new(std::cell::RefCell::new(vec![
                    Value::Big(Rc::new(q)),
                    Value::Int(r as i64),
                ]))))
            }
            _ => self.call(name, &args),
        }
    }
}

fn binop(op: BinOp, a: Value, b: Value) -> Result<Value, String> {
    use BinOp::*;
    // Big-integer arithmetic (the pidigits path).
    if let (Value::Big(x), Value::Big(y)) = (&a, &b) {
        return match op {
            Add => Ok(Value::Big(Rc::new(x.add(y)))),
            Mul => Ok(Value::Big(Rc::new(x.mul(y)))),
            Sub => x
                .checked_sub(y)
                .map(|v| Value::Big(Rc::new(v)))
                .ok_or_else(|| "big subtraction underflow".to_string()),
            Eq => Ok(Value::Int(
                (x.cmp_big(y) == std::cmp::Ordering::Equal) as i64,
            )),
            Ne => Ok(Value::Int(
                (x.cmp_big(y) != std::cmp::Ordering::Equal) as i64,
            )),
            Lt => Ok(Value::Int(
                (x.cmp_big(y) == std::cmp::Ordering::Less) as i64,
            )),
            Le => Ok(Value::Int(
                (x.cmp_big(y) != std::cmp::Ordering::Greater) as i64,
            )),
            Gt => Ok(Value::Int(
                (x.cmp_big(y) == std::cmp::Ordering::Greater) as i64,
            )),
            Ge => Ok(Value::Int(
                (x.cmp_big(y) != std::cmp::Ordering::Less) as i64,
            )),
            _ => Err("unsupported big-integer operation".into()),
        };
    }
    // Big × small promotions.
    if let (Value::Big(x), Value::Int(y)) = (&a, &b) {
        if *y >= 0 {
            return match op {
                Add => Ok(Value::Big(Rc::new(x.add_small(*y as u64)))),
                Mul => Ok(Value::Big(Rc::new(x.mul_small(*y as u64)))),
                _ => Err("unsupported big-integer operation".into()),
            };
        }
        return Err("negative operand with big integer".into());
    }
    if let (Value::Int(x), Value::Big(y)) = (&a, &b) {
        if *x >= 0 {
            return match op {
                Add => Ok(Value::Big(Rc::new(y.add_small(*x as u64)))),
                Mul => Ok(Value::Big(Rc::new(y.mul_small(*x as u64)))),
                _ => Err("unsupported big-integer operation".into()),
            };
        }
        return Err("negative operand with big integer".into());
    }
    // String concatenation and comparison.
    if let (Value::Str(x), Value::Str(y)) = (&a, &b) {
        return match op {
            Add => Ok(Value::Str(Rc::new(format!("{x}{y}")))),
            Eq => Ok(Value::Int((x == y) as i64)),
            Ne => Ok(Value::Int((x != y) as i64)),
            Lt => Ok(Value::Int((x < y) as i64)),
            Gt => Ok(Value::Int((x > y) as i64)),
            Le => Ok(Value::Int((x <= y) as i64)),
            Ge => Ok(Value::Int((x >= y) as i64)),
            _ => Err("unsupported string operation".into()),
        };
    }
    // Numeric tower: int op int stays int (Div is float like Python 3);
    // anything with a float promotes.
    let as_f = |v: &Value| match v {
        Value::Int(x) => Some(*x as f64),
        Value::Float(x) => Some(*x),
        _ => None,
    };
    match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => {
            let (x, y) = (*x, *y);
            Ok(match op {
                Add => Value::Int(x.wrapping_add(y)),
                Sub => Value::Int(x.wrapping_sub(y)),
                Mul => Value::Int(x.wrapping_mul(y)),
                Div => {
                    if y == 0 {
                        return Err("division by zero".into());
                    }
                    // Python-style floor division for ints.
                    Value::Int(x.div_euclid(y))
                }
                Rem => {
                    if y == 0 {
                        return Err("modulo by zero".into());
                    }
                    Value::Int(x.rem_euclid(y))
                }
                Eq => Value::Int((x == y) as i64),
                Ne => Value::Int((x != y) as i64),
                Lt => Value::Int((x < y) as i64),
                Le => Value::Int((x <= y) as i64),
                Gt => Value::Int((x > y) as i64),
                Ge => Value::Int((x >= y) as i64),
                And | Or => unreachable!("short-circuited earlier"),
            })
        }
        _ => {
            let (Some(x), Some(y)) = (as_f(&a), as_f(&b)) else {
                return Err(format!("type error: {a} {op:?} {b}"));
            };
            Ok(match op {
                Add => Value::Float(x + y),
                Sub => Value::Float(x - y),
                Mul => Value::Float(x * y),
                Div => {
                    if y == 0.0 {
                        return Err("division by zero".into());
                    }
                    Value::Float(x / y)
                }
                Rem => Value::Float(x % y),
                Eq => Value::Int((x == y) as i64),
                Ne => Value::Int((x != y) as i64),
                Lt => Value::Int((x < y) as i64),
                Le => Value::Int((x <= y) as i64),
                Gt => Value::Int((x > y) as i64),
                Ge => Value::Int((x >= y) as i64),
                And | Or => unreachable!("short-circuited earlier"),
            })
        }
    }
}

/// Parse and run `entry()` from MiniDyn source, returning the result as a
/// string (the language-agnostic byte-array convention of §3.2).
///
/// # Errors
///
/// Parse or runtime error messages.
pub fn run_source(src: &str, entry: &str, args: &[Value]) -> Result<String, String> {
    let prog = parse(src)?;
    let mut interp = Interp::new(prog);
    let v = interp.call(entry, args)?;
    Ok(v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, entry: &str, args: &[Value]) -> String {
        run_source(src, entry, args).unwrap_or_else(|e| panic!("minidyn error: {e}"))
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = r#"
            fn f(n) {
                acc = 0;
                for i in range(1, n + 1) {
                    if (i % 2 == 0) { continue; }
                    acc = acc + i;
                }
                return acc;
            }
        "#;
        assert_eq!(run(src, "f", &[Value::Int(10)]), "25");
    }

    #[test]
    fn recursion() {
        let src = "fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }";
        assert_eq!(run(src, "fib", &[Value::Int(15)]), "610");
    }

    #[test]
    fn lists_and_dicts() {
        let src = r#"
            fn f() {
                l = [1, 2, 3];
                push(l, 4);
                l[0] = 10;
                d = {};
                d["total"] = l[0] + l[3];
                return d["total"];
            }
        "#;
        assert_eq!(run(src, "f", &[]), "14");
    }

    #[test]
    fn floats_and_builtins() {
        let src = "fn f(x) { return sqrt(x * 1.0) + abs(-2.5); }";
        assert_eq!(run(src, "f", &[Value::Int(9)]), "5.5");
    }

    #[test]
    fn strings() {
        let src = r#"fn f() { return "a" + str(1 + 2) + "b"; }"#;
        assert_eq!(run(src, "f", &[]), "a3b");
    }

    #[test]
    fn bigints() {
        // 30! has 33 digits; machine ints overflow at 21!.
        let src = r#"
            fn fact(n) {
                acc = big(1);
                for i in range(2, n + 1) {
                    acc = acc * i;
                }
                return acc;
            }
        "#;
        assert_eq!(
            run(src, "fact", &[Value::Int(30)]),
            "265252859812191058636308480000000"
        );
    }

    #[test]
    fn while_break() {
        let src = r#"
            fn f() {
                i = 0;
                while (1) {
                    i = i + 1;
                    if (i >= 7) { break; }
                }
                return i;
            }
        "#;
        assert_eq!(run(src, "f", &[]), "7");
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_source("fn f() { return x; }", "f", &[]).is_err());
        assert!(run_source("fn f() { return 1 / 0; }", "f", &[]).is_err());
        assert!(run_source("fn f() { l = [1]; return l[5]; }", "f", &[]).is_err());
        assert!(run_source("fn f() { return g(); }", "f", &[]).is_err());
        assert!(run_source("fn f(", "f", &[]).is_err());
        // Unbounded recursion hits the depth limit, not the host stack.
        assert!(run_source("fn f() { return f(); }", "f", &[])
            .unwrap_err()
            .contains("recursion limit"));
    }

    #[test]
    fn python_style_division() {
        let src = "fn f() { return -7 / 2; }";
        assert_eq!(run(src, "f", &[]), "-4", "floor division");
        let src = "fn f() { return -7 % 2; }";
        assert_eq!(run(src, "f", &[]), "1", "euclidean modulo");
        let src = "fn f() { return 7.0 / 2; }";
        assert_eq!(run(src, "f", &[]), "3.5");
    }

    #[test]
    fn step_counter_advances() {
        let prog = parse("fn f() { return 1 + 1; }").unwrap();
        let mut i = Interp::new(prog);
        i.call("f", &[]).unwrap();
        assert!(i.steps > 0);
    }
}
