//! Distributed divide-and-conquer matrix multiplication (§6.4, Fig. 8).
//!
//! "Each matrix multiplication is subdivided into multiplications of smaller
//! submatrices and merged. This is implemented by recursively chaining
//! serverless functions, with each multiplication using 64 multiplication
//! functions and 9 merging functions." We reproduce the structure with a
//! 4×4 block grid: `mm_main` chains 64 block-product functions
//! (`P[i,j,k] = A[i,k] × B[k,j]`) and then 16 merge functions
//! (`C[i,j] = Σ_k P[i,j,k]`), all through the ordinary chain/await host
//! interface on both platforms.

use std::sync::Arc;

use faasm_baseline::{BaselinePlatform, ContainerApi, ContainerGuest};
use faasm_core::{Cluster, NativeApi, NativeGuest};
use faasm_kvs::KvBackend;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::{bytes_to_f64s, f64s_to_bytes};
use crate::env::{ContainerEnv, FaasEnv, FaasmEnv};

/// Blocks per side of the grid (4 × 4 grid → 64 products + 16 merges).
pub const GRID: usize = 4;

/// State keys for the matmul application.
pub mod keys {
    /// Input matrix A (row-major f64).
    pub const A: &str = "mm:A";
    /// Input matrix B (row-major f64).
    pub const B: &str = "mm:B";
    /// Output matrix C (row-major f64).
    pub const C: &str = "mm:C";

    /// The temp key for one block product.
    pub fn product(i: usize, j: usize, k: usize) -> String {
        format!("mm:P:{i}:{j}:{k}")
    }
}

fn encode_task(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_task(b: &[u8], n: usize) -> Option<Vec<u32>> {
    if b.len() != n * 4 {
        return None;
    }
    Some(
        b.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect(),
    )
}

/// Read a `block × block` submatrix at block coordinates `(bi, bj)` from a
/// row-major `n × n` state value, row by row (each row is a contiguous
/// range, so Faaslets pull only covering chunks).
fn read_block<E: FaasEnv>(
    env: &mut E,
    key: &str,
    n: usize,
    bi: usize,
    bj: usize,
    block: usize,
) -> Result<Vec<f64>, String> {
    let total = n * n * 8;
    let mut out = Vec::with_capacity(block * block);
    for r in 0..block {
        let row = bi * block + r;
        let offset = (row * n + bj * block) * 8;
        let bytes = env.state_read(key, total, offset, block * 8)?;
        out.extend_from_slice(&bytes_to_f64s(&bytes));
    }
    Ok(out)
}

/// Write a `block × block` submatrix into a row-major `n × n` state value.
fn write_block<E: FaasEnv>(
    env: &mut E,
    key: &str,
    n: usize,
    bi: usize,
    bj: usize,
    block: usize,
    data: &[f64],
) -> Result<(), String> {
    let total = n * n * 8;
    for r in 0..block {
        let row = bi * block + r;
        let offset = (row * n + bj * block) * 8;
        env.state_write(
            key,
            total,
            offset,
            &f64s_to_bytes(&data[r * block..(r + 1) * block]),
        )?;
    }
    // Push exactly the written rows: concurrent merges on other hosts own
    // the neighbouring bytes of each chunk, so a chunk-granular push would
    // race and overwrite their blocks with stale local zeros. All rows go
    // in one batched flush (one global-tier round-trip on Faasm).
    let ranges: Vec<(usize, usize)> = (0..block)
        .map(|r| {
            let row = bi * block + r;
            ((row * n + bj * block) * 8, block * 8)
        })
        .collect();
    env.state_push_ranges(key, total, &ranges)?;
    // The pushed ranges are exactly the written ranges, so the block's
    // chunks carry nothing locally newer than the global tier.
    env.state_settle_ranges(key, total, &ranges)?;
    Ok(())
}

/// One block product: `P[i,j,k] = A[i,k] × B[k,j]`.
///
/// # Errors
///
/// Platform error messages.
pub fn mm_mult<E: FaasEnv>(env: &mut E) -> Result<i32, String> {
    let t = decode_task(&env.input(), 4).ok_or("bad mm_mult input")?;
    let (n, i, j, k) = (t[0] as usize, t[1] as usize, t[2] as usize, t[3] as usize);
    let block = n / GRID;
    let a = read_block(env, keys::A, n, i, k, block)?;
    let b = read_block(env, keys::B, n, k, j, block)?;
    let mut p = vec![0.0f64; block * block];
    for r in 0..block {
        for kk in 0..block {
            let av = a[r * block + kk];
            if av == 0.0 {
                continue;
            }
            for c in 0..block {
                p[r * block + c] += av * b[kk * block + c];
            }
        }
    }
    let pkey = keys::product(i, j, k);
    env.state_write(&pkey, block * block * 8, 0, &f64s_to_bytes(&p))?;
    env.state_push(&pkey, block * block * 8)?;
    Ok(0)
}

/// One merge: `C[i,j] = Σ_k P[i,j,k]`.
///
/// # Errors
///
/// Platform error messages.
pub fn mm_merge<E: FaasEnv>(env: &mut E) -> Result<i32, String> {
    let t = decode_task(&env.input(), 3).ok_or("bad mm_merge input")?;
    let (n, i, j) = (t[0] as usize, t[1] as usize, t[2] as usize);
    let block = n / GRID;
    let mut acc = vec![0.0f64; block * block];
    for k in 0..GRID {
        let pkey = keys::product(i, j, k);
        let bytes = env.state_read(&pkey, block * block * 8, 0, block * block * 8)?;
        for (a, v) in acc.iter_mut().zip(bytes_to_f64s(&bytes)) {
            *a += v;
        }
    }
    write_block(env, keys::C, n, i, j, block, &acc)?;
    Ok(0)
}

/// The driver function: chain 64 products, await, chain 16 merges, await
/// (Fig. 8's recursive chaining, flattened to the paper's fan-out counts).
///
/// # Errors
///
/// Platform error messages.
pub fn mm_main<E: FaasEnv>(env: &mut E) -> Result<i32, String> {
    let t = decode_task(&env.input(), 1).ok_or("bad mm_main input")?;
    let n = t[0] as usize;
    if !n.is_multiple_of(GRID) {
        return Err(format!("matrix size {n} not divisible by grid {GRID}"));
    }
    let mut product_calls = Vec::with_capacity(GRID * GRID * GRID);
    for i in 0..GRID {
        for j in 0..GRID {
            for k in 0..GRID {
                let input = encode_task(&[n as u32, i as u32, j as u32, k as u32]);
                product_calls.push(env.chain("mm_mult", input));
            }
        }
    }
    for id in product_calls {
        if env.await_call(id) != 0 {
            return Err("block product failed".into());
        }
    }
    let mut merge_calls = Vec::with_capacity(GRID * GRID);
    for i in 0..GRID {
        for j in 0..GRID {
            let input = encode_task(&[n as u32, i as u32, j as u32]);
            merge_calls.push(env.chain("mm_merge", input));
        }
    }
    for id in merge_calls {
        if env.await_call(id) != 0 {
            return Err("merge failed".into());
        }
    }
    env.write_output(&(n as u32).to_le_bytes());
    Ok(0)
}

/// Register the three matmul functions on a FAASM cluster.
pub fn register_faasm(cluster: &Cluster, user: &str) {
    macro_rules! native {
        ($f:expr) => {{
            let g: Arc<dyn NativeGuest> = Arc::new(move |api: &mut NativeApi<'_>| {
                let mut env = FaasmEnv::new(api);
                $f(&mut env).map_err(faasm_fvm::Trap::host)
            });
            g
        }};
    }
    cluster.register_native(user, "mm_main", native!(mm_main), false);
    cluster.register_native(user, "mm_mult", native!(mm_mult), false);
    cluster.register_native(user, "mm_merge", native!(mm_merge), false);
}

/// Register the three matmul functions on the container baseline.
pub fn register_baseline(platform: &BaselinePlatform, user: &str) {
    macro_rules! guest {
        ($f:expr) => {{
            let g: Arc<dyn ContainerGuest> = Arc::new(move |api: &mut ContainerApi<'_>| {
                let mut env = ContainerEnv::new(api);
                $f(&mut env)
            });
            g
        }};
    }
    platform.register(user, "mm_main", guest!(mm_main));
    platform.register(user, "mm_mult", guest!(mm_mult));
    platform.register(user, "mm_merge", guest!(mm_merge));
}

/// Upload random `n × n` inputs and a zeroed output.
///
/// # Errors
///
/// Global-tier errors as strings.
pub fn upload_matrices(kv: &dyn KvBackend, n: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    kv.set(keys::A, f64s_to_bytes(&a))
        .map_err(|e| e.to_string())?;
    kv.set(keys::B, f64s_to_bytes(&b))
        .map_err(|e| e.to_string())?;
    kv.set(keys::C, f64s_to_bytes(&vec![0.0; n * n]))
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// Reference single-threaded multiply of the uploaded inputs.
///
/// # Errors
///
/// Global-tier errors as strings.
pub fn reference_product(kv: &dyn KvBackend, n: usize) -> Result<Vec<f64>, String> {
    let a = bytes_to_f64s(
        &kv.get(keys::A)
            .map_err(|e| e.to_string())?
            .ok_or("A missing")?,
    );
    let b = bytes_to_f64s(
        &kv.get(keys::B)
            .map_err(|e| e.to_string())?
            .ok_or("B missing")?,
    );
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        for k in 0..n {
            let av = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += av * b[k * n + j];
            }
        }
    }
    Ok(c)
}

/// Fetch the distributed result.
///
/// # Errors
///
/// Global-tier errors as strings.
pub fn read_result(kv: &dyn KvBackend, n: usize) -> Result<Vec<f64>, String> {
    let c = bytes_to_f64s(
        &kv.get(keys::C)
            .map_err(|e| e.to_string())?
            .ok_or("C missing")?,
    );
    if c.len() != n * n {
        return Err(format!(
            "result has {} elements, expected {}",
            c.len(),
            n * n
        ));
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn distributed_matmul_matches_reference_on_faasm() {
        let cluster = Cluster::new(2);
        register_faasm(&cluster, "la");
        let n = 16;
        upload_matrices(cluster.kv().as_ref(), n, 5).unwrap();
        let r = cluster.invoke("la", "mm_main", encode_task(&[n as u32]));
        assert_eq!(r.return_code(), 0, "status {:?}", r.status);
        let c = read_result(cluster.kv().as_ref(), n).unwrap();
        let expected = reference_product(cluster.kv().as_ref(), n).unwrap();
        assert_close(&c, &expected);
    }

    #[test]
    fn distributed_matmul_matches_reference_on_baseline() {
        let platform = BaselinePlatform::with_config(faasm_baseline::BaselineConfig {
            hosts: 2,
            image: faasm_baseline::ImageConfig {
                image_bytes: 128 * 1024,
                layers: 2,
                boot_passes: 1,
            },
            ..Default::default()
        });
        register_baseline(&platform, "la");
        let n = 16;
        upload_matrices(platform.kv().as_ref(), n, 5).unwrap();
        let r = platform.invoke("la", "mm_main", encode_task(&[n as u32]));
        assert_eq!(r.return_code(), 0, "status {:?}", r.status);
        let c = read_result(platform.kv().as_ref(), n).unwrap();
        let expected = reference_product(platform.kv().as_ref(), n).unwrap();
        assert_close(&c, &expected);
    }

    #[test]
    fn bad_sizes_rejected() {
        let cluster = Cluster::new(1);
        register_faasm(&cluster, "la");
        upload_matrices(cluster.kv().as_ref(), 6, 1).unwrap();
        let r = cluster.invoke("la", "mm_main", encode_task(&[6]));
        assert!(matches!(r.status, faasm_core::CallStatus::Error(_)));
        let r = cluster.invoke("la", "mm_main", vec![1, 2, 3]);
        assert!(matches!(r.status, faasm_core::CallStatus::Error(_)));
    }
}
