//! Distributed SGD with HOGWILD! (§6.2, Listing 1).
//!
//! Reproduces the paper's machine-learning training workload: sparse
//! logistic-regression SGD over an RCV1-like dataset, parallelised across
//! serverless functions that share a central weights vector. Workers follow
//! Listing 1: they read their column (example) range from read-only sparse
//! matrices, update the shared weights lock-free (HOGWILD! "tolerates such
//! inconsistencies"), and push to the global tier sporadically.
//!
//! The same worker body runs on both platforms through [`FaasEnv`]; the
//! platforms differ exactly as the paper describes — Faaslets pull chunks
//! into host-shared regions and batch pushes, containers ship whole values
//! and write through to external storage.

use std::sync::Arc;

use faasm_baseline::{BaselinePlatform, ContainerApi, ContainerGuest};
use faasm_core::{Cluster, NativeApi, NativeGuest};
use faasm_kvs::KvBackend;

use crate::data::{bytes_to_f64s, bytes_to_u32s, f64s_to_bytes, u32s_to_bytes, SparseDataset};
use crate::env::{ContainerEnv, FaasEnv, FaasmEnv};

/// State keys used by the SGD application.
pub mod keys {
    /// CSC values (f64).
    pub const VALS: &str = "sgd:vals";
    /// CSC feature ids (u32).
    pub const FEATS: &str = "sgd:feats";
    /// CSC example pointers (u32).
    pub const COLPTR: &str = "sgd:colptr";
    /// Labels (f64).
    pub const LABELS: &str = "sgd:labels";
    /// The shared weights vector (f64).
    pub const WEIGHTS: &str = "sgd:weights";
}

/// A worker's slice of the training job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdTask {
    /// First example (inclusive).
    pub start: u32,
    /// Last example (exclusive).
    pub end: u32,
    /// Feature dimensionality.
    pub features: u32,
    /// Total examples in the dataset.
    pub examples: u32,
    /// Learning rate.
    pub lr: f64,
    /// Push the weights every this many examples (Listing 1 line 12).
    pub push_interval: u32,
}

impl SgdTask {
    /// Serialise for a call input.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28);
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.end.to_le_bytes());
        out.extend_from_slice(&self.features.to_le_bytes());
        out.extend_from_slice(&self.examples.to_le_bytes());
        out.extend_from_slice(&self.lr.to_le_bytes());
        out.extend_from_slice(&self.push_interval.to_le_bytes());
        out
    }

    /// Deserialise from a call input.
    pub fn from_bytes(b: &[u8]) -> Option<SgdTask> {
        if b.len() != 28 {
            return None;
        }
        Some(SgdTask {
            start: u32::from_le_bytes(b[0..4].try_into().ok()?),
            end: u32::from_le_bytes(b[4..8].try_into().ok()?),
            features: u32::from_le_bytes(b[8..12].try_into().ok()?),
            examples: u32::from_le_bytes(b[12..16].try_into().ok()?),
            lr: f64::from_le_bytes(b[16..24].try_into().ok()?),
            push_interval: u32::from_le_bytes(b[24..28].try_into().ok()?),
        })
    }
}

/// Upload a dataset to the global tier and initialise the weights — the
/// driver-side setup both platforms share.
///
/// # Errors
///
/// Global-tier errors as strings.
pub fn upload_dataset(kv: &dyn KvBackend, dataset: &SparseDataset) -> Result<(), String> {
    let (vals, feats, col_ptr) = dataset.to_csc();
    kv.set(keys::VALS, f64s_to_bytes(&vals))
        .map_err(|e| e.to_string())?;
    kv.set(keys::FEATS, u32s_to_bytes(&feats))
        .map_err(|e| e.to_string())?;
    kv.set(keys::COLPTR, u32s_to_bytes(&col_ptr))
        .map_err(|e| e.to_string())?;
    kv.set(keys::LABELS, f64s_to_bytes(&dataset.labels))
        .map_err(|e| e.to_string())?;
    kv.set(keys::WEIGHTS, f64s_to_bytes(&vec![0.0; dataset.features]))
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// Coalesce sorted, deduplicated element offsets (each `width` bytes) into
/// contiguous `(offset, len)` byte ranges for a batched push.
fn coalesce_ranges(offsets: &mut Vec<usize>, width: usize) -> Vec<(usize, usize)> {
    offsets.sort_unstable();
    offsets.dedup();
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for &off in offsets.iter() {
        match ranges.last_mut() {
            Some((start, len)) if *start + *len == off => *len += width,
            _ => ranges.push((off, width)),
        }
    }
    offsets.clear();
    ranges
}

/// The `weight_update` function of Listing 1, over [`FaasEnv`].
///
/// The weights vector is a **shared-output** value: many workers update
/// disjoint (and, HOGWILD-style, occasionally overlapping) features
/// concurrently. Flushes therefore push exactly the byte ranges this
/// worker wrote — a chunk-granular `push_state` would overwrite
/// neighbouring weights in the same 16 KiB chunk with the stale local
/// copies this worker pulled before the others updated them (the seed's
/// matmul `C` bug pattern).
///
/// # Errors
///
/// Platform error messages.
pub fn weight_update<E: FaasEnv>(env: &mut E) -> Result<i32, String> {
    let task = SgdTask::from_bytes(&env.input()).ok_or("bad sgd task input")?;
    let wsize = task.features as usize * 8;
    let nnz_total = env.state_size(keys::VALS)? / 8;

    // Pointer window for this worker's example range (a chunked pull on
    // Faasm; whole-value ship on containers).
    let ptr_bytes = env.state_read(
        keys::COLPTR,
        (task.examples as usize + 1) * 4,
        task.start as usize * 4,
        (task.end - task.start + 1) as usize * 4,
    )?;
    let ptrs = bytes_to_u32s(&ptr_bytes);

    let label_bytes = env.state_read(
        keys::LABELS,
        task.examples as usize * 8,
        task.start as usize * 8,
        (task.end - task.start) as usize * 8,
    )?;
    let labels = bytes_to_f64s(&label_bytes);

    let mut since_push = 0u32;
    // Feature byte offsets written since the last flush, and every range
    // flushed so far (settled at the end of the call).
    let mut touched: Vec<usize> = Vec::new();
    let mut flushed: Vec<(usize, usize)> = Vec::new();
    for (i, ex) in (task.start..task.end).enumerate() {
        let lo = ptrs[i] as usize;
        let hi = ptrs[i + 1] as usize;
        if hi > nnz_total || lo > hi {
            return Err(format!("corrupt colptr for example {ex}"));
        }
        let vals =
            bytes_to_f64s(&env.state_read(keys::VALS, nnz_total * 8, lo * 8, (hi - lo) * 8)?);
        let feats =
            bytes_to_u32s(&env.state_read(keys::FEATS, nnz_total * 4, lo * 4, (hi - lo) * 4)?);

        // Prediction with the current (possibly stale — HOGWILD!) weights.
        let mut dot = 0.0;
        let mut w = Vec::with_capacity(feats.len());
        for (f, v) in feats.iter().zip(&vals) {
            let wf = bytes_to_f64s(&env.state_read(keys::WEIGHTS, wsize, *f as usize * 8, 8)?)[0];
            w.push(wf);
            dot += wf * v;
        }
        let pred = 1.0 / (1.0 + (-dot).exp());
        let target = (labels[i] + 1.0) / 2.0; // {-1,1} → {0,1}
        let adj = task.lr * (target - pred);

        // The lock-free update of Listing 1 line 11.
        for ((f, v), wf) in feats.iter().zip(&vals).zip(&w) {
            let new = wf + v * adj;
            env.state_write(keys::WEIGHTS, wsize, *f as usize * 8, &new.to_le_bytes())?;
            touched.push(*f as usize * 8);
        }
        since_push += 1;
        if since_push >= task.push_interval {
            let ranges = coalesce_ranges(&mut touched, 8);
            env.state_push_ranges(keys::WEIGHTS, wsize, &ranges)?;
            flushed.extend_from_slice(&ranges);
            since_push = 0;
        }
    }
    let ranges = coalesce_ranges(&mut touched, 8);
    env.state_push_ranges(keys::WEIGHTS, wsize, &ranges)?;
    flushed.extend_from_slice(&ranges);
    // Everything this worker wrote is now global: drop the local dirty
    // claim so no later chunk-granular push can re-upload stale chunks.
    env.state_settle_ranges(keys::WEIGHTS, wsize, &flushed)?;
    Ok(0)
}

/// Register the SGD worker on a FAASM cluster.
pub fn register_faasm(cluster: &Cluster, user: &str) {
    let guest: Arc<dyn NativeGuest> = Arc::new(|api: &mut NativeApi<'_>| {
        let mut env = FaasmEnv::new(api);
        weight_update(&mut env).map_err(faasm_fvm::Trap::host)
    });
    cluster.register_native(user, "sgd_update", guest, false);
}

/// Register the SGD worker on the container baseline.
pub fn register_baseline(platform: &BaselinePlatform, user: &str) {
    let guest: Arc<dyn ContainerGuest> = Arc::new(|api: &mut ContainerApi<'_>| {
        let mut env = ContainerEnv::new(api);
        weight_update(&mut env)
    });
    platform.register(user, "sgd_update", guest);
}

/// Split `examples` into `workers` contiguous tasks.
pub fn partition(
    examples: u32,
    workers: u32,
    features: u32,
    lr: f64,
    push_interval: u32,
) -> Vec<SgdTask> {
    let workers = workers.max(1);
    let per = examples.div_ceil(workers);
    (0..workers)
        .filter_map(|w| {
            let start = w * per;
            let end = ((w + 1) * per).min(examples);
            (start < end).then_some(SgdTask {
                start,
                end,
                features,
                examples,
                lr,
                push_interval,
            })
        })
        .collect()
}

/// Training accuracy of the weights currently in the global tier.
///
/// # Errors
///
/// Global-tier errors as strings.
pub fn accuracy(kv: &dyn KvBackend, dataset: &SparseDataset) -> Result<f64, String> {
    let w = bytes_to_f64s(
        &kv.get(keys::WEIGHTS)
            .map_err(|e| e.to_string())?
            .ok_or("weights missing")?,
    );
    let (vals, feats, col_ptr) = dataset.to_csc();
    let mut correct = 0usize;
    for ex in 0..dataset.examples {
        let (lo, hi) = (col_ptr[ex] as usize, col_ptr[ex + 1] as usize);
        let dot: f64 = (lo..hi).map(|i| w[feats[i] as usize] * vals[i]).sum();
        let pred = if dot >= 0.0 { 1.0 } else { -1.0 };
        if pred == dataset.labels[ex] {
            correct += 1;
        }
    }
    Ok(correct as f64 / dataset.examples as f64)
}

/// Run one training epoch: dispatch every task and await completion.
/// `invoke` abstracts the platform front door.
pub fn run_epoch<FA, FW>(tasks: &[SgdTask], invoke: FA, await_all: FW)
where
    FA: Fn(&SgdTask) -> u64,
    FW: Fn(Vec<u64>),
{
    let ids: Vec<u64> = tasks.iter().map(&invoke).collect();
    await_all(ids);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::rcv1_like;

    #[test]
    fn task_roundtrip() {
        let t = SgdTask {
            start: 1,
            end: 9,
            features: 128,
            examples: 100,
            lr: 0.25,
            push_interval: 4,
        };
        assert_eq!(SgdTask::from_bytes(&t.to_bytes()), Some(t));
        assert_eq!(SgdTask::from_bytes(&[0; 3]), None);
    }

    #[test]
    fn partition_covers_all_examples() {
        let tasks = partition(100, 7, 32, 0.1, 8);
        assert_eq!(tasks[0].start, 0);
        assert_eq!(tasks.last().unwrap().end, 100);
        let total: u32 = tasks.iter().map(|t| t.end - t.start).sum();
        assert_eq!(total, 100);
        // Degenerate cases.
        assert_eq!(partition(3, 10, 8, 0.1, 1).len(), 3);
        assert_eq!(partition(0, 4, 8, 0.1, 1).len(), 0);
    }

    #[test]
    fn coalesce_merges_adjacent_and_dedups() {
        let mut offs = vec![16, 0, 8, 8, 40];
        assert_eq!(coalesce_ranges(&mut offs, 8), vec![(0, 24), (40, 8)]);
        assert!(offs.is_empty(), "buffer recycles");
        let mut none: Vec<usize> = Vec::new();
        assert_eq!(coalesce_ranges(&mut none, 8), Vec::new());
    }

    #[test]
    fn concurrent_writers_of_one_chunk_keep_each_others_updates() {
        use faasm_core::{ChainRouter, NativeApi};

        // The shared-output regression behind the range-push conversion:
        // two hosts hold stale replicas of the same (single-chunk) weights
        // value, each writes its own half, each flushes. A chunk-granular
        // push would overwrite the other host's half with stale zeros; the
        // range push must keep both.
        let cluster = Cluster::new(2);
        cluster
            .kv()
            .set("w", crate::data::f64s_to_bytes(&[0.0; 16]))
            .unwrap();
        let mk = |val: f64, start: usize| -> Arc<dyn NativeGuest> {
            Arc::new(move |api: &mut NativeApi<'_>| {
                let mut env = FaasmEnv::new(api);
                let phase = env.input();
                // Pull the whole value into this host's local replica.
                env.state_read("w", 128, 0, 128)
                    .map_err(faasm_fvm::Trap::host)?;
                if phase == b"write" {
                    for i in 0..8 {
                        env.state_write("w", 128, (start + i) * 8, &val.to_le_bytes())
                            .map_err(faasm_fvm::Trap::host)?;
                    }
                    env.state_push_ranges("w", 128, &[(start * 8, 64)])
                        .map_err(faasm_fvm::Trap::host)?;
                }
                Ok(0)
            })
        };
        cluster.register_native("ml", "left", mk(1.0, 0), false);
        cluster.register_native("ml", "right", mk(2.0, 8), false);
        let a = &cluster.instances()[0];
        let b = &cluster.instances()[1];
        // Both hosts prime their replicas while the value is all zeros...
        for (inst, f) in [(a, "left"), (b, "right")] {
            let id = inst.submit_placed("ml", f, b"prime".to_vec());
            assert_eq!(inst.await_call(id).return_code(), 0);
        }
        // ...then write and flush their halves from those stale replicas.
        for (inst, f) in [(a, "left"), (b, "right")] {
            let id = inst.submit_placed("ml", f, b"write".to_vec());
            assert_eq!(inst.await_call(id).return_code(), 0);
        }
        let w = crate::data::bytes_to_f64s(&cluster.kv().get("w").unwrap().unwrap());
        assert_eq!(&w[..8], &[1.0; 8], "left half survives the right flush");
        assert_eq!(&w[8..], &[2.0; 8], "right half survives the left flush");
    }

    #[test]
    fn sgd_learns_on_faasm() {
        let cluster = Cluster::new(2);
        register_faasm(&cluster, "ml");
        let dataset = rcv1_like(256, 64, 8, 42);
        upload_dataset(cluster.kv().as_ref(), &dataset).unwrap();

        let tasks = partition(256, 4, 64, 0.5, 16);
        for _epoch in 0..3 {
            let ids: Vec<_> = tasks
                .iter()
                .map(|t| cluster.invoke_async("ml", "sgd_update", t.to_bytes()))
                .collect();
            for id in ids {
                let r = cluster.await_result(id);
                assert_eq!(r.return_code(), 0, "worker failed: {:?}", r.status);
            }
        }
        let acc = accuracy(cluster.kv().as_ref(), &dataset).unwrap();
        assert!(acc > 0.7, "training must beat chance: accuracy {acc}");
        // Every worker settled its flushed ranges, so no host's cached
        // weights replica is left dirty (a stale dirty chunk would prime a
        // future chunk-granular push to clobber other hosts' updates).
        for inst in cluster.instances() {
            let entry = inst.state().get(keys::WEIGHTS, 64 * 8).unwrap();
            assert_eq!(
                entry.dirty_chunks(),
                0,
                "weights replica left dirty on {:?}",
                inst.host_id()
            );
        }
    }

    #[test]
    fn sgd_learns_on_baseline() {
        let platform = BaselinePlatform::with_config(faasm_baseline::BaselineConfig {
            hosts: 2,
            image: faasm_baseline::ImageConfig {
                image_bytes: 128 * 1024,
                layers: 2,
                boot_passes: 1,
            },
            ..Default::default()
        });
        register_baseline(&platform, "ml");
        let dataset = rcv1_like(128, 64, 8, 42);
        upload_dataset(platform.kv().as_ref(), &dataset).unwrap();

        let tasks = partition(128, 4, 64, 0.5, 16);
        for _epoch in 0..3 {
            let ids: Vec<_> = tasks
                .iter()
                .map(|t| platform.invoke_async("ml", "sgd_update", t.to_bytes()))
                .collect();
            for id in ids {
                let r = platform.await_result(id);
                assert_eq!(r.return_code(), 0, "worker failed: {:?}", r.status);
            }
        }
        let acc = accuracy(platform.kv().as_ref(), &dataset).unwrap();
        assert!(acc > 0.7, "training must beat chance: accuracy {acc}");
    }

    #[test]
    fn faasm_ships_fewer_bytes_than_baseline() {
        // The headline Fig. 6b property at miniature scale: identical
        // training on both platforms, compare fabric traffic.
        let dataset = rcv1_like(128, 64, 8, 1);
        let tasks = partition(128, 4, 64, 0.5, 16);

        let cluster = Cluster::new(2);
        register_faasm(&cluster, "ml");
        upload_dataset(cluster.kv().as_ref(), &dataset).unwrap();
        let before = cluster.fabric().stats().snapshot();
        let ids: Vec<_> = tasks
            .iter()
            .map(|t| cluster.invoke_async("ml", "sgd_update", t.to_bytes()))
            .collect();
        for id in ids {
            assert_eq!(cluster.await_result(id).return_code(), 0);
        }
        let faasm_bytes = cluster
            .fabric()
            .stats()
            .snapshot()
            .delta(&before)
            .total_bytes();

        let platform = BaselinePlatform::with_config(faasm_baseline::BaselineConfig {
            hosts: 2,
            image: faasm_baseline::ImageConfig {
                image_bytes: 128 * 1024,
                layers: 2,
                boot_passes: 1,
            },
            ..Default::default()
        });
        register_baseline(&platform, "ml");
        upload_dataset(platform.kv().as_ref(), &dataset).unwrap();
        let before = platform.fabric().stats().snapshot();
        let ids: Vec<_> = tasks
            .iter()
            .map(|t| platform.invoke_async("ml", "sgd_update", t.to_bytes()))
            .collect();
        for id in ids {
            assert_eq!(platform.await_result(id).return_code(), 0);
        }
        let baseline_bytes = platform
            .fabric()
            .stats()
            .snapshot()
            .delta(&before)
            .total_bytes();

        assert!(
            faasm_bytes < baseline_bytes,
            "faasm {faasm_bytes} bytes must undercut baseline {baseline_bytes} bytes"
        );
    }
}
