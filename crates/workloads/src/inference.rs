//! Machine-learning inference serving (§6.3, Fig. 7; DESIGN.md S4).
//!
//! The paper serves MobileNet through TensorFlow Lite compiled to
//! WebAssembly; this reproduction serves **mobilenet-lite**, a from-scratch
//! depthwise-separable CNN. The serving shape is preserved: the model is
//! loaded from a file (the read-global filesystem on FAASM, a private fetch
//! per container on the baseline), each request classifies one image, cold
//! starts dominate tail latency on the container platform, and Proto-Faaslet
//! restores keep FAASM's tail flat.

use std::sync::Arc;

use faasm_baseline::{BaselinePlatform, ContainerApi, ContainerGuest};
use faasm_core::{Cluster, NativeApi, NativeGuest};

use crate::env::{publish_file, ContainerEnv, FaasEnv, FaasmEnv};

/// Image side length (pixels).
pub const SIDE: usize = 28;
/// Classes in the classifier head.
pub const CLASSES: usize = 10;
/// Channels after the first convolution.
const C1: usize = 8;
/// Channels after the pointwise convolution.
const C2: usize = 16;

/// Path of the published model file.
pub const MODEL_PATH: &str = "shared/models/mobilenet-lite.bin";

/// A depthwise-separable CNN: conv3x3 → ReLU → depthwise3x3 → pointwise1x1
/// → ReLU → global average pool → dense → softmax.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// First convolution kernels: `C1 × 3 × 3`.
    conv1: Vec<f32>,
    /// First convolution biases: `C1`.
    bias1: Vec<f32>,
    /// Depthwise kernels: `C1 × 3 × 3`.
    depthwise: Vec<f32>,
    /// Pointwise kernels: `C2 × C1`.
    pointwise: Vec<f32>,
    /// Pointwise biases: `C2`.
    bias2: Vec<f32>,
    /// Dense weights: `CLASSES × C2`.
    dense: Vec<f32>,
    /// Dense biases: `CLASSES`.
    bias3: Vec<f32>,
}

impl Model {
    /// Generate deterministic pseudo-random weights.
    pub fn generate(seed: u64) -> Model {
        let mut s = crate::MiniRng::new(seed);
        let gen = |s: &mut crate::MiniRng, n: usize| -> Vec<f32> {
            (0..n).map(|_| s.next_f32() * 0.5 - 0.25).collect()
        };
        Model {
            conv1: gen(&mut s, C1 * 9),
            bias1: gen(&mut s, C1),
            depthwise: gen(&mut s, C1 * 9),
            pointwise: gen(&mut s, C2 * C1),
            bias2: gen(&mut s, C2),
            dense: gen(&mut s, CLASSES * C2),
            bias3: gen(&mut s, CLASSES),
        }
    }

    /// Serialise the model (the "model file" served to functions).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for part in [
            &self.conv1,
            &self.bias1,
            &self.depthwise,
            &self.pointwise,
            &self.bias2,
            &self.dense,
            &self.bias3,
        ] {
            out.extend_from_slice(&(part.len() as u32).to_le_bytes());
            for v in part.iter() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Deserialise a model file; `None` on malformed input.
    pub fn from_bytes(mut b: &[u8]) -> Option<Model> {
        let mut part = |expect: usize| -> Option<Vec<f32>> {
            if b.len() < 4 {
                return None;
            }
            let n = u32::from_le_bytes(b[0..4].try_into().ok()?) as usize;
            b = &b[4..];
            if n != expect || b.len() < n * 4 {
                return None;
            }
            let vals = b[..n * 4]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect();
            b = &b[n * 4..];
            Some(vals)
        };
        let m = Model {
            conv1: part(C1 * 9)?,
            bias1: part(C1)?,
            depthwise: part(C1 * 9)?,
            pointwise: part(C2 * C1)?,
            bias2: part(C2)?,
            dense: part(CLASSES * C2)?,
            bias3: part(CLASSES)?,
        };
        if b.is_empty() {
            Some(m)
        } else {
            None
        }
    }

    /// Classify one `SIDE × SIDE` greyscale image; returns class scores.
    ///
    /// # Panics
    ///
    /// Panics if the image has the wrong length (callers validate).
    pub fn infer(&self, image: &[u8]) -> [f32; CLASSES] {
        assert_eq!(image.len(), SIDE * SIDE, "image shape");
        let img: Vec<f32> = image.iter().map(|&p| p as f32 / 255.0).collect();

        // conv3x3 (stride 1, valid padding) + ReLU.
        let s1 = SIDE - 2;
        let mut feat1 = vec![0.0f32; C1 * s1 * s1];
        for c in 0..C1 {
            let k = &self.conv1[c * 9..(c + 1) * 9];
            for y in 0..s1 {
                for x in 0..s1 {
                    let mut acc = self.bias1[c];
                    for ky in 0..3 {
                        for kx in 0..3 {
                            acc += k[ky * 3 + kx] * img[(y + ky) * SIDE + (x + kx)];
                        }
                    }
                    feat1[c * s1 * s1 + y * s1 + x] = acc.max(0.0);
                }
            }
        }

        // depthwise3x3 then pointwise1x1 + ReLU.
        let s2 = s1 - 2;
        let mut dw = vec![0.0f32; C1 * s2 * s2];
        for c in 0..C1 {
            let k = &self.depthwise[c * 9..(c + 1) * 9];
            for y in 0..s2 {
                for x in 0..s2 {
                    let mut acc = 0.0;
                    for ky in 0..3 {
                        for kx in 0..3 {
                            acc += k[ky * 3 + kx] * feat1[c * s1 * s1 + (y + ky) * s1 + (x + kx)];
                        }
                    }
                    dw[c * s2 * s2 + y * s2 + x] = acc;
                }
            }
        }
        let mut feat2 = vec![0.0f32; C2 * s2 * s2];
        for o in 0..C2 {
            for y in 0..s2 {
                for x in 0..s2 {
                    let mut acc = self.bias2[o];
                    for c in 0..C1 {
                        acc += self.pointwise[o * C1 + c] * dw[c * s2 * s2 + y * s2 + x];
                    }
                    feat2[o * s2 * s2 + y * s2 + x] = acc.max(0.0);
                }
            }
        }

        // Global average pool + dense + softmax.
        let mut pooled = [0.0f32; C2];
        for (o, p) in pooled.iter_mut().enumerate() {
            let sum: f32 = feat2[o * s2 * s2..(o + 1) * s2 * s2].iter().sum();
            *p = sum / (s2 * s2) as f32;
        }
        let mut logits = [0.0f32; CLASSES];
        for (cls, l) in logits.iter_mut().enumerate() {
            let mut acc = self.bias3[cls];
            for (o, p) in pooled.iter().enumerate() {
                acc += self.dense[cls * C2 + o] * p;
            }
            *l = acc;
        }
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut exp = [0.0f32; CLASSES];
        let mut total = 0.0;
        for (e, l) in exp.iter_mut().zip(&logits) {
            *e = (l - max).exp();
            total += *e;
        }
        for e in &mut exp {
            *e /= total;
        }
        exp
    }
}

/// The serving function: load the model file, classify the input image,
/// output `[argmax: u8][scores: CLASSES × f32]`.
///
/// # Errors
///
/// Platform error messages.
pub fn infer_fn<E: FaasEnv>(env: &mut E) -> Result<i32, String> {
    let image = env.input();
    if image.len() != SIDE * SIDE {
        return Err(format!("bad image size {}", image.len()));
    }
    let model_bytes = env.load_file(MODEL_PATH)?;
    let model = Model::from_bytes(&model_bytes).ok_or("corrupt model file")?;
    let scores = model.infer(&image);
    let argmax = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are finite"))
        .map(|(i, _)| i as u8)
        .expect("non-empty scores");
    env.write_output(&[argmax]);
    for s in scores {
        env.write_output(&s.to_le_bytes());
    }
    Ok(0)
}

/// Publish the model and register the serving function on a FAASM cluster.
pub fn setup_faasm(cluster: &Cluster, user: &str, seed: u64) {
    publish_file(
        Some(cluster),
        None,
        MODEL_PATH,
        &Model::generate(seed).to_bytes(),
    );
    let guest: Arc<dyn NativeGuest> = Arc::new(|api: &mut NativeApi<'_>| {
        let mut env = FaasmEnv::new(api);
        infer_fn(&mut env).map_err(faasm_fvm::Trap::host)
    });
    cluster.register_native(user, "infer", guest, false);
}

/// Publish the model and register the serving function on the baseline.
pub fn setup_baseline(platform: &BaselinePlatform, user: &str, seed: u64) {
    publish_file(
        None,
        Some(platform),
        MODEL_PATH,
        &Model::generate(seed).to_bytes(),
    );
    let guest: Arc<dyn ContainerGuest> = Arc::new(|api: &mut ContainerApi<'_>| {
        let mut env = ContainerEnv::new(api);
        infer_fn(&mut env)
    });
    platform.register(user, "infer", guest);
}

/// Decode a serving response into `(argmax, scores)`.
pub fn decode_response(out: &[u8]) -> Option<(u8, Vec<f32>)> {
    if out.len() != 1 + CLASSES * 4 {
        return None;
    }
    let scores = out[1..]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    Some((out[0], scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth_images;

    #[test]
    fn model_roundtrip() {
        let m = Model::generate(3);
        let bytes = m.to_bytes();
        assert_eq!(Model::from_bytes(&bytes), Some(m));
        assert!(Model::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(Model::from_bytes(&[]).is_none());
    }

    #[test]
    fn inference_is_deterministic_and_normalised() {
        let m = Model::generate(3);
        let imgs = synth_images(2, SIDE, 7);
        let s1 = m.infer(&imgs[0]);
        let s2 = m.infer(&imgs[0]);
        assert_eq!(s1, s2);
        let total: f32 = s1.iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "softmax sums to 1: {total}");
        assert!(s1.iter().all(|&s| (0.0..=1.0).contains(&s)));
        // Different images usually produce different scores.
        assert_ne!(m.infer(&imgs[0]), m.infer(&imgs[1]));
    }

    #[test]
    fn serving_on_faasm() {
        let cluster = Cluster::new(2);
        setup_faasm(&cluster, "serve", 9);
        let imgs = synth_images(4, SIDE, 11);
        let model = Model::generate(9);
        for img in &imgs {
            let r = cluster.invoke("serve", "infer", img.clone());
            assert_eq!(r.return_code(), 0, "status {:?}", r.status);
            let (argmax, scores) = decode_response(&r.output).unwrap();
            let expected = model.infer(img);
            for (a, b) in scores.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-5);
            }
            let expected_argmax = expected
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0 as u8;
            assert_eq!(argmax, expected_argmax);
        }
    }

    #[test]
    fn serving_on_baseline() {
        let platform = BaselinePlatform::with_config(faasm_baseline::BaselineConfig {
            hosts: 1,
            image: faasm_baseline::ImageConfig {
                image_bytes: 128 * 1024,
                layers: 2,
                boot_passes: 1,
            },
            ..Default::default()
        });
        setup_baseline(&platform, "serve", 9);
        let img = &synth_images(1, SIDE, 11)[0];
        let r = platform.invoke("serve", "infer", img.clone());
        assert_eq!(r.return_code(), 0, "status {:?}", r.status);
        let (argmax, _) = decode_response(&r.output).unwrap();
        assert_eq!(argmax, {
            let expected = Model::generate(9).infer(img);
            expected
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0 as u8
        });
    }

    #[test]
    fn bad_image_rejected() {
        let cluster = Cluster::new(1);
        setup_faasm(&cluster, "serve", 9);
        let r = cluster.invoke("serve", "infer", vec![0; 10]);
        assert!(matches!(r.status, faasm_core::CallStatus::Error(_)));
    }
}
