//! The kernel definitions: FL sources and their native mirrors.
//!
//! Every FL kernel reads/writes the packed f64 buffer at `BASE`; the native
//! mirror performs the identical operations in the identical order on the
//! same packed layout, so outputs are comparable to within floating-point
//! noise (the tests require 1e-9 relative agreement).

use super::{durbin_init, generic_init, nussinov_init, spd_init, Kernel};

fn ludcmp_init(n: usize, mem: &mut [f64]) {
    spd_init(n, mem);
    for i in 0..n {
        mem[n * n + i] = 0.5 + (i % 5) as f64; // b
        mem[n * n + n + i] = 0.0; // x
        mem[n * n + 2 * n + i] = 0.0; // y
    }
}

fn trisolv_init(n: usize, mem: &mut [f64]) {
    spd_init(n, mem);
    for i in 0..n {
        mem[n * n + i] = 0.0; // x
        mem[n * n + n + i] = 1.0 + i as f64 / n as f64; // b
    }
}

fn gramschmidt_init(n: usize, mem: &mut [f64]) {
    generic_init(n, mem);
    // Bump the diagonal so columns are linearly independent; dependent
    // columns give zero norms and NaNs.
    for i in 0..n {
        mem[i * n + i] += 2.0 + i as f64 / n as f64;
    }
}

fn floyd_init(n: usize, mem: &mut [f64]) {
    for i in 0..n {
        for j in 0..n {
            mem[i * n + j] = if i == j {
                0.0
            } else {
                ((i * j) % 7 + 1) as f64
            };
        }
    }
}

/// The full Fig. 9a suite.
#[allow(clippy::too_many_lines)]
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "2mm",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    ptr double B = A + n * n;
    ptr double C = B + n * n;
    ptr double T = C + n * n;
    ptr double D = T + n * n;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            double acc = 0.0;
            for (int k = 0; k < n; k = k + 1) {
                acc = acc + A[i * n + k] * B[k * n + j];
            }
            T[i * n + j] = acc;
        }
    }
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            double acc = 0.0;
            for (int k = 0; k < n; k = k + 1) {
                acc = acc + T[i * n + k] * C[k * n + j];
            }
            D[i * n + j] = acc;
        }
    }
}
"#,
            native: |n, m| {
                let (a, b, c, t, d) = (0, n * n, 2 * n * n, 3 * n * n, 4 * n * n);
                for i in 0..n {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc += m[a + i * n + k] * m[b + k * n + j];
                        }
                        m[t + i * n + j] = acc;
                    }
                }
                for i in 0..n {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc += m[t + i * n + k] * m[c + k * n + j];
                        }
                        m[d + i * n + j] = acc;
                    }
                }
            },
            slots: |n| 5 * n * n,
            init: generic_init,
            default_n: 24,
        },
        Kernel {
            name: "3mm",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    ptr double B = A + n * n;
    ptr double C = B + n * n;
    ptr double D = C + n * n;
    ptr double E = D + n * n;
    ptr double F = E + n * n;
    ptr double G = F + n * n;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            double acc = 0.0;
            for (int k = 0; k < n; k = k + 1) {
                acc = acc + A[i * n + k] * B[k * n + j];
            }
            E[i * n + j] = acc;
        }
    }
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            double acc = 0.0;
            for (int k = 0; k < n; k = k + 1) {
                acc = acc + C[i * n + k] * D[k * n + j];
            }
            F[i * n + j] = acc;
        }
    }
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            double acc = 0.0;
            for (int k = 0; k < n; k = k + 1) {
                acc = acc + E[i * n + k] * F[k * n + j];
            }
            G[i * n + j] = acc;
        }
    }
}
"#,
            native: |n, m| {
                let nn = n * n;
                for i in 0..n {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc += m[i * n + k] * m[nn + k * n + j];
                        }
                        m[4 * nn + i * n + j] = acc;
                    }
                }
                for i in 0..n {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc += m[2 * nn + i * n + k] * m[3 * nn + k * n + j];
                        }
                        m[5 * nn + i * n + j] = acc;
                    }
                }
                for i in 0..n {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc += m[4 * nn + i * n + k] * m[5 * nn + k * n + j];
                        }
                        m[6 * nn + i * n + j] = acc;
                    }
                }
            },
            slots: |n| 7 * n * n,
            init: generic_init,
            default_n: 20,
        },
        Kernel {
            name: "atax",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    ptr double x = A + n * n;
    ptr double y = x + n;
    ptr double tmp = y + n;
    for (int j = 0; j < n; j = j + 1) {
        y[j] = 0.0;
    }
    for (int i = 0; i < n; i = i + 1) {
        double acc = 0.0;
        for (int j = 0; j < n; j = j + 1) {
            acc = acc + A[i * n + j] * x[j];
        }
        tmp[i] = acc;
        for (int j = 0; j < n; j = j + 1) {
            y[j] = y[j] + A[i * n + j] * acc;
        }
    }
}
"#,
            native: |n, m| {
                let (a, x, y, tmp) = (0, n * n, n * n + n, n * n + 2 * n);
                for j in 0..n {
                    m[y + j] = 0.0;
                }
                for i in 0..n {
                    let mut acc = 0.0;
                    for j in 0..n {
                        acc += m[a + i * n + j] * m[x + j];
                    }
                    m[tmp + i] = acc;
                    for j in 0..n {
                        m[y + j] += m[a + i * n + j] * acc;
                    }
                }
            },
            slots: |n| n * n + 3 * n,
            init: generic_init,
            default_n: 48,
        },
        Kernel {
            name: "bicg",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    ptr double s = A + n * n;
    ptr double q = s + n;
    ptr double p = q + n;
    ptr double r = p + n;
    for (int i = 0; i < n; i = i + 1) {
        s[i] = 0.0;
        q[i] = 0.0;
    }
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            s[j] = s[j] + r[i] * A[i * n + j];
            q[i] = q[i] + A[i * n + j] * p[j];
        }
    }
}
"#,
            native: |n, m| {
                let (a, s, q, p, r) = (0, n * n, n * n + n, n * n + 2 * n, n * n + 3 * n);
                for i in 0..n {
                    m[s + i] = 0.0;
                    m[q + i] = 0.0;
                }
                for i in 0..n {
                    for j in 0..n {
                        m[s + j] += m[r + i] * m[a + i * n + j];
                        m[q + i] += m[a + i * n + j] * m[p + j];
                    }
                }
            },
            slots: |n| n * n + 4 * n,
            init: generic_init,
            default_n: 48,
        },
        Kernel {
            name: "mvt",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    ptr double x1 = A + n * n;
    ptr double x2 = x1 + n;
    ptr double y1 = x2 + n;
    ptr double y2 = y1 + n;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            x1[i] = x1[i] + A[i * n + j] * y1[j];
        }
    }
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            x2[i] = x2[i] + A[j * n + i] * y2[j];
        }
    }
}
"#,
            native: |n, m| {
                let (a, x1, x2, y1, y2) = (0, n * n, n * n + n, n * n + 2 * n, n * n + 3 * n);
                for i in 0..n {
                    for j in 0..n {
                        m[x1 + i] += m[a + i * n + j] * m[y1 + j];
                    }
                }
                for i in 0..n {
                    for j in 0..n {
                        m[x2 + i] += m[a + j * n + i] * m[y2 + j];
                    }
                }
            },
            slots: |n| n * n + 4 * n,
            init: generic_init,
            default_n: 48,
        },
        Kernel {
            name: "cholesky",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < i; j = j + 1) {
            double acc = A[i * n + j];
            for (int k = 0; k < j; k = k + 1) {
                acc = acc - A[i * n + k] * A[j * n + k];
            }
            A[i * n + j] = acc / A[j * n + j];
        }
        double diag = A[i * n + i];
        for (int k = 0; k < i; k = k + 1) {
            diag = diag - A[i * n + k] * A[i * n + k];
        }
        A[i * n + i] = sqrt(diag);
    }
}
"#,
            native: |n, m| {
                for i in 0..n {
                    for j in 0..i {
                        let mut acc = m[i * n + j];
                        for k in 0..j {
                            acc -= m[i * n + k] * m[j * n + k];
                        }
                        m[i * n + j] = acc / m[j * n + j];
                    }
                    let mut diag = m[i * n + i];
                    for k in 0..i {
                        diag -= m[i * n + k] * m[i * n + k];
                    }
                    m[i * n + i] = diag.sqrt();
                }
            },
            slots: |n| n * n,
            init: spd_init,
            default_n: 32,
        },
        Kernel {
            name: "lu",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < i; j = j + 1) {
            double w = A[i * n + j];
            for (int k = 0; k < j; k = k + 1) {
                w = w - A[i * n + k] * A[k * n + j];
            }
            A[i * n + j] = w / A[j * n + j];
        }
        for (int j = i; j < n; j = j + 1) {
            double w = A[i * n + j];
            for (int k = 0; k < i; k = k + 1) {
                w = w - A[i * n + k] * A[k * n + j];
            }
            A[i * n + j] = w;
        }
    }
}
"#,
            native: |n, m| {
                for i in 0..n {
                    for j in 0..i {
                        let mut w = m[i * n + j];
                        for k in 0..j {
                            w -= m[i * n + k] * m[k * n + j];
                        }
                        m[i * n + j] = w / m[j * n + j];
                    }
                    for j in i..n {
                        let mut w = m[i * n + j];
                        for k in 0..i {
                            w -= m[i * n + k] * m[k * n + j];
                        }
                        m[i * n + j] = w;
                    }
                }
            },
            slots: |n| n * n,
            init: spd_init,
            default_n: 32,
        },
        Kernel {
            name: "ludcmp",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    ptr double b = A + n * n;
    ptr double x = b + n;
    ptr double y = x + n;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < i; j = j + 1) {
            double w = A[i * n + j];
            for (int k = 0; k < j; k = k + 1) {
                w = w - A[i * n + k] * A[k * n + j];
            }
            A[i * n + j] = w / A[j * n + j];
        }
        for (int j = i; j < n; j = j + 1) {
            double w = A[i * n + j];
            for (int k = 0; k < i; k = k + 1) {
                w = w - A[i * n + k] * A[k * n + j];
            }
            A[i * n + j] = w;
        }
    }
    for (int i = 0; i < n; i = i + 1) {
        double w = b[i];
        for (int j = 0; j < i; j = j + 1) {
            w = w - A[i * n + j] * y[j];
        }
        y[i] = w;
    }
    for (int i = n - 1; i >= 0; i = i - 1) {
        double w = y[i];
        for (int j = i + 1; j < n; j = j + 1) {
            w = w - A[i * n + j] * x[j];
        }
        x[i] = w / A[i * n + i];
    }
}
"#,
            native: |n, m| {
                let (b, x, y) = (n * n, n * n + n, n * n + 2 * n);
                for i in 0..n {
                    for j in 0..i {
                        let mut w = m[i * n + j];
                        for k in 0..j {
                            w -= m[i * n + k] * m[k * n + j];
                        }
                        m[i * n + j] = w / m[j * n + j];
                    }
                    for j in i..n {
                        let mut w = m[i * n + j];
                        for k in 0..i {
                            w -= m[i * n + k] * m[k * n + j];
                        }
                        m[i * n + j] = w;
                    }
                }
                for i in 0..n {
                    let mut w = m[b + i];
                    for j in 0..i {
                        w -= m[i * n + j] * m[y + j];
                    }
                    m[y + i] = w;
                }
                for i in (0..n).rev() {
                    let mut w = m[y + i];
                    for j in i + 1..n {
                        w -= m[i * n + j] * m[x + j];
                    }
                    m[x + i] = w / m[i * n + i];
                }
            },
            slots: |n| n * n + 3 * n,
            init: ludcmp_init,
            default_n: 32,
        },
        Kernel {
            name: "trisolv",
            fl: r#"
void kernel(int n) {
    ptr double L = (ptr double) 65536;
    ptr double x = L + n * n;
    ptr double b = x + n;
    for (int i = 0; i < n; i = i + 1) {
        double w = b[i];
        for (int j = 0; j < i; j = j + 1) {
            w = w - L[i * n + j] * x[j];
        }
        x[i] = w / L[i * n + i];
    }
}
"#,
            native: |n, m| {
                let (x, b) = (n * n, n * n + n);
                for i in 0..n {
                    let mut w = m[b + i];
                    for j in 0..i {
                        w -= m[i * n + j] * m[x + j];
                    }
                    m[x + i] = w / m[i * n + i];
                }
            },
            slots: |n| n * n + 2 * n,
            init: trisolv_init,
            default_n: 64,
        },
        Kernel {
            name: "durbin",
            fl: r#"
void kernel(int n) {
    ptr double r = (ptr double) 65536;
    ptr double y = r + n;
    ptr double z = y + n;
    y[0] = -r[0];
    double beta = 1.0;
    double alpha = -r[0];
    for (int k = 1; k < n; k = k + 1) {
        beta = (1.0 - alpha * alpha) * beta;
        double sum = 0.0;
        for (int i = 0; i < k; i = i + 1) {
            sum = sum + r[k - i - 1] * y[i];
        }
        alpha = -(r[k] + sum) / beta;
        for (int i = 0; i < k; i = i + 1) {
            z[i] = y[i] + alpha * y[k - i - 1];
        }
        for (int i = 0; i < k; i = i + 1) {
            y[i] = z[i];
        }
        y[k] = alpha;
    }
}
"#,
            native: |n, m| {
                let (y, z) = (n, 2 * n);
                m[y] = -m[0];
                let mut beta = 1.0;
                let mut alpha = -m[0];
                for k in 1..n {
                    beta *= 1.0 - alpha * alpha;
                    let mut sum = 0.0;
                    for i in 0..k {
                        sum += m[k - i - 1] * m[y + i];
                    }
                    alpha = -(m[k] + sum) / beta;
                    for i in 0..k {
                        m[z + i] = m[y + i] + alpha * m[y + k - i - 1];
                    }
                    for i in 0..k {
                        m[y + i] = m[z + i];
                    }
                    m[y + k] = alpha;
                }
            },
            slots: |n| 3 * n,
            init: durbin_init,
            default_n: 64,
        },
        Kernel {
            name: "jacobi-1d",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    ptr double B = A + n;
    for (int t = 0; t < 10; t = t + 1) {
        for (int i = 1; i < n - 1; i = i + 1) {
            B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
        }
        for (int i = 1; i < n - 1; i = i + 1) {
            A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
        }
    }
}
"#,
            native: |n, m| {
                for _t in 0..10 {
                    for i in 1..n - 1 {
                        m[n + i] = 0.33333 * (m[i - 1] + m[i] + m[i + 1]);
                    }
                    for i in 1..n - 1 {
                        m[i] = 0.33333 * (m[n + i - 1] + m[n + i] + m[n + i + 1]);
                    }
                }
            },
            slots: |n| 2 * n,
            init: generic_init,
            default_n: 256,
        },
        Kernel {
            name: "jacobi-2d",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    ptr double B = A + n * n;
    for (int t = 0; t < 5; t = t + 1) {
        for (int i = 1; i < n - 1; i = i + 1) {
            for (int j = 1; j < n - 1; j = j + 1) {
                B[i * n + j] = 0.2 * (A[i * n + j] + A[i * n + j - 1] + A[i * n + j + 1]
                    + A[(i + 1) * n + j] + A[(i - 1) * n + j]);
            }
        }
        for (int i = 1; i < n - 1; i = i + 1) {
            for (int j = 1; j < n - 1; j = j + 1) {
                A[i * n + j] = 0.2 * (B[i * n + j] + B[i * n + j - 1] + B[i * n + j + 1]
                    + B[(i + 1) * n + j] + B[(i - 1) * n + j]);
            }
        }
    }
}
"#,
            native: |n, m| {
                let b = n * n;
                for _t in 0..5 {
                    for i in 1..n - 1 {
                        for j in 1..n - 1 {
                            m[b + i * n + j] = 0.2
                                * (m[i * n + j]
                                    + m[i * n + j - 1]
                                    + m[i * n + j + 1]
                                    + m[(i + 1) * n + j]
                                    + m[(i - 1) * n + j]);
                        }
                    }
                    for i in 1..n - 1 {
                        for j in 1..n - 1 {
                            m[i * n + j] = 0.2
                                * (m[b + i * n + j]
                                    + m[b + i * n + j - 1]
                                    + m[b + i * n + j + 1]
                                    + m[b + (i + 1) * n + j]
                                    + m[b + (i - 1) * n + j]);
                        }
                    }
                }
            },
            slots: |n| 2 * n * n,
            init: generic_init,
            default_n: 32,
        },
        Kernel {
            name: "seidel-2d",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    for (int t = 0; t < 5; t = t + 1) {
        for (int i = 1; i < n - 1; i = i + 1) {
            for (int j = 1; j < n - 1; j = j + 1) {
                A[i * n + j] = (A[(i - 1) * n + j - 1] + A[(i - 1) * n + j] + A[(i - 1) * n + j + 1]
                    + A[i * n + j - 1] + A[i * n + j] + A[i * n + j + 1]
                    + A[(i + 1) * n + j - 1] + A[(i + 1) * n + j] + A[(i + 1) * n + j + 1]) / 9.0;
            }
        }
    }
}
"#,
            native: |n, m| {
                for _t in 0..5 {
                    for i in 1..n - 1 {
                        for j in 1..n - 1 {
                            m[i * n + j] = (m[(i - 1) * n + j - 1]
                                + m[(i - 1) * n + j]
                                + m[(i - 1) * n + j + 1]
                                + m[i * n + j - 1]
                                + m[i * n + j]
                                + m[i * n + j + 1]
                                + m[(i + 1) * n + j - 1]
                                + m[(i + 1) * n + j]
                                + m[(i + 1) * n + j + 1])
                                / 9.0;
                        }
                    }
                }
            },
            slots: |n| n * n,
            init: generic_init,
            default_n: 32,
        },
        Kernel {
            name: "fdtd-2d",
            fl: r#"
void kernel(int n) {
    ptr double ex = (ptr double) 65536;
    ptr double ey = ex + n * n;
    ptr double hz = ey + n * n;
    ptr double fict = hz + n * n;
    for (int t = 0; t < 5; t = t + 1) {
        for (int j = 0; j < n; j = j + 1) {
            ey[j] = fict[t];
        }
        for (int i = 1; i < n; i = i + 1) {
            for (int j = 0; j < n; j = j + 1) {
                ey[i * n + j] = ey[i * n + j] - 0.5 * (hz[i * n + j] - hz[(i - 1) * n + j]);
            }
        }
        for (int i = 0; i < n; i = i + 1) {
            for (int j = 1; j < n; j = j + 1) {
                ex[i * n + j] = ex[i * n + j] - 0.5 * (hz[i * n + j] - hz[i * n + j - 1]);
            }
        }
        for (int i = 0; i < n - 1; i = i + 1) {
            for (int j = 0; j < n - 1; j = j + 1) {
                hz[i * n + j] = hz[i * n + j] - 0.7 * (ex[i * n + j + 1] - ex[i * n + j]
                    + ey[(i + 1) * n + j] - ey[i * n + j]);
            }
        }
    }
}
"#,
            native: |n, m| {
                let (ey, hz, fict) = (n * n, 2 * n * n, 3 * n * n);
                for t in 0..5 {
                    for j in 0..n {
                        m[ey + j] = m[fict + t];
                    }
                    for i in 1..n {
                        for j in 0..n {
                            m[ey + i * n + j] -=
                                0.5 * (m[hz + i * n + j] - m[hz + (i - 1) * n + j]);
                        }
                    }
                    for i in 0..n {
                        for j in 1..n {
                            m[i * n + j] -= 0.5 * (m[hz + i * n + j] - m[hz + i * n + j - 1]);
                        }
                    }
                    for i in 0..n - 1 {
                        for j in 0..n - 1 {
                            m[hz + i * n + j] -= 0.7
                                * (m[i * n + j + 1] - m[i * n + j] + m[ey + (i + 1) * n + j]
                                    - m[ey + i * n + j]);
                        }
                    }
                }
            },
            slots: |n| 3 * n * n + 5,
            init: generic_init,
            default_n: 32,
        },
        Kernel {
            name: "heat-3d",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    ptr double B = A + n * n * n;
    for (int t = 0; t < 3; t = t + 1) {
        for (int i = 1; i < n - 1; i = i + 1) {
            for (int j = 1; j < n - 1; j = j + 1) {
                for (int k = 1; k < n - 1; k = k + 1) {
                    B[i * n * n + j * n + k] =
                        0.125 * (A[(i + 1) * n * n + j * n + k] - 2.0 * A[i * n * n + j * n + k]
                            + A[(i - 1) * n * n + j * n + k])
                        + 0.125 * (A[i * n * n + (j + 1) * n + k] - 2.0 * A[i * n * n + j * n + k]
                            + A[i * n * n + (j - 1) * n + k])
                        + 0.125 * (A[i * n * n + j * n + k + 1] - 2.0 * A[i * n * n + j * n + k]
                            + A[i * n * n + j * n + k - 1])
                        + A[i * n * n + j * n + k];
                }
            }
        }
        for (int i = 1; i < n - 1; i = i + 1) {
            for (int j = 1; j < n - 1; j = j + 1) {
                for (int k = 1; k < n - 1; k = k + 1) {
                    A[i * n * n + j * n + k] =
                        0.125 * (B[(i + 1) * n * n + j * n + k] - 2.0 * B[i * n * n + j * n + k]
                            + B[(i - 1) * n * n + j * n + k])
                        + 0.125 * (B[i * n * n + (j + 1) * n + k] - 2.0 * B[i * n * n + j * n + k]
                            + B[i * n * n + (j - 1) * n + k])
                        + 0.125 * (B[i * n * n + j * n + k + 1] - 2.0 * B[i * n * n + j * n + k]
                            + B[i * n * n + j * n + k - 1])
                        + B[i * n * n + j * n + k];
                }
            }
        }
    }
}
"#,
            native: |n, m| {
                let b = n * n * n;
                let idx = |i: usize, j: usize, k: usize| i * n * n + j * n + k;
                for _t in 0..3 {
                    for i in 1..n - 1 {
                        for j in 1..n - 1 {
                            for k in 1..n - 1 {
                                m[b + idx(i, j, k)] = 0.125
                                    * (m[idx(i + 1, j, k)] - 2.0 * m[idx(i, j, k)]
                                        + m[idx(i - 1, j, k)])
                                    + 0.125
                                        * (m[idx(i, j + 1, k)] - 2.0 * m[idx(i, j, k)]
                                            + m[idx(i, j - 1, k)])
                                    + 0.125
                                        * (m[idx(i, j, k + 1)] - 2.0 * m[idx(i, j, k)]
                                            + m[idx(i, j, k - 1)])
                                    + m[idx(i, j, k)];
                            }
                        }
                    }
                    for i in 1..n - 1 {
                        for j in 1..n - 1 {
                            for k in 1..n - 1 {
                                m[idx(i, j, k)] = 0.125
                                    * (m[b + idx(i + 1, j, k)] - 2.0 * m[b + idx(i, j, k)]
                                        + m[b + idx(i - 1, j, k)])
                                    + 0.125
                                        * (m[b + idx(i, j + 1, k)] - 2.0 * m[b + idx(i, j, k)]
                                            + m[b + idx(i, j - 1, k)])
                                    + 0.125
                                        * (m[b + idx(i, j, k + 1)] - 2.0 * m[b + idx(i, j, k)]
                                            + m[b + idx(i, j, k - 1)])
                                    + m[b + idx(i, j, k)];
                            }
                        }
                    }
                }
            },
            slots: |n| 2 * n * n * n,
            init: generic_init,
            default_n: 12,
        },
        Kernel {
            name: "floyd-warshall",
            fl: r#"
void kernel(int n) {
    ptr double path = (ptr double) 65536;
    for (int k = 0; k < n; k = k + 1) {
        for (int i = 0; i < n; i = i + 1) {
            for (int j = 0; j < n; j = j + 1) {
                double d = path[i * n + k] + path[k * n + j];
                if (d < path[i * n + j]) {
                    path[i * n + j] = d;
                }
            }
        }
    }
}
"#,
            native: |n, m| {
                for k in 0..n {
                    for i in 0..n {
                        for j in 0..n {
                            let d = m[i * n + k] + m[k * n + j];
                            if d < m[i * n + j] {
                                m[i * n + j] = d;
                            }
                        }
                    }
                }
            },
            slots: |n| n * n,
            init: floyd_init,
            default_n: 32,
        },
        Kernel {
            name: "covariance",
            fl: r#"
void kernel(int n) {
    ptr double data = (ptr double) 65536;
    ptr double cov = data + n * n;
    ptr double mean = cov + n * n;
    for (int j = 0; j < n; j = j + 1) {
        double acc = 0.0;
        for (int i = 0; i < n; i = i + 1) {
            acc = acc + data[i * n + j];
        }
        mean[j] = acc / (double) n;
    }
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            data[i * n + j] = data[i * n + j] - mean[j];
        }
    }
    for (int i = 0; i < n; i = i + 1) {
        for (int j = i; j < n; j = j + 1) {
            double acc = 0.0;
            for (int k = 0; k < n; k = k + 1) {
                acc = acc + data[k * n + i] * data[k * n + j];
            }
            acc = acc / ((double) n - 1.0);
            cov[i * n + j] = acc;
            cov[j * n + i] = acc;
        }
    }
}
"#,
            native: |n, m| {
                let (cov, mean) = (n * n, 2 * n * n);
                for j in 0..n {
                    let mut acc = 0.0;
                    for i in 0..n {
                        acc += m[i * n + j];
                    }
                    m[mean + j] = acc / n as f64;
                }
                for i in 0..n {
                    for j in 0..n {
                        m[i * n + j] -= m[mean + j];
                    }
                }
                for i in 0..n {
                    for j in i..n {
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc += m[k * n + i] * m[k * n + j];
                        }
                        acc /= n as f64 - 1.0;
                        m[cov + i * n + j] = acc;
                        m[cov + j * n + i] = acc;
                    }
                }
            },
            slots: |n| 2 * n * n + n,
            init: generic_init,
            default_n: 28,
        },
        Kernel {
            name: "correlation",
            fl: r#"
void kernel(int n) {
    ptr double data = (ptr double) 65536;
    ptr double corr = data + n * n;
    ptr double mean = corr + n * n;
    ptr double stddev = mean + n;
    for (int j = 0; j < n; j = j + 1) {
        double acc = 0.0;
        for (int i = 0; i < n; i = i + 1) {
            acc = acc + data[i * n + j];
        }
        mean[j] = acc / (double) n;
    }
    for (int j = 0; j < n; j = j + 1) {
        double acc = 0.0;
        for (int i = 0; i < n; i = i + 1) {
            double d = data[i * n + j] - mean[j];
            acc = acc + d * d;
        }
        double sd = sqrt(acc / (double) n);
        if (sd <= 0.1) {
            sd = 1.0;
        }
        stddev[j] = sd;
    }
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            data[i * n + j] = (data[i * n + j] - mean[j]) / stddev[j];
        }
    }
    for (int i = 0; i < n; i = i + 1) {
        corr[i * n + i] = 1.0;
        for (int j = i + 1; j < n; j = j + 1) {
            double acc = 0.0;
            for (int k = 0; k < n; k = k + 1) {
                acc = acc + data[k * n + i] * data[k * n + j];
            }
            acc = acc / (double) n;
            corr[i * n + j] = acc;
            corr[j * n + i] = acc;
        }
    }
}
"#,
            native: |n, m| {
                let (corr, mean, stddev) = (n * n, 2 * n * n, 2 * n * n + n);
                for j in 0..n {
                    let mut acc = 0.0;
                    for i in 0..n {
                        acc += m[i * n + j];
                    }
                    m[mean + j] = acc / n as f64;
                }
                for j in 0..n {
                    let mut acc = 0.0;
                    for i in 0..n {
                        let d = m[i * n + j] - m[mean + j];
                        acc += d * d;
                    }
                    let mut sd = (acc / n as f64).sqrt();
                    if sd <= 0.1 {
                        sd = 1.0;
                    }
                    m[stddev + j] = sd;
                }
                for i in 0..n {
                    for j in 0..n {
                        m[i * n + j] = (m[i * n + j] - m[mean + j]) / m[stddev + j];
                    }
                }
                for i in 0..n {
                    m[corr + i * n + i] = 1.0;
                    for j in i + 1..n {
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc += m[k * n + i] * m[k * n + j];
                        }
                        acc /= n as f64;
                        m[corr + i * n + j] = acc;
                        m[corr + j * n + i] = acc;
                    }
                }
            },
            slots: |n| 2 * n * n + 2 * n,
            init: generic_init,
            default_n: 28,
        },
        Kernel {
            name: "gramschmidt",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    ptr double R = A + n * n;
    ptr double Q = R + n * n;
    for (int k = 0; k < n; k = k + 1) {
        double nrm = 0.0;
        for (int i = 0; i < n; i = i + 1) {
            nrm = nrm + A[i * n + k] * A[i * n + k];
        }
        R[k * n + k] = sqrt(nrm);
        for (int i = 0; i < n; i = i + 1) {
            Q[i * n + k] = A[i * n + k] / R[k * n + k];
        }
        for (int j = k + 1; j < n; j = j + 1) {
            double acc = 0.0;
            for (int i = 0; i < n; i = i + 1) {
                acc = acc + Q[i * n + k] * A[i * n + j];
            }
            R[k * n + j] = acc;
            for (int i = 0; i < n; i = i + 1) {
                A[i * n + j] = A[i * n + j] - Q[i * n + k] * acc;
            }
        }
    }
}
"#,
            native: |n, m| {
                let (r, q) = (n * n, 2 * n * n);
                for k in 0..n {
                    let mut nrm = 0.0;
                    for i in 0..n {
                        nrm += m[i * n + k] * m[i * n + k];
                    }
                    m[r + k * n + k] = nrm.sqrt();
                    for i in 0..n {
                        m[q + i * n + k] = m[i * n + k] / m[r + k * n + k];
                    }
                    for j in k + 1..n {
                        let mut acc = 0.0;
                        for i in 0..n {
                            acc += m[q + i * n + k] * m[i * n + j];
                        }
                        m[r + k * n + j] = acc;
                        for i in 0..n {
                            m[i * n + j] -= m[q + i * n + k] * acc;
                        }
                    }
                }
            },
            slots: |n| 3 * n * n,
            init: gramschmidt_init,
            default_n: 28,
        },
        Kernel {
            name: "doitgen",
            fl: r#"
void kernel(int n) {
    ptr double A = (ptr double) 65536;
    ptr double C4 = A + n * n * n;
    ptr double sum = C4 + n * n;
    for (int r = 0; r < n; r = r + 1) {
        for (int q = 0; q < n; q = q + 1) {
            for (int p = 0; p < n; p = p + 1) {
                double acc = 0.0;
                for (int s = 0; s < n; s = s + 1) {
                    acc = acc + A[r * n * n + q * n + s] * C4[s * n + p];
                }
                sum[p] = acc;
            }
            for (int p = 0; p < n; p = p + 1) {
                A[r * n * n + q * n + p] = sum[p];
            }
        }
    }
}
"#,
            native: |n, m| {
                let (c4, sum) = (n * n * n, n * n * n + n * n);
                for r in 0..n {
                    for q in 0..n {
                        for p in 0..n {
                            let mut acc = 0.0;
                            for s in 0..n {
                                acc += m[r * n * n + q * n + s] * m[c4 + s * n + p];
                            }
                            m[sum + p] = acc;
                        }
                        for p in 0..n {
                            m[r * n * n + q * n + p] = m[sum + p];
                        }
                    }
                }
            },
            slots: |n| n * n * n + n * n + n,
            init: generic_init,
            default_n: 12,
        },
        Kernel {
            name: "nussinov",
            fl: r#"
void kernel(int n) {
    ptr double seq = (ptr double) 65536;
    ptr double table = seq + n;
    for (int i = n - 1; i >= 0; i = i - 1) {
        for (int j = i + 1; j < n; j = j + 1) {
            if (j - 1 >= 0) {
                table[i * n + j] = fmax(table[i * n + j], table[i * n + j - 1]);
            }
            if (i + 1 < n) {
                table[i * n + j] = fmax(table[i * n + j], table[(i + 1) * n + j]);
            }
            if (j - 1 >= 0 && i + 1 < n) {
                if (i < j - 1) {
                    double bonus = 0.0;
                    if (seq[i] + seq[j] == 3.0) {
                        bonus = 1.0;
                    }
                    table[i * n + j] = fmax(table[i * n + j], table[(i + 1) * n + j - 1] + bonus);
                } else {
                    table[i * n + j] = fmax(table[i * n + j], table[(i + 1) * n + j - 1]);
                }
            }
            for (int k = i + 1; k < j; k = k + 1) {
                table[i * n + j] = fmax(table[i * n + j], table[i * n + k] + table[(k + 1) * n + j]);
            }
        }
    }
}
"#,
            native: |n, m| {
                let t = n;
                for i in (0..n).rev() {
                    for j in i + 1..n {
                        // `j - 1 >= 0` always holds for j >= 1.
                        m[t + i * n + j] = m[t + i * n + j].max(m[t + i * n + j - 1]);
                        if i + 1 < n {
                            m[t + i * n + j] = m[t + i * n + j].max(m[t + (i + 1) * n + j]);
                        }
                        if i + 1 < n {
                            if i < j - 1 {
                                let bonus = if m[i] + m[j] == 3.0 { 1.0 } else { 0.0 };
                                m[t + i * n + j] =
                                    m[t + i * n + j].max(m[t + (i + 1) * n + j - 1] + bonus);
                            } else {
                                m[t + i * n + j] = m[t + i * n + j].max(m[t + (i + 1) * n + j - 1]);
                            }
                        }
                        for k in i + 1..j {
                            m[t + i * n + j] =
                                m[t + i * n + j].max(m[t + i * n + k] + m[t + (k + 1) * n + j]);
                        }
                    }
                }
            },
            slots: |n| n + n * n,
            init: nussinov_init,
            default_n: 32,
        },
    ]
}
