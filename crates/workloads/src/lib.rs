//! The paper's evaluation workloads (§6), implemented once against the
//! platform-agnostic [`env::FaasEnv`] and run on both FAASM and the
//! container baseline.
//!
//! * [`sgd`] — HOGWILD! SGD text classification on an RCV1-like dataset
//!   (§6.2, Fig. 6).
//! * [`inference`] — mobilenet-lite model serving (§6.3, Fig. 7).
//! * [`matmul`] — chained divide-and-conquer matrix multiplication
//!   (§6.4, Fig. 8).
//! * [`data`] — seeded dataset/image generators (DESIGN.md S8).

#![warn(missing_docs)]

pub mod data;
pub mod env;
pub mod inference;
pub mod matmul;
pub mod minidyn;
pub mod polybench;
pub mod sgd;

/// A tiny deterministic generator for synthetic weights (xorshift64*).
#[derive(Debug, Clone)]
pub struct MiniRng(u64);

impl MiniRng {
    /// Seed a stream (zero is remapped to a fixed non-zero seed).
    pub fn new(seed: u64) -> MiniRng {
        MiniRng(if seed == 0 { 0x9e3779b97f4a7c15 } else { seed })
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A float in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minirng_deterministic_and_in_range() {
        let mut a = MiniRng::new(5);
        let mut b = MiniRng::new(5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut z = MiniRng::new(0);
        for _ in 0..100 {
            let f = z.next_f32();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
