//! FAASM-gateway: the cluster's ingress tier.
//!
//! The paper assumes an external load balancer feeding calls to per-host
//! schedulers (§5); this crate is that front door, built for the repo's
//! north star of sustained multi-tenant traffic. A [`Gateway`] sits in
//! front of a [`faasm_core::Cluster`] and gives every request the path:
//!
//! ```text
//!   client ──frame──▶ admission ──▶ pending queue ──▶ batch dispatch ──▶ Cluster
//!                      │   │             │                  │
//!                      ▼   ▼             ▼                  ▼
//!               rate limit  bounded   deadline shed    warm-host +
//!               (Overloaded) queue    (Expired)        queue-depth placement
//!                           (Overloaded)
//! ```
//!
//! * **Wire codec** ([`codec`]): length-prefixed binary frames for
//!   requests/responses, with incremental reassembly ([`codec::FrameBuf`]) —
//!   the same no-hidden-serialisation discipline as the KVS protocol.
//! * **Remote ingress** ([`server`], [`client`]): a [`GatewayServer`]
//!   attaches the gateway to a `faasm_net::Nic`, so remote hosts reach
//!   admission over the fabric — byte-stream connections, per-connection
//!   reassembly with a pending-bytes cap, and surgical drop of corrupt
//!   connections. [`GatewayClient`] multiplexes async submit/wait tickets
//!   over one connection.
//! * **Admission control** ([`TenantPolicy`], [`queue`]): per-tenant
//!   token-bucket rate limiting (a request-unit [`faasm_net::TokenBucket`])
//!   and bounded pending queues. Rejections are explicit —
//!   [`GatewayStatus::Overloaded`] for rate/queue sheds,
//!   [`GatewayStatus::Expired`] for requests whose deadline passed while
//!   queued — never a hang.
//! * **Batching dispatcher** ([`Gateway`]): drains the queue in weighted
//!   deficit-round-robin order across tenants (a flooding tenant cannot
//!   starve a quiet one) and fans batches out to the cluster, preferring
//!   hosts with idle warm Faaslets and shallow run queues — the same
//!   signals `faasm_sched::decide` uses, applied one tier earlier.
//! * **Autoscaler** ([`autoscale`]): watches per-function queue depth and
//!   pre-warms Proto-Faaslet pool entries ahead of demand
//!   ([`faasm_core::FaasmInstance::prewarm`]) or retires surplus idle
//!   Faaslets when the backlog drains.
//! * **Metrics** ([`faasm_core::GatewayMetrics`]): p50/p99 queueing delay,
//!   shed counts by reason, batch occupancy, autoscaler actions.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use faasm_core::Cluster;
//! use faasm_gateway::{Gateway, GatewayConfig, TenantPolicy};
//!
//! let cluster = Arc::new(Cluster::new(2));
//! cluster
//!     .upload_fl(
//!         "alice",
//!         "double",
//!         r#"
//!         extern int input_size();
//!         extern int read_call_input(ptr int buf, int len);
//!         extern void write_call_output(ptr int buf, int len);
//!         int main() {
//!             int n = input_size();
//!             read_call_input((ptr int) 1024, n);
//!             ptr int p = (ptr int) 1024;
//!             p[0] = p[0] * 2;
//!             write_call_output((ptr int) 1024, 4);
//!             return 0;
//!         }
//!         "#,
//!         Default::default(),
//!     )
//!     .unwrap();
//!
//! let gateway = Gateway::start(Arc::clone(&cluster), GatewayConfig::default());
//! gateway.set_tenant_policy("alice", TenantPolicy::with_weight(2));
//!
//! let resp = gateway.call("alice", "double", 21i32.to_le_bytes().to_vec());
//! assert!(resp.is_ok());
//! assert_eq!(i32::from_le_bytes(resp.output[..4].try_into().unwrap()), 42);
//! ```

#![warn(missing_docs)]

pub mod autoscale;
pub mod client;
pub mod codec;
mod gateway;
pub mod queue;
mod response;
pub mod server;
mod tenant;

pub use autoscale::{spread_prewarm, tier_scale_wanted, AutoscaleConfig};
pub use client::{ClientError, GatewayClient, GatewayClientConfig};
pub use codec::{FrameBuf, GatewayRequest};
pub use gateway::{Gateway, GatewayConfig};
pub use response::{GatewayResponse, GatewayStatus};
pub use server::{GatewayServer, GatewayServerConfig};
pub use tenant::TenantPolicy;
