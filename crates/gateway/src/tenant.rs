//! Per-tenant admission policy.

/// How the gateway treats one tenant's traffic.
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Weighted-fair-share weight: a tenant with weight 2 drains twice as
    /// many queued requests per scheduling round as a tenant with weight 1.
    pub weight: u32,
    /// Sustained admission rate in requests/second (token bucket); `None`
    /// disables rate limiting for the tenant.
    pub rate_per_sec: Option<u64>,
    /// Token-bucket burst: requests admitted above the sustained rate.
    pub burst: u64,
    /// Bounded pending-queue capacity; request `queue_cap + 1` is shed with
    /// `Overloaded`.
    pub queue_cap: usize,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy {
            weight: 1,
            rate_per_sec: None,
            burst: 64,
            queue_cap: 256,
        }
    }
}

impl TenantPolicy {
    /// A policy with a given fair-share weight, other fields default.
    pub fn with_weight(weight: u32) -> TenantPolicy {
        TenantPolicy {
            weight: weight.max(1),
            ..TenantPolicy::default()
        }
    }

    /// A policy with a rate limit of `rate_per_sec` and burst `burst`.
    pub fn rate_limited(rate_per_sec: u64, burst: u64) -> TenantPolicy {
        TenantPolicy {
            rate_per_sec: Some(rate_per_sec),
            burst,
            ..TenantPolicy::default()
        }
    }
}
