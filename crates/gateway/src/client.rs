//! The remote gateway client: submit/wait over the fabric.
//!
//! A [`GatewayClient`] opens one byte-stream connection
//! ([`faasm_net::StreamConn`]) to a [`GatewayServer`](crate::GatewayServer)
//! and multiplexes any number of in-flight calls over it. Submission is
//! asynchronous: [`GatewayClient::submit`] sends the framed request (MTU
//! fragmented) and returns a ticket immediately; a receiver thread
//! reassembles response frames from the server's stream and correlates them
//! to tickets by sequence number, so N outstanding calls cost N map
//! entries, not N blocked RPCs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm_net::stream::{decode_stream_msg, StreamConn, StreamKind};
use faasm_net::{HostId, NetError, Nic};

use crate::codec::{self, FrameBuf, GatewayRequest, OversizedFrame};
use crate::response::GatewayResponse;

/// Gateway client construction parameters.
#[derive(Debug, Clone)]
pub struct GatewayClientConfig {
    /// Fragmentation size for request frames (small values exercise
    /// reassembly; the default mimics an Ethernet MTU).
    pub mtu: usize,
    /// Upper bound a caller blocks in [`GatewayClient::wait`] before
    /// getting an error response.
    pub wait_timeout: Duration,
}

impl Default for GatewayClientConfig {
    fn default() -> GatewayClientConfig {
        GatewayClientConfig {
            mtu: faasm_net::DEFAULT_MTU,
            wait_timeout: Duration::from_secs(120),
        }
    }
}

/// Why a submission could not be sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The encoded request exceeds [`codec::MAX_FRAME`]; it was never sent
    /// (sending it would only get the connection dropped).
    Oversized(OversizedFrame),
    /// The connection is closed — by the server (protocol violation on our
    /// stream) or because the client shut down.
    Closed(String),
    /// Fabric-level routing failure.
    Net(NetError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Oversized(e) => write!(f, "request too large: {e}"),
            ClientError::Closed(reason) => write!(f, "connection closed: {reason}"),
            ClientError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Fulfilled-but-unclaimed ticket count above which `fulfill` runs the TTL
/// sweep (mirrors the gateway's `Completions` sweep: fire-and-forget
/// submitters must not grow the map without bound).
const SWEEP_THRESHOLD: usize = 256;

#[derive(Debug)]
struct ClientState {
    /// Ticket → response slot (`None` until the response frame arrives)
    /// plus the instant of its last transition, for the TTL sweep.
    pending: HashMap<u64, (Option<GatewayResponse>, Instant)>,
    /// Delivered-but-unclaimed slots; live waiters never trigger sweeps.
    unclaimed: usize,
    /// Rate-limits full-map sweep scans.
    last_sweep: Instant,
    /// Set when the connection dies; new submits fail fast.
    closed: Option<String>,
}

impl ClientState {
    fn new() -> ClientState {
        ClientState {
            pending: HashMap::new(),
            unclaimed: 0,
            last_sweep: Instant::now(),
            closed: None,
        }
    }
}

struct ClientInner {
    nic: Nic,
    conn: parking_lot::Mutex<StreamConn>,
    server: HostId,
    wait_timeout: Duration,
    next_seq: AtomicU64,
    state: parking_lot::Mutex<ClientState>,
    cv: parking_lot::Condvar,
    stop: AtomicBool,
}

/// A connected remote-gateway client.
pub struct GatewayClient {
    inner: Arc<ClientInner>,
    recv_thread: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for GatewayClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayClient")
            .field("host", &self.inner.nic.id())
            .field("server", &self.inner.server)
            .finish()
    }
}

impl GatewayClient {
    /// Connect from `nic` to the gateway server at `server` with defaults.
    ///
    /// # Errors
    ///
    /// Routing errors opening the connection.
    pub fn connect(nic: Nic, server: HostId) -> Result<GatewayClient, NetError> {
        GatewayClient::with_config(nic, server, GatewayClientConfig::default())
    }

    /// Connect with explicit parameters.
    ///
    /// # Errors
    ///
    /// Routing errors opening the connection.
    pub fn with_config(
        nic: Nic,
        server: HostId,
        config: GatewayClientConfig,
    ) -> Result<GatewayClient, NetError> {
        let conn = StreamConn::open(nic.clone(), server, config.mtu)?;
        let inner = Arc::new(ClientInner {
            nic,
            conn: parking_lot::Mutex::new(conn),
            server,
            wait_timeout: config.wait_timeout,
            next_seq: AtomicU64::new(1),
            state: parking_lot::Mutex::new(ClientState::new()),
            cv: parking_lot::Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let recv_thread = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gw-client".into())
                .spawn(move || inner.recv_loop())
                .expect("spawn gateway client receiver")
        };
        Ok(GatewayClient {
            inner,
            recv_thread: parking_lot::Mutex::new(Some(recv_thread)),
        })
    }

    /// This client's host id on the fabric.
    pub fn host_id(&self) -> HostId {
        self.inner.nic.id()
    }

    /// The client NIC (its traffic counters measure the over-fabric cost
    /// of remote ingress).
    pub fn nic(&self) -> &Nic {
        &self.inner.nic
    }

    /// Submit with the gateway's default queueing deadline; returns a
    /// ticket for [`GatewayClient::wait`] immediately (no round trip).
    ///
    /// # Errors
    ///
    /// [`ClientError`] when the request cannot be sent.
    pub fn submit(&self, tenant: &str, function: &str, input: Vec<u8>) -> Result<u64, ClientError> {
        self.submit_with_deadline(tenant, function, input, Duration::ZERO)
    }

    /// Submit with an explicit queueing deadline (`Duration::ZERO` means
    /// the gateway default; sub-millisecond deadlines round up to 1 ms).
    ///
    /// # Errors
    ///
    /// [`ClientError`] when the request cannot be sent.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        function: &str,
        input: Vec<u8>,
        deadline: Duration,
    ) -> Result<u64, ClientError> {
        self.submit_traced(tenant, function, input, deadline)
            .map(|(ticket, _)| ticket)
    }

    /// Submit under a fresh client-minted trace root; returns the ticket
    /// and the trace id, so after [`GatewayClient::wait`] the caller can
    /// pull the call's full span tree with `faasm_telemetry::trace_tree`.
    /// An active thread-local trace context is adopted instead of minting,
    /// so chained remote calls stay on one trace.
    ///
    /// # Errors
    ///
    /// [`ClientError`] when the request cannot be sent.
    pub fn submit_traced(
        &self,
        tenant: &str,
        function: &str,
        input: Vec<u8>,
        deadline: Duration,
    ) -> Result<(u64, u64), ClientError> {
        let deadline_ms = if deadline.is_zero() {
            0
        } else {
            (deadline.as_millis() as u64).max(1)
        };
        let trace = match faasm_telemetry::current() {
            ctx if ctx.is_none() => faasm_telemetry::TraceCtx::new_root(),
            ctx => ctx,
        };
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let req = GatewayRequest {
            seq,
            tenant: tenant.to_string(),
            function: function.to_string(),
            deadline_ms,
            trace,
            input,
        };
        let frame = codec::try_encode_frame(&codec::encode_request(&req))
            .map_err(ClientError::Oversized)?;
        {
            let mut state = self.inner.state.lock();
            if let Some(reason) = &state.closed {
                return Err(ClientError::Closed(reason.clone()));
            }
            state.pending.insert(seq, (None, Instant::now()));
        }
        // The connection lock serialises fragmented writes: interleaved
        // chunks from concurrent submitters would corrupt the stream.
        let sent = self.inner.conn.lock().send(&frame);
        if let Err(e) = sent {
            self.inner.state.lock().pending.remove(&seq);
            return Err(ClientError::Net(e));
        }
        Ok((seq, trace.trace_id))
    }

    /// Block for a submitted ticket's response. Tickets the server never
    /// answers (connection cut mid-call) resolve to an error response at
    /// the wait timeout; unknown tickets resolve immediately.
    pub fn wait(&self, ticket: u64) -> GatewayResponse {
        let deadline = Instant::now() + self.inner.wait_timeout;
        let mut state = self.inner.state.lock();
        loop {
            match state.pending.get(&ticket) {
                Some((Some(_), _)) => {
                    state.unclaimed = state.unclaimed.saturating_sub(1);
                    let resp = state
                        .pending
                        .remove(&ticket)
                        .and_then(|(r, _)| r)
                        .expect("checked above");
                    return resp;
                }
                Some((None, _)) => {
                    if let Some(reason) = &state.closed {
                        let reason = reason.clone();
                        state.pending.remove(&ticket);
                        return GatewayResponse::error(ticket, reason);
                    }
                }
                None => return GatewayResponse::error(ticket, "unknown ticket"),
            }
            let now = Instant::now();
            if now >= deadline {
                state.pending.remove(&ticket);
                return GatewayResponse::error(ticket, "client wait timed out");
            }
            self.inner.cv.wait_for(&mut state, deadline - now);
        }
    }

    /// Submit and wait (the synchronous surface).
    ///
    /// # Errors
    ///
    /// [`ClientError`] when the request cannot be sent; a sent request
    /// always resolves to a [`GatewayResponse`].
    pub fn call(
        &self,
        tenant: &str,
        function: &str,
        input: Vec<u8>,
    ) -> Result<GatewayResponse, ClientError> {
        let ticket = self.submit(tenant, function, input)?;
        Ok(self.wait(ticket))
    }

    /// True once the server (or shutdown) closed the connection.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed.is_some()
    }

    /// Tickets currently tracked (in flight or fulfilled-but-unclaimed).
    /// Abandoned tickets are TTL-swept, so this stays bounded under
    /// fire-and-forget traffic.
    pub fn outstanding(&self) -> usize {
        self.inner.state.lock().pending.len()
    }

    /// Close the connection and stop the receiver thread. Idempotent; also
    /// runs on drop. Outstanding waits resolve to errors.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.recv_thread.lock().take() {
            let _ = t.join();
        }
        self.inner.fail_all("client shut down");
        self.inner.conn.lock().close();
    }
}

impl Drop for GatewayClient {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ClientInner {
    fn recv_loop(self: Arc<Self>) {
        let my_conn = self.conn.lock().conn_id();
        let mut fb = FrameBuf::new();
        while !self.stop.load(Ordering::Relaxed) {
            let env = match self.nic.recv_timeout(Duration::from_millis(20)) {
                Ok(env) => env,
                Err(faasm_net::NetError::Timeout) => continue,
                Err(_) => {
                    self.fail_all("fabric disconnected");
                    return;
                }
            };
            let Some(msg) = decode_stream_msg(&env.payload) else {
                continue;
            };
            if msg.conn != my_conn || env.src != self.server {
                continue;
            }
            match msg.kind {
                StreamKind::Close => {
                    // The server cut us off (protocol violation on our
                    // stream); nothing in flight will be answered.
                    self.fail_all("connection closed by server");
                    return;
                }
                StreamKind::Data => {
                    fb.feed(&msg.bytes);
                    loop {
                        match fb.next_frame() {
                            Ok(Some(frame)) => match codec::decode_response(&frame) {
                                Some(resp) => self.fulfill(resp),
                                None => {
                                    self.fail_all("malformed response from server");
                                    return;
                                }
                            },
                            Ok(None) => break,
                            Err(_) => {
                                self.fail_all("oversized response from server");
                                return;
                            }
                        }
                    }
                }
                StreamKind::Open => {}
            }
        }
    }

    fn fulfill(&self, resp: GatewayResponse) {
        let mut state = self.state.lock();
        // Responses for tickets nobody holds any more (abandoned waits)
        // are dropped.
        let ClientState {
            pending, unclaimed, ..
        } = &mut *state;
        if let Some(slot) = pending.get_mut(&resp.seq) {
            if slot.0.is_none() {
                *unclaimed += 1;
            }
            *slot = (Some(resp), Instant::now());
            self.cv.notify_all();
        }
        // Sweep responses nobody ever claimed (fire-and-forget submits) —
        // but only when enough have accumulated and not more often than
        // ttl/4, so steady traffic never pays an O(n) scan per response.
        if state.unclaimed > SWEEP_THRESHOLD && state.last_sweep.elapsed() >= self.wait_timeout / 4
        {
            let ttl = self.wait_timeout;
            state
                .pending
                .retain(|_, (resp, at)| resp.is_none() || at.elapsed() < ttl);
            state.unclaimed = state.pending.values().filter(|(r, _)| r.is_some()).count();
            state.last_sweep = Instant::now();
        }
    }

    /// Resolve every outstanding ticket with an error and mark the
    /// connection closed so new submits fail fast.
    fn fail_all(&self, reason: &str) {
        let mut state = self.state.lock();
        if state.closed.is_none() {
            state.closed = Some(reason.to_string());
        }
        let ClientState {
            pending, unclaimed, ..
        } = &mut *state;
        for (seq, slot) in pending.iter_mut() {
            if slot.0.is_none() {
                *unclaimed += 1;
                *slot = (Some(GatewayResponse::error(*seq, reason)), Instant::now());
            }
        }
        self.cv.notify_all();
    }
}
