//! The gateway autoscaler: queue depth in, warm-pool size out.
//!
//! Every `interval` the autoscaler samples the per-function backlog of the
//! pending queue. Functions with deep backlogs get Faaslets pre-warmed on
//! the least-loaded instance (through the Proto-Faaslet restore path, so
//! the pre-warm itself is microseconds); functions whose backlog has
//! drained to zero have surplus idle Faaslets retired so the host memory
//! (the billable-memory curve of Fig. 6c) tracks demand.

use std::time::Duration;

/// Autoscaler tuning.
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// Sampling period.
    pub interval: Duration,
    /// Backlog (queued requests for one function) above which Faaslets are
    /// pre-warmed.
    pub backlog_high: usize,
    /// Faaslets pre-warmed per trigger.
    pub scale_step: usize,
    /// Idle Faaslets to keep per function once its backlog drains.
    pub idle_target: usize,
    /// Hard cap on pooled Faaslets per function across the cluster.
    pub max_warm: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> AutoscaleConfig {
        AutoscaleConfig {
            interval: Duration::from_millis(10),
            backlog_high: 4,
            scale_step: 2,
            idle_target: 1,
            max_warm: 64,
        }
    }
}
