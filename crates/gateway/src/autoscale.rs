//! The gateway autoscaler: queue depth in, warm-pool size out.
//!
//! Every `interval` the autoscaler samples the per-function backlog of the
//! pending queue. Functions with deep backlogs get Faaslets pre-warmed on
//! the least-loaded instance (through the Proto-Faaslet restore path, so
//! the pre-warm itself is microseconds); functions whose backlog has
//! drained to zero have surplus idle Faaslets retired so the host memory
//! (the billable-memory curve of Fig. 6c) tracks demand.

use std::sync::Arc;
use std::time::Duration;

use faasm_core::FaasmInstance;

/// Autoscaler tuning.
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// Sampling period.
    pub interval: Duration,
    /// Backlog (queued requests for one function) above which Faaslets are
    /// pre-warmed.
    pub backlog_high: usize,
    /// Faaslets pre-warmed per trigger.
    pub scale_step: usize,
    /// Idle Faaslets to keep per function once its backlog drains.
    pub idle_target: usize,
    /// Hard cap on pooled Faaslets per function across the cluster.
    pub max_warm: usize,
    /// Global-tier scale-up trigger: when the KVS ops served per shard in
    /// one sampling interval exceed this, the autoscaler adds a state
    /// shard live (`Cluster::add_state_shard`, Cloudburst-style storage
    /// autoscaling). `None` disables tier scaling.
    pub tier_ops_high: Option<u64>,
    /// Hard cap on state shards the autoscaler may grow the tier to.
    pub tier_max_shards: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> AutoscaleConfig {
        AutoscaleConfig {
            interval: Duration::from_millis(10),
            backlog_high: 4,
            scale_step: 2,
            idle_target: 1,
            max_warm: 64,
            tier_ops_high: None,
            tier_max_shards: 8,
        }
    }
}

/// Whether one sampling interval's tier load warrants adding a shard:
/// `ops_delta` KVS ops were served since the previous tick across
/// `shard_count` shards. Pure decision logic, unit-testable without a
/// cluster.
pub fn tier_scale_wanted(ops_delta: u64, shard_count: usize, cfg: &AutoscaleConfig) -> bool {
    let Some(high) = cfg.tier_ops_high else {
        return false;
    };
    shard_count > 0 && shard_count < cfg.tier_max_shards && ops_delta / shard_count as u64 > high
}

/// Pre-warm `count` Faaslets for a function, spread one at a time across
/// the instances in ascending load order (run-queue depth, then pooled
/// Faaslets) — instead of aiming the whole step at a single host, so calls
/// the schedulers later forward also land warm. Returns how many Faaslets
/// were actually created.
pub fn spread_prewarm(
    instances: &[Arc<FaasmInstance>],
    user: &str,
    function: &str,
    count: usize,
) -> usize {
    if instances.is_empty() || count == 0 {
        return 0;
    }
    let mut order: Vec<&Arc<FaasmInstance>> = instances.iter().collect();
    order.sort_by_key(|i| (i.queue_depth(), i.pooled_faaslets()));
    let mut created = 0;
    for k in 0..count {
        if let Ok(n) = order[k % order.len()].prewarm(user, function, 1) {
            created += n;
        }
    }
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_core::Cluster;

    const ECHO: &str = r#"
        extern int input_size();
        extern int read_call_input(ptr int buf, int len);
        extern void write_call_output(ptr int buf, int len);
        int main() {
            int n = input_size();
            read_call_input((ptr int) 1024, n);
            write_call_output((ptr int) 1024, n);
            return 0;
        }
    "#;

    #[test]
    fn tier_scale_decision_tracks_per_shard_load() {
        let cfg = AutoscaleConfig {
            tier_ops_high: Some(100),
            tier_max_shards: 4,
            ..AutoscaleConfig::default()
        };
        // Below the per-shard threshold: no scale.
        assert!(!tier_scale_wanted(150, 2, &cfg));
        // Above it: scale.
        assert!(tier_scale_wanted(300, 2, &cfg));
        // At the shard cap: never scale, whatever the load.
        assert!(!tier_scale_wanted(10_000, 4, &cfg));
        // Disabled by default.
        assert!(!tier_scale_wanted(10_000, 1, &AutoscaleConfig::default()));
        // Degenerate shard counts never divide by zero.
        assert!(!tier_scale_wanted(10_000, 0, &cfg));
    }

    #[test]
    fn prewarm_step_spreads_across_instances() {
        let cluster = Cluster::new(3);
        cluster
            .upload_fl("u", "echo", ECHO, Default::default())
            .unwrap();
        // Prime the proto so pre-warms restore instead of cold starting.
        cluster.invoke("u", "echo", vec![1]);
        let created = spread_prewarm(cluster.instances(), "u", "echo", 3);
        assert_eq!(created, 3);
        for (i, inst) in cluster.instances().iter().enumerate() {
            assert!(
                inst.warm_count("u", "echo") >= 1,
                "instance {i} got no pre-warm: the step must spread, not pile up"
            );
        }
        // A larger step wraps around the rotation instead of stopping.
        let more = spread_prewarm(cluster.instances(), "u", "echo", 5);
        assert_eq!(more, 5);
        let total: usize = cluster
            .instances()
            .iter()
            .map(|i| i.warm_count("u", "echo"))
            .sum();
        assert!(
            total >= 8,
            "3 + 5 pre-warms pooled (plus the primer), got {total}"
        );
    }
}
