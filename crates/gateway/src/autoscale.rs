//! The gateway autoscaler: queue depth in, warm-pool size out.
//!
//! Every `interval` the autoscaler samples the per-function backlog of the
//! pending queue. Functions with deep backlogs get Faaslets pre-warmed on
//! the least-loaded instance (through the Proto-Faaslet restore path, so
//! the pre-warm itself is microseconds); functions whose backlog has
//! drained to zero have surplus idle Faaslets retired so the host memory
//! (the billable-memory curve of Fig. 6c) tracks demand.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use faasm_core::FaasmInstance;
use faasm_net::HostId;
use faasm_sched::SchedBoards;

/// Autoscaler tuning.
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// Sampling period.
    pub interval: Duration,
    /// Backlog (queued requests for one function) above which Faaslets are
    /// pre-warmed.
    pub backlog_high: usize,
    /// Faaslets pre-warmed per trigger.
    pub scale_step: usize,
    /// Idle Faaslets to keep per function once its backlog drains.
    pub idle_target: usize,
    /// Hard cap on pooled Faaslets per function across the cluster.
    pub max_warm: usize,
    /// Global-tier scale-up trigger: when the KVS ops served per shard in
    /// one sampling interval exceed this, the autoscaler adds a state
    /// shard live (`Cluster::add_state_shard`, Cloudburst-style storage
    /// autoscaling). `None` disables tier scaling.
    pub tier_ops_high: Option<u64>,
    /// Hard cap on state shards the autoscaler may grow the tier to.
    pub tier_max_shards: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> AutoscaleConfig {
        AutoscaleConfig {
            interval: Duration::from_millis(10),
            backlog_high: 4,
            scale_step: 2,
            idle_target: 1,
            max_warm: 64,
            tier_ops_high: None,
            tier_max_shards: 8,
        }
    }
}

/// Whether one sampling interval's tier load warrants adding a shard:
/// `ops_delta` KVS ops were served since the previous tick across
/// `shard_count` shards. Pure decision logic, unit-testable without a
/// cluster.
pub fn tier_scale_wanted(ops_delta: u64, shard_count: usize, cfg: &AutoscaleConfig) -> bool {
    let Some(high) = cfg.tier_ops_high else {
        return false;
    };
    shard_count > 0 && shard_count < cfg.tier_max_shards && ops_delta / shard_count as u64 > high
}

/// Pre-warm `count` Faaslets for a function, spread one at a time across
/// the instances in ascending load order — instead of aiming the whole
/// step at a single host, so calls the schedulers later forward also land
/// warm. Ordering is run-queue depth first, then (given `boards`) the
/// scheduler's hot-key affinity for this function descending, then pooled
/// Faaslets: a host whose state cache already holds the function's working
/// set beats an equally-loaded stranger.
///
/// Before warming, the step's targets are **pre-staged**: the function's
/// chunk manifest is pushed to them over the bus, so hosts that don't yet
/// hold the proto pull its chunks into their snapshot caches and the
/// pre-warmed Faaslets restore from warm bytes instead of cold-starting.
///
/// Returns how many Faaslets were actually created.
pub fn spread_prewarm(
    instances: &[Arc<FaasmInstance>],
    boards: Option<&SchedBoards>,
    user: &str,
    function: &str,
    count: usize,
) -> usize {
    if instances.is_empty() || count == 0 {
        return 0;
    }
    let hosts: Vec<HostId> = instances.iter().map(|i| i.host_id()).collect();
    let affinity: HashMap<HostId, u64> = boards
        .map(|b| b.affinities(user, function, &hosts).into_iter().collect())
        .unwrap_or_default();
    let mut order: Vec<&Arc<FaasmInstance>> = instances.iter().collect();
    order.sort_by_key(|i| {
        (
            i.queue_depth(),
            std::cmp::Reverse(affinity.get(&i.host_id()).copied().unwrap_or(0)),
            i.pooled_faaslets(),
        )
    });
    // Pre-stage before warming: push the manifest to every target that
    // does not already hold the proto. Best-effort — with nothing
    // published yet the pushes are no-ops and the first pre-warm below
    // captures and publishes.
    let targets = count.min(order.len());
    for target in &order[..targets] {
        if !target.has_proto(user, function) {
            let _ = order[0].push_prestage(user, function, target.host_id());
        }
    }
    let mut created = 0;
    for k in 0..count {
        if let Ok(n) = order[k % order.len()].prewarm(user, function, 1) {
            created += n;
        }
    }
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasm_core::Cluster;

    const ECHO: &str = r#"
        extern int input_size();
        extern int read_call_input(ptr int buf, int len);
        extern void write_call_output(ptr int buf, int len);
        int main() {
            int n = input_size();
            read_call_input((ptr int) 1024, n);
            write_call_output((ptr int) 1024, n);
            return 0;
        }
    "#;

    #[test]
    fn tier_scale_decision_tracks_per_shard_load() {
        let cfg = AutoscaleConfig {
            tier_ops_high: Some(100),
            tier_max_shards: 4,
            ..AutoscaleConfig::default()
        };
        // Below the per-shard threshold: no scale.
        assert!(!tier_scale_wanted(150, 2, &cfg));
        // Above it: scale.
        assert!(tier_scale_wanted(300, 2, &cfg));
        // At the shard cap: never scale, whatever the load.
        assert!(!tier_scale_wanted(10_000, 4, &cfg));
        // Disabled by default.
        assert!(!tier_scale_wanted(10_000, 1, &AutoscaleConfig::default()));
        // Degenerate shard counts never divide by zero.
        assert!(!tier_scale_wanted(10_000, 0, &cfg));
    }

    #[test]
    fn prewarm_step_spreads_across_instances() {
        let cluster = Cluster::new(3);
        cluster
            .upload_fl("u", "echo", ECHO, Default::default())
            .unwrap();
        // Prime the proto so pre-warms restore instead of cold starting.
        cluster.invoke("u", "echo", vec![1]);
        let created = spread_prewarm(cluster.instances(), None, "u", "echo", 3);
        assert_eq!(created, 3);
        for (i, inst) in cluster.instances().iter().enumerate() {
            assert!(
                inst.warm_count("u", "echo") >= 1,
                "instance {i} got no pre-warm: the step must spread, not pile up"
            );
        }
        // A larger step wraps around the rotation instead of stopping.
        let more = spread_prewarm(cluster.instances(), None, "u", "echo", 5);
        assert_eq!(more, 5);
        let total: usize = cluster
            .instances()
            .iter()
            .map(|i| i.warm_count("u", "echo"))
            .sum();
        assert!(
            total >= 8,
            "3 + 5 pre-warms pooled (plus the primer), got {total}"
        );
    }

    #[test]
    fn prewarm_prefers_affine_hosts_among_equals() {
        let cluster = Cluster::new(3);
        cluster
            .upload_fl("u", "echo", ECHO, Default::default())
            .unwrap();
        cluster.invoke("u", "echo", vec![1]);
        // All three instances are idle and equally loaded; report hot-key
        // affinity for the *last* one, which load order alone would never
        // prefer.
        let affine = cluster.instances()[2].host_id();
        cluster
            .boards()
            .report_affinity("u", "echo", affine, &[("state/u/hot".into(), 50)]);
        let before = cluster.instances()[2].warm_count("u", "echo");
        let created = spread_prewarm(cluster.instances(), Some(cluster.boards()), "u", "echo", 1);
        assert_eq!(created, 1);
        assert_eq!(
            cluster.instances()[2].warm_count("u", "echo"),
            before + 1,
            "a one-Faaslet step must land on the affine host"
        );
    }

    #[test]
    fn prewarm_prestages_targets_through_the_bus() {
        let cluster = Cluster::new(3);
        cluster
            .upload_fl("u", "echo", ECHO, Default::default())
            .unwrap();
        // One host captures and publishes; nobody else holds the proto.
        let a = &cluster.instances()[0];
        let r = a.invoke_local("u", "echo", vec![1]);
        assert_eq!(r.status, faasm_core::CallStatus::Success);
        let created = spread_prewarm(cluster.instances(), None, "u", "echo", 3);
        assert_eq!(created, 3);
        // Every target got a manifest push (counted even when the pre-warm's
        // own synchronous fetch wins the race to install the proto), and no
        // host compiled from scratch. The push is asynchronous, so poll.
        let prestaged = |cluster: &Cluster| -> u64 {
            cluster
                .instances()
                .iter()
                .map(|i| i.snapshot_stats().prestages)
                .sum()
        };
        for _ in 0..400 {
            if prestaged(&cluster) >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let got = prestaged(&cluster);
        assert!(got >= 2, "cold targets were pre-staged: {got}");
        for (i, inst) in cluster.instances().iter().enumerate() {
            assert!(inst.has_proto("u", "echo") || inst.warm_count("u", "echo") > 0);
            assert_eq!(
                inst.metrics().cold_starts(),
                u64::from(i == 0),
                "only the publisher ever cold-started"
            );
        }
    }
}
