//! The gateway wire protocol: length-prefixed binary frames.
//!
//! Same discipline as the KVS codec (`faasm-kvs`): every request/response
//! crossing the ingress boundary is encoded through this module, so byte
//! accounting stays faithful and no hidden zero-cost serialisation sneaks
//! into the measurements. A frame is a `u32`-LE payload length followed by
//! the payload; [`FrameBuf`] reassembles frames from an arbitrary byte
//! stream (clients may deliver them fragmented or coalesced).

use bytes::{Buf, BufMut};
use faasm_telemetry::TraceCtx;

use crate::response::{GatewayResponse, GatewayStatus};

/// Maximum accepted frame payload (defends the ingress against a hostile
/// length prefix).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

const TAG_REQUEST: u8 = 1;
const TAG_RESPONSE: u8 = 2;

/// A function-call request as it arrives at the gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayRequest {
    /// Client-chosen sequence number, echoed on the response.
    pub seq: u64,
    /// The tenant (the cluster's user namespace).
    pub tenant: String,
    /// Function name within the tenant's namespace.
    pub function: String,
    /// Milliseconds the client is willing to wait in queue; 0 means the
    /// gateway default.
    pub deadline_ms: u64,
    /// Trace context stamped by the client ([`TraceCtx::NONE`] when the
    /// caller is not tracing): the gateway adopts it as the root of this
    /// call's span tree so ingress, dispatch, worker and state spans all
    /// share one trace id.
    pub trace: TraceCtx,
    /// Input bytes.
    pub input: Vec<u8>,
}

/// Wrap a payload in a length-prefixed frame.
///
/// Every receiver rejects frames above [`MAX_FRAME`], so emitting one is
/// always a sender bug: this panics in debug builds. Wire paths (which may
/// carry caller-supplied payloads of arbitrary size) must use
/// [`try_encode_frame`] instead so oversized payloads fail fast at the
/// sender rather than poisoning the receiver's stream.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(
        payload.len() <= MAX_FRAME,
        "encode_frame payload {} exceeds MAX_FRAME {MAX_FRAME}",
        payload.len()
    );
    let mut out = Vec::with_capacity(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
    out
}

/// [`encode_frame`] with the bound checked in all builds: the frame path
/// for payloads whose size the caller does not control.
///
/// # Errors
///
/// [`OversizedFrame`] when the payload exceeds [`MAX_FRAME`] — the frame
/// is never built, so no receiver ever sees a prefix it must treat as
/// hostile.
pub fn try_encode_frame(payload: &[u8]) -> Result<Vec<u8>, OversizedFrame> {
    if payload.len() > MAX_FRAME {
        return Err(OversizedFrame { len: payload.len() });
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
    Ok(out)
}

/// A length prefix exceeding [`MAX_FRAME`]: the stream is corrupt or
/// hostile, and the connection should be dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizedFrame {
    /// The claimed payload length.
    pub len: usize,
}

impl std::fmt::Display for OversizedFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame length {} exceeds MAX_FRAME {MAX_FRAME}", self.len)
    }
}

impl std::error::Error for OversizedFrame {}

/// Split one frame off the front of `buf`: returns the payload and the
/// total bytes consumed, `None` if the frame is still incomplete, or an
/// error if the length prefix exceeds [`MAX_FRAME`].
pub fn try_decode_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, OversizedFrame> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(OversizedFrame { len });
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((&buf[4..4 + len], 4 + len)))
}

/// [`try_decode_frame`] with oversized prefixes flattened into `None`, for
/// callers holding one complete, bounded frame (not a stream).
pub fn decode_frame(buf: &[u8]) -> Option<(&[u8], usize)> {
    try_decode_frame(buf).ok().flatten()
}

/// Incremental frame reassembly over a byte stream.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// An empty reassembly buffer.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Append raw bytes received from the stream.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete frame payload. `Ok(None)` means "no complete
    /// frame yet". An [`OversizedFrame`] error means the stream is corrupt
    /// or hostile: the buffer is cleared (nothing behind a bad prefix is
    /// trustworthy) and the caller should drop the connection.
    ///
    /// # Errors
    ///
    /// [`OversizedFrame`] when the next length prefix exceeds [`MAX_FRAME`].
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, OversizedFrame> {
        match try_decode_frame(&self.buf) {
            Ok(Some((payload, consumed))) => {
                let payload = payload.to_vec();
                self.buf.drain(..consumed);
                Ok(Some(payload))
            }
            Ok(None) => Ok(None),
            Err(e) => {
                self.buf.clear();
                self.buf.shrink_to_fit();
                Err(e)
            }
        }
    }

    /// Bytes buffered but not yet framed.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

/// Encode a request payload (frame it with [`encode_frame`] for the wire).
pub fn encode_request(req: &GatewayRequest) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_u8(TAG_REQUEST);
    out.put_u64_le(req.seq);
    put_string(&mut out, &req.tenant);
    put_string(&mut out, &req.function);
    out.put_u64_le(req.deadline_ms);
    out.put_u64_le(req.trace.trace_id);
    out.put_u64_le(req.trace.span_id);
    put_blob(&mut out, &req.input);
    out
}

/// Decode a request payload; `None` on malformed or trailing bytes.
pub fn decode_request(mut buf: &[u8]) -> Option<GatewayRequest> {
    if buf.remaining() < 9 || buf.get_u8() != TAG_REQUEST {
        return None;
    }
    let seq = buf.get_u64_le();
    let tenant = get_string(&mut buf)?;
    let function = get_string(&mut buf)?;
    if buf.remaining() < 24 {
        return None;
    }
    let deadline_ms = buf.get_u64_le();
    let trace = TraceCtx {
        trace_id: buf.get_u64_le(),
        span_id: buf.get_u64_le(),
    };
    let input = get_blob(&mut buf)?;
    if buf.has_remaining() {
        return None;
    }
    Some(GatewayRequest {
        seq,
        tenant,
        function,
        deadline_ms,
        trace,
        input,
    })
}

/// Encode a response payload.
pub fn encode_response(resp: &GatewayResponse) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_u8(TAG_RESPONSE);
    out.put_u64_le(resp.seq);
    match &resp.status {
        GatewayStatus::Ok => out.put_u8(0),
        GatewayStatus::Failed(code) => {
            out.put_u8(1);
            out.put_i32_le(*code);
        }
        GatewayStatus::Error(msg) => {
            out.put_u8(2);
            put_string(&mut out, msg);
        }
        GatewayStatus::Overloaded => out.put_u8(3),
        GatewayStatus::Expired => out.put_u8(4),
    }
    put_blob(&mut out, &resp.output);
    out
}

/// Decode a response payload; `None` on malformed or trailing bytes.
pub fn decode_response(mut buf: &[u8]) -> Option<GatewayResponse> {
    if buf.remaining() < 10 || buf.get_u8() != TAG_RESPONSE {
        return None;
    }
    let seq = buf.get_u64_le();
    let status = match buf.get_u8() {
        0 => GatewayStatus::Ok,
        1 => {
            if buf.remaining() < 4 {
                return None;
            }
            GatewayStatus::Failed(buf.get_i32_le())
        }
        2 => GatewayStatus::Error(get_string(&mut buf)?),
        3 => GatewayStatus::Overloaded,
        4 => GatewayStatus::Expired,
        _ => return None,
    };
    let output = get_blob(&mut buf)?;
    if buf.has_remaining() {
        return None;
    }
    Some(GatewayResponse {
        seq,
        status,
        output,
    })
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_blob(out, s.as_bytes());
}

fn put_blob(out: &mut Vec<u8>, b: &[u8]) {
    // `len as u32` silently wraps for ≥ 4 GiB blobs, corrupting the
    // encoding. Any blob that large also exceeds MAX_FRAME, so release
    // builds are protected by the checked frame path (`try_encode_frame`),
    // which rejects oversized payloads *gracefully*; here we fail fast in
    // debug only at the wrap boundary itself, so merely-above-MAX_FRAME
    // payloads still reach the frame path's recoverable error.
    debug_assert!(
        u32::try_from(b.len()).is_ok(),
        "field length {} wraps the u32 length prefix",
        b.len()
    );
    out.put_u32_le(b.len() as u32);
    out.put_slice(b);
}

fn get_string(buf: &mut &[u8]) -> Option<String> {
    String::from_utf8(get_blob(buf)?).ok()
}

fn get_blob(buf: &mut &[u8]) -> Option<Vec<u8>> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let mut v = vec![0u8; len];
    buf.copy_to_slice(&mut v);
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> GatewayRequest {
        GatewayRequest {
            seq: 42,
            tenant: "alice".into(),
            function: "double".into(),
            deadline_ms: 250,
            trace: TraceCtx::NONE,
            input: vec![1, 2, 3, 4],
        }
    }

    #[test]
    fn request_roundtrip() {
        let r = req();
        assert_eq!(decode_request(&encode_request(&r)), Some(r));
        // A traced request carries its context across the wire untouched.
        let traced = GatewayRequest {
            trace: TraceCtx {
                trace_id: 0x5EED,
                span_id: 0xF00D,
            },
            ..req()
        };
        assert_eq!(decode_request(&encode_request(&traced)), Some(traced));
    }

    #[test]
    fn truncated_requests_rejected() {
        let good = encode_request(&req());
        for cut in 1..good.len() {
            assert!(decode_request(&good[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn response_roundtrip_all_statuses() {
        for status in [
            GatewayStatus::Ok,
            GatewayStatus::Failed(7),
            GatewayStatus::Error("boom".into()),
            GatewayStatus::Overloaded,
            GatewayStatus::Expired,
        ] {
            let r = GatewayResponse {
                seq: 9,
                status,
                output: b"out".to_vec(),
            };
            assert_eq!(decode_response(&encode_response(&r)), Some(r));
        }
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert_eq!(decode_request(&[]), None);
        assert_eq!(decode_request(&[TAG_RESPONSE; 16]), None);
        let mut ok = encode_request(&req());
        ok.push(0); // trailing garbage
        assert_eq!(decode_request(&ok), None);
        assert_eq!(decode_response(&encode_request(&req())), None);
    }

    #[test]
    fn frames_reassemble_from_fragments() {
        let a = encode_frame(&encode_request(&req()));
        let b = encode_frame(b"second");
        let stream: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        let mut fb = FrameBuf::new();
        // Feed one byte at a time.
        for byte in &stream {
            fb.feed(&[*byte]);
        }
        let first = fb.next_frame().unwrap().expect("first frame");
        assert_eq!(decode_request(&first), Some(req()));
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(&b"second"[..]));
        assert_eq!(fb.next_frame(), Ok(None));
        assert_eq!(fb.pending_bytes(), 0);
    }

    #[test]
    fn oversized_payload_never_becomes_a_frame() {
        let payload = vec![0u8; MAX_FRAME + 1];
        let err = try_encode_frame(&payload).unwrap_err();
        assert_eq!(err.len, MAX_FRAME + 1);
        // In-bounds payloads are identical through both paths.
        let ok = try_encode_frame(b"fine").unwrap();
        assert_eq!(ok, encode_frame(b"fine"));
        // A frame at exactly the cap is legal and decodes.
        let edge = try_encode_frame(&payload[..MAX_FRAME]).unwrap();
        let (decoded, consumed) = try_decode_frame(&edge).unwrap().unwrap();
        assert_eq!(decoded.len(), MAX_FRAME);
        assert_eq!(consumed, 4 + MAX_FRAME);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_FRAME")]
    #[cfg(debug_assertions)]
    fn debug_encode_frame_asserts_on_oversize() {
        let payload = vec![0u8; MAX_FRAME + 1];
        let _ = encode_frame(&payload);
    }

    #[test]
    fn hostile_length_prefix_is_a_hard_error_and_resets() {
        let mut fb = FrameBuf::new();
        fb.feed(&u32::MAX.to_le_bytes());
        fb.feed(&[0; 64]);
        let err = fb.next_frame().unwrap_err();
        assert_eq!(err.len, u32::MAX as usize);
        // The poisoned stream was discarded, not silently buffered forever.
        assert_eq!(fb.pending_bytes(), 0);
        // The buffer is reusable for a fresh (reconnected) stream.
        fb.feed(&encode_frame(b"recovered"));
        assert_eq!(fb.next_frame().unwrap().as_deref(), Some(&b"recovered"[..]));
    }
}
