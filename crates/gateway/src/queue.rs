//! The pending queue: bounded per-tenant FIFOs drained in weighted-fair
//! order.
//!
//! Draining uses deficit round-robin: each scheduling round credits every
//! backlogged tenant `weight` tokens, and a tenant may dispatch one queued
//! request per token. A flooding tenant therefore cannot starve a quiet
//! one — the quiet tenant's requests leave within one round of arriving —
//! while idle tenants accumulate no credit (deficit resets when a queue
//! empties, the standard DRR anti-hoarding rule).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use faasm_telemetry::TraceCtx;
use parking_lot::{Condvar, Mutex};

/// One queued request, from admission to dispatch.
#[derive(Debug)]
pub struct Job {
    /// Gateway ticket (also the response's `seq`).
    pub seq: u64,
    /// Tenant (cluster user namespace).
    pub tenant: String,
    /// Function name.
    pub function: String,
    /// Input bytes.
    pub input: Vec<u8>,
    /// When the job entered the queue (queueing-delay metric).
    pub enqueued: Instant,
    /// Shed with `Expired` if still queued past this instant.
    pub deadline: Instant,
    /// The call's trace context (minted or adopted at admission).
    pub trace: TraceCtx,
}

#[derive(Debug, Default)]
struct TenantQueue {
    jobs: VecDeque<Job>,
    weight: u32,
    deficit: u64,
    /// Lower bound on the earliest deadline among `jobs` — conservative
    /// (drains may remove the minimum without recomputing), so the expiry
    /// scan can skip a whole tenant in O(1) when nothing can be expired.
    min_deadline: Option<Instant>,
    /// Queued requests per function, maintained incrementally: the
    /// autoscaler samples the backlog every tick, and recounting a deep
    /// queue job-by-job would cost O(jobs) exactly when it is deepest.
    /// Keyed by function only (the tenant is this queue's key), so the
    /// hot-path decrement is a borrowed lookup — no string clones.
    fn_counts: HashMap<String, usize>,
}

impl TenantQueue {
    fn count_drained(&mut self, job: &Job) {
        if let Some(n) = self.fn_counts.get_mut(&job.function) {
            *n -= 1;
            if *n == 0 {
                self.fn_counts.remove(&job.function);
            }
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    queues: HashMap<String, TenantQueue>,
    /// Stable round-robin order over tenants (insertion order).
    order: Vec<String>,
    cursor: usize,
    len: usize,
}

/// The multi-tenant pending queue.
#[derive(Debug, Default)]
pub struct FairQueue {
    inner: Mutex<Inner>,
    nonempty: Condvar,
}

impl FairQueue {
    /// An empty queue.
    pub fn new() -> FairQueue {
        FairQueue::default()
    }

    /// Enqueue a job under its tenant's bounded FIFO. Returns the job back
    /// when the tenant already has `queue_cap` requests pending (the caller
    /// sheds it with `Overloaded`).
    ///
    /// # Errors
    ///
    /// The rejected job.
    // The Err payload IS the job handed back to the caller for shedding —
    // a Box would just make the accept path pay the allocation instead.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, job: Job, weight: u32, queue_cap: usize) -> Result<(), Job> {
        let mut inner = self.inner.lock();
        // Decide admission before touching any state: a rejected push must
        // leave no trace. (The old order appended the tenant to the DRR
        // rotation and created an empty queue first, so a flood of over-cap
        // submits under arbitrary tenant names bloated every scheduling
        // pass until the next drain's GC.)
        match inner.queues.get(&job.tenant) {
            Some(q) if q.jobs.len() >= queue_cap => return Err(job),
            Some(_) => {}
            None if queue_cap == 0 => return Err(job),
            None => inner.order.push(job.tenant.clone()),
        }
        let q = inner.queues.entry(job.tenant.clone()).or_default();
        q.weight = weight.max(1);
        if let Some(n) = q.fn_counts.get_mut(&job.function) {
            *n += 1;
        } else {
            q.fn_counts.insert(job.function.clone(), 1);
        }
        q.min_deadline = Some(match q.min_deadline {
            Some(d) => d.min(job.deadline),
            None => job.deadline,
        });
        q.jobs.push_back(job);
        inner.len += 1;
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Tenants currently holding queued work (rotation size). A rejected
    /// push must not grow this.
    pub fn tenant_count(&self) -> usize {
        self.inner.lock().order.len()
    }

    /// Total queued requests across tenants.
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued requests for one tenant.
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.inner
            .lock()
            .queues
            .get(tenant)
            .map_or(0, |q| q.jobs.len())
    }

    /// Backlog per `(tenant, function)` — the autoscaler's demand signal.
    /// Served from incrementally maintained counts: O(active functions),
    /// never O(queued jobs).
    pub fn backlog(&self) -> HashMap<(String, String), usize> {
        let inner = self.inner.lock();
        let mut out = HashMap::new();
        for (tenant, q) in &inner.queues {
            for (function, n) in &q.fn_counts {
                out.insert((tenant.clone(), function.clone()), *n);
            }
        }
        out
    }

    /// Remove and return every job whose deadline has passed, preserving
    /// FIFO order within each tenant. Decouples deadline shedding from
    /// dispatch: a dispatcher can shed on time even when it has no capacity
    /// to drain (all submit slots in flight), so `Expired` responses are
    /// bounded by the dispatcher's polling cadence, not by how long the
    /// current in-flight work takes.
    pub fn shed_expired(&self, now: Instant) -> Vec<Job> {
        let mut inner = self.inner.lock();
        if inner.len == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for q in inner.queues.values_mut() {
            // O(1) fast path: nothing in this tenant's queue can have
            // expired yet (the bound is conservative, never late).
            if q.min_deadline.is_none_or(|d| d > now) {
                continue;
            }
            if q.jobs.iter().any(|j| j.deadline <= now) {
                let (expired, live): (Vec<Job>, Vec<Job>) =
                    q.jobs.drain(..).partition(|j| j.deadline <= now);
                q.jobs = live.into();
                for job in &expired {
                    q.count_drained(job);
                }
                out.extend(expired);
            }
            // The stale bound paid for one scan; recompute it exactly.
            q.min_deadline = q.jobs.iter().map(|j| j.deadline).min();
        }
        if !out.is_empty() {
            inner.len -= out.len();
            // GC tenants the shed emptied, as drain does.
            let Inner { queues, order, .. } = &mut *inner;
            queues.retain(|_, q| !q.jobs.is_empty());
            order.retain(|t| queues.contains_key(t));
        }
        out
    }

    /// Drain up to `max` jobs in weighted-fair order, blocking up to `wait`
    /// for the first job. Returns an empty batch on timeout or when `stop`
    /// is set.
    pub fn drain_batch(&self, max: usize, wait: Duration, stop: &AtomicBool) -> Vec<Job> {
        let deadline = Instant::now() + wait;
        let mut inner = self.inner.lock();
        while inner.len == 0 {
            if stop.load(Ordering::Relaxed) {
                return Vec::new();
            }
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            self.nonempty.wait_for(&mut inner, deadline - now);
        }

        let mut batch: Vec<Job> = Vec::with_capacity(max.min(inner.len));
        // Deficit round-robin over the tenant rotation, starting where the
        // previous drain left off so no tenant owns the front of every batch.
        while batch.len() < max && inner.len > 0 {
            let n_tenants = inner.order.len();
            let mut progressed = false;
            for _ in 0..n_tenants {
                if batch.len() >= max {
                    break;
                }
                let idx = inner.cursor % n_tenants;
                inner.cursor = inner.cursor.wrapping_add(1);
                let tenant = inner.order[idx].clone();
                let room = max - batch.len();
                let taken = {
                    let Some(q) = inner.queues.get_mut(&tenant) else {
                        continue;
                    };
                    if q.jobs.is_empty() {
                        q.deficit = 0;
                        continue;
                    }
                    q.deficit += u64::from(q.weight);
                    let n = (q.deficit as usize).min(room).min(q.jobs.len());
                    q.deficit -= n as u64;
                    let taken: Vec<Job> = q.jobs.drain(..n).collect();
                    for job in &taken {
                        q.count_drained(job);
                    }
                    if q.jobs.is_empty() {
                        q.deficit = 0;
                    }
                    taken
                };
                if !taken.is_empty() {
                    progressed = true;
                    inner.len -= taken.len();
                    batch.extend(taken);
                }
            }
            if !progressed {
                break;
            }
        }
        // Garbage-collect drained tenants: wire clients can name arbitrary
        // tenants, and without this every name ever seen would cost an
        // entry in each future round-robin pass (and memory) forever.
        let Inner { queues, order, .. } = &mut *inner;
        queues.retain(|_, q| !q.jobs.is_empty());
        order.retain(|t| queues.contains_key(t));
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(tenant: &str, seq: u64) -> Job {
        Job {
            seq,
            tenant: tenant.into(),
            function: "f".into(),
            input: Vec::new(),
            enqueued: Instant::now(),
            deadline: Instant::now() + Duration::from_secs(60),
            trace: TraceCtx::NONE,
        }
    }

    fn drain(q: &FairQueue, max: usize) -> Vec<Job> {
        q.drain_batch(max, Duration::from_millis(5), &AtomicBool::new(false))
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let q = FairQueue::new();
        q.push(job("a", 1), 1, 2).unwrap();
        q.push(job("a", 2), 1, 2).unwrap();
        let back = q.push(job("a", 3), 1, 2).unwrap_err();
        assert_eq!(back.seq, 3);
        assert_eq!(q.tenant_depth("a"), 2);
        // Another tenant's queue is unaffected.
        q.push(job("b", 4), 1, 2).unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn rejected_push_leaves_no_state_behind() {
        let q = FairQueue::new();
        q.push(job("real", 1), 1, 8).unwrap();
        // A flood of zero-cap submits under unique tenant names: none may
        // enter the rotation or allocate an (empty) queue.
        for i in 0..1000 {
            let name = format!("ghost{i}");
            let back = q.push(job(&name, i), 1, 0).unwrap_err();
            assert_eq!(back.seq, i);
            assert_eq!(q.tenant_depth(&name), 0);
        }
        assert_eq!(q.tenant_count(), 1, "only the admitted tenant rotates");
        assert_eq!(q.len(), 1);
        // Over-cap rejections on an existing tenant also leave it intact.
        let q2 = FairQueue::new();
        q2.push(job("a", 1), 1, 1).unwrap();
        q2.push(job("a", 2), 1, 1).unwrap_err();
        assert_eq!(q2.tenant_count(), 1);
        assert_eq!(q2.tenant_depth("a"), 1);
        // The admitted job still drains normally.
        let batch = drain(&q2, 4);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].seq, 1);
        assert_eq!(q2.tenant_count(), 0, "drain GC clears the rotation");
    }

    #[test]
    fn equal_weights_interleave_tenants() {
        let q = FairQueue::new();
        for i in 0..6 {
            q.push(job("flood", i), 1, 100).unwrap();
        }
        q.push(job("quiet", 100), 1, 100).unwrap();
        let batch = drain(&q, 4);
        let tenants: Vec<&str> = batch.iter().map(|j| j.tenant.as_str()).collect();
        assert!(
            tenants.contains(&"quiet"),
            "quiet tenant must appear in the first batch despite the flood: {tenants:?}"
        );
    }

    #[test]
    fn weights_bias_the_drain() {
        let q = FairQueue::new();
        for i in 0..40 {
            q.push(job("heavy", i), 3, 100).unwrap();
            q.push(job("light", 100 + i), 1, 100).unwrap();
        }
        let batch = drain(&q, 16);
        let heavy = batch.iter().filter(|j| j.tenant == "heavy").count();
        let light = batch.iter().filter(|j| j.tenant == "light").count();
        assert!(
            heavy > light * 2,
            "3:1 weights should drain ~3:1, got {heavy}:{light}"
        );
        assert!(light >= 1, "light tenant still progresses");
    }

    #[test]
    fn fifo_within_a_tenant() {
        let q = FairQueue::new();
        for i in 0..10 {
            q.push(job("t", i), 1, 100).unwrap();
        }
        let batch = drain(&q, 10);
        let seqs: Vec<u64> = batch.iter().map(|j| j.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shed_expired_removes_only_aged_jobs() {
        let q = FairQueue::new();
        let mut doomed = job("a", 1);
        doomed.deadline = Instant::now() - Duration::from_millis(1);
        q.push(doomed, 1, 10).unwrap();
        q.push(job("a", 2), 1, 10).unwrap();
        let mut doomed_b = job("b", 3);
        doomed_b.deadline = Instant::now() - Duration::from_millis(1);
        q.push(doomed_b, 1, 10).unwrap();

        let shed = q.shed_expired(Instant::now());
        let mut seqs: Vec<u64> = shed.iter().map(|j| j.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 3]);
        assert_eq!(q.len(), 1);
        // Tenant b was emptied by the shed and left the rotation.
        assert_eq!(q.tenant_count(), 1);
        // The survivor still drains in order.
        let batch = drain(&q, 4);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].seq, 2);
        // Nothing expired: the fast path sheds nothing.
        q.push(job("a", 9), 1, 10).unwrap();
        assert!(q.shed_expired(Instant::now()).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn backlog_counts_track_push_drain_and_shed() {
        let q = FairQueue::new();
        for i in 0..5 {
            q.push(job("a", i), 1, 10).unwrap();
        }
        let mut doomed = job("b", 9);
        doomed.deadline = Instant::now() - Duration::from_millis(1);
        q.push(doomed, 1, 10).unwrap();
        let backlog = q.backlog();
        assert_eq!(backlog.get(&("a".into(), "f".into())), Some(&5));
        assert_eq!(backlog.get(&("b".into(), "f".into())), Some(&1));
        // Rejected pushes leave no count behind.
        q.push(job("ghost", 99), 1, 0).unwrap_err();
        assert!(!q.backlog().contains_key(&("ghost".into(), "f".into())));
        // Sheds and drains decrement; emptied functions drop their entry.
        q.shed_expired(Instant::now());
        assert!(!q.backlog().contains_key(&("b".into(), "f".into())));
        let n = drain(&q, 3).len();
        assert_eq!(n, 3);
        assert_eq!(q.backlog().get(&("a".into(), "f".into())), Some(&2));
        drain(&q, 10);
        assert!(q.backlog().is_empty());
    }

    #[test]
    fn empty_drain_times_out() {
        let q = FairQueue::new();
        let t0 = Instant::now();
        let batch = q.drain_batch(8, Duration::from_millis(20), &AtomicBool::new(false));
        assert!(batch.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn stop_flag_aborts_wait() {
        let q = FairQueue::new();
        let stop = AtomicBool::new(true);
        let batch = q.drain_batch(8, Duration::from_secs(10), &stop);
        assert!(batch.is_empty());
    }
}
