//! Terminal outcomes of a gateway request.

use faasm_sched::{CallResult, CallStatus};

/// What happened to a request, including the admission-control outcomes a
/// bare `Cluster::invoke` can never return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayStatus {
    /// Executed with return code zero.
    Ok,
    /// Executed with a non-zero guest return code.
    Failed(i32),
    /// Runtime error (trap, unknown function, timeout); carries the message.
    Error(String),
    /// Shed by admission control: the tenant's queue was full or its rate
    /// limit exceeded. The function never ran; safe to retry with backoff.
    Overloaded,
    /// Shed by the deadline: the request sat queued past its deadline. The
    /// function never ran.
    Expired,
}

/// A completed (or shed) gateway request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayResponse {
    /// Echo of the request's sequence number.
    pub seq: u64,
    /// Terminal status.
    pub status: GatewayStatus,
    /// Function output (empty for shed requests).
    pub output: Vec<u8>,
}

impl GatewayResponse {
    /// Wrap a cluster call result.
    pub fn from_call(seq: u64, result: CallResult) -> GatewayResponse {
        let status = match result.status {
            CallStatus::Success => GatewayStatus::Ok,
            CallStatus::Failed(code) => GatewayStatus::Failed(code),
            CallStatus::Error(msg) => GatewayStatus::Error(msg),
        };
        GatewayResponse {
            seq,
            status,
            output: result.output,
        }
    }

    /// An `Overloaded` shed response.
    pub fn overloaded(seq: u64) -> GatewayResponse {
        GatewayResponse {
            seq,
            status: GatewayStatus::Overloaded,
            output: Vec::new(),
        }
    }

    /// An `Expired` shed response.
    pub fn expired(seq: u64) -> GatewayResponse {
        GatewayResponse {
            seq,
            status: GatewayStatus::Expired,
            output: Vec::new(),
        }
    }

    /// An error response with a message.
    pub fn error(seq: u64, msg: impl Into<String>) -> GatewayResponse {
        GatewayResponse {
            seq,
            status: GatewayStatus::Error(msg.into()),
            output: Vec::new(),
        }
    }

    /// True for `Ok`.
    pub fn is_ok(&self) -> bool {
        self.status == GatewayStatus::Ok
    }

    /// True for the admission-control outcomes (`Overloaded` / `Expired`):
    /// the function never ran.
    pub fn was_shed(&self) -> bool {
        matches!(
            self.status,
            GatewayStatus::Overloaded | GatewayStatus::Expired
        )
    }
}
