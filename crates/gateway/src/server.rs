//! The gateway service loop: ingress over the fabric.
//!
//! [`GatewayServer`] attaches a [`Gateway`] to a [`faasm_net::Nic`] so
//! remote hosts reach admission through the cluster network instead of an
//! in-process function call. Clients speak byte streams
//! ([`faasm_net::stream`]): framed [`codec`] requests arrive fragmented and
//! coalesced, so every connection gets its own [`FrameBuf`] reassembly with
//! a pending-bytes cap. Corrupt streams are surgical failures — an
//! oversized length prefix, an undecodable request or a cap overflow drops
//! *that* connection (with a `Close` notification) and nothing else.
//!
//! Requests are submitted asynchronously ([`Gateway::submit_async`]): the
//! single service thread never blocks on execution, and responses flow back
//! down the originating connection from the dispatcher threads that
//! produced them. One service thread is a correctness requirement, not a
//! simplification: stream chunks must be reassembled in arrival order, and
//! fanning envelopes across threads would reorder them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use faasm_net::stream::{close_msg, data_msg, decode_stream_msg, StreamKind};
use faasm_net::{HostId, Nic};

use crate::codec::{self, FrameBuf, MAX_FRAME};
use crate::gateway::Gateway;
use crate::response::GatewayResponse;

/// Gateway server construction parameters.
#[derive(Debug, Clone)]
pub struct GatewayServerConfig {
    /// Per-connection cap on buffered-but-unframed bytes; a connection
    /// exceeding it is dropped (defends the reassembly buffers against
    /// slow-drip and never-framing clients). Must be at least
    /// `MAX_FRAME + 4` or maximum-size legal frames could never reassemble.
    pub max_pending_bytes: usize,
    /// Fragmentation size for responses sent back down a connection.
    pub mtu: usize,
}

impl Default for GatewayServerConfig {
    fn default() -> GatewayServerConfig {
        GatewayServerConfig {
            max_pending_bytes: MAX_FRAME + 4096,
            mtu: faasm_net::DEFAULT_MTU,
        }
    }
}

struct ServerInner {
    gateway: Arc<Gateway>,
    nic: Nic,
    config: GatewayServerConfig,
    stop: AtomicBool,
    /// Serialises response writes: completions fire from concurrent
    /// dispatcher threads, and interleaving two multi-chunk frames on the
    /// same connection would corrupt the client's stream (the mirror of
    /// the client's submit-side connection lock).
    send_lock: parking_lot::Mutex<()>,
    frames_received: AtomicU64,
    connections_dropped: AtomicU64,
}

/// A running gateway server: one service thread draining a NIC, one
/// reassembly buffer per live connection.
pub struct GatewayServer {
    inner: Arc<ServerInner>,
    thread: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for GatewayServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayServer")
            .field("host", &self.inner.nic.id())
            .finish()
    }
}

impl GatewayServer {
    /// Start serving `gateway` on `nic` with default parameters.
    pub fn start(gateway: Arc<Gateway>, nic: Nic) -> GatewayServer {
        GatewayServer::with_config(gateway, nic, GatewayServerConfig::default())
    }

    /// Start serving with explicit parameters.
    pub fn with_config(
        gateway: Arc<Gateway>,
        nic: Nic,
        config: GatewayServerConfig,
    ) -> GatewayServer {
        let inner = Arc::new(ServerInner {
            gateway,
            nic,
            config,
            stop: AtomicBool::new(false),
            send_lock: parking_lot::Mutex::new(()),
            frames_received: AtomicU64::new(0),
            connections_dropped: AtomicU64::new(0),
        });
        let thread = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gw-server".into())
                .spawn(move || inner.service_loop())
                .expect("spawn gateway server")
        };
        GatewayServer {
            inner,
            thread: parking_lot::Mutex::new(Some(thread)),
        }
    }

    /// The server's host id on the fabric (what clients connect to).
    pub fn host_id(&self) -> HostId {
        self.inner.nic.id()
    }

    /// Complete request frames decoded so far.
    pub fn frames_received(&self) -> u64 {
        self.inner.frames_received.load(Ordering::Relaxed)
    }

    /// Connections dropped for protocol violations (oversized frames,
    /// undecodable requests, pending-bytes overflow).
    pub fn connections_dropped(&self) -> u64 {
        self.inner.connections_dropped.load(Ordering::Relaxed)
    }

    /// Stop the service thread and wait for it. Idempotent; also runs on
    /// drop. In-flight requests already handed to the gateway still
    /// complete (their responses are sent from dispatcher threads).
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for GatewayServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ServerInner {
    fn service_loop(self: Arc<Self>) {
        let mut conns: HashMap<(HostId, u64), FrameBuf> = HashMap::new();
        while !self.stop.load(Ordering::Relaxed) {
            match self.nic.recv_timeout(Duration::from_millis(20)) {
                Ok(env) => self.handle(&mut conns, env.src, &env.payload),
                Err(faasm_net::NetError::Timeout) => continue,
                Err(_) => break,
            }
        }
    }

    fn handle(
        self: &Arc<Self>,
        conns: &mut HashMap<(HostId, u64), FrameBuf>,
        src: HostId,
        payload: &[u8],
    ) {
        // Non-stream traffic on the ingress NIC is not a client bug we can
        // attribute to a connection; ignore it.
        let Some(msg) = decode_stream_msg(payload) else {
            return;
        };
        let key = (src, msg.conn);
        match msg.kind {
            StreamKind::Open => {
                conns.insert(key, FrameBuf::new());
            }
            StreamKind::Close => {
                conns.remove(&key);
            }
            StreamKind::Data => {
                // Data for a connection that never opened (or was dropped
                // for a violation): ignore. Feeding it would desynchronise
                // reassembly from the middle of a stream.
                let Some(fb) = conns.get_mut(&key) else {
                    return;
                };
                if fb.pending_bytes() + msg.bytes.len() > self.config.max_pending_bytes {
                    self.drop_conn(conns, key);
                    return;
                }
                fb.feed(&msg.bytes);
                loop {
                    match fb.next_frame() {
                        Ok(Some(frame)) => {
                            self.frames_received.fetch_add(1, Ordering::Relaxed);
                            match codec::decode_request(&frame) {
                                Some(req) => self.dispatch(key, req),
                                None => {
                                    // An undecodable request: the stream
                                    // cannot be trusted past it. Tell the
                                    // client why, then cut the connection.
                                    self.send_response(
                                        key,
                                        &GatewayResponse::error(0, "malformed request frame"),
                                    );
                                    self.drop_conn(conns, key);
                                    return;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(_oversized) => {
                            self.drop_conn(conns, key);
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Hand one request to the gateway; the completion callback frames the
    /// response and sends it back down the connection from whichever
    /// thread fulfils the ticket.
    fn dispatch(self: &Arc<Self>, key: (HostId, u64), req: codec::GatewayRequest) {
        let server = Arc::clone(self);
        self.gateway.submit_async(req, move |resp| {
            server.send_response(key, &resp);
        });
    }

    fn send_response(&self, (host, conn): (HostId, u64), resp: &GatewayResponse) {
        let payload = codec::encode_response(resp);
        let frame = match codec::try_encode_frame(&payload) {
            Ok(frame) => frame,
            Err(_) => {
                // A function output too large to frame: the client still
                // gets a terminal answer, just not the oversized payload.
                let err = GatewayResponse::error(resp.seq, "response exceeds MAX_FRAME");
                codec::encode_frame(&codec::encode_response(&err))
            }
        };
        // All chunks of one frame must hit the wire contiguously.
        let _atomic_frame = self.send_lock.lock();
        // Send errors mean the client host left the fabric; nothing to do.
        for chunk in frame.chunks(self.config.mtu.max(1)) {
            if self.nic.send(host, data_msg(conn, chunk)).is_err() {
                return;
            }
        }
    }

    fn drop_conn(&self, conns: &mut HashMap<(HostId, u64), FrameBuf>, key: (HostId, u64)) {
        conns.remove(&key);
        self.connections_dropped.fetch_add(1, Ordering::Relaxed);
        let _ = self.nic.send(key.0, close_msg(key.1));
    }
}
