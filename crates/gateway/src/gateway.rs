//! The gateway runtime: admission, batching dispatch, autoscaling.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm_core::{ChainRouter, Cluster, FaasmInstance, GatewayMetrics};
use faasm_net::TokenBucket;
use parking_lot::{Condvar, Mutex};

use crate::autoscale::AutoscaleConfig;
use crate::codec::{self, GatewayRequest};
use crate::queue::{FairQueue, Job};
use crate::response::GatewayResponse;
use crate::tenant::TenantPolicy;

/// Gateway construction parameters.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Dispatcher threads draining the pending queue in batches.
    pub dispatchers: usize,
    /// Maximum requests per dispatched batch.
    pub max_batch: usize,
    /// How long a dispatcher waits for the first request of a batch before
    /// re-checking for shutdown.
    pub batch_wait: Duration,
    /// Queueing deadline applied to requests that do not carry their own: a
    /// request still queued after this long is shed with `Expired`.
    pub default_deadline: Duration,
    /// Upper bound a caller blocks in [`Gateway::wait`] before getting an
    /// error response (covers runaway guests; normal sheds return fast).
    pub wait_timeout: Duration,
    /// Policy for tenants without an explicit one.
    pub default_policy: TenantPolicy,
    /// Autoscaler; `None` disables it.
    pub autoscale: Option<AutoscaleConfig>,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            dispatchers: 2,
            max_batch: 16,
            batch_wait: Duration::from_millis(5),
            default_deadline: Duration::from_secs(5),
            wait_timeout: Duration::from_secs(120),
            default_policy: TenantPolicy::default(),
            autoscale: Some(AutoscaleConfig::default()),
        }
    }
}

/// A remote waiter's completion hook, invoked exactly once with the
/// terminal response (outside the completion lock).
pub(crate) type CompletionFn = Box<dyn FnOnce(GatewayResponse) + Send>;

/// One ticket's completion state.
enum Slot {
    /// Registered; a local waiter will claim it via [`Completions::wait`].
    Pending,
    /// Fulfilled, awaiting its waiter; swept after `ttl`.
    Ready(GatewayResponse, Instant),
    /// A remote waiter (wire request): fulfilment invokes the callback
    /// instead of parking the response, so over-the-fabric calls complete
    /// asynchronously without a blocked thread per in-flight ticket.
    Callback(CompletionFn),
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Slot::Pending => f.write_str("Pending"),
            Slot::Ready(..) => f.write_str("Ready"),
            Slot::Callback(_) => f.write_str("Callback"),
        }
    }
}

/// Completion slots: ticket → eventual response.
///
/// Slots are normally reclaimed by [`Completions::wait`] or a callback;
/// fulfilled slots nobody waits on (fire-and-forget submits) are swept once
/// they outlive `ttl`, so abandoned tickets cannot grow the map without
/// bound.
#[derive(Debug)]
struct Completions {
    slots: Mutex<Slots>,
    cv: Condvar,
    ttl: Duration,
}

/// The slot map plus the bookkeeping that keeps the TTL sweep off the hot
/// path: `fulfilled` counts delivered-but-unclaimed slots (live waiters do
/// not trigger sweeps) and `last_sweep` rate-limits full-map scans.
#[derive(Debug)]
struct Slots {
    map: HashMap<u64, Slot>,
    fulfilled: usize,
    last_sweep: Instant,
}

/// Unclaimed fulfilled-slot count above which `fulfill` runs the TTL sweep.
const SWEEP_THRESHOLD: usize = 256;

impl Completions {
    fn new(ttl: Duration) -> Completions {
        Completions {
            slots: Mutex::new(Slots {
                map: HashMap::new(),
                fulfilled: 0,
                last_sweep: Instant::now(),
            }),
            cv: Condvar::new(),
            ttl,
        }
    }

    fn register(&self, seq: u64) {
        self.slots.lock().map.entry(seq).or_insert(Slot::Pending);
    }

    fn register_callback(&self, seq: u64, cb: CompletionFn) {
        self.slots.lock().map.insert(seq, Slot::Callback(cb));
    }

    fn fulfill(&self, resp: GatewayResponse) {
        let mut resp = Some(resp);
        let mut callback = None;
        {
            let mut slots = self.slots.lock();
            let seq = resp.as_ref().expect("response present").seq;
            // Only deliver into registered slots; a slot abandoned by a
            // timed-out waiter has been removed and the response is dropped.
            let Slots { map, fulfilled, .. } = &mut *slots;
            if matches!(map.get(&seq), Some(Slot::Callback(_))) {
                if let Some(Slot::Callback(cb)) = map.remove(&seq) {
                    callback = Some(cb);
                }
            } else if let Some(slot) = map.get_mut(&seq) {
                if matches!(slot, Slot::Pending) {
                    *fulfilled += 1;
                }
                *slot = Slot::Ready(resp.take().expect("response present"), Instant::now());
                self.cv.notify_all();
            }
            // Sweep abandoned (fulfilled, never-claimed) slots — but only
            // when enough have accumulated and not more often than ttl/4, so
            // steady high-concurrency traffic never pays an O(n) scan per
            // completion.
            if slots.fulfilled > SWEEP_THRESHOLD && slots.last_sweep.elapsed() >= self.ttl / 4 {
                let ttl = self.ttl;
                slots
                    .map
                    .retain(|_, slot| !matches!(slot, Slot::Ready(_, at) if at.elapsed() >= ttl));
                slots.fulfilled = slots
                    .map
                    .values()
                    .filter(|s| matches!(s, Slot::Ready(..)))
                    .count();
                slots.last_sweep = Instant::now();
            }
        }
        // Invoked outside the lock: the callback may do arbitrary work
        // (encode + fabric send) and must not hold up other completions.
        if let Some(cb) = callback {
            cb(resp.take().expect("response present"));
        }
    }

    fn wait(&self, seq: u64, timeout: Duration) -> Option<GatewayResponse> {
        let deadline = Instant::now() + timeout;
        let mut slots = self.slots.lock();
        loop {
            if matches!(slots.map.get(&seq), Some(Slot::Ready(..))) {
                slots.fulfilled = slots.fulfilled.saturating_sub(1);
                if let Some(Slot::Ready(resp, _)) = slots.map.remove(&seq) {
                    return Some(resp);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                slots.map.remove(&seq);
                return None;
            }
            self.cv.wait_for(&mut slots, deadline - now);
        }
    }
}

/// A cached tenant bucket with the (rate, burst) it was built from.
type BucketEntry = (u64, u64, Arc<TokenBucket>);

/// State shared between the public handle and the gateway's threads. The
/// threads hold `Arc<Inner>` (never the public [`Gateway`]), so dropping the
/// handle reliably reaches `Gateway::drop` and tears the threads down.
struct Inner {
    cluster: Arc<Cluster>,
    config: GatewayConfig,
    queue: FairQueue,
    policies: Mutex<HashMap<String, TenantPolicy>>,
    /// Rate-limited tenants' buckets, keyed with the (rate, burst) they
    /// were built from so a policy change rebuilds them on next use (a
    /// `set_tenant_policy` racing a submit cannot resurrect a stale bucket
    /// for more than one request). Unlimited tenants share one bucket and
    /// cost no map entry — wire clients naming arbitrary tenants cannot
    /// grow this map unless the operator rate-limits the default policy.
    buckets: Mutex<HashMap<String, BucketEntry>>,
    unlimited: Arc<TokenBucket>,
    completions: Completions,
    metrics: Arc<GatewayMetrics>,
    seq: AtomicU64,
    rotation: AtomicUsize,
    stop: AtomicBool,
}

/// The cluster's ingress tier.
///
/// See the crate docs for the architecture; constructed with
/// [`Gateway::start`], torn down on drop.
pub struct Gateway {
    inner: Arc<Inner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("queued", &self.inner.queue.len())
            .field("dispatchers", &self.inner.config.dispatchers)
            .finish()
    }
}

impl Gateway {
    /// Start a gateway in front of `cluster`: spawns the dispatcher threads
    /// and (if configured) the autoscaler.
    pub fn start(cluster: Arc<Cluster>, config: GatewayConfig) -> Gateway {
        let completions = Completions::new(config.wait_timeout);
        let inner = Arc::new(Inner {
            cluster,
            config,
            queue: FairQueue::new(),
            policies: Mutex::new(HashMap::new()),
            buckets: Mutex::new(HashMap::new()),
            unlimited: Arc::new(TokenBucket::unlimited()),
            completions,
            metrics: Arc::new(GatewayMetrics::new()),
            seq: AtomicU64::new(1),
            rotation: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });
        let mut threads = Vec::new();
        for d in 0..inner.config.dispatchers.max(1) {
            let i = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gw-dispatch{d}"))
                    .spawn(move || i.dispatch_loop())
                    .expect("spawn gateway dispatcher"),
            );
        }
        if inner.config.autoscale.is_some() {
            let i = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("gw-autoscale".into())
                    .spawn(move || i.autoscale_loop())
                    .expect("spawn gateway autoscaler"),
            );
        }
        Gateway {
            inner,
            threads: Mutex::new(threads),
        }
    }

    /// Install (or replace) a tenant's admission policy.
    pub fn set_tenant_policy(&self, tenant: &str, policy: TenantPolicy) {
        self.inner.buckets.lock().remove(tenant);
        self.inner
            .policies
            .lock()
            .insert(tenant.to_string(), policy);
    }

    /// The gateway's metrics.
    pub fn metrics(&self) -> &Arc<GatewayMetrics> {
        &self.inner.metrics
    }

    /// Requests currently pending dispatch.
    pub fn queue_len(&self) -> usize {
        self.inner.queue.len()
    }

    /// The cluster behind this gateway.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.inner.cluster
    }

    /// Submit a request with the default queueing deadline; returns a
    /// ticket for [`Gateway::wait`].
    pub fn submit(&self, tenant: &str, function: &str, input: Vec<u8>) -> u64 {
        let deadline = self.inner.config.default_deadline;
        self.submit_with_deadline(tenant, function, input, deadline)
    }

    /// Submit a request that is shed with `Expired` if still queued after
    /// `deadline`.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        function: &str,
        input: Vec<u8>,
        deadline: Duration,
    ) -> u64 {
        self.inner.submit(tenant, function, input, deadline)
    }

    /// Block for a submitted request's response.
    pub fn wait(&self, ticket: u64) -> GatewayResponse {
        self.inner
            .completions
            .wait(ticket, self.inner.config.wait_timeout)
            .unwrap_or_else(|| GatewayResponse::error(ticket, "gateway wait timed out"))
    }

    /// Submit and wait (the synchronous client surface).
    pub fn call(&self, tenant: &str, function: &str, input: Vec<u8>) -> GatewayResponse {
        let ticket = self.submit(tenant, function, input);
        self.wait(ticket)
    }

    /// The wire surface: decode one request frame, run it through the full
    /// admission/dispatch path, return the encoded response frame. Malformed
    /// frames get an `Error` response with `seq` 0.
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        let resp = match codec::decode_frame(frame)
            .and_then(|(payload, _)| codec::decode_request(payload))
        {
            Some(req) => self.handle_request(req),
            None => GatewayResponse::error(0, "malformed request frame"),
        };
        codec::encode_frame(&codec::encode_response(&resp))
    }

    /// Run a decoded wire request through the gateway.
    pub fn handle_request(&self, req: GatewayRequest) -> GatewayResponse {
        let deadline = self.wire_deadline(&req);
        let ticket = self.submit_with_deadline(&req.tenant, &req.function, req.input, deadline);
        let mut resp = self.wait(ticket);
        // The wire response echoes the client's sequence number, not the
        // gateway-internal ticket.
        resp.seq = req.seq;
        resp
    }

    /// Submit a decoded wire request without blocking: `on_complete` is
    /// invoked exactly once with the terminal response (its `seq` mapped
    /// back to the client's), from whichever thread produced it — a
    /// dispatcher on completion, or the calling thread on a synchronous
    /// shed. This is how [`GatewayServer`](crate::GatewayServer) keeps one
    /// service thread serving many in-flight connections.
    ///
    /// Returns the gateway-internal ticket (for observability; the
    /// callback is the delivery mechanism).
    pub fn submit_async(
        &self,
        req: GatewayRequest,
        on_complete: impl FnOnce(GatewayResponse) + Send + 'static,
    ) -> u64 {
        let deadline = self.wire_deadline(&req);
        let client_seq = req.seq;
        self.inner.submit_with(
            &req.tenant,
            &req.function,
            req.input,
            deadline,
            Some(Box::new(move |mut resp: GatewayResponse| {
                resp.seq = client_seq;
                on_complete(resp);
            })),
        )
    }

    fn wire_deadline(&self, req: &GatewayRequest) -> Duration {
        if req.deadline_ms == 0 {
            self.inner.config.default_deadline
        } else {
            Duration::from_millis(req.deadline_ms)
        }
    }

    /// Stop dispatchers and the autoscaler; shed whatever is still queued.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Fail whatever is still queued so waiters return.
        self.inner.shed_queue("gateway shut down");
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn submit(&self, tenant: &str, function: &str, input: Vec<u8>, deadline: Duration) -> u64 {
        self.submit_with(tenant, function, input, deadline, None)
    }

    /// Submit with an optional remote completion hook. With `remote: None`
    /// the ticket parks its response for a local [`Completions::wait`];
    /// with a callback, fulfilment invokes it (from whichever thread
    /// produced the terminal response — possibly this one, on a
    /// synchronous shed).
    fn submit_with(
        &self,
        tenant: &str,
        function: &str,
        input: Vec<u8>,
        deadline: Duration,
        remote: Option<CompletionFn>,
    ) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        match remote {
            Some(cb) => self.completions.register_callback(seq, cb),
            None => self.completions.register(seq),
        }
        // After shutdown no dispatcher will ever drain the queue; answer
        // immediately instead of letting the waiter sit out its timeout.
        if self.stop.load(Ordering::Relaxed) {
            self.completions
                .fulfill(GatewayResponse::error(seq, "gateway shut down"));
            return seq;
        }
        let policy = self.policy_for(tenant);

        // Admission gate 1: the tenant's token bucket.
        if !self.bucket_for(tenant, &policy).try_acquire_one() {
            self.metrics.record_shed_ratelimited();
            self.completions.fulfill(GatewayResponse::overloaded(seq));
            return seq;
        }
        // Admission gate 2: the tenant's bounded pending queue.
        let now = Instant::now();
        let job = Job {
            seq,
            tenant: tenant.to_string(),
            function: function.to_string(),
            input,
            enqueued: now,
            deadline: now + deadline,
        };
        match self.queue.push(job, policy.weight, policy.queue_cap) {
            Ok(()) => self.metrics.record_admitted(),
            Err(job) => {
                self.metrics.record_shed_overloaded();
                self.completions
                    .fulfill(GatewayResponse::overloaded(job.seq));
            }
        }
        // Re-check after the push: a shutdown that raced us may already
        // have joined the dispatchers and drained the queue, in which case
        // our job would sit unfulfilled forever. Draining here (idempotent
        // with shutdown's own drain) guarantees the waiter an answer.
        if self.stop.load(Ordering::Relaxed) {
            self.shed_queue("gateway shut down");
        }
        seq
    }

    /// Drain everything queued and answer each waiter with an error.
    fn shed_queue(&self, reason: &str) {
        loop {
            let leftovers = self
                .queue
                .drain_batch(usize::MAX, Duration::ZERO, &self.stop);
            if leftovers.is_empty() {
                break;
            }
            for job in leftovers {
                self.completions
                    .fulfill(GatewayResponse::error(job.seq, reason));
            }
        }
    }

    fn policy_for(&self, tenant: &str) -> TenantPolicy {
        self.policies
            .lock()
            .get(tenant)
            .cloned()
            .unwrap_or_else(|| self.config.default_policy.clone())
    }

    fn bucket_for(&self, tenant: &str, policy: &TenantPolicy) -> Arc<TokenBucket> {
        let Some(rate) = policy.rate_per_sec else {
            return Arc::clone(&self.unlimited);
        };
        let burst = policy.burst.max(1);
        let mut buckets = self.buckets.lock();
        match buckets.get(tenant) {
            Some((r, b, bucket)) if *r == rate && *b == burst => Arc::clone(bucket),
            _ => {
                let bucket = Arc::new(TokenBucket::per_second(rate, burst));
                buckets.insert(tenant.to_string(), (rate, burst, Arc::clone(&bucket)));
                bucket
            }
        }
    }

    /// Choose the instance for one call: prefer hosts with idle warm
    /// Faaslets for the function, penalise deep run queues, break ties by
    /// rotation. The same signals `faasm_sched::decide` uses, applied one
    /// tier earlier.
    fn pick_instance(&self, tenant: &str, function: &str) -> Arc<FaasmInstance> {
        let instances = self.cluster.instances();
        debug_assert!(!instances.is_empty());
        let start = self.rotation.fetch_add(1, Ordering::Relaxed);
        let mut best: Option<(i64, &Arc<FaasmInstance>)> = None;
        for off in 0..instances.len() {
            let inst = &instances[(start + off) % instances.len()];
            let warm = inst.warm_count(tenant, function) as i64;
            let depth = inst.queue_depth() as i64;
            let score = warm * 4 - depth;
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, inst));
            }
        }
        Arc::clone(best.expect("cluster has at least one instance").1)
    }

    fn dispatch_loop(self: Arc<Self>) {
        while !self.stop.load(Ordering::Relaxed) {
            let batch =
                self.queue
                    .drain_batch(self.config.max_batch, self.config.batch_wait, &self.stop);
            if batch.is_empty() {
                continue;
            }
            let now = Instant::now();
            let mut inflight = Vec::with_capacity(batch.len());
            for job in batch {
                // Deadline-based shedding: anything that aged out in the
                // queue is answered immediately instead of wasting a worker.
                if job.deadline <= now {
                    self.metrics.record_shed_expired();
                    self.completions.fulfill(GatewayResponse::expired(job.seq));
                    continue;
                }
                self.metrics
                    .record_queue_delay_ns(now.duration_since(job.enqueued).as_nanos() as u64);
                let inst = self.pick_instance(&job.tenant, &job.function);
                // Already-placed dispatch: pick_instance scored hosts by
                // warmth and queue depth, so skip the instance's own decide
                // (which would re-place by depth-blind rotation when deep).
                let id = inst.submit_placed(&job.tenant, &job.function, job.input);
                inflight.push((job.seq, id, inst));
            }
            if inflight.is_empty() {
                continue;
            }
            self.metrics.record_batch(inflight.len());
            for (seq, id, inst) in inflight {
                let result = inst.await_call(id);
                self.metrics.record_completed();
                self.completions
                    .fulfill(GatewayResponse::from_call(seq, result));
            }
        }
    }

    fn autoscale_loop(self: Arc<Self>) {
        let cfg = self
            .config
            .autoscale
            .clone()
            .expect("autoscale loop without config");
        // Functions the autoscaler has seen traffic for; retirement only
        // considers these (it never touches pools it did not grow). Keys
        // with no backlog and nothing left to retire are dropped each tick,
        // so wire clients naming arbitrary tenants cannot grow this set or
        // the per-tick scan without bound.
        let mut seen: HashSet<(String, String)> = HashSet::new();
        while !self.stop.load(Ordering::Relaxed) {
            std::thread::sleep(cfg.interval);
            let backlog = self.queue.backlog();
            seen.extend(backlog.keys().cloned());
            let instances = self.cluster.instances();
            seen.retain(|key| {
                let (tenant, function) = (&key.0, &key.1);
                let depth = backlog.get(key).copied().unwrap_or(0);
                let idle: usize = instances
                    .iter()
                    .map(|i| i.warm_count(tenant, function))
                    .sum();
                if depth > cfg.backlog_high && idle < cfg.max_warm {
                    // Pre-warm on the least-loaded instance.
                    if let Some(target) = instances.iter().min_by_key(|i| i.queue_depth()) {
                        let n = cfg.scale_step.min(cfg.max_warm - idle);
                        if let Ok(created) = target.prewarm(tenant, function, n) {
                            self.metrics.record_prewarm(created);
                        }
                    }
                } else if depth == 0 && idle > cfg.idle_target {
                    let mut surplus = idle - cfg.idle_target;
                    for inst in instances {
                        if surplus == 0 {
                            break;
                        }
                        let retired = inst.retire_idle(tenant, function, surplus);
                        self.metrics.record_retire(retired);
                        surplus -= retired;
                    }
                }
                // Keep only keys that may still need action next tick.
                depth > 0 || idle > cfg.idle_target
            });
        }
    }
}
