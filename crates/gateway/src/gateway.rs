//! The gateway runtime: admission, batching dispatch, autoscaling.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use faasm_core::{Cluster, FaasmInstance, GatewayMetrics, PendingMap, PlacedCall};
use faasm_net::TokenBucket;
use faasm_telemetry::{Recorder, SpanKind, TraceCtx};
use parking_lot::{Condvar, Mutex};

use crate::autoscale::{spread_prewarm, tier_scale_wanted, AutoscaleConfig};
use crate::codec::{self, GatewayRequest};
use crate::queue::{FairQueue, Job};
use crate::response::GatewayResponse;
use crate::tenant::TenantPolicy;

/// Gateway construction parameters.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Dispatcher threads draining the pending queue in batches.
    pub dispatchers: usize,
    /// Maximum requests per dispatched batch.
    pub max_batch: usize,
    /// How long a dispatcher waits for the first request of a batch before
    /// re-checking for shutdown.
    pub batch_wait: Duration,
    /// Queueing deadline applied to requests that do not carry their own: a
    /// request still queued after this long is shed with `Expired`.
    pub default_deadline: Duration,
    /// Upper bound a caller blocks in [`Gateway::wait`] before getting an
    /// error response (covers runaway guests; normal sheds return fast).
    pub wait_timeout: Duration,
    /// Policy for tenants without an explicit one.
    pub default_policy: TenantPolicy,
    /// Autoscaler; `None` disables it.
    pub autoscale: Option<AutoscaleConfig>,
    /// Requests submitted to the cluster but not yet completed, across all
    /// dispatchers — the admission tier's backpressure signal. While the
    /// cap is reached, dispatchers stop draining (so tenant queues fill and
    /// shed `Overloaded`) but keep shedding expired jobs on time. `0`
    /// means `dispatchers × max_batch`.
    pub max_inflight: usize,
    /// Target dispatch delay (time a job may stand in the queue before
    /// dispatch — CoDel's sojourn-time target) for the admission
    /// back-pressure loop. When the measured EWMA stands above this,
    /// effective per-tenant queue caps shrink multiplicatively
    /// (CoDel-lite: shed at admission instead of queueing work the
    /// cluster cannot serve in time); when it drops below half the
    /// target — or the gateway fully drains — caps grow back additively.
    pub target_dispatch_latency: Duration,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            dispatchers: 2,
            max_batch: 16,
            batch_wait: Duration::from_millis(5),
            default_deadline: Duration::from_secs(5),
            wait_timeout: Duration::from_secs(120),
            default_policy: TenantPolicy::default(),
            autoscale: Some(AutoscaleConfig::default()),
            max_inflight: 0,
            target_dispatch_latency: Duration::from_millis(25),
        }
    }
}

/// Admission cap scale denominator: a scale of `CAP_SCALE_ONE` applies
/// tenants' configured queue caps unchanged.
const CAP_SCALE_ONE: u64 = 1024;

/// Floor for the AIMD shrink: caps never fall below 1/16 of configured.
const CAP_SCALE_MIN: u64 = CAP_SCALE_ONE / 16;

/// Additive step per adjustment tick on recovery.
const CAP_SCALE_STEP: u64 = CAP_SCALE_ONE / 32;

/// How often the AIMD loop re-evaluates the EWMA.
const ADJUST_EVERY: Duration = Duration::from_millis(10);

/// The gateway tier's flight recorder, fetched once: `tier()` takes a
/// registry lock, which the admission path must not pay per request.
fn gw_recorder() -> &'static Arc<Recorder> {
    static RECORDER: std::sync::OnceLock<Arc<Recorder>> = std::sync::OnceLock::new();
    RECORDER.get_or_init(|| faasm_telemetry::tier("gateway"))
}

/// A remote waiter's completion hook, invoked exactly once with the
/// terminal response (outside the completion lock).
pub(crate) type CompletionFn = faasm_core::PendingCallback<GatewayResponse>;

/// Completion slots: ticket → eventual response.
///
/// A non-storing [`PendingMap`]: responses for tickets nobody registered
/// (abandoned by a timed-out waiter) are dropped, and fulfilled slots
/// nobody claims (fire-and-forget submits) are TTL-swept — the gateway
/// half of the ROADMAP's `Pending`/`Completions` unification.
type Completions = PendingMap<GatewayResponse>;

/// A cached tenant bucket with the (rate, burst) it was built from.
type BucketEntry = (u64, u64, Arc<TokenBucket>);

/// State shared between the public handle and the gateway's threads. The
/// threads hold `Arc<Inner>` (never the public [`Gateway`]), so dropping the
/// handle reliably reaches `Gateway::drop` and tears the threads down.
struct Inner {
    cluster: Arc<Cluster>,
    config: GatewayConfig,
    queue: FairQueue,
    policies: Mutex<HashMap<String, TenantPolicy>>,
    /// Rate-limited tenants' buckets, keyed with the (rate, burst) they
    /// were built from so a policy change rebuilds them on next use (a
    /// `set_tenant_policy` racing a submit cannot resurrect a stale bucket
    /// for more than one request). Unlimited tenants share one bucket and
    /// cost no map entry — wire clients naming arbitrary tenants cannot
    /// grow this map unless the operator rate-limits the default policy.
    buckets: Mutex<HashMap<String, BucketEntry>>,
    unlimited: Arc<TokenBucket>,
    completions: Completions,
    metrics: Arc<GatewayMetrics>,
    seq: AtomicU64,
    rotation: AtomicUsize,
    stop: AtomicBool,
    /// Calls submitted to the cluster whose completion callback has not yet
    /// fired. Dispatchers reserve room here before draining and completions
    /// release it, so admission backpressure survives the non-blocking
    /// dispatch path.
    inflight: Mutex<usize>,
    inflight_cv: Condvar,
    /// EWMA of measured dispatch delay in nanoseconds (0 = no samples):
    /// how long each dispatched job stood in the queue — CoDel's sojourn
    /// time, fed on every dispatch.
    dispatch_ewma_ns: AtomicU64,
    /// Effective per-tenant queue-cap scale in 1/[`CAP_SCALE_ONE`]ths,
    /// driven by the AIMD loop over the EWMA.
    cap_scale: AtomicU64,
    /// When the AIMD loop last adjusted (rate-limits adjustments so one
    /// standing-delay episode shrinks caps geometrically, not per sample).
    last_adjust: Mutex<Instant>,
}

/// The cluster's ingress tier.
///
/// See the crate docs for the architecture; constructed with
/// [`Gateway::start`], torn down on drop.
pub struct Gateway {
    inner: Arc<Inner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("queued", &self.inner.queue.len())
            .field("dispatchers", &self.inner.config.dispatchers)
            .finish()
    }
}

impl Gateway {
    /// Start a gateway in front of `cluster`: spawns the dispatcher threads
    /// and (if configured) the autoscaler.
    pub fn start(cluster: Arc<Cluster>, config: GatewayConfig) -> Gateway {
        let completions = Completions::new(false, Some(config.wait_timeout));
        let inner = Arc::new(Inner {
            cluster,
            config,
            queue: FairQueue::new(),
            policies: Mutex::new(HashMap::new()),
            buckets: Mutex::new(HashMap::new()),
            unlimited: Arc::new(TokenBucket::unlimited()),
            completions,
            metrics: Arc::new(GatewayMetrics::new()),
            seq: AtomicU64::new(1),
            rotation: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            inflight: Mutex::new(0),
            inflight_cv: Condvar::new(),
            dispatch_ewma_ns: AtomicU64::new(0),
            cap_scale: AtomicU64::new(CAP_SCALE_ONE),
            last_adjust: Mutex::new(Instant::now()),
        });
        let mut threads = Vec::new();
        for d in 0..inner.config.dispatchers.max(1) {
            let i = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gw-dispatch{d}"))
                    .spawn(move || i.dispatch_loop())
                    .expect("spawn gateway dispatcher"),
            );
        }
        if inner.config.autoscale.is_some() {
            let i = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("gw-autoscale".into())
                    .spawn(move || i.autoscale_loop())
                    .expect("spawn gateway autoscaler"),
            );
        }
        Gateway {
            inner,
            threads: Mutex::new(threads),
        }
    }

    /// Install (or replace) a tenant's admission policy.
    pub fn set_tenant_policy(&self, tenant: &str, policy: TenantPolicy) {
        self.inner.buckets.lock().remove(tenant);
        self.inner
            .policies
            .lock()
            .insert(tenant.to_string(), policy);
    }

    /// The gateway's metrics.
    pub fn metrics(&self) -> &Arc<GatewayMetrics> {
        &self.inner.metrics
    }

    /// Requests currently pending dispatch.
    pub fn queue_len(&self) -> usize {
        self.inner.queue.len()
    }

    /// The cluster behind this gateway.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.inner.cluster
    }

    /// The measured dispatch-delay EWMA — time jobs stand in the queue
    /// before dispatch (zero before any job has been dispatched).
    pub fn dispatch_latency_ewma(&self) -> Duration {
        Duration::from_nanos(self.inner.dispatch_ewma_ns.load(Ordering::Relaxed))
    }

    /// The current admission cap scale in `(0, 1]`: the fraction of each
    /// tenant's configured queue cap the back-pressure loop is admitting.
    pub fn admission_cap_scale(&self) -> f64 {
        self.inner.cap_scale.load(Ordering::Relaxed) as f64 / CAP_SCALE_ONE as f64
    }

    /// Submit a request with the default queueing deadline; returns a
    /// ticket for [`Gateway::wait`].
    pub fn submit(&self, tenant: &str, function: &str, input: Vec<u8>) -> u64 {
        let deadline = self.inner.config.default_deadline;
        self.submit_with_deadline(tenant, function, input, deadline)
    }

    /// Submit a request that is shed with `Expired` if still queued after
    /// `deadline`.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        function: &str,
        input: Vec<u8>,
        deadline: Duration,
    ) -> u64 {
        self.inner.submit(tenant, function, input, deadline)
    }

    /// Submit under a fresh trace root and return `(ticket, trace_id)`:
    /// after the call completes, `faasm_telemetry::trace_tree(trace_id)`
    /// holds its admission→dispatch→execution→state span tree. This is the
    /// in-process equivalent of a wire client stamping
    /// [`GatewayRequest::trace`](crate::GatewayRequest).
    pub fn submit_traced(&self, tenant: &str, function: &str, input: Vec<u8>) -> (u64, u64) {
        let root = TraceCtx::new_root();
        let ticket = self.inner.submit_with(
            tenant,
            function,
            input,
            self.inner.config.default_deadline,
            None,
            root,
        );
        (ticket, root.trace_id)
    }

    /// [`Gateway::submit_traced`] + [`Gateway::wait`]: the synchronous
    /// traced surface. Returns the response and the trace id.
    pub fn call_traced(
        &self,
        tenant: &str,
        function: &str,
        input: Vec<u8>,
    ) -> (GatewayResponse, u64) {
        let (ticket, trace_id) = self.submit_traced(tenant, function, input);
        (self.wait(ticket), trace_id)
    }

    /// Block for a submitted request's response.
    pub fn wait(&self, ticket: u64) -> GatewayResponse {
        self.inner
            .completions
            .wait(ticket, self.inner.config.wait_timeout)
            .unwrap_or_else(|| GatewayResponse::error(ticket, "gateway wait timed out"))
    }

    /// Submit and wait (the synchronous client surface).
    pub fn call(&self, tenant: &str, function: &str, input: Vec<u8>) -> GatewayResponse {
        let ticket = self.submit(tenant, function, input);
        self.wait(ticket)
    }

    /// The wire surface: decode one request frame, run it through the full
    /// admission/dispatch path, return the encoded response frame. Malformed
    /// frames get an `Error` response with `seq` 0.
    pub fn handle_frame(&self, frame: &[u8]) -> Vec<u8> {
        let resp = match codec::decode_frame(frame)
            .and_then(|(payload, _)| codec::decode_request(payload))
        {
            Some(req) => self.handle_request(req),
            None => GatewayResponse::error(0, "malformed request frame"),
        };
        codec::encode_frame(&codec::encode_response(&resp))
    }

    /// Run a decoded wire request through the gateway.
    pub fn handle_request(&self, req: GatewayRequest) -> GatewayResponse {
        let deadline = self.wire_deadline(&req);
        let ticket = self.inner.submit_with(
            &req.tenant,
            &req.function,
            req.input,
            deadline,
            None,
            req.trace,
        );
        let mut resp = self.wait(ticket);
        // The wire response echoes the client's sequence number, not the
        // gateway-internal ticket.
        resp.seq = req.seq;
        resp
    }

    /// Submit a decoded wire request without blocking: `on_complete` is
    /// invoked exactly once with the terminal response (its `seq` mapped
    /// back to the client's), from whichever thread produced it — a
    /// dispatcher on completion, or the calling thread on a synchronous
    /// shed. This is how [`GatewayServer`](crate::GatewayServer) keeps one
    /// service thread serving many in-flight connections.
    ///
    /// Returns the gateway-internal ticket (for observability; the
    /// callback is the delivery mechanism).
    pub fn submit_async(
        &self,
        req: GatewayRequest,
        on_complete: impl FnOnce(GatewayResponse) + Send + 'static,
    ) -> u64 {
        let deadline = self.wire_deadline(&req);
        let client_seq = req.seq;
        self.inner.submit_with(
            &req.tenant,
            &req.function,
            req.input,
            deadline,
            Some(Box::new(move |mut resp: GatewayResponse| {
                resp.seq = client_seq;
                on_complete(resp);
            })),
            req.trace,
        )
    }

    fn wire_deadline(&self, req: &GatewayRequest) -> Duration {
        if req.deadline_ms == 0 {
            self.inner.config.default_deadline
        } else {
            Duration::from_millis(req.deadline_ms)
        }
    }

    /// Stop dispatchers and the autoscaler; shed whatever is still queued.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Fail whatever is still queued so waiters return.
        self.inner.shed_queue("gateway shut down");
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn submit(&self, tenant: &str, function: &str, input: Vec<u8>, deadline: Duration) -> u64 {
        // Inherit an active trace (a traced caller chaining through the
        // gateway) or leave it to `submit_with` to mint a fresh root.
        self.submit_with(
            tenant,
            function,
            input,
            deadline,
            None,
            faasm_telemetry::current(),
        )
    }

    /// Submit with an optional remote completion hook. With `remote: None`
    /// the ticket parks its response for a local [`Completions::wait`];
    /// with a callback, fulfilment invokes it (from whichever thread
    /// produced the terminal response — possibly this one, on a
    /// synchronous shed).
    fn submit_with(
        &self,
        tenant: &str,
        function: &str,
        input: Vec<u8>,
        deadline: Duration,
        remote: Option<CompletionFn>,
        trace: TraceCtx,
    ) -> u64 {
        // Every admitted request is traced: an untraced submit gets a
        // fresh root here, at the ingress boundary, so the flight recorder
        // always holds recent spans to dump on an anomaly.
        let trace = if trace.is_none() {
            TraceCtx::new_root()
        } else {
            trace
        };
        let admit_start_ns = faasm_telemetry::now_ns();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        match remote {
            Some(cb) => self.completions.register_callback(seq, cb),
            None => self.completions.register(seq),
        }
        // After shutdown no dispatcher will ever drain the queue; answer
        // immediately instead of letting the waiter sit out its timeout.
        if self.stop.load(Ordering::Relaxed) {
            self.completions
                .fulfill(seq, GatewayResponse::error(seq, "gateway shut down"));
            return seq;
        }
        let policy = self.policy_for(tenant);

        // Admission gate 1: the tenant's token bucket.
        let bucket = self.bucket_for(tenant, &policy);
        if !bucket.try_acquire_one() {
            self.metrics.record_shed_ratelimited();
            self.completions
                .fulfill(seq, GatewayResponse::overloaded(seq));
            return seq;
        }
        // Admission gate 2: the tenant's bounded pending queue, scaled by
        // the dispatch-latency back-pressure loop — under standing delay
        // the gateway sheds here, at admission, instead of queueing work
        // the cluster cannot serve before it expires.
        let queue_cap = self.effective_queue_cap(policy.queue_cap);
        let now = Instant::now();
        let job = Job {
            seq,
            tenant: tenant.to_string(),
            function: function.to_string(),
            input,
            enqueued: now,
            deadline: now + deadline,
            trace,
        };
        match self.queue.push(job, policy.weight, queue_cap) {
            Ok(()) => {
                self.metrics.record_admitted();
                gw_recorder().span(SpanKind::Admission, trace, admit_start_ns, seq);
            }
            Err(job) => {
                // The request consumed no capacity: give the token back so
                // a tenant at its queue cap is not also drained of rate
                // budget (shed once, not twice).
                bucket.refund_one();
                self.metrics.record_shed_overloaded();
                self.completions
                    .fulfill(job.seq, GatewayResponse::overloaded(job.seq));
            }
        }
        // Re-check after the push: a shutdown that raced us may already
        // have joined the dispatchers and drained the queue, in which case
        // our job would sit unfulfilled forever. Draining here (idempotent
        // with shutdown's own drain) guarantees the waiter an answer.
        if self.stop.load(Ordering::Relaxed) {
            self.shed_queue("gateway shut down");
        }
        seq
    }

    /// Drain everything queued and answer each waiter with an error.
    fn shed_queue(&self, reason: &str) {
        loop {
            let leftovers = self
                .queue
                .drain_batch(usize::MAX, Duration::ZERO, &self.stop);
            if leftovers.is_empty() {
                break;
            }
            for job in leftovers {
                self.completions
                    .fulfill(job.seq, GatewayResponse::error(job.seq, reason));
            }
        }
    }

    fn policy_for(&self, tenant: &str) -> TenantPolicy {
        self.policies
            .lock()
            .get(tenant)
            .cloned()
            .unwrap_or_else(|| self.config.default_policy.clone())
    }

    fn bucket_for(&self, tenant: &str, policy: &TenantPolicy) -> Arc<TokenBucket> {
        let Some(rate) = policy.rate_per_sec else {
            return Arc::clone(&self.unlimited);
        };
        let burst = policy.burst.max(1);
        let mut buckets = self.buckets.lock();
        match buckets.get(tenant) {
            Some((r, b, bucket)) if *r == rate && *b == burst => Arc::clone(bucket),
            _ => {
                let bucket = Arc::new(TokenBucket::per_second(rate, burst));
                buckets.insert(tenant.to_string(), (rate, burst, Arc::clone(&bucket)));
                bucket
            }
        }
    }

    /// Choose the instance for one call: prefer hosts with idle warm
    /// Faaslets for the function, penalise deep run queues, nudge toward
    /// hosts whose state caches already hold the function's working set
    /// (log-scaled so cache warmth never outweighs real load), break ties
    /// by rotation. The same signals `faasm_sched::decide` uses, applied
    /// one tier earlier.
    fn pick_instance(&self, tenant: &str, function: &str) -> Arc<FaasmInstance> {
        let instances = self.cluster.instances();
        debug_assert!(!instances.is_empty());
        let hosts: Vec<faasm_net::HostId> = instances.iter().map(|i| i.host_id()).collect();
        let affinity = self.cluster.boards().affinities(tenant, function, &hosts);
        let affinity_of = |h: faasm_net::HostId| -> i64 {
            let score = affinity
                .iter()
                .find(|(p, _)| *p == h)
                .map_or(0, |(_, a)| *a);
            (64 - score.leading_zeros()) as i64
        };
        let start = self.rotation.fetch_add(1, Ordering::Relaxed);
        let mut best: Option<(i64, &Arc<FaasmInstance>)> = None;
        for off in 0..instances.len() {
            let inst = &instances[(start + off) % instances.len()];
            let warm = inst.warm_count(tenant, function) as i64;
            let depth = inst.queue_depth() as i64;
            let score = warm * 4 - depth + affinity_of(inst.host_id());
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, inst));
            }
        }
        Arc::clone(best.expect("cluster has at least one instance").1)
    }

    /// A tenant's queue cap under the current back-pressure scale (never
    /// below 1 — a tenant with any cap at all can always queue one job).
    fn effective_queue_cap(&self, configured: usize) -> usize {
        let scale = self.cap_scale.load(Ordering::Relaxed);
        if scale >= CAP_SCALE_ONE || configured == 0 {
            return configured;
        }
        ((configured as u64 * scale / CAP_SCALE_ONE) as usize).max(1)
    }

    /// Fold one measured dispatch delay (job enqueue → batch dispatch,
    /// CoDel's sojourn time) into the EWMA. Racy read-modify-write by
    /// design: samples arrive from several dispatchers and the control
    /// loop only needs the trend, not an exact fold order.
    fn record_dispatch_delay(&self, ns: u64) {
        let old = self.dispatch_ewma_ns.load(Ordering::Relaxed);
        let next = if old == 0 { ns } else { (old * 7 + ns) / 8 };
        self.dispatch_ewma_ns.store(next, Ordering::Relaxed);
    }

    /// The AIMD control loop (CoDel-lite), run on the dispatcher cadence:
    /// standing delay above target shrinks the admission cap scale
    /// multiplicatively; delay below half the target grows it back
    /// additively. A fully drained gateway (empty queue, nothing in
    /// flight) decays the EWMA so caps recover after a burst ends even
    /// though no new completions arrive to pull the average down.
    fn adjust_admission(&self) {
        {
            let mut last = self.last_adjust.lock();
            let now = Instant::now();
            if now.duration_since(*last) < ADJUST_EVERY {
                return;
            }
            *last = now;
        }
        let drained = self.queue.is_empty() && *self.inflight.lock() == 0;
        let mut ewma = self.dispatch_ewma_ns.load(Ordering::Relaxed);
        if drained && ewma > 0 {
            ewma = ewma * 3 / 4;
            self.dispatch_ewma_ns.store(ewma, Ordering::Relaxed);
        }
        if ewma == 0 {
            return;
        }
        let target = self.config.target_dispatch_latency.as_nanos() as u64;
        let scale = self.cap_scale.load(Ordering::Relaxed);
        if ewma > target && !drained {
            // Multiplicative decrease only under *standing* delay: a high
            // EWMA with nothing queued or in flight is a memory of the
            // last burst, not congestion — decaying it (above) is enough.
            let next = (scale * 3 / 4).max(CAP_SCALE_MIN);
            self.cap_scale.store(next, Ordering::Relaxed);
            if next < scale {
                // A shed burst is an anomaly worth a flight-recorder dump:
                // the spans leading into it show which tenants' sojourn
                // times pushed the EWMA over target.
                gw_recorder().note_anomaly(&format!(
                    "admission cap shrink to {next}/{CAP_SCALE_ONE} (dispatch ewma {} us over target)",
                    ewma / 1_000,
                ));
            }
        } else if ewma < target / 2 {
            self.cap_scale.store(
                (scale + CAP_SCALE_STEP).min(CAP_SCALE_ONE),
                Ordering::Relaxed,
            );
        }
    }

    /// Effective in-flight cap (`0` in config means dispatchers × batch).
    fn max_inflight(&self) -> usize {
        if self.config.max_inflight > 0 {
            return self.config.max_inflight;
        }
        (self.config.dispatchers.max(1) * self.config.max_batch.max(1)).max(1)
    }

    /// Reserve up to `want` in-flight slots; returns how many were granted.
    fn reserve_inflight(&self, want: usize, cap: usize) -> usize {
        let mut inflight = self.inflight.lock();
        let granted = want.min(cap.saturating_sub(*inflight));
        *inflight += granted;
        granted
    }

    /// Return `n` in-flight slots and wake a dispatcher once enough room
    /// has accumulated for a real batch. Waking on every released slot
    /// would hand saturated dispatchers one slot at a time — batches of
    /// one, a bus message per call, exactly the overhead batching exists
    /// to remove. Dispatchers also re-poll on their `batch_wait` cadence,
    /// so small leftovers are never stranded.
    fn release_inflight(&self, n: usize) {
        if n == 0 {
            return;
        }
        let cap = self.max_inflight();
        let room = {
            let mut inflight = self.inflight.lock();
            *inflight = inflight.saturating_sub(n);
            cap.saturating_sub(*inflight)
        };
        if room > self.config.max_batch.max(1) / 2 {
            self.inflight_cv.notify_one();
        }
    }

    /// Block up to `timeout` for in-flight room (woken by completions).
    fn wait_for_room(&self, cap: usize, timeout: Duration) {
        let mut inflight = self.inflight.lock();
        if *inflight >= cap {
            self.inflight_cv.wait_for(&mut inflight, timeout);
        }
    }

    /// Shed every queued job whose deadline has passed. Runs each
    /// dispatcher iteration, whether or not there is capacity to dispatch,
    /// so `Expired` responses stay bounded by `batch_wait` even when every
    /// submit slot is occupied by slow work.
    fn shed_expired_jobs(&self) {
        for job in self.queue.shed_expired(Instant::now()) {
            self.metrics.record_shed_expired();
            self.completions
                .fulfill(job.seq, GatewayResponse::expired(job.seq));
        }
    }

    /// The batch-aware dispatcher: drain in weighted-fair order, group the
    /// batch by placement target, hand each instance **one** batch submit
    /// (one bus message carrying N calls), and go straight back to
    /// draining. Completions fulfil tickets through callbacks, so no
    /// dispatcher ever parks in `await_call` — the head-of-line blocking
    /// that used to let expired jobs rot in the queue at saturation.
    fn dispatch_loop(self: Arc<Self>) {
        let cap = self.max_inflight();
        while !self.stop.load(Ordering::Relaxed) {
            self.shed_expired_jobs();
            self.adjust_admission();
            let granted = self.reserve_inflight(self.config.max_batch.max(1), cap);
            if granted == 0 {
                // Saturated: no draining, but keep polling the deadline
                // shed above at batch_wait cadence.
                self.wait_for_room(cap, self.config.batch_wait);
                continue;
            }
            let batch = self
                .queue
                .drain_batch(granted, self.config.batch_wait, &self.stop);
            if batch.len() < granted {
                self.release_inflight(granted - batch.len());
            }
            if batch.is_empty() {
                continue;
            }
            let now = Instant::now();
            // Group by placement target so each instance gets one batch
            // submit. pick_instance scores hosts by warmth and queue depth;
            // the instance skips its own `decide` for placed calls.
            let mut groups: HashMap<faasm_net::HostId, (Arc<FaasmInstance>, Vec<Job>)> =
                HashMap::new();
            let mut dispatched = 0usize;
            let mut expired = 0usize;
            for job in batch {
                // Deadline-based shedding: anything that aged out in the
                // queue is answered immediately instead of wasting a worker.
                if job.deadline <= now {
                    expired += 1;
                    self.metrics.record_shed_expired();
                    self.completions
                        .fulfill(job.seq, GatewayResponse::expired(job.seq));
                    continue;
                }
                let queued_ns = now.duration_since(job.enqueued).as_nanos() as u64;
                self.metrics.record_queue_delay_ns(queued_ns);
                // The sojourn span's start is reconstructed from the queue
                // delay: enqueue happened `queued_ns` before this drain.
                gw_recorder().span(
                    SpanKind::QueueSojourn,
                    job.trace,
                    faasm_telemetry::now_ns().saturating_sub(queued_ns),
                    0,
                );
                // The admission back-pressure signal is CoDel's sojourn
                // time — how long the job stood in the queue before
                // dispatch — NOT service time: a merely slow function on
                // an idle cluster must not shrink anyone's caps.
                self.record_dispatch_delay(queued_ns);
                let inst = self.pick_instance(&job.tenant, &job.function);
                groups
                    .entry(inst.host_id())
                    .or_insert_with(|| (inst, Vec::new()))
                    .1
                    .push(job);
                dispatched += 1;
            }
            self.release_inflight(expired);
            if dispatched == 0 {
                continue;
            }
            self.metrics.record_batch(dispatched);
            let dispatch_start_ns = faasm_telemetry::now_ns();
            for (_, (inst, jobs)) in groups {
                let group_size = jobs.len() as u64;
                let calls: Vec<PlacedCall> = jobs
                    .into_iter()
                    .map(|job| {
                        let seq = job.seq;
                        // Dispatch span: grouping + batch-submit cost, with
                        // the realised group width in `extra`.
                        gw_recorder().span(
                            SpanKind::Dispatch,
                            job.trace,
                            dispatch_start_ns,
                            group_size,
                        );
                        // Weak: completion slots at the instance must not
                        // keep the gateway (and through it the cluster)
                        // alive in a cycle.
                        let inner = Arc::downgrade(&self);
                        PlacedCall {
                            user: job.tenant,
                            function: job.function,
                            input: job.input,
                            trace: job.trace,
                            on_complete: Box::new(move |result| {
                                let Some(inner) = inner.upgrade() else {
                                    return;
                                };
                                inner.metrics.record_completed();
                                inner
                                    .completions
                                    .fulfill(seq, GatewayResponse::from_call(seq, result));
                                inner.release_inflight(1);
                            }),
                        }
                    })
                    .collect();
                inst.submit_placed_batch(calls);
            }
        }
    }

    fn autoscale_loop(self: Arc<Self>) {
        let cfg = self
            .config
            .autoscale
            .clone()
            .expect("autoscale loop without config");
        // Functions the autoscaler has seen traffic for; retirement only
        // considers these (it never touches pools it did not grow). Keys
        // with no backlog and nothing left to retire are dropped each tick,
        // so wire clients naming arbitrary tenants cannot grow this set or
        // the per-tick scan without bound.
        let mut seen: HashSet<(String, String)> = HashSet::new();
        // Tier scaling tracks the op-count delta between ticks.
        let mut last_tier_ops: Option<u64> = None;
        while !self.stop.load(Ordering::Relaxed) {
            std::thread::sleep(cfg.interval);
            if cfg.tier_ops_high.is_some() {
                if let Ok(stats) = self.cluster.state_shard_stats() {
                    let total: u64 = stats.iter().map(|s| s.reads + s.writes + s.lock_ops).sum();
                    let delta = total.saturating_sub(last_tier_ops.unwrap_or(total));
                    last_tier_ops = Some(total);
                    if tier_scale_wanted(delta, stats.len(), &cfg)
                        && self.cluster.add_state_shard().is_ok()
                    {
                        self.metrics.record_tier_scale();
                    }
                }
            }
            let backlog = self.queue.backlog();
            seen.extend(backlog.keys().cloned());
            let instances = self.cluster.instances();
            seen.retain(|key| {
                let (tenant, function) = (&key.0, &key.1);
                let depth = backlog.get(key).copied().unwrap_or(0);
                let idle: usize = instances
                    .iter()
                    .map(|i| i.warm_count(tenant, function))
                    .sum();
                if depth > cfg.backlog_high && idle < cfg.max_warm {
                    // Spread the pre-warm step across the least-loaded
                    // instances (affinity-weighted, pre-staged), so
                    // forwarded calls also land warm.
                    let n = cfg.scale_step.min(cfg.max_warm - idle);
                    let created =
                        spread_prewarm(instances, Some(self.cluster.boards()), tenant, function, n);
                    self.metrics.record_prewarm(created);
                } else if depth == 0 && idle > cfg.idle_target {
                    let mut surplus = idle - cfg.idle_target;
                    for inst in instances {
                        if surplus == 0 {
                            break;
                        }
                        let retired = inst.retire_idle(tenant, function, surplus);
                        self.metrics.record_retire(retired);
                        surplus -= retired;
                    }
                }
                // Keep only keys that may still need action next tick.
                depth > 0 || idle > cfg.idle_target
            });
        }
    }
}
